//! Thread-private code caches (paper §2): "in most multi-threaded
//! applications, very little code was shared between threads, so the cost of
//! duplicating the small amount that was shared for each thread was far
//! outweighed by the savings of not having to synchronize changes in the
//! cache with all the running threads."
//!
//! Three cooperative threads run the same shared helper; each thread's
//! private cache builds its own copy, and no cross-thread synchronization
//! exists anywhere in the engine.

use rio_core::{NullClient, Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = compile(
        "global total = 0;
         fn work(seed) {
             var x = seed;
             var i = 0;
             while (i < 200) {
                 x = (x * 1103515 + 12345) & 2147483647;
                 total = total + x % 10;
                 if (i % 20 == 19) { yield(); }
                 i++;
             }
             return x;
         }
         fn worker() { work(777); texit(); return 0; }
         fn main() {
             var t1 = spawn(&worker);
             var t2 = spawn(&worker);
             work(42);
             var spin = 0;
             while (spin < 100) { yield(); spin++; }
             print(total);
             return (t1 + t2) % 251;
         }",
    )?;

    let native = run_native(&image, CpuKind::Pentium4);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    assert_eq!(r.app_output, native.output);

    println!("program output: {}", r.app_output.trim());
    println!(
        "threads: {} (ids returned: exit code {})",
        rio.core.thread_count(),
        r.exit_code
    );
    for t in 0..rio.core.thread_count() {
        let cache = rio.core.thread_cache(t);
        let (start, end) = cache.region();
        println!(
            "  thread {t}: private cache {:#x}..{:#x}, {} fragments",
            start,
            end,
            cache.len()
        );
    }
    println!(
        "\nthe shared `work` function was translated once per thread — \
         duplication instead of synchronization, as §2 measures."
    );
    Ok(())
}
