//! §4.3: adaptive indirect branch dispatch. Traces containing indirect
//! branches profile their targets through a clean call and rewrite
//! themselves (decode_fragment / replace_fragment) to test the hottest
//! targets with flag-free compares before falling back to the hashtable
//! lookup.

use rio_bench::{run_config, ClientKind};
use rio_clients::IbDispatch;
use rio_core::{Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::{benchmark, compile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = benchmark("eon").expect("eon exists");
    println!("workload: {} ({})\n", b.name, b.character);
    let image = compile(&b.source)?;
    let native = run_native(&image, CpuKind::Pentium4);

    let base = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
    println!(
        "base RIO:       {:.3}x native, {} hashtable lookups",
        base.cycles as f64 / native.counters.cycles as f64,
        base.stats.ib_lookups
    );

    let mut rio = Rio::new(
        &image,
        Options::full(),
        CpuKind::Pentium4,
        IbDispatch::new(),
    );
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    println!(
        "with dispatch:  {:.3}x native, {} hashtable lookups",
        r.counters.cycles as f64 / native.counters.cycles as f64,
        r.stats.ib_lookups
    );
    println!("client: {}", r.client_output.trim());
    println!(
        "fragment replacements performed by the engine: {}",
        r.stats.replacements
    );
    Ok(())
}
