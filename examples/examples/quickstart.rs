//! Quickstart: compile a Dyna program, run it natively and under the RIO
//! engine, and show that results match while the engine reports its cache
//! activity.

use rio_core::{NullClient, Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = compile(
        "fn collatz_len(n) {
             var steps = 0;
             while (n != 1) {
                 if (n & 1) { n = 3 * n + 1; }
                 else { n = n / 2; }
                 steps++;
             }
             return steps;
         }
         fn main() {
             var longest = 0;
             var i = 1;
             while (i <= 300) {
                 var l = collatz_len(i);
                 if (l > longest) { longest = l; }
                 i++;
             }
             print(longest);
             return longest;
         }",
    )?;

    let native = run_native(&image, CpuKind::Pentium4);
    println!(
        "native:   exit={} output={:?}",
        native.exit_code,
        native.output.trim()
    );
    println!("          {}", native.counters);

    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let r = rio.run();
    println!(
        "under RIO: exit={} output={:?}",
        r.exit_code,
        r.app_output.trim()
    );
    println!("          {}", r.counters);
    println!("engine:   {}", r.stats);

    assert_eq!(r.exit_code, native.exit_code);
    assert_eq!(r.app_output, native.output);
    println!(
        "\nnormalized execution time: {:.3}",
        r.counters.cycles as f64 / native.counters.cycles as f64
    );
    Ok(())
}
