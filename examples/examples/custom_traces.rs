//! §4.4: custom call-inlining traces. Call-site blocks become trace heads,
//! traces end one block after a return, and inlined return checks are
//! removed entirely under the calling-convention assumption.

use rio_bench::{run_config, ClientKind};
use rio_clients::CTrace;
use rio_core::{Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::{benchmark, compile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = benchmark("vortex").expect("vortex exists");
    println!("workload: {} ({})\n", b.name, b.character);
    let image = compile(&b.source)?;
    let native = run_native(&image, CpuKind::Pentium4);

    let base = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
    println!(
        "standard traces: {:.3}x native, {} ib lookups",
        base.cycles as f64 / native.counters.cycles as f64,
        base.stats.ib_lookups
    );

    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, CTrace::new());
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    println!(
        "custom traces:   {:.3}x native, {} ib lookups",
        r.counters.cycles as f64 / native.counters.cycles as f64,
        r.stats.ib_lookups
    );
    println!("client: {}", r.client_output.trim());
    Ok(())
}
