//! Figure 2 of the paper: one instruction sequence at each of the five
//! levels of representation.

use rio_ia32::disasm::disassemble;
use rio_ia32::{InstrList, Level};

const FIG2: &[u8] = &[
    0x8d, 0x34, 0x01, 0x8b, 0x46, 0x0c, 0x2b, 0x46, 0x1c, 0x0f, 0xb7, 0x4e, 0x08, 0xc1, 0xe1, 0x07,
    0x3b, 0xc1, 0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00,
];
const PC: u32 = 0x77f5_17af;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Level 0: raw byte bundle, final boundary recorded");
    let il = InstrList::decode_block(FIG2, PC, Level::L0)?;
    for i in il.iter() {
        println!("  {i}");
    }

    println!("\nLevel 1: one Instr per instruction, raw bits only");
    let il = InstrList::decode_block(FIG2, PC, Level::L1)?;
    for i in il.iter() {
        println!("  {i}");
    }

    println!("\nLevel 2: opcode + eflags effect");
    let il = InstrList::decode_block(FIG2, PC, Level::L2)?;
    for i in il.iter() {
        println!("  {i}");
    }

    println!("\nLevel 3: fully decoded (raw bits still valid)");
    for line in disassemble(FIG2, PC)? {
        println!("  {:24} {:<34} {}", line.raw, line.text, line.eflags);
    }

    println!("\nLevel 4: fully decoded, raw bits invalidated (must re-encode)");
    let mut il = InstrList::decode_block(FIG2, PC, Level::L3)?;
    let ids: Vec<_> = il.ids().collect();
    for id in ids {
        il.get_mut(id).invalidate_raw();
    }
    for i in il.iter() {
        println!("  {i}  [level {:?}]", i.level());
    }
    Ok(())
}
