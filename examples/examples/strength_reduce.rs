//! §4.2: architecture-specific strength reduction. The same client binary
//! converts `inc`/`dec` on the Pentium 4 model and leaves them alone on the
//! Pentium 3 — "tailoring the program to the actual processor it is running
//! on".

use rio_clients::Inc2Add;
use rio_core::{Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = compile(
        "global checksum = 0;
         fn main() {
             var i = 0;
             while (i < 20000) {
                 checksum = (checksum + i * 7) % 100003;
                 i++;
             }
             print(checksum);
             return checksum % 251;
         }",
    )?;

    for kind in [CpuKind::Pentium3, CpuKind::Pentium4] {
        let native = run_native(&image, kind);
        let mut rio = Rio::new(&image, Options::full(), kind, Inc2Add::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        println!("{kind:?}:");
        println!("  client says: {}", r.client_output.trim());
        println!(
            "  normalized time {:.3}  (examined {}, converted {})",
            r.counters.cycles as f64 / native.counters.cycles as f64,
            rio.client.num_examined,
            rio.client.num_converted
        );
    }
    Ok(())
}
