//! Instrumentation, not optimization (the abstract's "the interface is not
//! restricted to optimization"): exact inline instruction counting, block
//! execution profiling, and a static opcode histogram.

use rio_clients::{BbProfile, InsCount, OpStats};
use rio_core::{Options, Rio};
use rio_sim::{run_native, CpuKind};
use rio_workloads::{benchmark, compile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = benchmark("crafty").expect("crafty exists");
    let image = compile(&b.source)?;
    let native = run_native(&image, CpuKind::Pentium4);

    // Exact inline counting (block-level instrumentation).
    let mut rio = Rio::new(
        &image,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        InsCount::new(),
    );
    let r = rio.run();
    println!(
        "inscount: {} (simulator says {})",
        rio.client.executed, native.counters.instructions
    );
    assert_eq!(rio.client.executed, native.counters.instructions);

    // Hottest blocks via clean calls.
    let mut rio = Rio::new(
        &image,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        BbProfile::new(5),
    );
    let r2 = rio.run();
    assert_eq!(r2.exit_code, r.exit_code);
    println!("\n{}", r2.client_output.trim());

    // Static opcode histogram.
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, OpStats::new());
    let r3 = rio.run();
    assert_eq!(r3.exit_code, r.exit_code);
    println!("\n{}", r3.client_output.trim());
    Ok(())
}
