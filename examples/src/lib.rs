//! # rio-examples — runnable demonstrations of the RIO public API
//!
//! Run any example with `cargo run --release -p rio-examples --example
//! <name>`:
//!
//! * `quickstart` — compile a tiny program, run it natively and under RIO,
//!   compare results and statistics.
//! * `levels_demo` — Figure 2 of the paper: the same instruction bytes at
//!   all five levels of representation.
//! * `strength_reduce` — the §4.2 client on Pentium 3 vs Pentium 4 models
//!   (architecture-specific optimization decided at runtime).
//! * `adaptive_dispatch` — the §4.3 client rewriting its own traces from a
//!   profiling clean call.
//! * `custom_traces` — the §4.4 client inlining whole procedure calls and
//!   eliding returns.
//! * `instruction_profile` — instrumentation clients: block profiling and
//!   opcode statistics.
