//! # rio-tests — cross-crate integration tests
//!
//! This crate exists for its `tests/` directory: whole-system properties
//! spanning every crate in the workspace.
//!
//! * `suite_equivalence` — every benchmark × every client × every engine
//!   configuration produces exactly the native execution's results.
//! * `properties` — proptest round-trips over the instruction
//!   representation and `InstrList` invariants.
//! * `pipeline` — random expression programs agree three ways: Rust
//!   reference evaluator, native simulation, full RIO stack.
//! * `program_fuzz` — random *structured* programs (loops, switches, calls,
//!   indirect calls) under the combined client and cache-flush churn.
//! * `engine_edges` — rare translation paths: jecxz exits, `ret n`, carry
//!   chains, flag save/restore, deep recursion, one-instruction blocks.
//! * `threads` — cooperative multithreading with thread-private caches.
