//! Property-based tests over the instruction-representation core and the
//! full compile-and-execute pipeline.

use proptest::prelude::*;
use rio_ia32::encode::encode_list;
use rio_ia32::{
    create, decode_instr, decode_sizeof, encode_instr, Cc, InstrList, Level, MemRef, Opnd, OpSize,
    Reg,
};

fn arb_reg32() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::GPR32.to_vec())
}

fn arb_memref() -> impl Strategy<Value = MemRef> {
    (
        prop::option::of(arb_reg32()),
        prop::option::of(arb_reg32().prop_filter("esp cannot index", |r| *r != Reg::Esp)),
        prop::sample::select(vec![1u8, 2, 4, 8]),
        any::<i32>(),
    )
        .prop_map(|(base, index, scale, disp)| MemRef {
            base,
            index,
            // Scale is meaningless without an index; IA-32 cannot encode it.
            scale: if index.is_some() { scale } else { 1 },
            disp,
            size: OpSize::S32,
        })
}

fn arb_rm() -> impl Strategy<Value = Opnd> {
    prop_oneof![
        arb_reg32().prop_map(Opnd::Reg),
        arb_memref().prop_map(Opnd::Mem),
    ]
}

/// A synthesized instruction whose encoding must round-trip.
fn arb_instr() -> impl Strategy<Value = rio_ia32::Instr> {
    prop_oneof![
        // mov r/m <- reg, reg <- r/m, r/m <- imm
        (arb_rm(), arb_reg32()).prop_map(|(d, s)| create::mov(d, Opnd::Reg(s))),
        (arb_reg32(), arb_rm()).prop_map(|(d, s)| create::mov(Opnd::Reg(d), s)),
        (arb_rm(), any::<i32>()).prop_map(|(d, v)| create::mov(d, Opnd::imm32(v))),
        // group-1 arithmetic, all operand shapes
        (arb_rm(), arb_reg32()).prop_map(|(d, s)| create::add(d, Opnd::Reg(s))),
        (arb_reg32(), arb_rm()).prop_map(|(d, s)| create::sub(Opnd::Reg(d), s)),
        (arb_rm(), any::<i32>()).prop_map(|(d, v)| create::and(d, Opnd::imm32(v))),
        (arb_rm(), any::<i32>()).prop_map(|(a, v)| create::cmp(a, Opnd::imm32(v))),
        (arb_rm(), arb_reg32()).prop_map(|(a, b)| create::test(a, Opnd::Reg(b))),
        // inc/dec/neg/not
        arb_rm().prop_map(create::inc),
        arb_rm().prop_map(create::dec),
        arb_rm().prop_map(create::neg),
        arb_rm().prop_map(create::not),
        // shifts
        (arb_rm(), 0u8..32).prop_map(|(d, c)| create::shl(d, Opnd::imm8(c as i8))),
        (arb_reg32(), 0u8..32).prop_map(|(d, c)| create::sar(Opnd::Reg(d), Opnd::imm8(c as i8))),
        // multiplies
        (arb_reg32(), arb_rm()).prop_map(|(d, s)| create::imul(d, s)),
        (arb_reg32(), arb_rm(), any::<i32>())
            .prop_map(|(d, s, v)| create::imul3(d, s, Opnd::imm32(v))),
        arb_rm().prop_map(create::idiv),
        // stack
        arb_reg32().prop_map(|r| create::push(Opnd::Reg(r))),
        arb_reg32().prop_map(|r| create::pop(Opnd::Reg(r))),
        any::<i32>().prop_map(|v| create::push(Opnd::imm32(v))),
        // misc
        (0u8..16, arb_reg32()).prop_map(|(cc, _)| create::setcc(
            Cc::from_code(cc),
            Opnd::reg(Reg::Al)
        )),
        (arb_reg32(), arb_memref()).prop_map(|(d, m)| create::lea(d, m)),
        (0u8..16, arb_reg32(), arb_rm()).prop_map(|(cc, d, s)| create::cmov(
            Cc::from_code(cc),
            d,
            s
        )),
        (arb_rm(), 1u8..32).prop_map(|(d, c)| create::rol(d, Opnd::imm8(c as i8))),
        (arb_rm(), 1u8..32).prop_map(|(d, c)| create::ror(d, Opnd::imm8(c as i8))),
        (arb_rm(), arb_reg32()).prop_map(|(a, b)| create::bt(a, Opnd::Reg(b))),
        arb_reg32().prop_map(create::bswap),
        Just(create::nop()),
        Just(create::cdq()),
        Just(create::ret()),
    ]
}

proptest! {
    /// Synthesized instruction -> encode -> decode yields identical
    /// opcode and operands.
    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let bytes = match encode_instr(&instr, 0x1000, &|_| None) {
            Ok(b) => b,
            // Unencodable operand combinations (e.g. %esp index through
            // arb_memref filtering gaps) are allowed to be rejected, never
            // to panic.
            Err(_) => return Ok(()),
        };
        let (decoded, len) = decode_instr(&bytes, 0x1000).expect("own encodings decode");
        prop_assert_eq!(len as usize, bytes.len());
        prop_assert_eq!(decoded.opcode(), instr.opcode());
        prop_assert_eq!(decoded.srcs(), instr.srcs());
        prop_assert_eq!(decoded.dsts(), instr.dsts());
    }

    /// decode_sizeof always agrees with the full decoder's length.
    #[test]
    fn sizeof_agrees_with_full_decode(bytes in prop::collection::vec(any::<u8>(), 1..16)) {
        let size = decode_sizeof(&bytes);
        let full = decode_instr(&bytes, 0);
        match (size, full) {
            (Ok(n), Ok((_, m))) => prop_assert_eq!(n, m),
            (Err(_), Err(_)) => {}
            (Ok(_), Err(_)) | (Err(_), Ok(_)) => {
                // The strategies must fail identically.
                prop_assert!(false, "sizeof/full decode disagree on {:02x?}", bytes);
            }
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = decode_sizeof(&bytes);
        let _ = decode_instr(&bytes, 0x1234);
    }

    /// Blocks decoded at any level re-encode to semantically identical code:
    /// the re-encoded bytes decode to the same instruction sequence.
    #[test]
    fn block_level_round_trip(instrs in prop::collection::vec(arb_instr(), 1..12)) {
        // Build a block from the synthesized instructions (drop rets to keep
        // it a straight line, then terminate).
        let mut il = InstrList::new();
        for i in instrs {
            if i.opcode() == Some(rio_ia32::Opcode::Ret) {
                continue;
            }
            il.push_back(i);
        }
        il.push_back(create::ret());
        let bytes = match encode_list(&il, 0x40_0000) {
            Ok(e) => e.bytes,
            Err(_) => return Ok(()),
        };
        for level in [Level::L0, Level::L1, Level::L2, Level::L3] {
            let redecoded = InstrList::decode_block(&bytes, 0x40_0000, level)
                .expect("own encodings decode at every level");
            let reencoded = encode_list(&redecoded, 0x40_0000).expect("re-encodes");
            prop_assert_eq!(
                &reencoded.bytes,
                &bytes,
                "level {:?} changed the code",
                level
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// InstrList structural invariants under arbitrary edit sequences.
    #[test]
    fn instr_list_invariants(ops in prop::collection::vec(0u8..5, 1..60)) {
        let mut il = InstrList::new();
        let mut ids: Vec<rio_ia32::InstrId> = Vec::new();
        let mut expected_len = 0usize;
        for op in ops {
            match op {
                0 => {
                    ids.push(il.push_back(create::nop()));
                    expected_len += 1;
                }
                1 => {
                    ids.push(il.push_front(create::inc(Opnd::reg(Reg::Eax))));
                    expected_len += 1;
                }
                2 if !ids.is_empty() => {
                    let id = ids.remove(ids.len() / 2);
                    il.remove(id);
                    expected_len -= 1;
                }
                3 if !ids.is_empty() => {
                    let id = ids[ids.len() / 2];
                    il.replace(id, create::dec(Opnd::reg(Reg::Ebx)));
                }
                4 if !ids.is_empty() => {
                    let at = ids[ids.len() / 2];
                    ids.push(il.insert_after(at, create::nop()));
                    expected_len += 1;
                }
                _ => {}
            }
            prop_assert_eq!(il.len(), expected_len);
            // Forward and backward traversals agree.
            let fwd: Vec<_> = il.ids().collect();
            prop_assert_eq!(fwd.len(), expected_len);
            let mut back = Vec::new();
            let mut cur = il.last_id();
            while let Some(id) = cur {
                back.push(id);
                cur = il.prev_id(id);
            }
            back.reverse();
            prop_assert_eq!(fwd, back);
        }
    }
}
