//! Randomized tests over the instruction-representation core and the
//! full compile-and-execute pipeline (deterministic in-tree RNG).

use rio_ia32::encode::encode_list;
use rio_ia32::{
    create, decode_instr, decode_sizeof, encode_instr, Cc, Instr, InstrList, Level, MemRef, OpSize,
    Opnd, Reg,
};
use rio_tests::Rng;

fn gen_reg32(rng: &mut Rng) -> Reg {
    *rng.pick(&Reg::GPR32)
}

fn gen_memref(rng: &mut Rng) -> MemRef {
    let base = rng.flip().then(|| gen_reg32(rng));
    let index = if rng.flip() {
        // %esp cannot be an index register.
        let r = gen_reg32(rng);
        (r != Reg::Esp).then_some(r)
    } else {
        None
    };
    let scale = *rng.pick(&[1u8, 2, 4, 8]);
    MemRef {
        base,
        index,
        // Scale is meaningless without an index; IA-32 cannot encode it.
        scale: if index.is_some() { scale } else { 1 },
        disp: rng.next_u32() as i32,
        size: OpSize::S32,
    }
}

fn gen_rm(rng: &mut Rng) -> Opnd {
    if rng.flip() {
        Opnd::Reg(gen_reg32(rng))
    } else {
        Opnd::Mem(gen_memref(rng))
    }
}

/// A synthesized instruction whose encoding must round-trip.
fn gen_instr(rng: &mut Rng) -> Instr {
    match rng.below(28) {
        // mov r/m <- reg, reg <- r/m, r/m <- imm
        0 => {
            let d = gen_rm(rng);
            create::mov(d, Opnd::Reg(gen_reg32(rng)))
        }
        1 => {
            let d = gen_reg32(rng);
            let s = gen_rm(rng);
            create::mov(Opnd::Reg(d), s)
        }
        2 => {
            let d = gen_rm(rng);
            let v = rng.next_u32() as i32;
            create::mov(d, Opnd::imm32(v))
        }
        // group-1 arithmetic, all operand shapes
        3 => {
            let d = gen_rm(rng);
            create::add(d, Opnd::Reg(gen_reg32(rng)))
        }
        4 => {
            let d = gen_reg32(rng);
            let s = gen_rm(rng);
            create::sub(Opnd::Reg(d), s)
        }
        5 => {
            let d = gen_rm(rng);
            let v = rng.next_u32() as i32;
            create::and(d, Opnd::imm32(v))
        }
        6 => {
            let a = gen_rm(rng);
            let v = rng.next_u32() as i32;
            create::cmp(a, Opnd::imm32(v))
        }
        7 => {
            let a = gen_rm(rng);
            create::test(a, Opnd::Reg(gen_reg32(rng)))
        }
        // inc/dec/neg/not
        8 => create::inc(gen_rm(rng)),
        9 => create::dec(gen_rm(rng)),
        10 => create::neg(gen_rm(rng)),
        11 => create::not(gen_rm(rng)),
        // shifts
        12 => {
            let d = gen_rm(rng);
            let c = rng.below(32) as i8;
            create::shl(d, Opnd::imm8(c))
        }
        13 => {
            let d = gen_reg32(rng);
            let c = rng.below(32) as i8;
            create::sar(Opnd::Reg(d), Opnd::imm8(c))
        }
        // multiplies
        14 => {
            let d = gen_reg32(rng);
            let s = gen_rm(rng);
            create::imul(d, s)
        }
        15 => {
            let d = gen_reg32(rng);
            let s = gen_rm(rng);
            let v = rng.next_u32() as i32;
            create::imul3(d, s, Opnd::imm32(v))
        }
        16 => create::idiv(gen_rm(rng)),
        // stack
        17 => create::push(Opnd::Reg(gen_reg32(rng))),
        18 => create::pop(Opnd::Reg(gen_reg32(rng))),
        19 => create::push(Opnd::imm32(rng.next_u32() as i32)),
        // misc
        20 => create::setcc(Cc::from_code(rng.below(16) as u8), Opnd::reg(Reg::Al)),
        21 => {
            let d = gen_reg32(rng);
            let m = gen_memref(rng);
            create::lea(d, m)
        }
        22 => {
            let cc = Cc::from_code(rng.below(16) as u8);
            let d = gen_reg32(rng);
            let s = gen_rm(rng);
            create::cmov(cc, d, s)
        }
        23 => {
            let d = gen_rm(rng);
            let c = (rng.below(31) + 1) as i8;
            create::rol(d, Opnd::imm8(c))
        }
        24 => {
            let d = gen_rm(rng);
            let c = (rng.below(31) + 1) as i8;
            create::ror(d, Opnd::imm8(c))
        }
        25 => {
            let a = gen_rm(rng);
            create::bt(a, Opnd::Reg(gen_reg32(rng)))
        }
        26 => create::bswap(gen_reg32(rng)),
        _ => rng
            .pick(&[create::nop(), create::cdq(), create::ret()])
            .clone(),
    }
}

/// Synthesized instruction -> encode -> decode yields identical opcode and
/// operands.
#[test]
fn encode_decode_round_trip() {
    for case in 0..1500u64 {
        let mut rng = Rng::new(0xE_0001 + case);
        let instr = gen_instr(&mut rng);
        let bytes = match encode_instr(&instr, 0x1000, &|_| None) {
            Ok(b) => b,
            // Unencodable operand combinations are allowed to be rejected,
            // never to panic.
            Err(_) => continue,
        };
        let (decoded, len) = decode_instr(&bytes, 0x1000).expect("own encodings decode");
        assert_eq!(len as usize, bytes.len(), "case {case}: {instr:?}");
        assert_eq!(decoded.opcode(), instr.opcode(), "case {case}");
        assert_eq!(decoded.srcs(), instr.srcs(), "case {case}: {instr:?}");
        assert_eq!(decoded.dsts(), instr.dsts(), "case {case}: {instr:?}");
    }
}

/// decode_sizeof always agrees with the full decoder's length.
#[test]
fn sizeof_agrees_with_full_decode() {
    for case in 0..2000u64 {
        let mut rng = Rng::new(0x51_0001 + case);
        let len = 1 + rng.below(15);
        let bytes = rng.bytes(len);
        let size = decode_sizeof(&bytes);
        let full = decode_instr(&bytes, 0);
        match (size, full) {
            (Ok(n), Ok((_, m))) => assert_eq!(n, m, "{bytes:02x?}"),
            (Err(_), Err(_)) => {}
            (Ok(_), Err(_)) | (Err(_), Ok(_)) => {
                panic!("sizeof/full decode disagree on {bytes:02x?}");
            }
        }
    }
}

/// The decoder never panics on arbitrary bytes.
#[test]
fn decoder_is_total() {
    for case in 0..3000u64 {
        let mut rng = Rng::new(0xD0_0001 + case);
        let len = rng.below(32);
        let bytes = rng.bytes(len);
        let _ = decode_sizeof(&bytes);
        let _ = decode_instr(&bytes, 0x1234);
    }
}

/// Blocks decoded at any level re-encode to semantically identical code:
/// the re-encoded bytes decode to the same instruction sequence.
#[test]
fn block_level_round_trip() {
    for case in 0..300u64 {
        let mut rng = Rng::new(0xB10C_0001 + case);
        // Build a block from synthesized instructions (drop rets to keep it
        // a straight line, then terminate).
        let mut il = InstrList::new();
        for _ in 0..1 + rng.below(11) {
            let i = gen_instr(&mut rng);
            if i.opcode() == Some(rio_ia32::Opcode::Ret) {
                continue;
            }
            il.push_back(i);
        }
        il.push_back(create::ret());
        let bytes = match encode_list(&il, 0x40_0000) {
            Ok(e) => e.bytes,
            Err(_) => continue,
        };
        for level in [Level::L0, Level::L1, Level::L2, Level::L3] {
            let redecoded = InstrList::decode_block(&bytes, 0x40_0000, level)
                .expect("own encodings decode at every level");
            let reencoded = encode_list(&redecoded, 0x40_0000).expect("re-encodes");
            assert_eq!(
                &reencoded.bytes, &bytes,
                "case {case}: level {level:?} changed the code"
            );
        }
    }
}

/// InstrList structural invariants under arbitrary edit sequences.
#[test]
fn instr_list_invariants() {
    for case in 0..200u64 {
        let mut rng = Rng::new(0x11_0001 + case);
        let mut il = InstrList::new();
        let mut ids: Vec<rio_ia32::InstrId> = Vec::new();
        let mut expected_len = 0usize;
        for _ in 0..1 + rng.below(59) {
            match rng.below(5) {
                0 => {
                    ids.push(il.push_back(create::nop()));
                    expected_len += 1;
                }
                1 => {
                    ids.push(il.push_front(create::inc(Opnd::reg(Reg::Eax))));
                    expected_len += 1;
                }
                2 if !ids.is_empty() => {
                    let id = ids.remove(ids.len() / 2);
                    il.remove(id);
                    expected_len -= 1;
                }
                3 if !ids.is_empty() => {
                    let id = ids[ids.len() / 2];
                    il.replace(id, create::dec(Opnd::reg(Reg::Ebx)));
                }
                4 if !ids.is_empty() => {
                    let at = ids[ids.len() / 2];
                    ids.push(il.insert_after(at, create::nop()));
                    expected_len += 1;
                }
                _ => {}
            }
            assert_eq!(il.len(), expected_len);
            // Forward and backward traversals agree.
            let fwd: Vec<_> = il.ids().collect();
            assert_eq!(fwd.len(), expected_len);
            let mut back = Vec::new();
            let mut cur = il.last_id();
            while let Some(id) = cur {
                back.push(id);
                cur = il.prev_id(id);
            }
            back.reverse();
            assert_eq!(fwd, back);
        }
    }
}
