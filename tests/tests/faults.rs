//! Fault transparency: guest faults must be observationally identical
//! whether the application runs natively, under pure emulation, or out of
//! the code cache — same handler-observed state, same exit codes, same
//! output — and the engine must never panic, stay resumable after every
//! fault, and self-heal corrupted cache copies.

use rio_core::{
    Client, Core, FaultInjector, FaultKind, InjectionPlan, NullClient, Options, Rio, StepBudget,
    StepOutcome,
};
use rio_ia32::Reg;
use rio_sim::{run_native, run_native_guarded, CpuKind};
use rio_workloads::{compile, faulting};

/// A small fault-free loop the injection tests perturb.
const LOOP_SOURCE: &str = "fn main() {
    var i = 0;
    var s = 0;
    while (i < 4000) { s = s + i * 3 % 97; i++; }
    return s % 100;
}";

/// Registers compared at each fault event. `%ecx` is included: the faulting
/// instructions in these workloads sit outside mangled indirect-branch
/// regions, so the application's `%ecx` must be live in the register in
/// every mode.
const OBSERVED: [Reg; 7] = [
    Reg::Eax,
    Reg::Ebx,
    Reg::Ecx,
    Reg::Edx,
    Reg::Esi,
    Reg::Edi,
    Reg::Ebp,
];

/// Records the application-visible fault state at every `fault_event`.
struct FaultTrace {
    events: Vec<(FaultKind, Option<u32>, [u32; 7])>,
}

impl FaultTrace {
    fn new() -> FaultTrace {
        FaultTrace { events: Vec::new() }
    }
}

impl Client for FaultTrace {
    fn fault_event(
        &mut self,
        core: &mut Core,
        kind: FaultKind,
        _cache_eip: u32,
        app_pc: Option<u32>,
    ) {
        let mut regs = [0u32; 7];
        for (slot, r) in regs.iter_mut().zip(OBSERVED) {
            *slot = core.machine.cpu.reg(r);
        }
        self.events.push((kind, app_pc, regs));
    }
}

/// Drive a session to completion with a fixed step budget, collecting any
/// terminal faults (the session stays resumable, so a fault does not end
/// the drive until `max_faults` have been seen).
fn drive<C: Client>(
    rio: &mut Rio<C>,
    budget: u64,
    max_faults: usize,
) -> (i32, String, Vec<rio_core::Fault>) {
    let mut faults = Vec::new();
    loop {
        match rio.step(StepBudget::instructions(budget)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => {
                return (code, rio.result_snapshot(code).app_output, faults)
            }
            StepOutcome::Faulted(f) => {
                let code = f.exit_code();
                faults.push(f);
                if faults.len() >= max_faults {
                    return (code, rio.result_snapshot(code).app_output, faults);
                }
            }
        }
    }
}

#[test]
fn handler_observes_identical_state_in_emulation_and_cache() {
    // Differential check: the (kind, translated app pc, registers) sequence
    // seen at fault delivery must be identical under pure emulation and
    // under the code cache — the cache's spills, mangling, and trace
    // inlining must be invisible to the handler.
    let image = compile(&faulting::div_recover()).unwrap();
    let native = run_native(&image, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 0);

    let mut emu = Rio::new(
        &image,
        Options::emulation(),
        CpuKind::Pentium4,
        FaultTrace::new(),
    );
    let re = emu.run();
    let mut cache = Rio::new(
        &image,
        Options::full(),
        CpuKind::Pentium4,
        FaultTrace::new(),
    );
    let rc = cache.run();

    assert_eq!(re.exit_code, 0);
    assert_eq!(rc.exit_code, 0);
    assert_eq!(re.app_output, native.output);
    assert_eq!(rc.app_output, native.output);
    assert_eq!(
        emu.client.events.len(),
        faulting::DIV_RECOVER_FAULTS as usize
    );
    assert_eq!(emu.client.events, cache.client.events);
    // Every event carries a translated application pc.
    assert!(emu.client.events.iter().all(|(_, pc, _)| pc.is_some()));
}

#[test]
fn fault_delivery_works_under_single_instruction_budgets() {
    // Suspend the session after every simulated instruction: faults must
    // still translate and deliver correctly mid-step, and the final state
    // must match an uninterrupted native run.
    let image = compile(&faulting::div_recover()).unwrap();
    let native = run_native(&image, CpuKind::Pentium4);
    for opts in [Options::emulation(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        let (code, output, faults) = drive(&mut rio, 1, 1);
        assert!(faults.is_empty(), "unexpected terminal fault: {faults:?}");
        assert_eq!(code, native.exit_code);
        assert_eq!(output, native.output);
        assert_eq!(
            rio.core.stats.faults_delivered,
            faulting::DIV_RECOVER_FAULTS as u64
        );
    }
}

#[test]
fn handler_delivery_survives_a_pending_cache_flush() {
    // Request a whole-cache flush while deliveries are in flight: the flush
    // drains at the next dispatch (which the delivery itself routes
    // through), and the run must still complete native-identically.
    let image = compile(&faulting::div_recover()).unwrap();
    let native = run_native(&image, CpuKind::Pentium4);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let mut requested = false;
    let (code, output) = loop {
        match rio.step(StepBudget::instructions(200)) {
            StepOutcome::Running(_) => {
                if !requested && rio.core.stats.faults_delivered >= 3 {
                    rio.core.request_cache_flush();
                    requested = true;
                }
            }
            StepOutcome::Exited(code) => break (code, rio.result_snapshot(code).app_output),
            StepOutcome::Faulted(f) => panic!("unexpected terminal fault: {}", f.message),
        }
    };
    assert!(requested, "run finished before any fault was delivered");
    assert_eq!(code, native.exit_code);
    assert_eq!(output, native.output);
    assert!(rio.core.stats.cache_flushes >= 1);
    assert_eq!(
        rio.core.stats.faults_delivered,
        faulting::DIV_RECOVER_FAULTS as u64
    );
}

#[test]
fn injected_faults_are_terminal_but_resumable_for_every_kind_and_mode() {
    // Inject each architectural fault kind mid-run with no handler
    // registered: the engine must surface a clean `Faulted` outcome (never
    // panic), and the *same session* must be resumable afterwards — the
    // injection is one-shot, so the retried instruction completes and the
    // run finishes native-identically.
    let image = compile(LOOP_SOURCE).unwrap();
    let native = run_native(&image, CpuKind::Pentium4);
    for kind in [
        FaultKind::DivideError,
        FaultKind::InvalidOpcode,
        FaultKind::MemFault,
    ] {
        for opts in [Options::emulation(), Options::full()] {
            let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
            let mut injector = FaultInjector::new(InjectionPlan::AtInstruction { at: 400, kind });
            let mut fault = None;
            let (code, output) = loop {
                injector.poll(&mut rio);
                match rio.step(StepBudget::instructions(200)) {
                    StepOutcome::Running(_) => {}
                    StepOutcome::Exited(code) => {
                        break (code, rio.result_snapshot(code).app_output)
                    }
                    StepOutcome::Faulted(f) => {
                        assert!(fault.is_none(), "fault reported twice: {}", f.message);
                        fault = Some(f);
                        // Resume the same session past the one-shot fault.
                    }
                }
            };
            let f = fault.expect("injected fault was never raised");
            assert_eq!(f.kind, Some(kind), "{}", f.message);
            assert_eq!(f.exit_code(), 128 + kind.code() as i32);
            assert!(f.message.contains("unhandled"), "{}", f.message);
            assert_eq!(code, native.exit_code, "kind {kind:?} opts {opts:?}");
            assert_eq!(output, native.output, "kind {kind:?} opts {opts:?}");
        }
    }
}

#[test]
fn corrupted_cache_copies_self_heal_to_native_output() {
    // Overwrite every warm fragment with undecodable bytes: execution hits
    // invalid-opcode faults inside the cache, repeatedly-faulting fragments
    // are evicted and their blocks quarantined through one emulated pass,
    // and the rebuilt cache finishes the run native-identically.
    let image = compile(LOOP_SOURCE).unwrap();
    let native = run_native(&image, CpuKind::Pentium4);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let mut injector = FaultInjector::new(InjectionPlan::CorruptAll { min_frags: 4 });
    let mut faults = Vec::new();
    let (code, output) = loop {
        injector.poll(&mut rio);
        match rio.step(StepBudget::instructions(200)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => break (code, rio.result_snapshot(code).app_output),
            StepOutcome::Faulted(f) => {
                faults.push(f);
                assert!(faults.len() < 64, "fault storm: engine is not healing");
            }
        }
    };
    assert!(injector.applied(), "cache never warmed up");
    assert!(!faults.is_empty(), "corruption raised no faults");
    for f in &faults {
        assert_eq!(f.kind, Some(FaultKind::InvalidOpcode), "{}", f.message);
        assert!(f.app_pc.is_some(), "untranslated fault: {}", f.message);
    }
    assert_eq!(code, native.exit_code);
    assert_eq!(output, native.output);
    assert!(rio.core.stats.fault_evictions >= 1);
}

#[test]
fn unhandled_faults_exit_with_128_plus_kind_in_every_mode() {
    // Division by zero with no handler: exit 129 natively, under emulation,
    // and under the cache.
    let image = compile(&faulting::div_unhandled()).unwrap();
    assert_eq!(run_native(&image, CpuKind::Pentium4).exit_code, 129);
    for opts in [Options::emulation(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        let (code, _, faults) = drive(&mut rio, 500, 1);
        assert_eq!(code, 129);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, Some(FaultKind::DivideError));
    }

    // Wild load into a guarded region: exit 131 everywhere.
    let image = compile(&faulting::wild_unhandled()).unwrap();
    let native = run_native_guarded(&image, CpuKind::Pentium4, faulting::guard_regions());
    assert_eq!(native.exit_code, 131);
    for opts in [Options::emulation(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        rio.core
            .machine
            .set_guard_regions(faulting::guard_regions());
        let (code, _, faults) = drive(&mut rio, 500, 1);
        assert_eq!(code, 131);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, Some(FaultKind::MemFault));
        // The report names both coordinate systems.
        assert!(
            faults[0].message.contains("app pc"),
            "{}",
            faults[0].message
        );
    }
}

#[test]
fn recovered_wild_load_is_equivalent_across_modes() {
    // A handler recovering from a guarded load: output and exit must match
    // the guarded native run in both engine modes.
    let image = compile(&faulting::wild_load()).unwrap();
    let native = run_native_guarded(&image, CpuKind::Pentium4, faulting::guard_regions());
    assert_eq!(native.exit_code, 0);
    for opts in [Options::emulation(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        rio.core
            .machine
            .set_guard_regions(faulting::guard_regions());
        let (code, output, faults) = drive(&mut rio, 200, 1);
        assert!(faults.is_empty(), "unexpected terminal fault: {faults:?}");
        assert_eq!(code, 0);
        assert_eq!(output, native.output);
        assert_eq!(rio.core.stats.faults_delivered, 1);
    }
}
