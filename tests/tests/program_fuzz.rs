//! Structured program fuzzing: randomly generated Dyna programs (loops,
//! branches, switches, calls, arrays, indirect calls) must behave
//! identically natively and under the engine with the full optimization
//! stack — the strongest whole-system property we can check.

use proptest::prelude::*;
use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

/// A bounded random statement tree, rendered to Dyna source. Variables are
/// drawn from a fixed pool (`v0..v3` locals, `g0..g1` globals, array `arr`);
/// all loops are bounded counters, and division is never generated, so every
/// program terminates without traps.
#[derive(Clone, Debug)]
enum S {
    Assign(u8, E),
    Bump(u8, bool),
    Store(E, E),
    Loop(u8, Vec<S>),
    If(E, Vec<S>, Vec<S>),
    Switch(E, Vec<Vec<S>>),
    CallHelper(E),
    Print(E),
}

#[derive(Clone, Debug)]
enum E {
    K(i32),
    V(u8),
    G(u8),
    Load(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Mask(Box<E>),
    Cmp(Box<E>, Box<E>),
    Helper(Box<E>),
    IHelper(Box<E>),
}

impl E {
    fn src(&self) -> String {
        match self {
            E::K(k) => format!("({k})"),
            E::V(i) => format!("v{}", i % 4),
            E::G(i) => format!("g{}", i % 2),
            E::Load(i) => format!("arr[({}) & 31]", i.src()),
            E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
            E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
            E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
            E::Mask(a) => format!("({} & 65535)", a.src()),
            E::Cmp(a, b) => format!("({} < {})", a.src(), b.src()),
            E::Helper(a) => format!("helper({})", a.src()),
            E::IHelper(a) => format!("icall(hptr, {})", a.src()),
        }
    }
}

impl S {
    fn src(&self, out: &mut String, depth: usize) {
        let pad = "    ".repeat(depth + 1);
        match self {
            S::Assign(v, e) => out.push_str(&format!("{pad}v{} = {};\n", v % 4, e.src())),
            S::Bump(v, up) => {
                out.push_str(&format!("{pad}v{}{};\n", v % 4, if *up { "++" } else { "--" }))
            }
            S::Store(i, e) => {
                out.push_str(&format!("{pad}arr[({}) & 31] = {};\n", i.src(), e.src()))
            }
            S::Loop(n, body) => {
                let var = format!("l{depth}");
                out.push_str(&format!("{pad}var {var} = 0;\n"));
                out.push_str(&format!("{pad}while ({var} < {}) {{\n", n % 6 + 1));
                for s in body {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}    {var}++;\n{pad}}}\n"));
            }
            S::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.src()));
                for s in t {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Switch(e, cases) => {
                out.push_str(&format!("{pad}switch (({}) & 3) {{\n", e.src()));
                for (k, body) in cases.iter().enumerate() {
                    out.push_str(&format!("{pad}    case {k} {{\n"));
                    for s in body {
                        s.src(out, depth + 2);
                    }
                    out.push_str(&format!("{pad}    }}\n"));
                }
                out.push_str(&format!("{pad}    default {{ g0 = g0 + 1; }}\n{pad}}}\n"));
            }
            S::CallHelper(e) => out.push_str(&format!("{pad}g1 = helper({});\n", e.src())),
            S::Print(e) => out.push_str(&format!("{pad}print({} & 4095);\n", e.src())),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i32..50).prop_map(E::K),
        (0u8..4).prop_map(E::V),
        (0u8..2).prop_map(E::G),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| E::Mul(Box::new(E::Mask(Box::new(a))), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Cmp(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Load(Box::new(a))),
            inner.clone().prop_map(|a| E::Helper(Box::new(a))),
            inner.clone().prop_map(|a| E::IHelper(Box::new(a))),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<S> {
    let simple = prop_oneof![
        (0u8..4, arb_expr()).prop_map(|(v, e)| S::Assign(v, e)),
        (0u8..4, any::<bool>()).prop_map(|(v, up)| S::Bump(v, up)),
        (arb_expr(), arb_expr()).prop_map(|(i, e)| S::Store(i, e)),
        arb_expr().prop_map(S::CallHelper),
        arb_expr().prop_map(S::Print),
    ];
    if depth == 0 {
        simple.boxed()
    } else {
        let body = prop::collection::vec(arb_stmt(depth - 1), 1..4);
        prop_oneof![
            4 => simple,
            1 => (0u8..6, body.clone()).prop_map(|(n, b)| S::Loop(n, b)),
            1 => (arb_expr(), body.clone(), body.clone()).prop_map(|(c, t, e)| S::If(c, t, e)),
            1 => (arb_expr(), prop::collection::vec(body, 4..5))
                .prop_map(|(e, cases)| S::Switch(e, cases)),
        ]
        .boxed()
    }
}

fn render(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.src(&mut body, 0);
    }
    format!(
        "global g0 = 3; global g1 = 5; global arr[32]; global hptr = 0;
         fn helper(x) {{ return (x & 16383) * 3 - g0; }}
         fn main() {{
             hptr = &helper;
             var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4;
             var seed = 0;
             var i = 0;
             while (i < 32) {{ arr[i] = i * 7 - 20; i++; }}
{body}
             var chk = (v0 ^ v1) + (v2 ^ v3) + g0 + g1;
             i = 0;
             while (i < 32) {{ chk = chk + arr[i]; i++; }}
             print(chk & 1048575);
             return chk % 251;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_programs_behave_identically_under_the_full_stack(
        stmts in prop::collection::vec(arb_stmt(2), 2..8)
    ) {
        let src = render(&stmts);
        let image = compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        let native = run_native(&image, CpuKind::Pentium4);
        for client in [ClientKind::Null, ClientKind::Combined] {
            let r = run_config(&image, Options::full(), CpuKind::Pentium4, client);
            prop_assert_eq!(r.exit_code, native.exit_code, "{:?}\n{}", client, src);
            prop_assert_eq!(&r.output, &native.output, "{:?}\n{}", client, src);
        }
        // And under a tiny cache (flush churn).
        let mut opts = Options::full();
        opts.cache_limit = Some(2048);
        let r = run_config(&image, opts, CpuKind::Pentium4, ClientKind::Combined);
        prop_assert_eq!(r.exit_code, native.exit_code, "flushing\n{}", src);
        prop_assert_eq!(&r.output, &native.output, "flushing\n{}", src);
    }
}
