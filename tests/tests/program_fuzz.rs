//! Structured program fuzzing: randomly generated Dyna programs (loops,
//! branches, switches, calls, arrays, indirect calls, guarded and
//! unguarded division, self-modifying patches, recursion) must behave
//! identically natively and under the engine with the full optimization
//! stack — the strongest whole-system property we can check.
//!
//! The generator itself lives in [`rio_fuzz::gen`] (shared with the
//! `rio fuzz` campaign); this test drives it through the bench harness the
//! way the original in-tree generator was, including tiny-cache flush
//! churn, as a fast complement to the full-matrix `fuzz_conformance`
//! tests.

use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_fuzz::Program;
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

#[test]
fn random_programs_behave_identically_under_the_full_stack() {
    for case in 0..40u64 {
        let program = Program::generate(0xF022_0001 + case);
        let src = program.source();
        let image = compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        let native = run_native(&image, CpuKind::Pentium4);
        for client in [ClientKind::Null, ClientKind::Combined] {
            let r = run_config(&image, Options::full(), CpuKind::Pentium4, client);
            assert_eq!(
                r.exit_code, native.exit_code,
                "case {case} {client:?}\n{src}"
            );
            assert_eq!(&r.output, &native.output, "case {case} {client:?}\n{src}");
        }
        // And under a tiny cache (flush churn).
        let mut opts = Options::full();
        opts.cache_limit = Some(2048);
        let r = run_config(&image, opts, CpuKind::Pentium4, ClientKind::Combined);
        assert_eq!(r.exit_code, native.exit_code, "case {case} flushing\n{src}");
        assert_eq!(&r.output, &native.output, "case {case} flushing\n{src}");
    }
}

#[test]
fn fault_and_smc_constructs_reach_the_engine() {
    // The promoted generator must actually exercise the transparency
    // machinery: across a seed range, some programs take recoverable
    // faults (the `fcnt` line is printed by every program; nonzero means
    // the in-program handler ran) and some patch code at run time.
    let mut faulted = 0usize;
    let mut patched = 0usize;
    for case in 0..200u64 {
        if faulted > 0 && patched > 0 {
            break;
        }
        let program = Program::generate(0xF022_0001 + case);
        let src = program.source();
        if src.contains("poke(pp") {
            patched += 1;
        }
        let image = compile(&src).expect("compile");
        let native = run_native(&image, CpuKind::Pentium4);
        // Output ends with: chk, fcnt, facc (three final prints).
        let lines: Vec<&str> = native.output.lines().collect();
        let fcnt: i64 = lines[lines.len() - 2].parse().expect("fcnt line");
        if fcnt > 0 {
            faulted += 1;
        }
    }
    assert!(faulted > 0, "no generated program took a recoverable fault");
    assert!(patched > 0, "no generated program patched code");
}
