//! Structured program fuzzing: randomly generated Dyna programs (loops,
//! branches, switches, calls, arrays, indirect calls) must behave
//! identically natively and under the engine with the full optimization
//! stack — the strongest whole-system property we can check.

use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_tests::Rng;
use rio_workloads::compile;

/// A bounded random statement tree, rendered to Dyna source. Variables are
/// drawn from a fixed pool (`v0..v3` locals, `g0..g1` globals, array `arr`);
/// all loops are bounded counters, and division is never generated, so every
/// program terminates without traps.
#[derive(Clone, Debug)]
enum S {
    Assign(u8, E),
    Bump(u8, bool),
    Store(E, E),
    Loop(u8, Vec<S>),
    If(E, Vec<S>, Vec<S>),
    Switch(E, Vec<Vec<S>>),
    CallHelper(E),
    Print(E),
}

#[derive(Clone, Debug)]
enum E {
    K(i32),
    V(u8),
    G(u8),
    Load(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Mask(Box<E>),
    Cmp(Box<E>, Box<E>),
    Helper(Box<E>),
    IHelper(Box<E>),
}

impl E {
    fn src(&self) -> String {
        match self {
            E::K(k) => format!("({k})"),
            E::V(i) => format!("v{}", i % 4),
            E::G(i) => format!("g{}", i % 2),
            E::Load(i) => format!("arr[({}) & 31]", i.src()),
            E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
            E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
            E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
            E::Mask(a) => format!("({} & 65535)", a.src()),
            E::Cmp(a, b) => format!("({} < {})", a.src(), b.src()),
            E::Helper(a) => format!("helper({})", a.src()),
            E::IHelper(a) => format!("icall(hptr, {})", a.src()),
        }
    }
}

impl S {
    fn src(&self, out: &mut String, depth: usize) {
        let pad = "    ".repeat(depth + 1);
        match self {
            S::Assign(v, e) => out.push_str(&format!("{pad}v{} = {};\n", v % 4, e.src())),
            S::Bump(v, up) => out.push_str(&format!(
                "{pad}v{}{};\n",
                v % 4,
                if *up { "++" } else { "--" }
            )),
            S::Store(i, e) => {
                out.push_str(&format!("{pad}arr[({}) & 31] = {};\n", i.src(), e.src()))
            }
            S::Loop(n, body) => {
                let var = format!("l{depth}");
                out.push_str(&format!("{pad}var {var} = 0;\n"));
                out.push_str(&format!("{pad}while ({var} < {}) {{\n", n % 6 + 1));
                for s in body {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}    {var}++;\n{pad}}}\n"));
            }
            S::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.src()));
                for s in t {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    s.src(out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Switch(e, cases) => {
                out.push_str(&format!("{pad}switch (({}) & 3) {{\n", e.src()));
                for (k, body) in cases.iter().enumerate() {
                    out.push_str(&format!("{pad}    case {k} {{\n"));
                    for s in body {
                        s.src(out, depth + 2);
                    }
                    out.push_str(&format!("{pad}    }}\n"));
                }
                out.push_str(&format!("{pad}    default {{ g0 = g0 + 1; }}\n{pad}}}\n"));
            }
            S::CallHelper(e) => out.push_str(&format!("{pad}g1 = helper({});\n", e.src())),
            S::Print(e) => out.push_str(&format!("{pad}print({} & 4095);\n", e.src())),
        }
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.chance(1, 3) {
        return match rng.below(3) {
            0 => E::K(rng.range_i32(-50, 50)),
            1 => E::V(rng.below(4) as u8),
            _ => E::G(rng.below(2) as u8),
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_expr(rng, depth - 1));
    match rng.below(7) {
        0 => {
            let a = sub(rng);
            let b = sub(rng);
            E::Add(a, b)
        }
        1 => {
            let a = sub(rng);
            let b = sub(rng);
            E::Sub(a, b)
        }
        2 => {
            // Mask the left factor to keep products from overflowing too wildly
            // (matches the original generator's shape).
            let a = sub(rng);
            let b = sub(rng);
            E::Mul(Box::new(E::Mask(a)), b)
        }
        3 => {
            let a = sub(rng);
            let b = sub(rng);
            E::Cmp(a, b)
        }
        4 => E::Load(sub(rng)),
        5 => E::Helper(sub(rng)),
        _ => E::IHelper(sub(rng)),
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> S {
    let simple = |rng: &mut Rng| match rng.below(5) {
        0 => S::Assign(rng.below(4) as u8, gen_expr(rng, 3)),
        1 => S::Bump(rng.below(4) as u8, rng.flip()),
        2 => {
            let i = gen_expr(rng, 2);
            let e = gen_expr(rng, 3);
            S::Store(i, e)
        }
        3 => S::CallHelper(gen_expr(rng, 3)),
        _ => S::Print(gen_expr(rng, 3)),
    };
    if depth == 0 {
        return simple(rng);
    }
    // 4:1:1:1 weighting of simple vs compound statements.
    match rng.below(7) {
        0..=3 => simple(rng),
        4 => {
            let n = rng.below(6) as u8;
            let body = gen_body(rng, depth - 1);
            S::Loop(n, body)
        }
        5 => {
            let c = gen_expr(rng, 2);
            let t = gen_body(rng, depth - 1);
            let e = gen_body(rng, depth - 1);
            S::If(c, t, e)
        }
        _ => {
            let e = gen_expr(rng, 2);
            let cases = (0..4).map(|_| gen_body(rng, depth - 1)).collect();
            S::Switch(e, cases)
        }
    }
}

fn gen_body(rng: &mut Rng, depth: u32) -> Vec<S> {
    (0..1 + rng.below(3))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

fn render(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.src(&mut body, 0);
    }
    format!(
        "global g0 = 3; global g1 = 5; global arr[32]; global hptr = 0;
         fn helper(x) {{ return (x & 16383) * 3 - g0; }}
         fn main() {{
             hptr = &helper;
             var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4;
             var seed = 0;
             var i = 0;
             while (i < 32) {{ arr[i] = i * 7 - 20; i++; }}
{body}
             var chk = (v0 ^ v1) + (v2 ^ v3) + g0 + g1;
             i = 0;
             while (i < 32) {{ chk = chk + arr[i]; i++; }}
             print(chk & 1048575);
             return chk % 251;
         }}"
    )
}

#[test]
fn random_programs_behave_identically_under_the_full_stack() {
    for case in 0..40u64 {
        let mut rng = Rng::new(0xF022_0001 + case);
        let stmts: Vec<S> = (0..2 + rng.below(6))
            .map(|_| gen_stmt(&mut rng, 2))
            .collect();
        let src = render(&stmts);
        let image = compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        let native = run_native(&image, CpuKind::Pentium4);
        for client in [ClientKind::Null, ClientKind::Combined] {
            let r = run_config(&image, Options::full(), CpuKind::Pentium4, client);
            assert_eq!(
                r.exit_code, native.exit_code,
                "case {case} {client:?}\n{src}"
            );
            assert_eq!(&r.output, &native.output, "case {case} {client:?}\n{src}");
        }
        // And under a tiny cache (flush churn).
        let mut opts = Options::full();
        opts.cache_limit = Some(2048);
        let r = run_config(&image, opts, CpuKind::Pentium4, ClientKind::Combined);
        assert_eq!(r.exit_code, native.exit_code, "case {case} flushing\n{src}");
        assert_eq!(&r.output, &native.output, "case {case} flushing\n{src}");
    }
}
