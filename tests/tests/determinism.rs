//! Determinism regression tests: the whole stack — simulator, engine,
//! stepper, parallel runner — must be bit-reproducible. Running the same
//! benchmark twice, running it in budget-sized steps, or distributing the
//! suite over any number of worker threads must yield identical
//! [`Counters`](rio_sim::perf::Counters) and [`Stats`](rio_core::Stats).

use rio_bench::{run_config, run_parallel, ClientKind};
use rio_core::{NullClient, Options, Rio, StepBudget, StepOutcome};
use rio_sim::CpuKind;
use rio_workloads::{compiled, suite_scaled};

#[test]
fn repeated_runs_are_bit_identical() {
    for b in suite_scaled(2).iter().take(4) {
        let image = compiled(b);
        let first = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();
        let second = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();
        assert_eq!(first.exit_code, second.exit_code, "{}", b.name);
        assert_eq!(first.counters, second.counters, "{}", b.name);
        assert_eq!(first.stats, second.stats, "{}", b.name);
        assert_eq!(first.app_output, second.app_output, "{}", b.name);
    }
}

#[test]
fn stepped_runs_match_uninterrupted_runs() {
    for b in suite_scaled(2).iter().take(4) {
        let image = compiled(b);
        let uninterrupted = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();

        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
        let mut suspensions = 0u64;
        let stepped = loop {
            match rio.step(StepBudget::instructions(777)) {
                StepOutcome::Running(_) => suspensions += 1,
                StepOutcome::Exited(code) => break rio.result_snapshot(code),
                StepOutcome::Faulted(f) => panic!("{} faulted: {}", b.name, f.message),
            }
        };
        assert!(suspensions > 0, "{} never suspended", b.name);
        assert_eq!(stepped.exit_code, uninterrupted.exit_code, "{}", b.name);
        assert_eq!(stepped.counters, uninterrupted.counters, "{}", b.name);
        assert_eq!(stepped.stats, uninterrupted.stats, "{}", b.name);
        assert_eq!(stepped.app_output, uninterrupted.app_output, "{}", b.name);
    }
}

#[test]
fn parallel_runner_is_job_count_invariant() {
    let benches: Vec<_> = suite_scaled(2)
        .into_iter()
        .take(6)
        .map(|b| {
            let image = compiled(&b);
            (b, image)
        })
        .collect();
    let run = |jobs: usize| {
        run_parallel(&benches, jobs, |_, (_, image)| {
            let r = run_config(
                image,
                Options::full(),
                CpuKind::Pentium4,
                ClientKind::Combined,
            );
            (r.cycles, r.instructions, r.exit_code, r.stats)
        })
    };
    let serial = run(1);
    for jobs in [2, 4] {
        assert_eq!(run(jobs), serial, "jobs={jobs} changed suite results");
    }
}

#[test]
fn bounded_cache_fifo_eviction_is_job_count_invariant() {
    // A tiny cache limit forces FIFO evictions throughout every benchmark;
    // the eviction order (and hence rebuild counts, counters, and stats)
    // must be identical however the suite is distributed over workers.
    let benches: Vec<_> = suite_scaled(2)
        .into_iter()
        .take(4)
        .map(|b| {
            let image = compiled(&b);
            (b, image)
        })
        .collect();
    let mut opts = Options::full();
    opts.cache_limit = Some(4096);
    let run = |jobs: usize| {
        run_parallel(&benches, jobs, |_, (_, image)| {
            let r = run_config(image, opts, CpuKind::Pentium4, ClientKind::Combined);
            (r.cycles, r.instructions, r.exit_code, r.stats)
        })
    };
    let serial = run(1);
    assert!(
        serial.iter().any(|(_, _, _, s)| s.evictions > 0),
        "limit never forced an eviction"
    );
    assert!(serial.iter().all(|(_, _, _, s)| s.cache_flushes == 0));
    for jobs in [2, 4] {
        assert_eq!(run(jobs), serial, "jobs={jobs} changed eviction behavior");
    }
}
