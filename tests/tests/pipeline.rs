//! End-to-end pipeline properties: random Dyna programs evaluated three
//! ways — a Rust-side reference evaluator, the native simulator, and the
//! full RIO engine with all optimizations — must agree exactly.

use proptest::prelude::*;
use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

/// A random arithmetic expression over variables `a`, `b`, `c` that avoids
/// division (no trap risk) and is cheap to evaluate in Rust.
#[derive(Clone, Debug)]
enum E {
    A,
    B,
    C,
    K(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>),
    Lt(Box<E>, Box<E>),
}

impl E {
    fn eval(&self, a: i32, b: i32, c: i32) -> i32 {
        match self {
            E::A => a,
            E::B => b,
            E::C => c,
            E::K(k) => *k,
            E::Add(x, y) => x.eval(a, b, c).wrapping_add(y.eval(a, b, c)),
            E::Sub(x, y) => x.eval(a, b, c).wrapping_sub(y.eval(a, b, c)),
            E::Mul(x, y) => x.eval(a, b, c).wrapping_mul(y.eval(a, b, c)),
            E::And(x, y) => x.eval(a, b, c) & y.eval(a, b, c),
            E::Xor(x, y) => x.eval(a, b, c) ^ y.eval(a, b, c),
            E::Shl(x) => x.eval(a, b, c).wrapping_shl(3),
            E::Lt(x, y) => (x.eval(a, b, c) < y.eval(a, b, c)) as i32,
        }
    }

    fn to_src(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::K(k) => {
                if *k < 0 {
                    format!("(0 - {})", (*k as i64).unsigned_abs().min(i32::MAX as u64))
                } else {
                    format!("{k}")
                }
            }
            E::Add(x, y) => format!("({} + {})", x.to_src(), y.to_src()),
            E::Sub(x, y) => format!("({} - {})", x.to_src(), y.to_src()),
            E::Mul(x, y) => format!("({} * {})", x.to_src(), y.to_src()),
            E::And(x, y) => format!("({} & {})", x.to_src(), y.to_src()),
            E::Xor(x, y) => format!("({} ^ {})", x.to_src(), y.to_src()),
            E::Shl(x) => format!("({} << 3)", x.to_src()),
            E::Lt(x, y) => format!("({} < {})", x.to_src(), y.to_src()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::C),
        (-1000i32..1000).prop_map(E::K),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Xor(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| E::Shl(Box::new(x))),
            (inner.clone(), inner).prop_map(|(x, y)| E::Lt(Box::new(x), Box::new(y))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reference evaluator == native simulation == full RIO with the
    /// combined client, for a loop accumulating a random expression.
    #[test]
    fn random_programs_agree_three_ways(
        e in arb_expr(),
        a0 in -100i32..100,
        b0 in -100i32..100,
        iters in 5i32..60,
    ) {
        // Reference result in Rust (wrapping semantics).
        let mut acc = 0i32;
        let mut c = 0i32;
        while c < iters {
            acc = acc.wrapping_add(e.eval(a0, b0, c)) & 0x0FFF_FFFF;
            c += 1;
        }
        let expected = acc.rem_euclid(251);

        let src = format!(
            "fn main() {{
                 var a = {a0};
                 var b = {b0};
                 var acc = 0;
                 var c = 0;
                 while (c < {iters}) {{
                     acc = (acc + {expr}) & 268435455;
                     c++;
                 }}
                 var m = acc % 251;
                 if (m < 0) {{ m = m + 251; }}
                 print(m);
                 return m;
             }}",
            expr = e.to_src()
        );
        let image = compile(&src).expect("random program compiles");

        let native = run_native(&image, CpuKind::Pentium4);
        prop_assert_eq!(native.exit_code, expected, "native vs reference");

        let r = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Combined);
        prop_assert_eq!(r.exit_code, expected, "RIO vs reference");
        prop_assert_eq!(r.output, native.output);
    }

    /// Final architectural register state matches between native and cached
    /// execution (beyond just exit codes).
    #[test]
    fn final_machine_state_matches(seed in 0u32..2000) {
        let src = format!(
            "fn mix(x) {{ return (x * 1103515 + {seed}) & 2147483647; }}
             fn main() {{
                 var s = {seed};
                 var i = 0;
                 while (i < 40) {{ s = mix(s) % 65536 + i; i++; }}
                 return s % 251;
             }}"
        );
        let image = compile(&src).expect("compiles");
        let native = run_native(&image, CpuKind::Pentium4);
        let r = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
        prop_assert_eq!(r.exit_code, native.exit_code);
    }
}
