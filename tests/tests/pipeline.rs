//! End-to-end pipeline properties: random Dyna programs evaluated three
//! ways — a Rust-side reference evaluator, the native simulator, and the
//! full RIO engine with all optimizations — must agree exactly.

use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_tests::Rng;
use rio_workloads::compile;

/// A random arithmetic expression over variables `a`, `b`, `c` that avoids
/// division (no trap risk) and is cheap to evaluate in Rust.
#[derive(Clone, Debug)]
enum E {
    A,
    B,
    C,
    K(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>),
    Lt(Box<E>, Box<E>),
}

impl E {
    fn eval(&self, a: i32, b: i32, c: i32) -> i32 {
        match self {
            E::A => a,
            E::B => b,
            E::C => c,
            E::K(k) => *k,
            E::Add(x, y) => x.eval(a, b, c).wrapping_add(y.eval(a, b, c)),
            E::Sub(x, y) => x.eval(a, b, c).wrapping_sub(y.eval(a, b, c)),
            E::Mul(x, y) => x.eval(a, b, c).wrapping_mul(y.eval(a, b, c)),
            E::And(x, y) => x.eval(a, b, c) & y.eval(a, b, c),
            E::Xor(x, y) => x.eval(a, b, c) ^ y.eval(a, b, c),
            E::Shl(x) => x.eval(a, b, c).wrapping_shl(3),
            E::Lt(x, y) => (x.eval(a, b, c) < y.eval(a, b, c)) as i32,
        }
    }

    fn to_src(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::K(k) => {
                if *k < 0 {
                    format!("(0 - {})", (*k as i64).unsigned_abs().min(i32::MAX as u64))
                } else {
                    format!("{k}")
                }
            }
            E::Add(x, y) => format!("({} + {})", x.to_src(), y.to_src()),
            E::Sub(x, y) => format!("({} - {})", x.to_src(), y.to_src()),
            E::Mul(x, y) => format!("({} * {})", x.to_src(), y.to_src()),
            E::And(x, y) => format!("({} & {})", x.to_src(), y.to_src()),
            E::Xor(x, y) => format!("({} ^ {})", x.to_src(), y.to_src()),
            E::Shl(x) => format!("({} << 3)", x.to_src()),
            E::Lt(x, y) => format!("({} < {})", x.to_src(), y.to_src()),
        }
    }
}

/// Generate a random expression with bounded depth.
fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.chance(1, 4) {
        return match rng.below(4) {
            0 => E::A,
            1 => E::B,
            2 => E::C,
            _ => E::K(rng.range_i32(-1000, 1000)),
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_expr(rng, depth - 1));
    match rng.below(7) {
        0 => {
            let x = sub(rng);
            let y = sub(rng);
            E::Add(x, y)
        }
        1 => {
            let x = sub(rng);
            let y = sub(rng);
            E::Sub(x, y)
        }
        2 => {
            let x = sub(rng);
            let y = sub(rng);
            E::Mul(x, y)
        }
        3 => {
            let x = sub(rng);
            let y = sub(rng);
            E::And(x, y)
        }
        4 => {
            let x = sub(rng);
            let y = sub(rng);
            E::Xor(x, y)
        }
        5 => E::Shl(sub(rng)),
        _ => {
            let x = sub(rng);
            let y = sub(rng);
            E::Lt(x, y)
        }
    }
}

/// Reference evaluator == native simulation == full RIO with the combined
/// client, for a loop accumulating a random expression.
#[test]
fn random_programs_agree_three_ways() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x9_1000 + case);
        let e = gen_expr(&mut rng, 4);
        let a0 = rng.range_i32(-100, 100);
        let b0 = rng.range_i32(-100, 100);
        let iters = rng.range_i32(5, 60);

        // Reference result in Rust (wrapping semantics).
        let mut acc = 0i32;
        let mut c = 0i32;
        while c < iters {
            acc = acc.wrapping_add(e.eval(a0, b0, c)) & 0x0FFF_FFFF;
            c += 1;
        }
        let expected = acc.rem_euclid(251);

        let src = format!(
            "fn main() {{
                 var a = {a0};
                 var b = {b0};
                 var acc = 0;
                 var c = 0;
                 while (c < {iters}) {{
                     acc = (acc + {expr}) & 268435455;
                     c++;
                 }}
                 var m = acc % 251;
                 if (m < 0) {{ m = m + 251; }}
                 print(m);
                 return m;
             }}",
            expr = e.to_src()
        );
        let image = compile(&src).expect("random program compiles");

        let native = run_native(&image, CpuKind::Pentium4);
        assert_eq!(
            native.exit_code, expected,
            "case {case}: native vs reference\n{src}"
        );

        let r = run_config(
            &image,
            Options::full(),
            CpuKind::Pentium4,
            ClientKind::Combined,
        );
        assert_eq!(
            r.exit_code, expected,
            "case {case}: RIO vs reference\n{src}"
        );
        assert_eq!(r.output, native.output, "case {case}");
    }
}

/// Final architectural register state matches between native and cached
/// execution (beyond just exit codes).
#[test]
fn final_machine_state_matches() {
    for case in 0..32u64 {
        let mut rng = Rng::new(0xF1_2000 + case);
        let seed = rng.range_i32(0, 2000);
        let src = format!(
            "fn mix(x) {{ return (x * 1103515 + {seed}) & 2147483647; }}
             fn main() {{
                 var s = {seed};
                 var i = 0;
                 while (i < 40) {{ s = mix(s) % 65536 + i; i++; }}
                 return s % 251;
             }}"
        );
        let image = compile(&src).expect("compiles");
        let native = run_native(&image, CpuKind::Pentium4);
        let r = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
        assert_eq!(r.exit_code, native.exit_code, "seed {seed}");
    }
}
