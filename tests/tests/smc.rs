//! Cache-consistency tests: self-modifying code must be observationally
//! identical whether the application runs natively, under pure emulation,
//! or out of the code cache. Every guest store into application code must
//! surface as a code-write event, invalidate exactly the overlapping
//! fragments, and never let a stale copy execute — proven by the decode
//! verifier's stale-hit counter staying at zero.

use rio_core::{Client, Core, NullClient, Options, Rio, StepBudget, StepOutcome};
use rio_sim::{run_native, CpuKind};
use rio_workloads::{compile, smc};

/// Records every `fragment_deleted` callback.
#[derive(Default)]
struct DeletionWatcher {
    deleted_tags: Vec<u32>,
}

impl Client for DeletionWatcher {
    fn fragment_deleted(&mut self, _core: &mut Core, tag: u32) {
        self.deleted_tags.push(tag);
    }
}

#[test]
fn smc_workloads_are_equivalent_in_every_mode() {
    for (name, src) in [
        ("self_write", smc::self_write()),
        ("patch_loop", smc::patch_loop()),
        ("write_then_icall", smc::write_then_icall()),
    ] {
        let image = compile(&src).unwrap();
        let native = run_native(&image, CpuKind::Pentium4);
        assert_eq!(native.exit_code, 0, "{name}");

        for (mode, opts) in [
            ("emulate", Options::emulation()),
            ("cache", Options::full()),
        ] {
            let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
            // Verification mode: every decode-cache hit is compared against
            // the live bytes; a nonzero counter means stale code executed.
            rio.core.machine.set_verify_decodes(true);
            let r = rio.run();
            assert_eq!(r.exit_code, native.exit_code, "{name} {mode}");
            assert_eq!(r.app_output, native.output, "{name} {mode}");
            assert_eq!(
                rio.core.machine.stale_decode_hits(),
                0,
                "{name} {mode}: stale decode executed"
            );
            if mode == "cache" {
                assert!(r.stats.code_writes > 0, "{name}: no code write observed");
                assert!(r.stats.invalidations > 0, "{name}: nothing invalidated");
            } else {
                assert_eq!(
                    r.stats.code_writes, 0,
                    "{name}: watches active in emulation"
                );
            }
        }
    }
}

#[test]
fn self_store_invalidated_fragment_makes_forward_progress() {
    // The `self_write` store overwrites the writer's *own* basic block, so
    // the engine invalidates the fragment it is currently executing. The
    // commit-then-exit semantics guarantee forward progress (no livelock):
    // the resume point is past the store, in a fresh rebuild.
    let image = compile(&smc::self_write()).unwrap();
    let mut rio = Rio::new(
        &image,
        Options::full(),
        CpuKind::Pentium4,
        DeletionWatcher::default(),
    );
    rio.core.machine.set_verify_decodes(true);
    let r = rio.run();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.app_output, format!("{}\n", smc::SELF_WRITE_SUM));
    assert_eq!(r.stats.code_writes, 1);
    assert_eq!(r.stats.invalidations, 1);
    assert_eq!(rio.core.machine.stale_decode_hits(), 0);
    assert!(
        !rio.client.deleted_tags.is_empty(),
        "invalidation must fire fragment_deleted"
    );
}

#[test]
fn patched_function_returns_fresh_values_through_repeated_invalidation() {
    let image = compile(&smc::patch_loop()).unwrap();
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    rio.core.machine.set_verify_decodes(true);
    let r = rio.run();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.app_output, format!("{}\n", smc::PATCH_LOOP_SUM));
    // Two stores per iteration; only the first still overlaps a live
    // fragment (the second lands in the already-invalidated span).
    assert_eq!(r.stats.code_writes, 32);
    assert!(r.stats.invalidations >= 16, "{}", r.stats);
    assert_eq!(rio.core.machine.stale_decode_hits(), 0);
}

#[test]
fn stepped_smc_runs_match_uninterrupted_runs() {
    // Suspending mid-run (including between a code write and its rebuild)
    // must be invisible: counters, stats, and output bit-identical.
    for src in [smc::patch_loop(), smc::write_then_icall()] {
        let image = compile(&src).unwrap();
        let uninterrupted = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
        let stepped = loop {
            match rio.step(StepBudget::instructions(97)) {
                StepOutcome::Running(_) => {}
                StepOutcome::Exited(code) => break rio.result_snapshot(code),
                StepOutcome::Faulted(f) => panic!("fault: {}", f.message),
            }
        };
        assert_eq!(stepped.exit_code, uninterrupted.exit_code);
        assert_eq!(stepped.counters, uninterrupted.counters);
        assert_eq!(stepped.stats, uninterrupted.stats);
        assert_eq!(stepped.app_output, uninterrupted.app_output);
    }
}

#[test]
fn tiny_cache_limit_output_is_byte_identical_to_unlimited() {
    // Differential: a bounded cache evicting FIFO on nearly every dispatch
    // must still produce byte-identical application output — capacity
    // management is pure policy, never semantics. SMC workloads make the
    // sharpest probe: an evicted-then-rebuilt fragment must pick up the
    // *current* application bytes.
    for (name, src) in [
        ("patch_loop", smc::patch_loop()),
        ("write_then_icall", smc::write_then_icall()),
    ] {
        let image = compile(&src).unwrap();
        let unlimited = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();
        let mut opts = Options::full();
        opts.cache_limit = Some(64);
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        rio.core.machine.set_verify_decodes(true);
        let bounded = rio.run();
        assert_eq!(bounded.exit_code, unlimited.exit_code, "{name}");
        assert_eq!(bounded.app_output, unlimited.app_output, "{name}");
        assert!(bounded.stats.evictions > 0, "{name}: {}", bounded.stats);
        // Capacity pressure evicts per-fragment; whole-sub-cache flushes
        // only happen on explicit request.
        assert_eq!(bounded.stats.cache_flushes, 0, "{name}");
        assert_eq!(rio.core.machine.stale_decode_hits(), 0, "{name}");
    }
}
