//! The differential fuzzing harness, end to end.
//!
//! * Generated programs pass the whole 12-point configuration matrix
//!   (native vs emulation/cache/traces/bounded/stepped/verified, each ×
//!   null/combined clients) — the same oracle `rio fuzz` runs.
//! * The shrinker demonstrably works: a known divergence (a fault injected
//!   into the engine run only, recovered by the program's own handler, so
//!   the printed fault count differs from native) is minimized to a
//!   strictly smaller program that still reproduces it.
//! * Every persisted corpus entry in `tests/corpus/` replays green.

use std::path::Path;

use rio_core::{
    FaultInjector, FaultKind, InjectionPlan, NullClient, Options, Rio, StepBudget, StepOutcome,
};
use rio_fuzz::{check_image, load_dir, render, replay_entry, shrink_program, Program, E, S};
use rio_sim::{run_native, CpuKind, Image};
use rio_workloads::compile;

#[test]
fn generated_programs_pass_the_configuration_matrix() {
    for case in 0..12u64 {
        let p = Program::generate(0x00C0_FFEE + case);
        let src = p.source();
        let image = compile(&src)
            .unwrap_or_else(|e| panic!("seed {:#x} failed to compile: {e}\n{src}", p.seed));
        let summary = check_image(&image, CpuKind::Pentium4)
            .unwrap_or_else(|m| panic!("seed {:#x} diverged: {m}\n{src}", p.seed));
        assert_eq!(summary.configs, 12, "matrix shrank");
    }
}

/// Run under the full engine configuration with a one-shot divide fault
/// injected once the cumulative instruction count reaches `at`. The
/// generated preamble registers a handler, so the fault is recovered
/// in-program and the run completes — with a different `fcnt` line than
/// the (injection-free) native run.
fn run_with_injected_fault(image: &Image, at: u64) -> (i32, String) {
    let mut rio = Rio::new(image, Options::full(), CpuKind::Pentium4, NullClient);
    let mut injector = FaultInjector::new(InjectionPlan::AtInstruction {
        at,
        kind: FaultKind::DivideError,
    });
    loop {
        injector.poll(&mut rio);
        match rio.step(StepBudget::instructions(200)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => return (code, rio.result_snapshot(code).app_output),
            StepOutcome::Faulted(f) => {
                panic!(
                    "injected fault escaped the program's handler: {}",
                    f.message
                )
            }
        }
    }
}

#[test]
fn shrinker_minimizes_an_injected_divergence() {
    // Place the injection past the generated preamble/postamble, so only
    // programs that do real work in the body can reproduce the divergence
    // (an empty body never reaches the trigger).
    let empty = compile(&render(&[])).expect("empty program");
    let baseline = run_native(&empty, CpuKind::Pentium4).counters.instructions;
    let at = baseline + 50;

    let original = vec![
        S::Assign(0, E::K(7)),
        S::Loop(
            4,
            vec![S::Loop(4, vec![S::Bump(1, true), S::CallHelper(E::V(0))])],
        ),
        S::Print(E::Mask(Box::new(E::V(1)))),
        S::Store(E::K(3), E::K(9)),
    ];

    let mut still_fails = |stmts: &[S]| {
        let Ok(image) = compile(&render(stmts)) else {
            return false;
        };
        let native = run_native(&image, CpuKind::Pentium4);
        if native.counters.instructions < at {
            // The trigger sits inside the body's work; a program too short
            // to reach it natively does not count as the same finding.
            return false;
        }
        let (code, output) = run_with_injected_fault(&image, at);
        code != native.exit_code || output != native.output
    };

    assert!(
        still_fails(&original),
        "injected fault did not cause a divergence"
    );
    let minimized = shrink_program(&original, &mut still_fails);
    let size = |stmts: &[S]| stmts.iter().map(S::nodes).sum::<usize>();
    assert!(
        size(&minimized) < size(&original),
        "shrinker failed to reduce: {} -> {} nodes",
        size(&original),
        size(&minimized)
    );
    assert!(
        still_fails(&minimized),
        "minimized program no longer reproduces the divergence"
    );
    // The empty body can't reproduce, so something must survive.
    assert!(!minimized.is_empty(), "shrank past the failure");
}

#[test]
fn every_corpus_entry_replays_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let entries = load_dir(&dir).expect("load corpus");
    assert!(
        !entries.is_empty(),
        "tests/corpus/ is empty — the seeded regression entries are missing"
    );
    for (path, entry) in &entries {
        let name = path.file_name().unwrap().to_string_lossy();
        let line = replay_entry(&name, entry, CpuKind::Pentium4)
            .unwrap_or_else(|e| panic!("corpus regression: {e}"));
        assert!(line.starts_with("ok "), "unexpected replay line: {line}");
    }
}
