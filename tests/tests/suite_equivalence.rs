//! The correctness capstone: every benchmark in the suite, executed under
//! every client and every engine configuration, must produce *exactly* the
//! exit code and output of native execution.

use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_workloads::{suite_scaled, Benchmark};

fn check(b: &Benchmark, options: Options, client: ClientKind) {
    let image = rio_workloads::compile(&b.source)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
    let native = run_native(&image, CpuKind::Pentium4);
    let r = run_config(&image, options, CpuKind::Pentium4, client);
    assert_eq!(
        r.exit_code, native.exit_code,
        "{} exit code diverged under {client:?} / {options:?}",
        b.name
    );
    assert_eq!(
        r.output, native.output,
        "{} output diverged under {client:?} / {options:?}",
        b.name
    );
}

#[test]
fn all_benchmarks_match_native_under_every_client() {
    for b in suite_scaled(1) {
        for client in ClientKind::FIGURE5 {
            check(&b, Options::full(), client);
        }
    }
}

#[test]
fn all_benchmarks_match_native_under_every_engine_configuration() {
    for b in suite_scaled(1) {
        for options in [
            Options::cache_only(),
            Options::with_direct_links(),
            Options::with_indirect_links(),
            Options::full(),
        ] {
            check(&b, options, ClientKind::Null);
        }
    }
}

#[test]
fn emulation_matches_native_on_representative_benchmarks() {
    // Emulation is slow on the host too; spot-check the Table 1 pair.
    for name in ["crafty", "vpr"] {
        let b = rio_workloads::benchmark(name).unwrap();
        let small = rio_workloads::suite_scaled(1)
            .into_iter()
            .find(|x| x.name == b.name)
            .unwrap();
        check(&small, Options::emulation(), ClientKind::Null);
    }
}

#[test]
fn trace_threshold_extremes_preserve_correctness() {
    for b in suite_scaled(1).into_iter().take(4) {
        for threshold in [1, 2, 1_000_000] {
            let mut opts = Options::full();
            opts.trace_threshold = threshold;
            check(&b, opts, ClientKind::Combined);
        }
    }
}

#[test]
fn tiny_trace_capacity_preserves_correctness() {
    for b in suite_scaled(1).into_iter().take(4) {
        let mut opts = Options::full();
        opts.max_trace_bbs = 2;
        check(&b, opts, ClientKind::Combined);
    }
}

#[test]
fn pentium3_model_preserves_correctness() {
    for b in suite_scaled(1).into_iter().take(6) {
        let image = rio_workloads::compile(&b.source).unwrap();
        let native = run_native(&image, CpuKind::Pentium3);
        let r = run_config(
            &image,
            Options::full(),
            CpuKind::Pentium3,
            ClientKind::Combined,
        );
        assert_eq!(r.exit_code, native.exit_code, "{}", b.name);
        assert_eq!(r.output, native.output, "{}", b.name);
    }
}
