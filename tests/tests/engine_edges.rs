//! Engine edge cases: unusual application code shapes that exercise rarely
//! taken translation paths (jecxz exits, `ret n`, 8-bit/carry arithmetic,
//! flag save/restore, deep recursion, tiny block splits).

use rio_core::{NullClient, Options, Rio};
use rio_ia32::encode::encode_list;
use rio_ia32::{create, Cc, InstrList, MemRef, OpSize, Opnd, Reg, Target};
use rio_sim::{run_native, CpuKind, Image};

fn image(build: impl FnOnce(&mut InstrList)) -> Image {
    let mut il = InstrList::new();
    build(&mut il);
    Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
}

fn exit_with(il: &mut InstrList, reg: Reg) {
    if reg != Reg::Ebx {
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(reg)));
    }
    il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
    il.push_back(create::int(0x80));
}

fn assert_equivalent(img: &Image) {
    let native = run_native(img, CpuKind::Pentium4);
    for opts in [Options::cache_only(), Options::full()] {
        let mut rio = Rio::new(img, opts, CpuKind::Pentium4, NullClient);
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code, "opts {opts:?}");
        assert_eq!(r.app_output, native.output, "opts {opts:?}");
    }
}

#[test]
fn jecxz_terminated_blocks_translate_via_trampolines() {
    // Application code whose loop exit is a jecxz — the exit cannot encode
    // a rel32 target, so emission must route it through a trampoline.
    let img = image(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::imm32(500)));
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(3)));
        il.push_back(create::dec(Opnd::reg(Reg::Ecx)));
        let out = il.push_back(create::jecxz(Target::Pc(0)));
        let mut back = create::jmp(Target::Pc(0));
        back.set_target(Target::Instr(top));
        il.push_back(back);
        let done = il.push_back(create::label());
        il.get_mut(out).set_target(Target::Instr(done));
        exit_with(il, Reg::Edi);
    });
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 1500);
    assert_equivalent(&img);
}

#[test]
fn ret_n_calling_convention() {
    // Callee pops its own argument with `ret 4` (stdcall-style).
    let img = image(|il| {
        il.push_back(create::push(Opnd::imm32(20)));
        let c = il.push_back(create::call(Target::Pc(0)));
        // No caller cleanup: ret 4 already popped the arg.
        exit_with(il, Reg::Eax);
        let f = il.push_back(create::label());
        il.push_back(create::mov(
            Opnd::reg(Reg::Eax),
            Opnd::Mem(MemRef::base_disp(Reg::Esp, 4, OpSize::S32)),
        ));
        il.push_back(create::imul3(Reg::Eax, Opnd::reg(Reg::Eax), Opnd::imm32(2)));
        il.push_back(create::ret_imm(4));
        il.get_mut(c).set_target(Target::Instr(f));
    });
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 40);
    assert_equivalent(&img);
}

#[test]
fn carry_chains_and_eight_bit_arithmetic_survive_translation() {
    let img = image(|il| {
        // 64-bit-ish addition via adc, then 8-bit register juggling.
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(-1)));
        il.push_back(create::mov(Opnd::reg(Reg::Edx), Opnd::imm32(0)));
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(1))); // CF=1
        il.push_back(create::adc(Opnd::reg(Reg::Edx), Opnd::imm32(0))); // edx=1
        il.push_back(create::mov(Opnd::reg(Reg::Cl), Opnd::imm8(200u8 as i8)));
        il.push_back(create::add(Opnd::reg(Reg::Cl), Opnd::imm8(100))); // 8-bit wrap
        il.push_back(create::movzx(Reg::Esi, Opnd::reg(Reg::Cl)));
        // ebx = edx*1000 + cl
        il.push_back(create::imul3(
            Reg::Ebx,
            Opnd::reg(Reg::Edx),
            Opnd::imm32(1000),
        ));
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Esi)));
        exit_with(il, Reg::Ebx);
    });
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 1000 + ((200 + 100) & 0xFF));
    assert_equivalent(&img);
}

#[test]
fn pushfd_popfd_lahf_sahf_through_the_cache() {
    let img = image(|il| {
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Eax))); // ZF=1
        il.push_back(create::pushfd());
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::imm32(1))); // ZF=0
        il.push_back(create::popfd()); // ZF back to 1
        il.push_back(create::setcc(Cc::Z, Opnd::reg(Reg::Cl)));
        il.push_back(create::lahf());
        il.push_back(create::movzx(Reg::Edx, Opnd::reg(Reg::Ah)));
        il.push_back(create::movzx(Reg::Ebx, Opnd::reg(Reg::Cl)));
        exit_with(il, Reg::Ebx);
    });
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 1);
    assert_equivalent(&img);
}

#[test]
fn deep_recursion_under_translation() {
    let img = rio_workloads::compile(
        "fn ack_ish(n, acc) {
             if (n == 0) { return acc; }
             return ack_ish(n - 1, acc + n);
         }
         fn main() { return ack_ish(800, 0) % 251; }",
    )
    .unwrap();
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(native.exit_code, (800 * 801 / 2) % 251);
    assert_equivalent(&img);
}

#[test]
fn tiny_block_splits_are_correct() {
    // Force one-instruction blocks: every block gets a synthetic
    // fall-through exit, stressing the split path.
    let img = rio_workloads::compile(
        "fn main() {
             var s = 0;
             var i = 0;
             while (i < 300) { s = s + i * 2 + 1; i++; }
             return s % 251;
         }",
    )
    .unwrap();
    let native = run_native(&img, CpuKind::Pentium4);
    for max in [1usize, 2, 3] {
        let mut opts = Options::full();
        opts.max_bb_instrs = max;
        let mut rio = Rio::new(&img, opts, CpuKind::Pentium4, NullClient);
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code, "max_bb_instrs {max}");
    }
}

#[test]
fn new_isa_instructions_translate_correctly() {
    let img = image(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0x0102_0304)));
        il.push_back(create::bswap(Reg::Eax));
        il.push_back(create::rol(Opnd::reg(Reg::Eax), Opnd::imm8(8)));
        il.push_back(create::bt(Opnd::reg(Reg::Eax), Opnd::imm8(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(111)));
        il.push_back(create::cmov(Cc::B, Reg::Ecx, Opnd::reg(Reg::Ebx))); // CF from bt
        il.push_back(create::xchg(Opnd::reg(Reg::Ecx), Opnd::reg(Reg::Edi)));
        exit_with(il, Reg::Edi);
    });
    let native = run_native(&img, CpuKind::Pentium4);
    // bswap(0x01020304)=0x04030201, rol 8 -> 0x03020104, bit1 = 0 -> cmov not taken
    assert_eq!(native.exit_code, 0);
    assert_equivalent(&img);
}

#[test]
fn indirect_jump_with_changing_targets_in_traces() {
    // A jump table whose hot target changes midway through the run: traces
    // built for the first phase must keep working via their miss paths.
    let img = rio_workloads::compile(
        "global acc = 0;
         fn main() {
             var i = 0;
             while (i < 4000) {
                 var phase = i / 2000;       // 0 then 1
                 switch ((i % 4) + phase * 4) {
                     case 0 { acc = acc + 1; }
                     case 1 { acc = acc + 2; }
                     case 2 { acc = acc + 3; }
                     case 3 { acc = acc + 4; }
                     case 4 { acc = acc + 10; }
                     case 5 { acc = acc + 20; }
                     case 6 { acc = acc + 30; }
                     case 7 { acc = acc + 40; }
                 }
                 i++;
             }
             print(acc);
             return acc % 251;
         }",
    )
    .unwrap();
    assert_equivalent(&img);
}
