//! Multi-threaded applications: thread-private code caches (paper §2),
//! per-thread hooks, and native/RIO equivalence under cooperative threads.

use rio_core::{Client, Core, NullClient, Options, Rio};
use rio_ia32::InstrList;
use rio_sim::{run_native, CpuKind};
use rio_workloads::compile;

/// Two workers and the main thread cooperatively appending to the output.
const THREADED_SRC: &str = "
    global done = 0;
    fn worker_a() {
        var i = 0;
        while (i < 5) { printc(65); yield(); i++; }
        done = done + 1;
        texit();
        return 0;
    }
    fn worker_b() {
        var i = 0;
        while (i < 5) { printc(66); yield(); i++; }
        done = done + 1;
        texit();
        return 0;
    }
    fn main() {
        var ta = spawn(&worker_a);
        var tb = spawn(&worker_b);
        var i = 0;
        while (i < 5) { printc(77); yield(); i++; }
        while (done < 2) { yield(); }
        print(ta * 10 + tb);
        return done;
    }
";

#[test]
fn threads_run_identically_native_and_under_rio() {
    let image = compile(THREADED_SRC).expect("compiles");
    let native = run_native(&image, CpuKind::Pentium4);
    assert_eq!(native.exit_code, 2);
    // Interleaving: main prints M, then A, then B, round robin.
    assert!(native.output.starts_with("MABMAB"), "{:?}", native.output);
    assert!(native.output.contains("12\n")); // spawn returned tids 1 and 2

    for opts in [Options::with_indirect_links(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(r.app_output, native.output, "interleaving must match");
        assert_eq!(r.stats.threads_spawned, 2);
    }
}

#[test]
fn caches_are_thread_private() {
    // Both workers execute the same shared helper: each thread's private
    // cache builds its own copy (the paper's measured trade-off: duplicate
    // shared code instead of synchronizing).
    let src = "
        global sum = 0;
        fn bump(x) { return x * 3 + 1; }
        fn worker() {
            var i = 0;
            while (i < 30) { sum = sum + bump(i); yield(); i++; }
            texit();
            return 0;
        }
        fn main() {
            spawn(&worker);
            spawn(&worker);
            var i = 0;
            while (i < 30) { sum = sum + bump(i); yield(); i++; }
            var spin = 0;
            while (spin < 200) { yield(); spin++; }
            print(sum);
            return sum % 251;
        }
    ";
    let image = compile(src).expect("compiles");
    let native = run_native(&image, CpuKind::Pentium4);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    assert_eq!(r.app_output, native.output);
    assert_eq!(rio.core.thread_count(), 3);
    // Each private cache holds fragments; `bump`'s blocks were built at
    // least once per thread that ran them.
    let per_thread: Vec<usize> = (0..3).map(|t| rio.core.thread_cache(t).len()).collect();
    assert!(per_thread.iter().all(|n| *n > 0), "{per_thread:?}");
    let total: usize = per_thread.iter().sum();
    let single_thread_blocks = {
        let mut solo = Rio::new(
            &compile(
                "fn bump(x) { return x * 3 + 1; }
                      fn main() { var i = 0; var s = 0;
                                  while (i < 30) { s = s + bump(i); i++; } return s % 251; }",
            )
            .unwrap(),
            Options::full(),
            CpuKind::Pentium4,
            NullClient,
        );
        solo.run();
        solo.core.cache().len()
    };
    assert!(
        total > single_thread_blocks,
        "shared code should be duplicated per thread: {total} vs {single_thread_blocks}"
    );
}

#[test]
fn thread_hooks_fire_per_thread() {
    #[derive(Default)]
    struct Hooks {
        inits: u32,
        exits: u32,
    }
    impl Client for Hooks {
        fn thread_init(&mut self, _core: &mut Core) {
            self.inits += 1;
        }
        fn thread_exit(&mut self, _core: &mut Core) {
            self.exits += 1;
        }
        fn basic_block(&mut self, _c: &mut Core, _t: u32, _bb: &mut InstrList) {}
    }
    let image = compile(THREADED_SRC).expect("compiles");
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, Hooks::default());
    let r = rio.run();
    assert_eq!(r.exit_code, 2);
    assert_eq!(rio.client.inits, 3, "main + two spawned threads");
    assert_eq!(rio.client.exits, 3);
}

#[test]
fn spawn_failure_after_thread_limit() {
    // Spawning more than the supported thread count returns id 0.
    let src = "
        fn w() { texit(); return 0; }
        fn main() {
            var fails = 0;
            var i = 0;
            while (i < 12) {
                if (spawn(&w) == 0) { fails++; }
                i++;
            }
            var spin = 0;
            while (spin < 40) { yield(); spin++; }
            return fails;
        }
    ";
    let image = compile(src).expect("compiles");
    let native = run_native(&image, CpuKind::Pentium4);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    // 12 spawns, 7 slots beyond main under RIO's 8-thread cache partition.
    assert_eq!(r.exit_code, 5);
}
