//! Program images and the simulated address-space layout.
//!
//! An [`Image`] is the "unmodified native binary" the framework operates on:
//! code bytes at a fixed base, optional initialized data segments, and an
//! entry point. The layout constants partition the 32-bit address space
//! between the application and the RIO runtime, mirroring how DynamoRIO
//! shares one address space with the application.

use crate::mem::Memory;

/// A loadable program: code, initialized data, entry point.
///
/// # Examples
///
/// ```
/// use rio_sim::Image;
/// let img = Image::from_code(vec![0xf4]); // hlt
/// assert_eq!(img.entry, Image::CODE_BASE);
/// assert_eq!(img.code_range(), (Image::CODE_BASE, Image::CODE_BASE + 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Image {
    /// Machine code placed at [`Image::CODE_BASE`].
    pub code: Vec<u8>,
    /// Initialized data segments as `(address, bytes)` pairs.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Entry point address.
    pub entry: u32,
}

impl Image {
    /// Base address of application code (like a typical Linux executable).
    pub const CODE_BASE: u32 = 0x0040_0000;
    /// Base address of application static data / heap.
    pub const DATA_BASE: u32 = 0x0800_0000;
    /// Initial stack pointer (stack grows down).
    pub const STACK_TOP: u32 = 0x7000_0000;
    /// Base of the RIO-owned code cache region.
    pub const CACHE_BASE: u32 = 0xC000_0000;
    /// End of the RIO-owned code cache region (exclusive).
    pub const CACHE_END: u32 = 0xD000_0000;
    /// RIO-owned data (spill slots, hashtables) region base.
    pub const RIO_DATA_BASE: u32 = 0xE000_0000;
    /// Base of RIO runtime-routine sentinel addresses. Control arriving at
    /// any address at or above this value is a transfer into the RIO runtime
    /// (dispatch, indirect-branch lookup, ...), never real code.
    pub const RIO_RUNTIME_BASE: u32 = 0xF000_0000;

    /// An image whose code is `code` with entry at its start and no data.
    pub fn from_code(code: Vec<u8>) -> Image {
        Image {
            code,
            data: Vec::new(),
            entry: Image::CODE_BASE,
        }
    }

    /// The `[start, end)` address range occupied by the code.
    pub fn code_range(&self) -> (u32, u32) {
        (Image::CODE_BASE, Image::CODE_BASE + self.code.len() as u32)
    }

    /// Load the image into memory (code + data segments).
    pub fn load(&self, mem: &mut Memory) {
        mem.write_bytes(Image::CODE_BASE, &self.code);
        for (addr, bytes) in &self.data {
            mem.write_bytes(*addr, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_places_code_and_data() {
        let img = Image {
            code: vec![1, 2, 3],
            data: vec![(Image::DATA_BASE, vec![9, 8])],
            entry: Image::CODE_BASE,
        };
        let mut mem = Memory::new();
        img.load(&mut mem);
        assert_eq!(mem.read_u8(Image::CODE_BASE + 2), 3);
        assert_eq!(mem.read_u8(Image::DATA_BASE + 1), 8);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn layout_regions_are_disjoint_and_ordered() {
        assert!(Image::CODE_BASE < Image::DATA_BASE);
        assert!(Image::DATA_BASE < Image::STACK_TOP);
        assert!(Image::STACK_TOP < Image::CACHE_BASE);
        assert!(Image::CACHE_END <= Image::RIO_DATA_BASE);
        assert!(Image::RIO_DATA_BASE < Image::RIO_RUNTIME_BASE);
    }
}
