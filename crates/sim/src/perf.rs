//! Cycle cost model: per-opcode costs, branch predictors, counters.
//!
//! The model is deliberately simple — a handful of parameters — but captures
//! every effect the paper's evaluation depends on:
//!
//! * **Indirect branches** predict through a BTB (last-target). Returns
//!   executed as real `ret` instructions additionally consult a return
//!   address stack, which translated code cannot use ("to do so would
//!   require storing code cache addresses on the stack, violating
//!   transparency" — §5).
//! * **Conditional branches** predict through a table of 2-bit counters.
//! * **`inc`/`dec`** carry a flags-merge penalty on the Pentium 4 model but
//!   not the Pentium 3 — the architecture-specific asymmetry exploited by
//!   the strength-reduction client (§4.2).

use std::fmt;

use rio_ia32::Opcode;

/// Processor family reported to clients (paper: `proc_get_family`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// Pentium III model: cheap `inc`, smaller mispredict penalty.
    Pentium3,
    /// Pentium 4 model: `inc`/`dec` flags-merge penalty, deep pipeline.
    Pentium4,
}

/// Tunable cost parameters (cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Base cost of a simple ALU instruction.
    pub base: u64,
    /// Additional cost of a memory load operand.
    pub load: u64,
    /// Additional cost of a memory store operand.
    pub store: u64,
    /// Cost of `inc`/`dec` (replaces `base`).
    pub inc_dec: u64,
    /// Cost of a 32-bit multiply (replaces `base`).
    pub mul: u64,
    /// Cost of a 32-bit divide (replaces `base`).
    pub div: u64,
    /// Cost of `pushfd`/`popfd`/`lahf`/`sahf` flag shuffles.
    pub flags_save: u64,
    /// Fetch-bubble cost of any taken branch.
    pub taken_branch: u64,
    /// Branch misprediction penalty.
    pub mispredict: u64,
}

impl CostParams {
    /// Parameters for the Pentium 4 model.
    pub fn pentium4() -> CostParams {
        CostParams {
            base: 1,
            load: 3,
            store: 2,
            inc_dec: 4,
            mul: 10,
            div: 40,
            flags_save: 6,
            taken_branch: 1,
            mispredict: 20,
        }
    }

    /// Parameters for the Pentium III model (shallower pipeline, no
    /// flags-merge penalty on `inc`).
    pub fn pentium3() -> CostParams {
        CostParams {
            base: 1,
            load: 2,
            store: 2,
            inc_dec: 1,
            mul: 5,
            div: 30,
            flags_save: 4,
            taken_branch: 1,
            mispredict: 10,
        }
    }
}

/// Execution statistics accumulated by a [`Machine`](crate::Machine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions executed.
    pub instructions: u64,
    /// Total cycles (instruction costs + penalties + charged overhead).
    pub cycles: u64,
    /// Cycles charged by the runtime (dispatch, lookups, optimization time)
    /// rather than by executed instructions; included in `cycles`.
    pub charged_overhead: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-branch (incl. return) mispredictions.
    pub ind_mispredicts: u64,
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
}

impl Counters {
    /// Difference `self - start` (for measuring a run segment).
    pub fn since(&self, start: &Counters) -> Counters {
        Counters {
            instructions: self.instructions - start.instructions,
            cycles: self.cycles - start.cycles,
            charged_overhead: self.charged_overhead - start.charged_overhead,
            taken_branches: self.taken_branches - start.taken_branches,
            cond_mispredicts: self.cond_mispredicts - start.cond_mispredicts,
            ind_mispredicts: self.ind_mispredicts - start.ind_mispredicts,
            loads: self.loads - start.loads,
            stores: self.stores - start.stores,
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs, {} cycles ({} overhead), {} taken, {} cond-miss, {} ind-miss",
            self.instructions,
            self.cycles,
            self.charged_overhead,
            self.taken_branches,
            self.cond_mispredicts,
            self.ind_mispredicts
        )
    }
}

const BP_BITS: usize = 12;
const BP_SIZE: usize = 1 << BP_BITS;
const BTB_BITS: usize = 12;
const BTB_SIZE: usize = 1 << BTB_BITS;
const RAS_DEPTH: usize = 16;

/// The complete performance model: parameters plus predictor state.
pub struct CostModel {
    kind: CpuKind,
    /// Cost parameters (public for ablation experiments).
    pub params: CostParams,
    /// 2-bit saturating counters for conditional branches.
    bp: Vec<u8>,
    /// Branch target buffer: tag + predicted target.
    btb: Vec<(u32, u32)>,
    /// Return address stack.
    ras: [u32; RAS_DEPTH],
    ras_top: usize,
    ras_len: usize,
}

impl fmt::Debug for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CostModel({:?})", self.kind)
    }
}

impl CostModel {
    /// Create the model for a processor family.
    pub fn new(kind: CpuKind) -> CostModel {
        let params = match kind {
            CpuKind::Pentium3 => CostParams::pentium3(),
            CpuKind::Pentium4 => CostParams::pentium4(),
        };
        CostModel {
            kind,
            params,
            bp: vec![1u8; BP_SIZE], // weakly not-taken
            btb: vec![(0, 0); BTB_SIZE],
            ras: [0; RAS_DEPTH],
            ras_top: 0,
            ras_len: 0,
        }
    }

    /// The modelled processor family (paper: `proc_get_family`).
    pub fn kind(&self) -> CpuKind {
        self.kind
    }

    /// Base cost of executing `op` with the given counts of memory loads and
    /// stores among its operands.
    pub fn instr_cost(&self, op: Opcode, loads: u64, stores: u64) -> u64 {
        let p = &self.params;
        let base = match op {
            Opcode::Inc | Opcode::Dec => p.inc_dec,
            Opcode::Imul | Opcode::Mul => p.mul,
            Opcode::Idiv | Opcode::Div => p.div,
            Opcode::Pushfd | Opcode::Popfd | Opcode::Lahf | Opcode::Sahf => p.flags_save,
            _ => p.base,
        };
        base + loads * p.load + stores * p.store
    }

    fn bp_index(pc: u32) -> usize {
        ((pc >> 1) as usize) & (BP_SIZE - 1)
    }

    /// Account for a conditional branch at `pc` that was `taken` or not.
    /// Returns the penalty cycles (0 if predicted correctly).
    pub fn cond_branch(&mut self, pc: u32, taken: bool, counters: &mut Counters) -> u64 {
        let i = Self::bp_index(pc);
        let state = self.bp[i];
        let predicted_taken = state >= 2;
        // Update the 2-bit saturating counter.
        self.bp[i] = if taken {
            (state + 1).min(3)
        } else {
            state.saturating_sub(1)
        };
        let mut penalty = 0;
        if taken {
            counters.taken_branches += 1;
            penalty += self.params.taken_branch;
        }
        if predicted_taken != taken {
            counters.cond_mispredicts += 1;
            penalty += self.params.mispredict;
        }
        penalty
    }

    /// Account for a direct unconditional transfer (`jmp`/`call`). The
    /// target is static so there is no misprediction, only the taken-branch
    /// fetch bubble.
    pub fn direct_branch(&mut self, counters: &mut Counters) -> u64 {
        counters.taken_branches += 1;
        self.params.taken_branch
    }

    fn btb_index(pc: u32) -> usize {
        ((pc >> 1) as usize) & (BTB_SIZE - 1)
    }

    /// Account for an indirect transfer at `pc` resolving to `target`.
    ///
    /// `is_ret` marks a real `ret` instruction, which may use the return
    /// address stack; translated returns execute as indirect jumps and must
    /// pass `is_ret = false`.
    pub fn indirect_branch(
        &mut self,
        pc: u32,
        target: u32,
        is_ret: bool,
        counters: &mut Counters,
    ) -> u64 {
        counters.taken_branches += 1;
        let mut penalty = self.params.taken_branch;
        let predicted = if is_ret {
            self.ras_pop()
        } else {
            let (tag, t) = self.btb[Self::btb_index(pc)];
            if tag == pc {
                Some(t)
            } else {
                None
            }
        };
        if predicted != Some(target) {
            counters.ind_mispredicts += 1;
            penalty += self.params.mispredict;
        }
        self.btb[Self::btb_index(pc)] = (pc, target);
        penalty
    }

    /// Push a return address onto the RAS (executed `call`).
    pub fn ras_push(&mut self, ret_addr: u32) {
        self.ras[self.ras_top] = ret_addr;
        self.ras_top = (self.ras_top + 1) % RAS_DEPTH;
        self.ras_len = (self.ras_len + 1).min(RAS_DEPTH);
    }

    fn ras_pop(&mut self) -> Option<u32> {
        if self.ras_len == 0 {
            return None;
        }
        self.ras_top = (self.ras_top + RAS_DEPTH - 1) % RAS_DEPTH;
        self.ras_len -= 1;
        Some(self.ras[self.ras_top])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_penalizes_inc_but_p3_does_not() {
        let p4 = CostModel::new(CpuKind::Pentium4);
        let p3 = CostModel::new(CpuKind::Pentium3);
        assert!(p4.instr_cost(Opcode::Inc, 0, 0) > p4.instr_cost(Opcode::Add, 0, 0));
        assert_eq!(
            p3.instr_cost(Opcode::Inc, 0, 0),
            p3.instr_cost(Opcode::Add, 0, 0)
        );
    }

    #[test]
    fn memory_operands_add_cost() {
        let m = CostModel::new(CpuKind::Pentium4);
        let reg = m.instr_cost(Opcode::Mov, 0, 0);
        let load = m.instr_cost(Opcode::Mov, 1, 0);
        let store = m.instr_cost(Opcode::Mov, 0, 1);
        assert!(load > reg && store > reg);
    }

    #[test]
    fn cond_predictor_learns_a_loop() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        // Warm up: branch at 0x100 always taken.
        for _ in 0..10 {
            m.cond_branch(0x100, true, &mut c);
        }
        let before = c.cond_mispredicts;
        for _ in 0..100 {
            m.cond_branch(0x100, true, &mut c);
        }
        assert_eq!(c.cond_mispredicts, before); // fully predicted
    }

    #[test]
    fn btb_predicts_stable_indirect_targets() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        m.indirect_branch(0x200, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 1); // cold
        m.indirect_branch(0x200, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 1); // hit
        m.indirect_branch(0x200, 0x6000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 2); // target changed
    }

    #[test]
    fn ras_predicts_matched_call_ret_but_not_translated_ret() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        // Native pattern: call pushes, ret pops.
        m.ras_push(0x1234);
        m.indirect_branch(0x300, 0x1234, true, &mut c);
        assert_eq!(c.ind_mispredicts, 0);
        // Translated pattern: same control flow but executed as plain
        // indirect jump from two different call sites -> BTB misses.
        m.indirect_branch(0x400, 0x1234, false, &mut c);
        assert_eq!(c.ind_mispredicts, 1);
        m.indirect_branch(0x400, 0x9999, false, &mut c);
        assert_eq!(c.ind_mispredicts, 2);
    }

    #[test]
    fn counters_since_subtracts() {
        let a = Counters {
            instructions: 10,
            cycles: 100,
            ..Default::default()
        };
        let b = Counters {
            instructions: 25,
            cycles: 260,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.cycles, 160);
    }

    #[test]
    fn two_bit_counter_walks_the_exact_state_machine() {
        // Fresh counters start weakly not-taken (state 1). Walk the whole
        // state machine at one pc and check the exact penalty (and thus the
        // predicted direction) at every transition, including saturation at
        // both ends.
        let mut m = CostModel::new(CpuKind::Pentium4);
        let p = m.params;
        let mut c = Counters::default();
        let go = |m: &mut CostModel, taken, c: &mut Counters| m.cond_branch(0x40, taken, c);
        // state 1 (weak NT): taken -> mispredict + bubble, to state 2.
        assert_eq!(go(&mut m, true, &mut c), p.taken_branch + p.mispredict);
        // state 2 (weak T): taken -> predicted, to state 3.
        assert_eq!(go(&mut m, true, &mut c), p.taken_branch);
        // state 3 (strong T): taken -> predicted, saturates at 3.
        assert_eq!(go(&mut m, true, &mut c), p.taken_branch);
        // state 3: not taken -> mispredict (no bubble), to state 2.
        assert_eq!(go(&mut m, false, &mut c), p.mispredict);
        // state 2: not taken -> mispredict, to state 1.
        assert_eq!(go(&mut m, false, &mut c), p.mispredict);
        // state 1: not taken -> predicted, to state 0.
        assert_eq!(go(&mut m, false, &mut c), 0);
        // state 0 (strong NT): not taken -> predicted, saturates at 0.
        assert_eq!(go(&mut m, false, &mut c), 0);
        // state 0: taken -> mispredict, back up to state 1.
        assert_eq!(go(&mut m, true, &mut c), p.taken_branch + p.mispredict);
        assert_eq!(c.cond_mispredicts, 4);
        assert_eq!(c.taken_branches, 4);
    }

    #[test]
    fn cond_counters_are_indexed_by_pc_and_alias_at_table_stride() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        // Train pc=0x100 strongly taken.
        for _ in 0..4 {
            m.cond_branch(0x100, true, &mut c);
        }
        // A nearby branch has its own counter: still weakly not-taken.
        let fresh = m.cond_branch(0x104, true, &mut c);
        assert_eq!(fresh, m.params.taken_branch + m.params.mispredict);
        // The table indexes (pc >> 1) & (BP_SIZE - 1), so pc + (BP_SIZE << 1)
        // shares a counter: the trained state predicts taken immediately.
        let alias = 0x100 + ((BP_SIZE as u32) << 1);
        assert_eq!(m.cond_branch(alias, true, &mut c), m.params.taken_branch);
        // And not-taken outcomes at the alias decay the shared counter until
        // the original pc mispredicts again.
        m.cond_branch(alias, false, &mut c);
        m.cond_branch(alias, false, &mut c);
        assert_eq!(
            m.cond_branch(0x100, true, &mut c),
            m.params.taken_branch + m.params.mispredict
        );
    }

    #[test]
    fn btb_entries_are_tagged_and_evicted_by_aliases() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        let pc = 0x200;
        let alias = pc + ((BTB_SIZE as u32) << 1); // same slot, different tag
        m.indirect_branch(pc, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 1); // cold
                                          // The alias maps to the same slot but its tag mismatches: no false
                                          // hit, and installing it evicts the original entry.
        m.indirect_branch(alias, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 2);
        m.indirect_branch(pc, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 3); // evicted by the alias
                                          // Re-installed: now it hits.
        m.indirect_branch(pc, 0x5000, false, &mut c);
        assert_eq!(c.ind_mispredicts, 3);
    }

    #[test]
    fn ras_predicts_balanced_nesting_and_mispredicts_when_empty() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        let mut c = Counters::default();
        // A return with nothing on the stack mispredicts even if the BTB
        // happens to know the target.
        m.indirect_branch(0x500, 0x1111, true, &mut c);
        assert_eq!(c.ind_mispredicts, 1);
        // Balanced call/ret nesting predicts perfectly, in LIFO order.
        m.ras_push(0xA);
        m.ras_push(0xB);
        m.ras_push(0xC);
        m.indirect_branch(0x500, 0xC, true, &mut c);
        m.indirect_branch(0x500, 0xB, true, &mut c);
        m.indirect_branch(0x500, 0xA, true, &mut c);
        assert_eq!(c.ind_mispredicts, 1);
        // The stack is empty again: one more return mispredicts (it does not
        // wrap around to stale entries).
        m.indirect_branch(0x500, 0xA, true, &mut c);
        assert_eq!(c.ind_mispredicts, 2);
    }

    #[test]
    fn ras_depth_is_bounded() {
        let mut m = CostModel::new(CpuKind::Pentium4);
        for i in 0..100 {
            m.ras_push(i);
        }
        let mut c = Counters::default();
        // Deepest 16 predict correctly, older entries are lost.
        for i in (84..100).rev() {
            m.indirect_branch(0x1, i, true, &mut c);
        }
        assert_eq!(c.ind_mispredicts, 0);
        m.indirect_branch(0x1, 83, true, &mut c);
        assert_eq!(c.ind_mispredicts, 1);
    }
}
