//! The simulated machine: memory + CPU + cost model + interpreter.
//!
//! The interpreter executes machine code *from memory bytes* — the same
//! bytes the RIO encoder emits into the code cache — so the entire
//! decode/translate/encode/link path of the dynamic translator is exercised
//! for real. A direct-mapped decoded-instruction cache makes interpretation
//! fast; the RIO core invalidates it whenever it patches code (linking,
//! fragment replacement), modelling self-modifying code correctly.

use rio_ia32::{decode_instr, Instr, MemRef, OpSize, Opcode, Opnd, Reg};

use crate::cpu::{
    alu_add, alu_logic, alu_sar, alu_shl, alu_shr, alu_sub, CpuExit, CpuState, FaultKind,
};
use crate::image::Image;
use crate::mem::Memory;
use crate::perf::{CostModel, Counters, CpuKind};

/// A half-open `[start, end)` address range the CPU may execute from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRegion {
    /// Inclusive start.
    pub start: u32,
    /// Exclusive end.
    pub end: u32,
}

impl ExecRegion {
    /// Construct a region.
    pub fn new(start: u32, end: u32) -> ExecRegion {
        ExecRegion { start, end }
    }

    /// Whether `pc` falls inside the region.
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.start && pc < self.end
    }
}

/// Compact executable form of one decoded instruction.
#[derive(Clone, Copy, Debug)]
struct Lowered {
    op: Opcode,
    len: u32,
    ndst: u8,
    srcs: [LOpnd; 4],
    dsts: [LOpnd; 4],
}

#[derive(Clone, Copy, Debug)]
enum LOpnd {
    None,
    Reg(Reg),
    Imm(i32, OpSize),
    Mem(MemRef),
    Pc(u32),
}

impl LOpnd {
    fn from_opnd(op: &Opnd) -> LOpnd {
        match op {
            Opnd::Reg(r) => LOpnd::Reg(*r),
            Opnd::Imm(v, s) => LOpnd::Imm(*v, *s),
            Opnd::Mem(m) => LOpnd::Mem(*m),
            Opnd::Pc(pc) => LOpnd::Pc(*pc),
            Opnd::Instr(_) => LOpnd::None, // labels never reach execution
        }
    }

    fn size(&self) -> OpSize {
        match self {
            LOpnd::Reg(r) => r.size(),
            LOpnd::Imm(_, s) => *s,
            LOpnd::Mem(m) => m.size,
            _ => OpSize::S32,
        }
    }
}

fn lower(instr: &Instr, len: u32) -> Lowered {
    let mut l = Lowered {
        op: instr.opcode().expect("lower requires decoded instr"),
        len,
        ndst: instr.dsts().len().min(4) as u8,
        srcs: [LOpnd::None; 4],
        dsts: [LOpnd::None; 4],
    };
    for (i, s) in instr.srcs().iter().take(4).enumerate() {
        l.srcs[i] = LOpnd::from_opnd(s);
    }
    for (i, d) in instr.dsts().iter().take(4).enumerate() {
        l.dsts[i] = LOpnd::from_opnd(d);
    }
    l
}

const DCACHE_BITS: usize = 15;
const DCACHE_SIZE: usize = 1 << DCACHE_BITS;
/// Longest instruction fetch: a decode at `pc` can consume bytes up to
/// `pc + MAX_INSTR_BYTES - 1`, so a write at `addr` can stale any decode
/// starting as far back as `addr - MAX_INSTR_BYTES + 1`.
const MAX_INSTR_BYTES: u32 = 16;

struct DecodeCacheEntry {
    pc: u32,
    version: u64,
    /// Raw bytes the decode was made from (first `lowered.len` are live);
    /// kept so verification mode can prove a hit is not stale.
    bytes: [u8; 16],
    lowered: Lowered,
}

/// Direct-mapped software decode cache keyed by pc.
struct DecodeCache {
    entries: Vec<Option<DecodeCacheEntry>>,
    version: u64,
}

impl DecodeCache {
    fn new() -> DecodeCache {
        DecodeCache {
            entries: (0..DCACHE_SIZE).map(|_| None).collect(),
            version: 0,
        }
    }

    fn index(pc: u32) -> usize {
        ((pc ^ (pc >> DCACHE_BITS as u32)) as usize) & (DCACHE_SIZE - 1)
    }

    fn get(&self, pc: u32) -> Option<&DecodeCacheEntry> {
        match &self.entries[Self::index(pc)] {
            Some(e) if e.pc == pc && e.version == self.version => Some(e),
            _ => None,
        }
    }

    fn put(&mut self, pc: u32, bytes: [u8; 16], lowered: Lowered) {
        self.entries[Self::index(pc)] = Some(DecodeCacheEntry {
            pc,
            version: self.version,
            bytes,
            lowered,
        });
    }

    fn invalidate_all(&mut self) {
        self.version += 1;
    }

    /// Drop every cached decode whose bytes may overlap `[start, end)`.
    /// A decode starting at `pc` covers at most `[pc, pc + 16)`, so only
    /// pcs in `[start - 15, end)` can be affected; each lives at its own
    /// direct-mapped slot, so the walk is bounded by `len + 15` probes.
    fn invalidate_range(&mut self, start: u32, end: u32) {
        let lo = start.saturating_sub(MAX_INSTR_BYTES - 1);
        for pc in lo..end {
            let slot = &mut self.entries[Self::index(pc)];
            if matches!(slot, Some(e) if e.pc == pc) {
                *slot = None;
            }
        }
    }
}

/// The simulated machine.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: CpuState,
    /// Memory.
    pub mem: Memory,
    /// The cycle cost model and predictor state.
    pub cost: CostModel,
    /// Accumulated execution statistics.
    pub counters: Counters,
    dcache: DecodeCache,
    regions: Vec<ExecRegion>,
    /// Guarded data regions: any load/store touching one raises
    /// [`FaultKind::MemFault`] *before* the instruction mutates state.
    /// Empty by default (the sparse memory otherwise zero-fills).
    guards: Vec<ExecRegion>,
    /// One-shot injected fault: raised in place of the next instruction
    /// once `counters.instructions` reaches the trigger count.
    inject: Option<(u64, FaultKind)>,
    /// Watched code regions: a committed guest store touching one stops
    /// execution with [`CpuExit::CodeWrite`]. Empty by default.
    watches: Vec<ExecRegion>,
    /// Store into a watched region recorded by the current instruction
    /// (`(addr, len)`), turned into an exit at the end of the step.
    step_code_write: Option<(u32, u32)>,
    /// When set, every decode-cache hit is re-verified against the live
    /// memory bytes; mismatches count in `stale_decode_hits`.
    verify_decodes: bool,
    stale_decode_hits: u64,
    step_loads: u64,
    step_stores: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Machine(eip={:#x}, {})", self.cpu.eip, self.counters)
    }
}

impl Machine {
    /// Create a machine of the given processor family with empty memory.
    pub fn new(kind: CpuKind) -> Machine {
        Machine {
            cpu: CpuState::new(),
            mem: Memory::new(),
            cost: CostModel::new(kind),
            counters: Counters::default(),
            dcache: DecodeCache::new(),
            regions: Vec::new(),
            guards: Vec::new(),
            inject: None,
            watches: Vec::new(),
            step_code_write: None,
            verify_decodes: false,
            stale_decode_hits: 0,
            step_loads: 0,
            step_stores: 0,
        }
    }

    /// Load an image: code + data into memory, `eip` at the entry point,
    /// `esp` at the stack top, and the code range as the sole exec region.
    pub fn load_image(&mut self, img: &Image) {
        img.load(&mut self.mem);
        self.cpu.eip = img.entry;
        self.cpu.set_reg(Reg::Esp, Image::STACK_TOP - 16);
        let (s, e) = img.code_range();
        self.regions = vec![ExecRegion::new(s, e)];
    }

    /// Replace the set of regions the CPU may execute from. Control leaving
    /// them stops [`Machine::run`] with [`CpuExit::OutOfRegion`].
    pub fn set_exec_regions(&mut self, regions: Vec<ExecRegion>) {
        self.regions = regions;
    }

    /// Current execution regions.
    pub fn exec_regions(&self) -> &[ExecRegion] {
        &self.regions
    }

    /// Install guarded data regions: any memory access touching one raises
    /// a precise [`FaultKind::MemFault`] before the instruction commits any
    /// architectural state. The default (empty) set never faults — the
    /// sparse memory zero-fills unmapped pages.
    pub fn set_guard_regions(&mut self, guards: Vec<ExecRegion>) {
        self.guards = guards;
    }

    /// Current guard regions.
    pub fn guard_regions(&self) -> &[ExecRegion] {
        &self.guards
    }

    /// Install watched code regions: a guest store whose bytes touch one
    /// stops execution with [`CpuExit::CodeWrite`] *after* the store (and
    /// the whole instruction) has committed, so resuming at `eip` makes
    /// forward progress even when an instruction overwrites itself. Writes
    /// made through [`Machine::mem`] directly (fragment emission, link
    /// patching) are exempt — only interpreted guest stores are monitored.
    pub fn set_watch_regions(&mut self, watches: Vec<ExecRegion>) {
        self.watches = watches;
    }

    /// Current watch regions.
    pub fn watch_regions(&self) -> &[ExecRegion] {
        &self.watches
    }

    /// Enable or disable decode verification: every decode-cache hit is
    /// compared against the live memory bytes, and a mismatch (a stale
    /// decode that would have executed) is counted in
    /// [`Machine::stale_decode_hits`] and re-decoded from memory.
    pub fn set_verify_decodes(&mut self, on: bool) {
        self.verify_decodes = on;
    }

    /// Number of decode-cache hits whose cached bytes no longer matched
    /// memory (only counted while verification is enabled). Staying zero
    /// proves range invalidation never let a stale decode execute.
    pub fn stale_decode_hits(&self) -> u64 {
        self.stale_decode_hits
    }

    /// FNV-1a digest of the application-visible machine state: the eight
    /// general-purpose registers plus the current bytes of every data
    /// segment the image declared (globals and arrays). `eip` is excluded
    /// (under the engine it is a code-cache address by design) and so is
    /// `eflags` (transformation clients may legally rewrite dead flag
    /// updates, e.g. `inc` → `add`). Two runs of the same image that end
    /// with the same digest agree on every register and every global.
    pub fn app_state_digest(&self, image: &Image) -> u64 {
        use rio_ia32::Reg as R;
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        for r in [
            R::Eax,
            R::Ecx,
            R::Edx,
            R::Ebx,
            R::Esp,
            R::Ebp,
            R::Esi,
            R::Edi,
        ] {
            for b in self.cpu.reg(r).to_le_bytes() {
                mix(b);
            }
        }
        for (base, bytes) in &image.data {
            for off in 0..bytes.len() as u32 {
                mix(self.mem.read_u8(base + off));
            }
        }
        h
    }

    /// Arm a one-shot fault injection: once the machine has executed
    /// `instr_count` instructions, the next instruction raises `kind`
    /// instead of executing (a precise, resumable boundary). The trigger
    /// clears when it fires, so the machine can be resumed past it.
    pub fn inject_fault_at(&mut self, instr_count: u64, kind: FaultKind) {
        self.inject = Some((instr_count, kind));
    }

    /// The armed (not yet fired) injection, if any.
    pub fn pending_injection(&self) -> Option<(u64, FaultKind)> {
        self.inject
    }

    /// Charge runtime-overhead cycles (dispatch, hashtable lookup,
    /// optimization time) to the cycle counter.
    pub fn charge(&mut self, cycles: u64) {
        self.counters.cycles += cycles;
        self.counters.charged_overhead += cycles;
    }

    /// Invalidate the *entire* decoded-instruction cache. Needed only when
    /// code changed at unknown addresses; prefer
    /// [`Machine::invalidate_code_range`], which the engine uses on every
    /// fragment emission and link patch.
    pub fn invalidate_code(&mut self) {
        self.dcache.invalidate_all();
    }

    /// Invalidate decoded instructions overlapping `[addr, addr + len)`.
    /// Must be called after any write to memory that may hold code; cost is
    /// bounded by `len + 15` cache probes, so hot emit/patch paths no
    /// longer wipe unrelated decodes.
    pub fn invalidate_code_range(&mut self, addr: u32, len: u32) {
        self.dcache.invalidate_range(addr, addr.saturating_add(len));
    }

    fn in_region(&self, pc: u32) -> bool {
        self.regions.iter().any(|r| r.contains(pc))
    }

    /// Run until an exit condition with a default fuel of 2^44 steps.
    pub fn run(&mut self) -> CpuExit {
        self.run_steps(1 << 44)
    }

    /// Run at most `max_steps` instructions.
    pub fn run_steps(&mut self, max_steps: u64) -> CpuExit {
        for _ in 0..max_steps {
            if !self.in_region(self.cpu.eip) {
                return CpuExit::OutOfRegion(self.cpu.eip);
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
        CpuExit::FuelExhausted
    }

    /// Execute exactly one instruction (region checks are the caller's
    /// responsibility). Returns `Some(exit)` if the instruction stops
    /// execution.
    pub fn step(&mut self) -> Option<CpuExit> {
        let pc = self.cpu.eip;
        if let Some((at, kind)) = self.inject {
            if self.counters.instructions >= at {
                self.inject = None; // one-shot: resuming runs past it
                return Some(CpuExit::Fault { kind, pc, addr: pc });
            }
        }
        let cached = match self.dcache.get(pc) {
            Some(e) if !self.verify_decodes => Some(e.lowered),
            Some(e) => {
                // Verification mode: prove the hit against live memory.
                let len = e.lowered.len as usize;
                let mut buf = [0u8; 16];
                self.mem.read_bytes(pc, &mut buf[..len]);
                if buf[..len] == e.bytes[..len] {
                    Some(e.lowered)
                } else {
                    self.stale_decode_hits += 1;
                    None
                }
            }
            None => None,
        };
        let lowered = match cached {
            Some(l) => l,
            None => {
                let mut buf = [0u8; 16];
                self.mem.read_bytes(pc, &mut buf);
                match decode_instr(&buf, pc) {
                    Ok((instr, len)) => {
                        let l = lower(&instr, len);
                        self.dcache.put(pc, buf, l);
                        l
                    }
                    Err(_) => {
                        return Some(CpuExit::Fault {
                            kind: FaultKind::InvalidOpcode,
                            pc,
                            addr: pc,
                        });
                    }
                }
            }
        };
        self.exec(pc, &lowered)
    }

    fn addr_of(&self, m: &MemRef) -> u32 {
        let base = m.base.map_or(0, |r| self.cpu.reg(r));
        let index = m.index.map_or(0, |r| self.cpu.reg(r));
        base.wrapping_add(index.wrapping_mul(m.scale as u32))
            .wrapping_add(m.disp as u32)
    }

    /// First guarded byte of `[addr, addr + bytes)`, if any.
    fn guarded(&self, addr: u32, bytes: u32) -> Option<u32> {
        (0..bytes)
            .map(|i| addr.wrapping_add(i))
            .find(|a| self.guards.iter().any(|g| g.contains(*a)))
    }

    /// Check every memory address the instruction will touch against the
    /// guard regions — *before* execution, so a [`FaultKind::MemFault`] is
    /// precise (no architectural state has changed).
    fn check_guards(&self, pc: u32, l: &Lowered) -> Option<CpuExit> {
        let fault = |addr| {
            Some(CpuExit::Fault {
                kind: FaultKind::MemFault,
                pc,
                addr,
            })
        };
        // Explicit memory operands (`lea` only computes the address).
        if l.op != Opcode::Lea {
            for op in l.srcs.iter().chain(l.dsts.iter()) {
                if let LOpnd::Mem(m) = op {
                    if let Some(bad) = self.guarded(self.addr_of(m), m.size.bytes()) {
                        return fault(bad);
                    }
                }
            }
        }
        // Implicit stack accesses.
        let esp = self.cpu.reg(Reg::Esp);
        match l.op {
            Opcode::Push | Opcode::Pushfd | Opcode::Call | Opcode::CallInd => {
                if let Some(bad) = self.guarded(esp.wrapping_sub(4), 4) {
                    return fault(bad);
                }
            }
            Opcode::Pop | Opcode::Popfd | Opcode::Ret => {
                if let Some(bad) = self.guarded(esp, 4) {
                    return fault(bad);
                }
            }
            _ => {}
        }
        None
    }

    fn read(&mut self, op: &LOpnd) -> u32 {
        match op {
            LOpnd::Reg(r) => self.cpu.reg(*r),
            LOpnd::Imm(v, _) => *v as u32,
            LOpnd::Pc(pc) => *pc,
            LOpnd::Mem(m) => {
                self.step_loads += 1;
                let a = self.addr_of(m);
                match m.size {
                    OpSize::S8 => self.mem.read_u8(a) as u32,
                    OpSize::S16 => self.mem.read_u16(a) as u32,
                    OpSize::S32 => self.mem.read_u32(a),
                }
            }
            LOpnd::None => 0,
        }
    }

    /// Bookkeeping for every interpreted guest store: keep the decode
    /// cache coherent with the written bytes (so self-modifying code is
    /// correct in every mode, with no manual invalidation), and flag
    /// stores that land in a watched code region.
    fn note_store(&mut self, addr: u32, bytes: u32) {
        self.step_stores += 1;
        let end = addr.saturating_add(bytes);
        self.dcache.invalidate_range(addr, end);
        if self.watches.iter().any(|w| addr < w.end && end > w.start) {
            self.step_code_write = Some(match self.step_code_write {
                None => (addr, bytes),
                Some((a0, l0)) => {
                    let lo = a0.min(addr);
                    let hi = (a0.saturating_add(l0)).max(end);
                    (lo, hi - lo)
                }
            });
        }
    }

    fn write(&mut self, op: &LOpnd, v: u32) {
        match op {
            LOpnd::Reg(r) => self.cpu.set_reg(*r, v),
            LOpnd::Mem(m) => {
                let a = self.addr_of(m);
                self.note_store(a, m.size.bytes());
                match m.size {
                    OpSize::S8 => self.mem.write_u8(a, v as u8),
                    OpSize::S16 => self.mem.write_u16(a, v as u16),
                    OpSize::S32 => self.mem.write_u32(a, v),
                }
            }
            _ => {}
        }
    }

    fn push32(&mut self, v: u32) {
        let esp = self.cpu.reg(Reg::Esp).wrapping_sub(4);
        self.cpu.set_reg(Reg::Esp, esp);
        self.note_store(esp, 4);
        self.mem.write_u32(esp, v);
    }

    fn pop32(&mut self) -> u32 {
        let esp = self.cpu.reg(Reg::Esp);
        self.step_loads += 1;
        let v = self.mem.read_u32(esp);
        self.cpu.set_reg(Reg::Esp, esp.wrapping_add(4));
        v
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: u32, l: &Lowered) -> Option<CpuExit> {
        use rio_ia32::Eflags;
        self.step_loads = 0;
        self.step_stores = 0;
        self.step_code_write = None;
        if !self.guards.is_empty() {
            if let Some(exit) = self.check_guards(pc, l) {
                return Some(exit);
            }
        }
        let next_pc = pc.wrapping_add(l.len);
        let mut new_eip = next_pc;
        let mut branch_penalty = 0u64;
        let mut exit: Option<CpuExit> = None;

        match l.op {
            Opcode::Mov => {
                let v = self.read(&l.srcs[0]);
                self.write(&l.dsts[0], v);
            }
            Opcode::Lea => {
                if let LOpnd::Mem(m) = l.srcs[0] {
                    let a = self.addr_of(&m);
                    self.write(&l.dsts[0], a);
                }
            }
            Opcode::Movzx => {
                let v = self.read(&l.srcs[0]); // reads zero-extended
                self.write(&l.dsts[0], v);
            }
            Opcode::Movsx => {
                let v = self.read(&l.srcs[0]);
                let sx = match l.srcs[0].size() {
                    OpSize::S8 => v as u8 as i8 as i32 as u32,
                    OpSize::S16 => v as u16 as i16 as i32 as u32,
                    OpSize::S32 => v,
                };
                self.write(&l.dsts[0], sx);
            }
            Opcode::Add | Opcode::Adc | Opcode::Sub | Opcode::Sbb => {
                let dst = l.dsts[0];
                let b = self.read(&l.srcs[0]);
                let a = self.read(&dst);
                let size = dst.size();
                let carry_in = if matches!(l.op, Opcode::Adc | Opcode::Sbb)
                    && self.cpu.eflags & Eflags::CF.0 != 0
                {
                    1
                } else {
                    0
                };
                let (res, f) = match l.op {
                    Opcode::Add | Opcode::Adc => alu_add(a, b, carry_in, size),
                    _ => alu_sub(a, b, carry_in, size),
                };
                self.write(&dst, res);
                self.cpu.set_flags(Eflags::ALL6, f);
            }
            Opcode::And | Opcode::Or | Opcode::Xor => {
                let dst = l.dsts[0];
                let b = self.read(&l.srcs[0]);
                let a = self.read(&dst);
                let raw = match l.op {
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    _ => a ^ b,
                };
                let (res, f) = alu_logic(raw, dst.size());
                self.write(&dst, res);
                self.cpu.set_flags(Eflags::ALL6, f);
            }
            Opcode::Cmp => {
                let a = self.read(&l.srcs[0]);
                let b = self.read(&l.srcs[1]);
                let size = l.srcs[0].size().max(l.srcs[1].size());
                let (_, f) = alu_sub(a, b, 0, size);
                self.cpu.set_flags(Eflags::ALL6, f);
            }
            Opcode::Test => {
                let a = self.read(&l.srcs[0]);
                let b = self.read(&l.srcs[1]);
                let size = l.srcs[0].size().max(l.srcs[1].size());
                let (_, f) = alu_logic(a & b, size);
                self.cpu.set_flags(Eflags::ALL6, f);
            }
            Opcode::Inc | Opcode::Dec => {
                let dst = l.dsts[0];
                let a = self.read(&dst);
                let (res, f) = if l.op == Opcode::Inc {
                    alu_add(a, 1, 0, dst.size())
                } else {
                    alu_sub(a, 1, 0, dst.size())
                };
                self.write(&dst, res);
                // inc/dec leave CF unchanged.
                self.cpu.set_flags(Eflags::NOT_CF, f);
            }
            Opcode::Neg => {
                let dst = l.dsts[0];
                let a = self.read(&dst);
                let (res, mut f) = alu_sub(0, a, 0, dst.size());
                // CF is set unless the operand was zero (alu_sub already
                // computes borrow 0 < a, which matches).
                if a == 0 {
                    f &= !Eflags::CF.0;
                }
                self.write(&dst, res);
                self.cpu.set_flags(Eflags::ALL6, f);
            }
            Opcode::Not => {
                let dst = l.dsts[0];
                let a = self.read(&dst);
                self.write(&dst, !a);
            }
            Opcode::Xchg => {
                let a = self.read(&l.srcs[0]);
                let b = self.read(&l.srcs[1]);
                self.write(&l.dsts[0], b);
                self.write(&l.dsts[1], a);
            }
            Opcode::Shl | Opcode::Shr | Opcode::Sar => {
                let dst = l.dsts[0];
                let count = self.read(&l.srcs[0]) & 31;
                if count != 0 {
                    let a = self.read(&dst);
                    let (res, f) = match l.op {
                        Opcode::Shl => alu_shl(a, count, dst.size()),
                        Opcode::Shr => alu_shr(a, count, dst.size()),
                        _ => alu_sar(a, count, dst.size()),
                    };
                    self.write(&dst, res);
                    self.cpu.set_flags(Eflags::ALL6, f);
                }
            }
            Opcode::Imul => {
                if l.ndst == 2 {
                    // One-operand form: edx:eax = eax * rm (signed).
                    let a = self.cpu.reg(Reg::Eax) as i32 as i64;
                    let b = self.read(&l.srcs[0]) as i32 as i64;
                    let wide = a * b;
                    self.cpu.set_reg(Reg::Eax, wide as u32);
                    self.cpu.set_reg(Reg::Edx, (wide >> 32) as u32);
                    let overflow = wide != (wide as i32 as i64);
                    self.set_mul_flags(overflow);
                } else {
                    let a = self.read(&l.srcs[0]) as i32 as i64;
                    let b = self.read(&l.srcs[1]) as i32 as i64;
                    let wide = a * b;
                    self.write(&l.dsts[0], wide as u32);
                    let overflow = wide != (wide as i32 as i64);
                    self.set_mul_flags(overflow);
                }
            }
            Opcode::Mul => {
                let a = self.cpu.reg(Reg::Eax) as u64;
                let b = self.read(&l.srcs[0]) as u64;
                let wide = a * b;
                self.cpu.set_reg(Reg::Eax, wide as u32);
                self.cpu.set_reg(Reg::Edx, (wide >> 32) as u32);
                self.set_mul_flags(wide >> 32 != 0);
            }
            Opcode::Div => {
                let divisor = self.read(&l.srcs[0]) as u64;
                let dividend =
                    ((self.cpu.reg(Reg::Edx) as u64) << 32) | self.cpu.reg(Reg::Eax) as u64;
                if divisor == 0 || dividend / divisor > u32::MAX as u64 {
                    return Some(CpuExit::Fault {
                        kind: FaultKind::DivideError,
                        pc,
                        addr: pc,
                    });
                }
                self.cpu.set_reg(Reg::Eax, (dividend / divisor) as u32);
                self.cpu.set_reg(Reg::Edx, (dividend % divisor) as u32);
            }
            Opcode::Idiv => {
                let divisor = self.read(&l.srcs[0]) as i32 as i64;
                let dividend = (((self.cpu.reg(Reg::Edx) as u64) << 32)
                    | self.cpu.reg(Reg::Eax) as u64) as i64;
                if divisor == 0 {
                    return Some(CpuExit::Fault {
                        kind: FaultKind::DivideError,
                        pc,
                        addr: pc,
                    });
                }
                let q = dividend.wrapping_div(divisor);
                if q != (q as i32 as i64) {
                    return Some(CpuExit::Fault {
                        kind: FaultKind::DivideError,
                        pc,
                        addr: pc,
                    });
                }
                self.cpu.set_reg(Reg::Eax, q as u32);
                self.cpu
                    .set_reg(Reg::Edx, dividend.wrapping_rem(divisor) as u32);
            }
            Opcode::Cdq => {
                let v = if self.cpu.reg(Reg::Eax) & 0x8000_0000 != 0 {
                    0xFFFF_FFFF
                } else {
                    0
                };
                self.cpu.set_reg(Reg::Edx, v);
            }
            Opcode::Cwde => {
                let v = self.cpu.reg(Reg::Ax) as u16 as i16 as i32 as u32;
                self.cpu.set_reg(Reg::Eax, v);
            }
            Opcode::Push => {
                let v = self.read(&l.srcs[0]);
                self.push32(v);
            }
            Opcode::Pop => {
                let v = self.pop32();
                self.write(&l.dsts[0], v);
            }
            Opcode::Pushfd => {
                let v = (self.cpu.eflags & Eflags::ALL6.0) | 0x2;
                self.push32(v);
            }
            Opcode::Popfd => {
                let v = self.pop32();
                self.cpu.set_flags(Eflags::ALL6, v);
            }
            Opcode::Lahf => {
                // AH = SF:ZF:0:AF:0:PF:1:CF.
                let f = self.cpu.eflags;
                let ah = (f & 0xFF) | 0x2;
                self.cpu.set_reg(Reg::Ah, ah);
            }
            Opcode::Sahf => {
                let ah = self.cpu.reg(Reg::Ah);
                let mask = Eflags(
                    Eflags::CF.0 | Eflags::PF.0 | Eflags::AF.0 | Eflags::ZF.0 | Eflags::SF.0,
                );
                self.cpu.set_flags(mask, ah);
            }
            Opcode::Set(cc) => {
                let v = self.cpu.cc_holds(cc) as u32;
                self.write(&l.dsts[0], v);
            }
            Opcode::Cmov(cc) => {
                // The load happens regardless of the condition (as on real
                // hardware); only the register write is conditional.
                let v = self.read(&l.srcs[0]);
                if self.cpu.cc_holds(cc) {
                    self.write(&l.dsts[0], v);
                }
            }
            Opcode::Rol | Opcode::Ror => {
                use rio_ia32::Eflags;
                let dst = l.dsts[0];
                let count = self.read(&l.srcs[0]) & 31;
                if count != 0 {
                    let a = self.read(&dst);
                    let bits = dst.size().bytes() * 8;
                    let c = count % bits;
                    let res = if l.op == Opcode::Rol {
                        a.rotate_left(c) // 32-bit only in the subset
                    } else {
                        a.rotate_right(c)
                    };
                    self.write(&dst, res);
                    // CF = bit rotated into position; OF approximated as
                    // written (architecturally defined only for count==1).
                    let cf = if l.op == Opcode::Rol {
                        res & 1
                    } else {
                        (res >> (bits - 1)) & 1
                    };
                    let mut f = 0;
                    if cf != 0 {
                        f |= Eflags::CF.0;
                    }
                    self.cpu.set_flags(Eflags(Eflags::CF.0 | Eflags::OF.0), f);
                }
            }
            Opcode::Bt => {
                use rio_ia32::Eflags;
                let base = self.read(&l.srcs[0]);
                let bit = self.read(&l.srcs[1]) & 31;
                let cf = (base >> bit) & 1;
                self.cpu
                    .set_flags(Eflags::CF, if cf != 0 { Eflags::CF.0 } else { 0 });
            }
            Opcode::Bswap => {
                let v = self.read(&l.dsts[0]);
                self.write(&l.dsts[0], v.swap_bytes());
            }
            Opcode::Nop => {}
            Opcode::Int3 => {
                exit = Some(CpuExit::Breakpoint);
            }
            Opcode::Int => {
                let n = self.read(&l.srcs[0]) as u8;
                self.cpu.eip = next_pc;
                // Account the instruction before returning.
                self.finish_step(l, 0);
                return Some(CpuExit::Syscall(n));
            }
            Opcode::Hlt => {
                self.finish_step(l, 0);
                return Some(CpuExit::Halt);
            }
            Opcode::Jmp => {
                new_eip = self.read(&l.srcs[0]);
                branch_penalty = self.cost.direct_branch(&mut self.counters);
            }
            Opcode::Jcc(cc) => {
                let taken = self.cpu.cc_holds(cc);
                if taken {
                    new_eip = self.read(&l.srcs[0]);
                }
                branch_penalty = self.cost.cond_branch(pc, taken, &mut self.counters);
            }
            Opcode::Jecxz => {
                let taken = self.cpu.reg(Reg::Ecx) == 0;
                if taken {
                    new_eip = self.read(&l.srcs[0]);
                }
                branch_penalty = self.cost.cond_branch(pc, taken, &mut self.counters);
            }
            Opcode::Call => {
                let target = self.read(&l.srcs[0]);
                self.push32(next_pc);
                self.cost.ras_push(next_pc);
                new_eip = target;
                branch_penalty = self.cost.direct_branch(&mut self.counters);
            }
            Opcode::CallInd => {
                let target = self.read(&l.srcs[0]);
                self.push32(next_pc);
                self.cost.ras_push(next_pc);
                new_eip = target;
                branch_penalty = self
                    .cost
                    .indirect_branch(pc, target, false, &mut self.counters);
            }
            Opcode::JmpInd => {
                let target = self.read(&l.srcs[0]);
                new_eip = target;
                branch_penalty = self
                    .cost
                    .indirect_branch(pc, target, false, &mut self.counters);
            }
            Opcode::Ret => {
                let target = self.pop32();
                if let LOpnd::Imm(extra, _) = l.srcs[0] {
                    let esp = self.cpu.reg(Reg::Esp).wrapping_add(extra as u32);
                    self.cpu.set_reg(Reg::Esp, esp);
                }
                new_eip = target;
                branch_penalty = self
                    .cost
                    .indirect_branch(pc, target, true, &mut self.counters);
            }
            Opcode::Label => {
                // A label pseudo-instruction reached the interpreter:
                // report it as the guest-visible invalid-opcode fault.
                return Some(CpuExit::Fault {
                    kind: FaultKind::InvalidOpcode,
                    pc,
                    addr: pc,
                });
            }
        }

        self.cpu.eip = new_eip;
        self.finish_step(l, branch_penalty);
        if exit.is_none() {
            // A committed store into a watched code region stops execution
            // *after* the instruction: state is architecturally complete
            // and `eip` is past the writer, so resumption cannot livelock.
            if let Some((addr, len)) = self.step_code_write.take() {
                return Some(CpuExit::CodeWrite { pc, addr, len });
            }
        }
        exit
    }

    fn set_mul_flags(&mut self, overflow: bool) {
        use rio_ia32::Eflags;
        let v = if overflow {
            Eflags::CF.0 | Eflags::OF.0
        } else {
            0
        };
        self.cpu.set_flags(Eflags::ALL6, v);
    }

    fn finish_step(&mut self, l: &Lowered, branch_penalty: u64) {
        self.counters.instructions += 1;
        self.counters.loads += self.step_loads;
        self.counters.stores += self.step_stores;
        self.counters.cycles += self
            .cost
            .instr_cost(l.op, self.step_loads, self.step_stores)
            + branch_penalty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Cc, InstrList, Target};

    fn run_program(il: &InstrList) -> (Machine, CpuExit) {
        let code = encode_list(il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        let exit = m.run();
        (m, exit)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(10)));
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(32)));
        il.push_back(create::hlt());
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 42);
        assert_eq!(m.counters.instructions, 3);
    }

    #[test]
    fn loop_with_conditional_branch() {
        // eax = sum of 1..=100 via a dec loop.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(100)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Ebx)));
        il.push_back(create::dec(Opnd::reg(Reg::Ebx)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::hlt());
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 5050);
        // The loop branch should be well predicted after warmup.
        assert!(m.counters.cond_mispredicts < 5);
    }

    #[test]
    fn memory_and_stack() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(7)));
        il.push_back(create::push(Opnd::reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::pop(Opnd::reg(Reg::Ebx)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(Image::DATA_BASE, OpSize::S32)),
            Opnd::reg(Reg::Ebx),
        ));
        il.push_back(create::hlt());
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Ebx), 7);
        assert_eq!(m.mem.read_u32(Image::DATA_BASE), 7);
    }

    #[test]
    fn call_and_ret_round_trip() {
        // main: call f; hlt.  f: mov eax, 99; ret.
        let mut il = InstrList::new();
        let call_site = create::call(Target::Pc(0));
        let c = il.push_back(call_site);
        il.push_back(create::hlt());
        let f = il.push_back(create::label());
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(99)));
        il.push_back(create::ret());
        il.get_mut(c).set_target(Target::Instr(f));
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 99);
        // RAS should predict the matched ret (cold BTB doesn't matter).
        assert_eq!(m.counters.ind_mispredicts, 0);
    }

    #[test]
    fn indirect_jump_via_register() {
        let mut il = InstrList::new();
        let j = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::jmp_ind(Opnd::reg(Reg::Eax)));
        il.push_back(create::int3()); // skipped
        let target = il.push_back(create::label());
        il.push_back(create::hlt());
        // Resolve the label's address by encoding once.
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let target_addr = Image::CODE_BASE + enc.offset_of(target).unwrap();
        il.get_mut(j).set_src(0, Opnd::imm32(target_addr as i32));
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.counters.ind_mispredicts, 1); // cold BTB
    }

    #[test]
    fn syscall_exit() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        il.push_back(create::hlt());
        let (m, exit) = run_program(&il);
        assert_eq!(exit, CpuExit::Syscall(0x80));
        // eip advanced past the int, ready to resume.
        assert_eq!(m.cpu.eip, Image::CODE_BASE + 5 + 2);
    }

    #[test]
    fn out_of_region_exit() {
        let mut il = InstrList::new();
        il.push_back(create::jmp(Target::Pc(0xC000_0000)));
        let (_, exit) = {
            let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
            let mut m = Machine::new(CpuKind::Pentium4);
            m.load_image(&Image::from_code(code));
            let e = m.run();
            (m, e)
        };
        assert_eq!(exit, CpuExit::OutOfRegion(0xC000_0000));
    }

    #[test]
    fn divide_error_is_precise_and_resumable() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::cdq());
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0)));
        il.push_back(create::idiv(Opnd::reg(Reg::Ebx)));
        il.push_back(create::hlt());
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        let exit = m.run();
        let CpuExit::Fault { kind, pc, addr } = exit else {
            panic!("expected fault, got {exit:?}");
        };
        assert_eq!(kind, FaultKind::DivideError);
        // eip still points at the faulting idiv; nothing was committed.
        assert_eq!(pc, m.cpu.eip);
        assert_eq!(addr, pc);
        assert_eq!(m.cpu.reg(Reg::Eax), 1);
        assert_eq!(m.counters.instructions, 3);
        // The machine is resumable: skip the 2-byte idiv and finish.
        m.cpu.eip = pc + 2;
        assert_eq!(m.run(), CpuExit::Halt);
    }

    #[test]
    fn guard_region_faults_before_any_state_change() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(7)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(0x2000_0000, OpSize::S32)),
            Opnd::reg(Reg::Eax),
        ));
        il.push_back(create::hlt());
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        m.set_guard_regions(vec![ExecRegion::new(0x2000_0000, 0x2000_1000)]);
        let exit = m.run();
        assert_eq!(
            exit,
            CpuExit::Fault {
                kind: FaultKind::MemFault,
                pc: m.cpu.eip,
                addr: 0x2000_0000,
            }
        );
        // The guarded store never happened.
        assert_eq!(m.mem.read_u32(0x2000_0000), 0);
        // Without the guard the same program completes.
        m.set_guard_regions(Vec::new());
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.mem.read_u32(0x2000_0000), 7);
    }

    #[test]
    fn injected_fault_fires_once_at_the_trigger_count() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(2)));
        il.push_back(create::hlt());
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        m.inject_fault_at(1, FaultKind::InvalidOpcode);
        let exit = m.run();
        let CpuExit::Fault { kind, pc, .. } = exit else {
            panic!("expected injected fault, got {exit:?}");
        };
        assert_eq!(kind, FaultKind::InvalidOpcode);
        assert_eq!(m.counters.instructions, 1);
        assert_eq!(pc, m.cpu.eip);
        assert_eq!(m.pending_injection(), None);
        // One-shot: resuming runs to completion.
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Ebx), 2);
    }

    #[test]
    fn undecodable_bytes_fault_as_invalid_opcode() {
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(vec![0x0F, 0xFF, 0xFF, 0xFF]));
        let exit = m.run();
        assert_eq!(
            exit,
            CpuExit::Fault {
                kind: FaultKind::InvalidOpcode,
                pc: Image::CODE_BASE,
                addr: Image::CODE_BASE,
            }
        );
    }

    #[test]
    fn signed_division_semantics() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(-7)));
        il.push_back(create::cdq());
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(2)));
        il.push_back(create::idiv(Opnd::reg(Reg::Ebx)));
        il.push_back(create::hlt());
        let (m, _) = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Eax) as i32, -3);
        assert_eq!(m.cpu.reg(Reg::Edx) as i32, -1);
    }

    #[test]
    fn inc_preserves_carry() {
        let mut il = InstrList::new();
        // Set CF via 0xFFFFFFFF + 1, then inc; CF must survive.
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(-1)));
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::inc(Opnd::reg(Reg::Ebx)));
        il.push_back(create::sbb(Opnd::reg(Reg::Ecx), Opnd::reg(Reg::Ecx))); // ecx = CF ? -1 : 0
        il.push_back(create::hlt());
        let (m, _) = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Ecx), 0xFFFF_FFFF);
    }

    #[test]
    fn flags_save_restore_via_lahf_sahf() {
        let mut il = InstrList::new();
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Eax))); // ZF=1
        il.push_back(create::lahf());
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::imm32(1))); // ZF=0
        il.push_back(create::sahf()); // restore ZF=1
        il.push_back(create::setcc(Cc::Z, Opnd::reg(Reg::Cl)));
        il.push_back(create::hlt());
        let (m, _) = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Cl), 1);
    }

    #[test]
    fn self_modifying_code_requires_invalidation() {
        // Write a mov imm; hlt, run; patch the immediate; without
        // invalidation the stale decode executes, with it the new value.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::hlt());
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 1);
        // Patch immediate to 2.
        m.mem.write_u32(Image::CODE_BASE + 1, 2);
        m.invalidate_code();
        m.cpu.eip = Image::CODE_BASE;
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 2);
    }

    #[test]
    fn interpreted_self_modifying_store_needs_no_manual_invalidation() {
        // A loop patches its own `add` immediate from 1000 to 2000
        // mid-run (imm32 values, so the 4-byte immediate is encoded). The
        // interpreter must invalidate its decode cache on the store by
        // itself: pass 1 adds 1000, pass 2 must add the patched 2000.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::imm32(2)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(1000)));
        let after_add = il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(2000)));
        let patch = il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(0, OpSize::S32)), // fixed up below
            Opnd::reg(Reg::Ebx),
        ));
        il.push_back(create::dec(Opnd::reg(Reg::Ecx)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::hlt());
        // The add's imm32 occupies the 4 bytes before the next instruction.
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let imm_addr = Image::CODE_BASE + enc.offset_of(after_add).unwrap() - 4;
        il.get_mut(patch)
            .set_dst(0, Opnd::Mem(MemRef::absolute(imm_addr, OpSize::S32)));
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        m.set_verify_decodes(true);
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 3000); // 1000 + patched 2000
        assert_eq!(m.stale_decode_hits(), 0); // never served a stale decode
    }

    #[test]
    fn watched_store_exits_after_commit_with_eip_advanced() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0x90)));
        let store = il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(Image::CODE_BASE + 0x40, OpSize::S32)),
            Opnd::reg(Reg::Eax),
        ));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7)));
        il.push_back(create::hlt());
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let store_pc = Image::CODE_BASE + enc.offset_of(store).unwrap();
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(enc.bytes));
        m.set_watch_regions(vec![ExecRegion::new(
            Image::CODE_BASE,
            Image::CODE_BASE + 0x100,
        )]);
        let exit = m.run();
        assert_eq!(
            exit,
            CpuExit::CodeWrite {
                pc: store_pc,
                addr: Image::CODE_BASE + 0x40,
                len: 4,
            }
        );
        // The store committed and eip is past the writer: resumable.
        assert_eq!(m.mem.read_u32(Image::CODE_BASE + 0x40), 0x90);
        assert!(m.cpu.eip > store_pc);
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Ebx), 7);
    }

    #[test]
    fn range_invalidation_spares_unrelated_decodes() {
        // Writes far from any decoded pc must not clear cached entries;
        // writes overlapping one must. Probed via the public behaviour:
        // a stale decode would execute the old immediate.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::hlt());
        let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        assert_eq!(m.run(), CpuExit::Halt);
        // Patch the immediate through memory, invalidating just that range.
        m.mem.write_u32(Image::CODE_BASE + 1, 2);
        m.invalidate_code_range(Image::CODE_BASE + 1, 4);
        m.cpu.eip = Image::CODE_BASE;
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(Reg::Eax), 2);
    }

    #[test]
    fn charged_overhead_is_tracked_separately() {
        let mut m = Machine::new(CpuKind::Pentium4);
        m.charge(100);
        assert_eq!(m.counters.cycles, 100);
        assert_eq!(m.counters.charged_overhead, 100);
    }
}

#[cfg(test)]
mod extended_isa_exec_tests {
    use super::*;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Cc, InstrList};

    fn run_program(il: &InstrList) -> Machine {
        let code = encode_list(il, Image::CODE_BASE).unwrap().bytes;
        let mut m = Machine::new(CpuKind::Pentium4);
        m.load_image(&Image::from_code(code));
        assert_eq!(m.run(), crate::cpu::CpuExit::Halt);
        m
    }

    #[test]
    fn cmov_moves_only_when_condition_holds() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(99)));
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::imm32(1))); // ZF=1
        il.push_back(create::cmov(Cc::Z, Reg::Ecx, Opnd::reg(Reg::Ebx))); // taken
        il.push_back(create::cmov(Cc::Nz, Reg::Edx, Opnd::reg(Reg::Ebx))); // not taken
        il.push_back(create::hlt());
        let m = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Ecx), 99);
        assert_eq!(m.cpu.reg(Reg::Edx), 0);
    }

    #[test]
    fn rotates() {
        let mut il = InstrList::new();
        il.push_back(create::mov(
            Opnd::reg(Reg::Eax),
            Opnd::imm32(0x8000_0001u32 as i32),
        ));
        il.push_back(create::rol(Opnd::reg(Reg::Eax), Opnd::imm8(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0x1)));
        il.push_back(create::ror(Opnd::reg(Reg::Ebx), Opnd::imm8(4)));
        il.push_back(create::hlt());
        let m = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Eax), 0x3);
        assert_eq!(m.cpu.reg(Reg::Ebx), 0x1000_0000);
    }

    #[test]
    fn bit_test_sets_carry() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0b1000)));
        il.push_back(create::bt(Opnd::reg(Reg::Eax), Opnd::imm8(3)));
        il.push_back(create::sbb(Opnd::reg(Reg::Ecx), Opnd::reg(Reg::Ecx))); // -CF
        il.push_back(create::bt(Opnd::reg(Reg::Eax), Opnd::imm8(2)));
        il.push_back(create::sbb(Opnd::reg(Reg::Edx), Opnd::reg(Reg::Edx)));
        il.push_back(create::hlt());
        let m = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Ecx), 0xFFFF_FFFF); // bit 3 was set
        assert_eq!(m.cpu.reg(Reg::Edx), 0); // bit 2 clear
    }

    #[test]
    fn bswap_reverses_bytes() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0x1234_5678)));
        il.push_back(create::bswap(Reg::Eax));
        il.push_back(create::hlt());
        let m = run_program(&il);
        assert_eq!(m.cpu.reg(Reg::Eax), 0x7856_3412);
    }
}
