//! CPU architectural state, ALU flag semantics, and exit conditions.

use std::fmt;

use rio_ia32::{Cc, Eflags, OpSize, Reg};

/// Architectural register and flags state.
///
/// # Examples
///
/// ```
/// use rio_sim::CpuState;
/// use rio_ia32::Reg;
/// let mut c = CpuState::new();
/// c.set_reg(Reg::Eax, 0x1122_3344);
/// assert_eq!(c.reg(Reg::Ax), 0x3344);
/// assert_eq!(c.reg(Reg::Ah), 0x33);
/// c.set_reg(Reg::Al, 0xFF);
/// assert_eq!(c.reg(Reg::Eax), 0x1122_33FF);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CpuState {
    regs: [u32; 8],
    /// Arithmetic EFLAGS bits (CF/PF/AF/ZF/SF/OF at architectural positions).
    pub eflags: u32,
    /// Instruction pointer.
    pub eip: u32,
}

impl CpuState {
    /// Fresh state (all zero).
    pub fn new() -> CpuState {
        CpuState::default()
    }

    /// Read a register view (zero-extended to 32 bits).
    pub fn reg(&self, r: Reg) -> u32 {
        let full = self.regs[r.parent32().number() as usize];
        match r.size() {
            OpSize::S32 => full,
            OpSize::S16 => full & 0xFFFF,
            OpSize::S8 => {
                if r.number() >= 4 && r.size() == OpSize::S8 && is_high8(r) {
                    (full >> 8) & 0xFF
                } else {
                    full & 0xFF
                }
            }
        }
    }

    /// Write a register view, preserving unaffected bits of the parent.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        let slot = &mut self.regs[r.parent32().number() as usize];
        match r.size() {
            OpSize::S32 => *slot = v,
            OpSize::S16 => *slot = (*slot & 0xFFFF_0000) | (v & 0xFFFF),
            OpSize::S8 => {
                if is_high8(r) {
                    *slot = (*slot & 0xFFFF_00FF) | ((v & 0xFF) << 8);
                } else {
                    *slot = (*slot & 0xFFFF_FF00) | (v & 0xFF);
                }
            }
        }
    }

    /// Whether a condition code holds under the current flags.
    pub fn cc_holds(&self, cc: Cc) -> bool {
        let f = |m: Eflags| self.eflags & m.0 != 0;
        match cc {
            Cc::O => f(Eflags::OF),
            Cc::No => !f(Eflags::OF),
            Cc::B => f(Eflags::CF),
            Cc::Nb => !f(Eflags::CF),
            Cc::Z => f(Eflags::ZF),
            Cc::Nz => !f(Eflags::ZF),
            Cc::Be => f(Eflags::CF) || f(Eflags::ZF),
            Cc::Nbe => !f(Eflags::CF) && !f(Eflags::ZF),
            Cc::S => f(Eflags::SF),
            Cc::Ns => !f(Eflags::SF),
            Cc::P => f(Eflags::PF),
            Cc::Np => !f(Eflags::PF),
            Cc::L => f(Eflags::SF) != f(Eflags::OF),
            Cc::Nl => f(Eflags::SF) == f(Eflags::OF),
            Cc::Le => f(Eflags::ZF) || (f(Eflags::SF) != f(Eflags::OF)),
            Cc::Nle => !f(Eflags::ZF) && (f(Eflags::SF) == f(Eflags::OF)),
        }
    }

    /// Replace the given flag bits with `value`'s bits.
    pub fn set_flags(&mut self, mask: Eflags, value: u32) {
        self.eflags = (self.eflags & !mask.0) | (value & mask.0);
    }
}

fn is_high8(r: Reg) -> bool {
    matches!(r, Reg::Ah | Reg::Ch | Reg::Dh | Reg::Bh)
}

/// The architectural class of a guest fault (the x86 exceptions the subset
/// can raise). `code()` gives the value pushed to guest fault handlers and
/// used to derive process exit codes (`128 + code`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `div`/`idiv` by zero or quotient overflow (x86 #DE).
    DivideError,
    /// Undecodable bytes — or a pseudo-instruction — reached the
    /// instruction pointer (x86 #UD).
    InvalidOpcode,
    /// A memory access touched a guarded (unmapped) region (x86 #PF-like).
    MemFault,
}

impl FaultKind {
    /// Numeric fault code delivered to guest handlers (1-based so that code
    /// 0 never looks like a valid fault).
    pub fn code(self) -> u32 {
        match self {
            FaultKind::DivideError => 1,
            FaultKind::InvalidOpcode => 2,
            FaultKind::MemFault => 3,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::DivideError => "divide error",
            FaultKind::InvalidOpcode => "invalid opcode",
            FaultKind::MemFault => "memory fault",
        })
    }
}

/// Why [`Machine::run`](crate::Machine::run) stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuExit {
    /// `hlt` executed — normal program termination.
    Halt,
    /// `int n` executed — a simulated system call; `eip` points after the
    /// instruction.
    Syscall(u8),
    /// `int3` executed.
    Breakpoint,
    /// Control left the permitted execution regions; `eip` holds the target
    /// address (e.g. a RIO runtime sentinel or unlinked fragment exit).
    OutOfRegion(u32),
    /// The step budget was exhausted.
    FuelExhausted,
    /// A guest fault was raised at a precise boundary: `eip` still points at
    /// the faulting instruction (`pc`) and no architectural side effect of
    /// that instruction has been applied, so the machine can be resumed
    /// (e.g. after delivering the fault to a guest handler).
    Fault {
        /// The fault class.
        kind: FaultKind,
        /// Address of the faulting instruction.
        pc: u32,
        /// Faulting data address for [`FaultKind::MemFault`]; equal to `pc`
        /// for the other kinds.
        addr: u32,
    },
    /// A guest store landed inside a watched code region
    /// ([`Machine::set_watch_regions`](crate::Machine::set_watch_regions)).
    /// Unlike [`CpuExit::Fault`], the store *has committed* and `eip`
    /// already points past the writing instruction, so resuming makes
    /// forward progress even when an instruction overwrites itself.
    CodeWrite {
        /// Address of the writing instruction.
        pc: u32,
        /// Start address of the store that touched a watched region.
        addr: u32,
        /// Length in bytes of the store.
        len: u32,
    },
}

/// Flag-computation results: `(result, new_arith_flags)`.
pub(crate) type AluOut = (u32, u32);

fn width_bits(size: OpSize) -> u32 {
    size.bytes() * 8
}

fn mask_of(size: OpSize) -> u32 {
    match size {
        OpSize::S8 => 0xFF,
        OpSize::S16 => 0xFFFF,
        OpSize::S32 => 0xFFFF_FFFF,
    }
}

fn msb_of(size: OpSize) -> u32 {
    1 << (width_bits(size) - 1)
}

fn szp_flags(res: u32, size: OpSize) -> u32 {
    let mut f = 0u32;
    if res & mask_of(size) == 0 {
        f |= Eflags::ZF.0;
    }
    if res & msb_of(size) != 0 {
        f |= Eflags::SF.0;
    }
    if (res as u8).count_ones().is_multiple_of(2) {
        f |= Eflags::PF.0;
    }
    f
}

/// `a + b + cin` at the given width.
pub(crate) fn alu_add(a: u32, b: u32, cin: u32, size: OpSize) -> AluOut {
    let m = mask_of(size);
    let (a, b) = (a & m, b & m);
    let wide = a as u64 + b as u64 + cin as u64;
    let res = (wide as u32) & m;
    let mut f = szp_flags(res, size);
    if wide > m as u64 {
        f |= Eflags::CF.0;
    }
    if (a ^ res) & (b ^ res) & msb_of(size) != 0 {
        f |= Eflags::OF.0;
    }
    if (a ^ b ^ res) & 0x10 != 0 {
        f |= Eflags::AF.0;
    }
    (res, f)
}

/// `a - b - bin` at the given width.
pub(crate) fn alu_sub(a: u32, b: u32, bin: u32, size: OpSize) -> AluOut {
    let m = mask_of(size);
    let (a, b) = (a & m, b & m);
    let res = a.wrapping_sub(b).wrapping_sub(bin) & m;
    let mut f = szp_flags(res, size);
    if (a as u64) < (b as u64 + bin as u64) {
        f |= Eflags::CF.0;
    }
    if (a ^ b) & (a ^ res) & msb_of(size) != 0 {
        f |= Eflags::OF.0;
    }
    if (a ^ b ^ res) & 0x10 != 0 {
        f |= Eflags::AF.0;
    }
    (res, f)
}

/// Bitwise ops: CF = OF = AF = 0.
pub(crate) fn alu_logic(res: u32, size: OpSize) -> AluOut {
    (res & mask_of(size), szp_flags(res & mask_of(size), size))
}

/// Shift left; `count` must be pre-masked and nonzero.
pub(crate) fn alu_shl(a: u32, count: u32, size: OpSize) -> AluOut {
    let m = mask_of(size);
    let a = a & m;
    let res = (a << count) & m;
    let mut f = szp_flags(res, size);
    let cf = (a >> (width_bits(size) - count)) & 1;
    if cf != 0 {
        f |= Eflags::CF.0;
    }
    if ((res & msb_of(size) != 0) as u32) ^ cf != 0 {
        f |= Eflags::OF.0;
    }
    (res, f)
}

/// Logical shift right; `count` must be pre-masked and nonzero.
pub(crate) fn alu_shr(a: u32, count: u32, size: OpSize) -> AluOut {
    let m = mask_of(size);
    let a = a & m;
    let res = a >> count;
    let mut f = szp_flags(res, size);
    if (a >> (count - 1)) & 1 != 0 {
        f |= Eflags::CF.0;
    }
    if a & msb_of(size) != 0 {
        f |= Eflags::OF.0; // defined for count==1; harmless approximation otherwise
    }
    (res, f)
}

/// Arithmetic shift right; `count` must be pre-masked and nonzero.
pub(crate) fn alu_sar(a: u32, count: u32, size: OpSize) -> AluOut {
    let m = mask_of(size);
    let bits = width_bits(size);
    // Sign-extend to i32 at the operand width, shift, re-mask.
    let sx = ((a & m) << (32 - bits)) as i32 >> (32 - bits);
    let res = ((sx >> count) as u32) & m;
    let mut f = szp_flags(res, size);
    if (sx >> (count - 1)) & 1 != 0 {
        f |= Eflags::CF.0;
    }
    (res, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_flags() {
        // 0xFFFFFFFF + 1 = 0 with carry, zero.
        let (r, f) = alu_add(0xFFFF_FFFF, 1, 0, OpSize::S32);
        assert_eq!(r, 0);
        assert!(f & Eflags::CF.0 != 0);
        assert!(f & Eflags::ZF.0 != 0);
        assert!(f & Eflags::OF.0 == 0);
        // 0x7FFFFFFF + 1 overflows signed.
        let (r, f) = alu_add(0x7FFF_FFFF, 1, 0, OpSize::S32);
        assert_eq!(r, 0x8000_0000);
        assert!(f & Eflags::OF.0 != 0);
        assert!(f & Eflags::SF.0 != 0);
        assert!(f & Eflags::CF.0 == 0);
    }

    #[test]
    fn sub_flags() {
        // 1 - 2 borrows.
        let (r, f) = alu_sub(1, 2, 0, OpSize::S32);
        assert_eq!(r, 0xFFFF_FFFF);
        assert!(f & Eflags::CF.0 != 0);
        assert!(f & Eflags::SF.0 != 0);
        // 0x80000000 - 1 overflows signed.
        let (_, f) = alu_sub(0x8000_0000, 1, 0, OpSize::S32);
        assert!(f & Eflags::OF.0 != 0);
        // equal -> ZF, no CF.
        let (_, f) = alu_sub(5, 5, 0, OpSize::S32);
        assert!(f & Eflags::ZF.0 != 0);
        assert!(f & Eflags::CF.0 == 0);
    }

    #[test]
    fn eight_bit_width_flags() {
        let (r, f) = alu_add(0xFF, 1, 0, OpSize::S8);
        assert_eq!(r, 0);
        assert!(f & Eflags::CF.0 != 0);
        assert!(f & Eflags::ZF.0 != 0);
        let (r, f) = alu_add(0x7F, 1, 0, OpSize::S8);
        assert_eq!(r, 0x80);
        assert!(f & Eflags::OF.0 != 0);
    }

    #[test]
    fn parity_is_low_byte_even_ones() {
        let (_, f) = alu_logic(0b11, OpSize::S32); // two ones -> even -> PF
        assert!(f & Eflags::PF.0 != 0);
        let (_, f) = alu_logic(0b111, OpSize::S32); // three -> odd -> no PF
        assert!(f & Eflags::PF.0 == 0);
    }

    #[test]
    fn shifts() {
        let (r, f) = alu_shl(0x8000_0001, 1, OpSize::S32);
        assert_eq!(r, 2);
        assert!(f & Eflags::CF.0 != 0);
        let (r, f) = alu_shr(0x3, 1, OpSize::S32);
        assert_eq!(r, 1);
        assert!(f & Eflags::CF.0 != 0);
        let (r, _) = alu_sar(0x8000_0000, 4, OpSize::S32);
        assert_eq!(r, 0xF800_0000);
        let (r, _) = alu_sar(0x80, 4, OpSize::S8);
        assert_eq!(r, 0xF8);
    }

    #[test]
    fn sub_register_views() {
        let mut c = CpuState::new();
        c.set_reg(Reg::Ebx, 0xAABB_CCDD);
        assert_eq!(c.reg(Reg::Bl), 0xDD);
        assert_eq!(c.reg(Reg::Bh), 0xCC);
        assert_eq!(c.reg(Reg::Bx), 0xCCDD);
        c.set_reg(Reg::Bh, 0x11);
        assert_eq!(c.reg(Reg::Ebx), 0xAABB_11DD);
    }

    #[test]
    fn cc_evaluation() {
        let mut c = CpuState::new();
        c.eflags = Eflags::ZF.0;
        assert!(c.cc_holds(Cc::Z));
        assert!(c.cc_holds(Cc::Le));
        assert!(!c.cc_holds(Cc::Nz));
        assert!(c.cc_holds(Cc::Nl)); // SF == OF == 0
        c.eflags = Eflags::SF.0;
        assert!(c.cc_holds(Cc::L)); // SF != OF
        c.eflags = Eflags::SF.0 | Eflags::OF.0;
        assert!(c.cc_holds(Cc::Nl));
    }
}
