//! Minimal simulated OS: the `int 0x80` system-call gate and a native runner.
//!
//! The workload programs use these calls, selected by `%eax`:
//!
//! | `%eax` | call          | arguments / result                          |
//! |--------|---------------|---------------------------------------------|
//! | 1      | `exit`        | `%ebx` = status (ends the whole program)    |
//! | 2      | `print_int`   | `%ebx` = value (decimal)                    |
//! | 3      | `print_chr`   | `%bl` = byte                                |
//! | 10     | `spawn`       | `%ebx` = entry pc → `%eax` = thread id      |
//! | 11     | `yield`       | cooperative switch to the next thread       |
//! | 12     | `thread_exit` | ends the calling thread                     |
//!
//! Threads are cooperative: a thread runs until it yields or exits. Each
//! thread gets its own stack carved out below [`Image::STACK_TOP`].
//!
//! Output is buffered in [`Os::output`] — never written to the host's
//! stdout — which is also how the RIO engine keeps *its* I/O transparent
//! with respect to the application's.

use rio_ia32::Reg;

use crate::cpu::CpuExit;
use crate::image::Image;
use crate::machine::Machine;

/// The system-call vector used by workloads.
pub const SYSCALL_VECTOR: u8 = 0x80;

/// Cycle cost of the (simulated) kernel round trip.
pub const SYSCALL_COST: u64 = 200;

/// Per-thread stack size (each thread's stack top is
/// `STACK_TOP - tid * THREAD_STACK_SIZE`).
pub const THREAD_STACK_SIZE: u32 = 0x0010_0000;

/// Maximum threads per program (matching the RIO engine's thread-private
/// cache partitioning, so native and translated runs agree on `spawn`
/// failures).
pub const MAX_THREADS: u32 = 8;

/// What a system call asks the scheduler to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallAction {
    /// Keep running the current thread.
    Continue,
    /// The program has exited (all threads stop).
    ExitProgram,
    /// Spawn a new thread at the given entry pc; `%eax` of the caller has
    /// been set to the new thread id.
    Spawn {
        /// Application entry point of the new thread.
        entry: u32,
    },
    /// Cooperatively yield to the next runnable thread.
    Yield,
    /// The calling thread is done.
    ThreadExit,
}

/// Simulated OS state: program output and exit status.
#[derive(Clone, Debug, Default)]
pub struct Os {
    /// Bytes written by the program (via `print_int` / `print_chr`).
    pub output: String,
    /// Exit status once the program has called `exit` or halted.
    pub exit_code: Option<i32>,
}

impl Os {
    /// Fresh OS state.
    pub fn new() -> Os {
        Os::default()
    }

    /// Handle the system call the machine just raised. Returns `true` if
    /// execution should continue, `false` if the program exited.
    ///
    /// Thread calls report [`SyscallAction::ThreadExit`]-class actions via
    /// [`Os::handle_syscall_threaded`]; through this single-threaded entry
    /// point they are no-ops (`spawn` returns thread id 0 = failure).
    pub fn handle_syscall(&mut self, m: &mut Machine) -> bool {
        !matches!(
            self.handle_syscall_threaded(m, 0),
            SyscallAction::ExitProgram
        )
    }

    /// Handle the system call with thread semantics. `next_tid` is the id a
    /// successful `spawn` will assign (0 reports failure to the caller).
    pub fn handle_syscall_threaded(&mut self, m: &mut Machine, next_tid: u32) -> SyscallAction {
        m.charge(SYSCALL_COST);
        match m.cpu.reg(Reg::Eax) {
            1 => {
                self.exit_code = Some(m.cpu.reg(Reg::Ebx) as i32);
                SyscallAction::ExitProgram
            }
            2 => {
                use std::fmt::Write;
                let v = m.cpu.reg(Reg::Ebx) as i32;
                let _ = writeln!(self.output, "{v}");
                SyscallAction::Continue
            }
            3 => {
                self.output.push(m.cpu.reg(Reg::Bl) as u8 as char);
                SyscallAction::Continue
            }
            10 => {
                let entry = m.cpu.reg(Reg::Ebx);
                m.cpu.set_reg(Reg::Eax, next_tid);
                if next_tid == 0 {
                    SyscallAction::Continue
                } else {
                    SyscallAction::Spawn { entry }
                }
            }
            11 => SyscallAction::Yield,
            12 => SyscallAction::ThreadExit,
            other => {
                // Unknown call: treat as exit with a distinctive status so
                // bugs surface in tests.
                self.exit_code = Some(0x1000 + other as i32);
                SyscallAction::ExitProgram
            }
        }
    }
}

/// Result of running a program to completion.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Exit status (`exit` argument, or 0 for `hlt`).
    pub exit_code: i32,
    /// Buffered program output.
    pub output: String,
    /// Final machine counters.
    pub counters: crate::perf::Counters,
}

/// Execute an image natively (no dynamic translator) to completion.
///
/// This is the baseline every normalized-execution-time experiment divides
/// by.
///
/// # Panics
///
/// Panics if the program faults or leaves its code region — workload
/// programs are expected to be well-formed.
///
/// # Examples
///
/// ```
/// use rio_sim::{run_native, Image, CpuKind};
/// use rio_ia32::{InstrList, create, Opnd, Reg};
/// use rio_ia32::encode::encode_list;
///
/// let mut il = InstrList::new();
/// il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1))); // exit
/// il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7))); // status
/// il.push_back(create::int(0x80));
/// let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
/// let r = run_native(&Image::from_code(code), CpuKind::Pentium4);
/// assert_eq!(r.exit_code, 7);
/// ```
pub fn run_native(image: &Image, kind: crate::perf::CpuKind) -> RunResult {
    use crate::cpu::CpuState;
    use rio_ia32::Reg as R;

    let mut m = Machine::new(kind);
    m.load_image(image);
    let mut os = Os::new();
    // Cooperative threads: parked CPU states waiting for their turn.
    let mut parked: std::collections::VecDeque<CpuState> = std::collections::VecDeque::new();
    let mut next_tid: u32 = 1;
    let spawn_tid = |next: u32| if next < MAX_THREADS { next } else { 0 };
    /// Cost of an OS-level thread switch.
    const THREAD_SWITCH_COST: u64 = 400;

    'run: loop {
        match m.run() {
            CpuExit::Halt => {
                // The current thread is done; resume another or finish.
                match parked.pop_front() {
                    Some(cpu) => {
                        m.cpu = cpu;
                        m.charge(THREAD_SWITCH_COST);
                    }
                    None => {
                        os.exit_code.get_or_insert(0);
                        break 'run;
                    }
                }
            }
            CpuExit::Syscall(SYSCALL_VECTOR) => {
                match os.handle_syscall_threaded(&mut m, spawn_tid(next_tid)) {
                    SyscallAction::Continue => {}
                    SyscallAction::ExitProgram => break 'run,
                    SyscallAction::Spawn { entry } => {
                        let mut cpu = CpuState::new();
                        cpu.eip = entry;
                        cpu.set_reg(R::Esp, Image::STACK_TOP - next_tid * THREAD_STACK_SIZE - 16);
                        parked.push_back(cpu);
                        next_tid += 1;
                    }
                    SyscallAction::Yield => {
                        if let Some(next) = parked.pop_front() {
                            let prev = std::mem::replace(&mut m.cpu, next);
                            parked.push_back(prev);
                            m.charge(THREAD_SWITCH_COST);
                        }
                    }
                    SyscallAction::ThreadExit => match parked.pop_front() {
                        Some(cpu) => {
                            m.cpu = cpu;
                            m.charge(THREAD_SWITCH_COST);
                        }
                        None => {
                            os.exit_code.get_or_insert(0);
                            break 'run;
                        }
                    },
                }
            }
            other => panic!("native run failed: {other:?} at eip={:#x}", m.cpu.eip),
        }
    }
    RunResult {
        exit_code: os.exit_code.unwrap_or(0),
        output: os.output,
        counters: m.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::CpuKind;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, InstrList, Opnd};

    fn program(build: impl FnOnce(&mut InstrList)) -> Image {
        let mut il = InstrList::new();
        build(&mut il);
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn exit_status_propagates() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(42)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.exit_code, 42);
    }

    #[test]
    fn print_int_buffers_output() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(2)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(-5)));
            il.push_back(create::int(SYSCALL_VECTOR));
            il.push_back(create::hlt());
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.output, "-5\n");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn print_chr_appends_bytes() {
        let img = program(|il| {
            for c in [b'h', b'i'] {
                il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(3)));
                il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(c as i32)));
                il.push_back(create::int(SYSCALL_VECTOR));
            }
            il.push_back(create::hlt());
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.output, "hi");
    }

    #[test]
    fn unknown_syscall_exits_with_marker() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(99)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.exit_code, 0x1000 + 99);
    }

    #[test]
    fn syscall_cost_is_charged() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert!(r.counters.charged_overhead >= SYSCALL_COST);
    }
}

#[cfg(test)]
mod thread_tests {
    use super::*;
    use crate::perf::CpuKind;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, InstrList, Opnd, Target};

    /// main prints 'A', yields, prints 'A', exits program with 7;
    /// worker prints 'B', yields, prints 'B', thread-exits.
    fn two_thread_image() -> Image {
        let mut il = InstrList::new();
        let emit_putc = |il: &mut InstrList, c: u8| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(3)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(c as i32)));
            il.push_back(create::int(SYSCALL_VECTOR));
        };
        let emit_yield = |il: &mut InstrList| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(11)));
            il.push_back(create::int(SYSCALL_VECTOR));
        };
        // spawn(worker)
        let patch = il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(10)));
        il.push_back(create::int(SYSCALL_VECTOR));
        emit_putc(&mut il, b'A');
        emit_yield(&mut il);
        emit_putc(&mut il, b'A');
        emit_yield(&mut il);
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7)));
        il.push_back(create::int(SYSCALL_VECTOR));
        // worker:
        let worker = il.push_back(create::label());
        emit_putc(&mut il, b'B');
        emit_yield(&mut il);
        emit_putc(&mut il, b'B');
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(12)));
        il.push_back(create::int(SYSCALL_VECTOR));
        il.push_back(create::hlt());
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let worker_addr = Image::CODE_BASE + enc.offset_of(worker).unwrap();
        il.get_mut(patch)
            .set_src(0, Opnd::imm32(worker_addr as i32));
        let _ = Target::Pc(0);
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn threads_interleave_cooperatively() {
        let r = run_native(&two_thread_image(), CpuKind::Pentium4);
        assert_eq!(r.output, "ABAB");
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn program_exit_stops_all_threads() {
        // main exits before the worker's second print.
        let r = run_native(&two_thread_image(), CpuKind::Pentium4);
        assert_eq!(r.exit_code, 7); // from main's exit(7), not worker
    }
}
