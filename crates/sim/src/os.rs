//! Minimal simulated OS: the `int 0x80` system-call gate and a native runner.
//!
//! The workload programs use these calls, selected by `%eax`:
//!
//! | `%eax` | call          | arguments / result                          |
//! |--------|---------------|---------------------------------------------|
//! | 1      | `exit`        | `%ebx` = status (ends the whole program)    |
//! | 2      | `print_int`   | `%ebx` = value (decimal)                    |
//! | 3      | `print_chr`   | `%bl` = byte                                |
//! | 10     | `spawn`       | `%ebx` = entry pc → `%eax` = thread id      |
//! | 11     | `yield`       | cooperative switch to the next thread       |
//! | 12     | `thread_exit` | ends the calling thread                     |
//! | 20     | `set_fault_handler` | `%ebx` = handler pc (0 clears) → `%eax` = previous handler |
//!
//! Threads are cooperative: a thread runs until it yields or exits. Each
//! thread gets its own stack carved out below [`Image::STACK_TOP`].
//!
//! Output is buffered in [`Os::output`] — never written to the host's
//! stdout — which is also how the RIO engine keeps *its* I/O transparent
//! with respect to the application's.

use rio_ia32::Reg;

use crate::cpu::{CpuExit, FaultKind};
use crate::image::Image;
use crate::machine::{ExecRegion, Machine};

/// The system-call vector used by workloads.
pub const SYSCALL_VECTOR: u8 = 0x80;

/// Cycle cost of the (simulated) kernel round trip.
pub const SYSCALL_COST: u64 = 200;

/// `%eax` selector of the `set_fault_handler` system call.
pub const SET_FAULT_HANDLER_SYSCALL: u32 = 20;

/// Cycle cost of delivering a fault to a guest handler (kernel entry +
/// frame push + redirect). Charged identically in native, emulate, and
/// cache modes so delivery does not perturb differential comparisons.
pub const FAULT_DELIVERY_COST: u64 = 350;

/// Hard cap on delivered faults per program. A handler that itself faults
/// (or re-executes a faulting instruction forever) would otherwise loop;
/// past the cap the fault is treated as unhandled — identically in native
/// and translated runs.
pub const MAX_FAULT_DELIVERIES: u32 = 1024;

/// Per-thread stack size (each thread's stack top is
/// `STACK_TOP - tid * THREAD_STACK_SIZE`).
pub const THREAD_STACK_SIZE: u32 = 0x0010_0000;

/// Maximum threads per program (matching the RIO engine's thread-private
/// cache partitioning, so native and translated runs agree on `spawn`
/// failures).
pub const MAX_THREADS: u32 = 8;

/// What a system call asks the scheduler to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallAction {
    /// Keep running the current thread.
    Continue,
    /// The program has exited (all threads stop).
    ExitProgram,
    /// Spawn a new thread at the given entry pc; `%eax` of the caller has
    /// been set to the new thread id.
    Spawn {
        /// Application entry point of the new thread.
        entry: u32,
    },
    /// Cooperatively yield to the next runnable thread.
    Yield,
    /// The calling thread is done.
    ThreadExit,
}

/// Simulated OS state: program output, exit status, and the registered
/// guest fault handler.
#[derive(Clone, Debug, Default)]
pub struct Os {
    /// Bytes written by the program (via `print_int` / `print_chr`).
    pub output: String,
    /// Exit status once the program has called `exit` or halted.
    pub exit_code: Option<i32>,
    /// Guest fault handler registered via `set_fault_handler` (syscall 20).
    pub fault_handler: Option<u32>,
    /// Faults delivered so far (bounded by [`MAX_FAULT_DELIVERIES`]).
    pub fault_deliveries: u32,
}

impl Os {
    /// Fresh OS state.
    pub fn new() -> Os {
        Os::default()
    }

    /// Handle the system call the machine just raised. Returns `true` if
    /// execution should continue, `false` if the program exited.
    ///
    /// Thread calls report [`SyscallAction::ThreadExit`]-class actions via
    /// [`Os::handle_syscall_threaded`]; through this single-threaded entry
    /// point they are no-ops (`spawn` returns thread id 0 = failure).
    pub fn handle_syscall(&mut self, m: &mut Machine) -> bool {
        !matches!(
            self.handle_syscall_threaded(m, 0),
            SyscallAction::ExitProgram
        )
    }

    /// Handle the system call with thread semantics. `next_tid` is the id a
    /// successful `spawn` will assign (0 reports failure to the caller).
    pub fn handle_syscall_threaded(&mut self, m: &mut Machine, next_tid: u32) -> SyscallAction {
        m.charge(SYSCALL_COST);
        match m.cpu.reg(Reg::Eax) {
            1 => {
                self.exit_code = Some(m.cpu.reg(Reg::Ebx) as i32);
                SyscallAction::ExitProgram
            }
            2 => {
                use std::fmt::Write;
                let v = m.cpu.reg(Reg::Ebx) as i32;
                let _ = writeln!(self.output, "{v}");
                SyscallAction::Continue
            }
            3 => {
                self.output.push(m.cpu.reg(Reg::Bl) as u8 as char);
                SyscallAction::Continue
            }
            10 => {
                let entry = m.cpu.reg(Reg::Ebx);
                m.cpu.set_reg(Reg::Eax, next_tid);
                if next_tid == 0 {
                    SyscallAction::Continue
                } else {
                    SyscallAction::Spawn { entry }
                }
            }
            11 => SyscallAction::Yield,
            12 => SyscallAction::ThreadExit,
            SET_FAULT_HANDLER_SYSCALL => {
                let new = m.cpu.reg(Reg::Ebx);
                let old = self.fault_handler.take().unwrap_or(0);
                if new != 0 {
                    self.fault_handler = Some(new);
                }
                m.cpu.set_reg(Reg::Eax, old);
                SyscallAction::Continue
            }
            other => {
                // Unknown call: treat as exit with a distinctive status so
                // bugs surface in tests.
                self.exit_code = Some(0x1000 + other as i32);
                SyscallAction::ExitProgram
            }
        }
    }

    /// Decide whether the next fault can be delivered to a guest handler,
    /// consuming one delivery slot on success. Both the native runner and
    /// the RIO engine route their decision through here so degradation
    /// behavior (the [`MAX_FAULT_DELIVERIES`] cap) is identical.
    pub fn take_delivery_target(&mut self) -> Option<u32> {
        let handler = self.fault_handler?;
        if self.fault_deliveries >= MAX_FAULT_DELIVERIES {
            return None;
        }
        self.fault_deliveries += 1;
        Some(handler)
    }

    /// Exit status for an unhandled fault of the given kind
    /// (`128 + code`, mirroring the fatal-signal shell convention:
    /// 129 divide error, 130 invalid opcode, 131 memory fault).
    pub fn fault_exit_code(kind: FaultKind) -> i32 {
        128 + kind.code() as i32
    }
}

/// The pc at which a handler's `ret` resumes execution: the address after
/// the faulting application instruction (skip-the-instruction semantics),
/// or the faulting pc itself if it does not decode.
pub fn resume_pc_after(m: &Machine, app_pc: u32) -> u32 {
    let mut buf = [0u8; 16];
    m.mem.read_bytes(app_pc, &mut buf);
    match rio_ia32::decode_instr(&buf, app_pc) {
        Ok((_, len)) => app_pc.wrapping_add(len),
        Err(_) => app_pc,
    }
}

/// Deliver a fault to a guest handler: push the fault frame and redirect.
///
/// The frame, from deepest to top of stack, is `app_pc`, the fault code
/// ([`FaultKind::code`]), then `resume_pc` — so after a standard handler
/// prologue (`push %ebp; mov %ebp, %esp`) the code is at `8(%ebp)` and the
/// faulting pc at `12(%ebp)`, and the handler's `ret` resumes at
/// `resume_pc`. All register state other than `%esp`/`%eip` is the faulting
/// instruction's (transparency: the handler observes original state).
pub fn deliver_fault(m: &mut Machine, handler: u32, kind: FaultKind, app_pc: u32, resume_pc: u32) {
    let mut esp = m.cpu.reg(Reg::Esp);
    for v in [app_pc, kind.code(), resume_pc] {
        esp = esp.wrapping_sub(4);
        m.mem.write_u32(esp, v);
    }
    m.cpu.set_reg(Reg::Esp, esp);
    m.cpu.eip = handler;
    m.charge(FAULT_DELIVERY_COST);
}

/// Result of running a program to completion.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Exit status (`exit` argument, or 0 for `hlt`).
    pub exit_code: i32,
    /// Buffered program output.
    pub output: String,
    /// Final machine counters.
    pub counters: crate::perf::Counters,
    /// Digest of the final application-visible state (registers + image
    /// data segments; see [`Machine::app_state_digest`]) — the baseline the
    /// differential fuzzer compares engine runs against.
    pub state_digest: u64,
}

/// Execute an image natively (no dynamic translator) to completion.
///
/// This is the baseline every normalized-execution-time experiment divides
/// by. Guest faults are delivered to the registered handler (syscall 20),
/// or end the run with exit code `128 + kind` when unhandled — never a
/// panic.
///
/// # Examples
///
/// ```
/// use rio_sim::{run_native, Image, CpuKind};
/// use rio_ia32::{InstrList, create, Opnd, Reg};
/// use rio_ia32::encode::encode_list;
///
/// let mut il = InstrList::new();
/// il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1))); // exit
/// il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7))); // status
/// il.push_back(create::int(0x80));
/// let code = encode_list(&il, Image::CODE_BASE).unwrap().bytes;
/// let r = run_native(&Image::from_code(code), CpuKind::Pentium4);
/// assert_eq!(r.exit_code, 7);
/// ```
pub fn run_native(image: &Image, kind: crate::perf::CpuKind) -> RunResult {
    run_native_guarded(image, kind, Vec::new())
}

/// As [`run_native`], with guarded data regions installed before execution
/// (accesses into them raise [`FaultKind::MemFault`]).
pub fn run_native_guarded(
    image: &Image,
    kind: crate::perf::CpuKind,
    guards: Vec<ExecRegion>,
) -> RunResult {
    use crate::cpu::CpuState;
    use rio_ia32::Reg as R;

    let mut m = Machine::new(kind);
    m.load_image(image);
    m.set_guard_regions(guards);
    let mut os = Os::new();
    // Cooperative threads: parked CPU states waiting for their turn.
    let mut parked: std::collections::VecDeque<CpuState> = std::collections::VecDeque::new();
    let mut next_tid: u32 = 1;
    let spawn_tid = |next: u32| if next < MAX_THREADS { next } else { 0 };
    /// Cost of an OS-level thread switch.
    const THREAD_SWITCH_COST: u64 = 400;

    'run: loop {
        match m.run() {
            CpuExit::Halt => {
                // The current thread is done; resume another or finish.
                match parked.pop_front() {
                    Some(cpu) => {
                        m.cpu = cpu;
                        m.charge(THREAD_SWITCH_COST);
                    }
                    None => {
                        os.exit_code.get_or_insert(0);
                        break 'run;
                    }
                }
            }
            CpuExit::Syscall(SYSCALL_VECTOR) => {
                match os.handle_syscall_threaded(&mut m, spawn_tid(next_tid)) {
                    SyscallAction::Continue => {}
                    SyscallAction::ExitProgram => break 'run,
                    SyscallAction::Spawn { entry } => {
                        let mut cpu = CpuState::new();
                        cpu.eip = entry;
                        cpu.set_reg(R::Esp, Image::STACK_TOP - next_tid * THREAD_STACK_SIZE - 16);
                        parked.push_back(cpu);
                        next_tid += 1;
                    }
                    SyscallAction::Yield => {
                        if let Some(next) = parked.pop_front() {
                            let prev = std::mem::replace(&mut m.cpu, next);
                            parked.push_back(prev);
                            m.charge(THREAD_SWITCH_COST);
                        }
                    }
                    SyscallAction::ThreadExit => match parked.pop_front() {
                        Some(cpu) => {
                            m.cpu = cpu;
                            m.charge(THREAD_SWITCH_COST);
                        }
                        None => {
                            os.exit_code.get_or_insert(0);
                            break 'run;
                        }
                    },
                }
            }
            CpuExit::Fault { kind, pc, addr: _ } => match os.take_delivery_target() {
                Some(handler) => {
                    let resume = resume_pc_after(&m, pc);
                    deliver_fault(&mut m, handler, kind, pc, resume);
                }
                None => {
                    os.exit_code = Some(Os::fault_exit_code(kind));
                    break 'run;
                }
            },
            other => {
                // Breakpoint / runaway control flow in a workload program:
                // finish with a distinctive status instead of panicking.
                let _ = other;
                os.exit_code = Some(0x2000);
                break 'run;
            }
        }
    }
    RunResult {
        exit_code: os.exit_code.unwrap_or(0),
        output: os.output,
        counters: m.counters,
        state_digest: m.app_state_digest(image),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::CpuKind;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, InstrList, Opnd};

    fn program(build: impl FnOnce(&mut InstrList)) -> Image {
        let mut il = InstrList::new();
        build(&mut il);
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn exit_status_propagates() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(42)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.exit_code, 42);
    }

    #[test]
    fn print_int_buffers_output() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(2)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(-5)));
            il.push_back(create::int(SYSCALL_VECTOR));
            il.push_back(create::hlt());
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.output, "-5\n");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn print_chr_appends_bytes() {
        let img = program(|il| {
            for c in [b'h', b'i'] {
                il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(3)));
                il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(c as i32)));
                il.push_back(create::int(SYSCALL_VECTOR));
            }
            il.push_back(create::hlt());
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.output, "hi");
    }

    #[test]
    fn unknown_syscall_exits_with_marker() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(99)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert_eq!(r.exit_code, 0x1000 + 99);
    }

    #[test]
    fn syscall_cost_is_charged() {
        let img = program(|il| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0)));
            il.push_back(create::int(SYSCALL_VECTOR));
        });
        let r = run_native(&img, CpuKind::Pentium4);
        assert!(r.counters.charged_overhead >= SYSCALL_COST);
    }
}

#[cfg(test)]
mod thread_tests {
    use super::*;
    use crate::perf::CpuKind;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, InstrList, Opnd, Target};

    /// main prints 'A', yields, prints 'A', exits program with 7;
    /// worker prints 'B', yields, prints 'B', thread-exits.
    fn two_thread_image() -> Image {
        let mut il = InstrList::new();
        let emit_putc = |il: &mut InstrList, c: u8| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(3)));
            il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(c as i32)));
            il.push_back(create::int(SYSCALL_VECTOR));
        };
        let emit_yield = |il: &mut InstrList| {
            il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(11)));
            il.push_back(create::int(SYSCALL_VECTOR));
        };
        // spawn(worker)
        let patch = il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(10)));
        il.push_back(create::int(SYSCALL_VECTOR));
        emit_putc(&mut il, b'A');
        emit_yield(&mut il);
        emit_putc(&mut il, b'A');
        emit_yield(&mut il);
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7)));
        il.push_back(create::int(SYSCALL_VECTOR));
        // worker:
        let worker = il.push_back(create::label());
        emit_putc(&mut il, b'B');
        emit_yield(&mut il);
        emit_putc(&mut il, b'B');
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(12)));
        il.push_back(create::int(SYSCALL_VECTOR));
        il.push_back(create::hlt());
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let worker_addr = Image::CODE_BASE + enc.offset_of(worker).unwrap();
        il.get_mut(patch)
            .set_src(0, Opnd::imm32(worker_addr as i32));
        let _ = Target::Pc(0);
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn threads_interleave_cooperatively() {
        let r = run_native(&two_thread_image(), CpuKind::Pentium4);
        assert_eq!(r.output, "ABAB");
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn program_exit_stops_all_threads() {
        // main exits before the worker's second print.
        let r = run_native(&two_thread_image(), CpuKind::Pentium4);
        assert_eq!(r.exit_code, 7); // from main's exit(7), not worker
    }
}
