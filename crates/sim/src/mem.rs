//! Sparse flat 32-bit memory.
//!
//! Pages are allocated lazily on first write; reads of untouched memory
//! return zero. This keeps multi-gigabyte address-space layouts (application
//! image low, stack in the middle, code cache high) cheap to model.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse, lazily allocated 4 GiB byte-addressable memory.
///
/// # Examples
///
/// ```
/// use rio_sim::Memory;
/// let mut m = Memory::new();
/// m.write_u32(0x0800_0000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x0800_0000), 0xdead_beef);
/// assert_eq!(m.read_u32(0x0800_0004), 0); // untouched memory reads zero
/// ```
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Memory({} pages)", self.pages.len())
    }
}

impl Memory {
    /// Create an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident pages (for memory accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = v;
    }

    /// Read a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Write a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            match self.page(addr) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().unwrap()),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Write a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&v.to_le_bytes());
        } else {
            for (i, b) in v.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Copy a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut a = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(rest.len());
            self.page_mut(a)[off..off + n].copy_from_slice(&rest[..n]);
            a = a.wrapping_add(n as u32);
            rest = &rest[n..];
        }
    }

    /// Copy `buf.len()` bytes out of memory starting at `addr`.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) {
        let mut a = addr;
        for b in buf.iter_mut() {
            *b = self.read_u8(a);
            a = a.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xFFFF_FFFC), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 0xAB);
        m.write_u16(0x2000, 0xBEEF);
        m.write_u32(0x3000, 0x1234_5678);
        assert_eq!(m.read_u8(0x1000), 0xAB);
        assert_eq!(m.read_u16(0x2000), 0xBEEF);
        assert_eq!(m.read_u32(0x3000), 0x1234_5678);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_u32(0x1FFE, 0xAABB_CCDD);
        assert_eq!(m.read_u32(0x1FFE), 0xAABB_CCDD);
        assert_eq!(m.read_u8(0x1FFE), 0xDD);
        assert_eq!(m.read_u8(0x2001), 0xAA);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_write_spanning_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x0FFF_F0F0, &data);
        let mut out = vec![0u8; 256];
        m.read_bytes(0x0FFF_F0F0, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }
}
