//! # rio-sim — simulated IA-32 machine
//!
//! The execution substrate for the RIO dynamic code modification system.
//! The original system ran its code cache natively on Pentium hardware; this
//! crate substitutes a simulated machine that **executes the encoded bytes**
//! produced by [`rio_ia32`]'s encoder through an interpreter, together with a
//! cycle cost model capturing the microarchitectural effects the paper's
//! evaluation turns on:
//!
//! * a 2-bit-counter conditional branch predictor,
//! * a branch target buffer (BTB) for indirect jumps — the *only* predictor
//!   available to translated indirect branches,
//! * a return address stack (RAS) that engages only for real `call`/`ret`
//!   pairs — which is why native execution predicts returns well while the
//!   translated code (returns become indirect jumps) does not, exactly the
//!   effect discussed in §5 of the paper,
//! * per-opcode costs including the Pentium 4 `inc`/`dec` flags-merge
//!   penalty targeted by the strength-reduction client.
//!
//! ## Example
//!
//! ```
//! use rio_sim::{Machine, Image, CpuExit, CpuKind};
//! use rio_ia32::{InstrList, create, Opnd, Reg, encode_instr};
//! use rio_ia32::encode::encode_list;
//!
//! // A tiny program: eax = 6 * 7, then halt.
//! let mut il = InstrList::new();
//! il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(6)));
//! il.push_back(create::imul3(Reg::Eax, Opnd::reg(Reg::Eax), Opnd::imm32(7)));
//! il.push_back(create::hlt());
//! let code = encode_list(&il, Image::CODE_BASE)?.bytes;
//!
//! let mut m = Machine::new(CpuKind::Pentium4);
//! m.load_image(&Image::from_code(code));
//! let exit = m.run();
//! assert_eq!(exit, CpuExit::Halt);
//! assert_eq!(m.cpu.reg(Reg::Eax), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod cpu;
pub mod image;
pub mod machine;
pub mod mem;
pub mod os;
pub mod perf;

pub use cpu::{CpuExit, CpuState, FaultKind};
pub use image::Image;
pub use machine::{ExecRegion, Machine};
pub use mem::Memory;
pub use os::{
    deliver_fault, resume_pc_after, run_native, run_native_guarded, Os, RunResult,
    FAULT_DELIVERY_COST, MAX_FAULT_DELIVERIES, SET_FAULT_HANDLER_SYSCALL, SYSCALL_VECTOR,
};
pub use perf::{CostModel, Counters, CpuKind};

pub use rio_ia32 as ia32;
