//! Property-style sweeps driven by a deterministic xorshift PRNG (no
//! external dependencies): decoding is the left inverse of encoding on
//! random instruction soup, and the liveness analysis is invariant under an
//! encode/decode round-trip of a whole list.

use rio_ia32::encode::encode_list;
use rio_ia32::liveness::Liveness;
use rio_ia32::{
    create, decode_instr, effects, encode_instr, Instr, InstrList, Level, MemRef, OpSize, Opnd,
    Reg, Target,
};

/// xorshift64* — deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Semantic equality: everything the engine relies on, ignoring the raw
/// byte image (re-encoding may legally pick a different template, e.g.
/// rel8 vs rel32 for a direct branch).
fn semantically_equal(a: &Instr, b: &Instr) -> bool {
    a.opcode() == b.opcode()
        && a.srcs() == b.srcs()
        && a.dsts() == b.dsts()
        && a.target() == b.target()
        && effects(a).uses == effects(b).uses
        && effects(a).writes == effects(b).writes
}

#[test]
fn decode_is_left_inverse_of_encode_on_random_soup() {
    let mut rng = Rng::new(0x5EED_CAFE);
    let pc = 0x40_0000;
    let mut decoded = 0u32;
    for _ in 0..60_000 {
        let mut bytes = [0u8; 12];
        for b in &mut bytes {
            *b = rng.next_u64() as u8;
        }
        let Ok((instr, len)) = decode_instr(&bytes, pc) else {
            continue;
        };
        decoded += 1;
        let encoded = encode_instr(&instr, pc, &|_| None)
            .unwrap_or_else(|e| panic!("decoded {bytes:02x?} but cannot re-encode: {e:?}"));
        let (again, len2) = decode_instr(&encoded, pc)
            .unwrap_or_else(|e| panic!("re-encoded {encoded:02x?} does not decode: {e:?}"));
        assert!(
            semantically_equal(&instr, &again),
            "round-trip changed {bytes:02x?} (len {len}) into {encoded:02x?} (len {len2}):\
             \n  {instr:?}\n  {again:?}"
        );
        // When the encoder reproduces the original bytes (the common case),
        // the round-trip must be the strict identity.
        if encoded[..] == bytes[..len as usize] {
            assert_eq!(again, instr);
        }
    }
    // The sweep must actually exercise the decoder, not skip everything.
    assert!(decoded > 5_000, "only {decoded} random buffers decoded");
}

const REGS: [Reg; 7] = [
    Reg::Eax,
    Reg::Ebx,
    Reg::Ecx,
    Reg::Edx,
    Reg::Esi,
    Reg::Edi,
    Reg::Ebp,
];

/// One random non-CTI instruction over the general registers.
fn random_instr(rng: &mut Rng) -> Instr {
    let r = |rng: &mut Rng| REGS[rng.below(REGS.len() as u64) as usize];
    let mem = |rng: &mut Rng| MemRef::base_disp(r(rng), (rng.below(64) as i32) * 4, OpSize::S32);
    let rm = |rng: &mut Rng| {
        if rng.below(3) == 0 {
            Opnd::Mem(mem(rng))
        } else {
            Opnd::reg(r(rng))
        }
    };
    let src = |rng: &mut Rng| match rng.below(4) {
        0 => Opnd::imm32(rng.below(1 << 20) as i32),
        1 => Opnd::Mem(mem(rng)),
        _ => Opnd::reg(r(rng)),
    };
    match rng.below(12) {
        0 => create::mov(Opnd::reg(r(rng)), src(rng)),
        1 => create::mov(Opnd::Mem(mem(rng)), Opnd::reg(r(rng))),
        2 => create::add(Opnd::reg(r(rng)), src(rng)),
        3 => create::sub(Opnd::reg(r(rng)), src(rng)),
        4 => create::adc(Opnd::reg(r(rng)), Opnd::reg(r(rng))),
        5 => create::and(Opnd::reg(r(rng)), src(rng)),
        6 => create::xor(Opnd::reg(r(rng)), Opnd::reg(r(rng))),
        7 => create::cmp(Opnd::reg(r(rng)), src(rng)),
        8 => create::test(Opnd::reg(r(rng)), Opnd::reg(r(rng))),
        9 => create::inc(rm(rng)),
        10 => create::dec(rm(rng)),
        _ => create::lea(r(rng), mem(rng)),
    }
}

#[test]
fn liveness_is_invariant_under_encode_decode_roundtrip() {
    let mut rng = Rng::new(0xD1CE_D1CE);
    let pc = 0x40_0000;
    for _ in 0..2_000 {
        // A random straight-line block ending in a direct jump.
        let mut il = InstrList::new();
        for _ in 0..(4 + rng.below(8)) {
            il.push_back(random_instr(&mut rng));
        }
        il.push_back(create::jmp(Target::Pc(0x41_0000)));

        let bytes = encode_list(&il, pc).expect("random block encodes").bytes;
        let back = InstrList::decode_block(&bytes, pc, Level::L3).expect("re-decodes");

        let ids_a: Vec<_> = il.ids().collect();
        let ids_b: Vec<_> = back.ids().collect();
        assert_eq!(ids_a.len(), ids_b.len(), "instruction count changed");

        let live_a = Liveness::analyze(&il);
        let live_b = Liveness::analyze(&back);
        for (ia, ib) in ids_a.iter().zip(&ids_b) {
            assert_eq!(
                live_a.live_before(*ia),
                live_b.live_before(*ib),
                "live-before diverged at {:?} vs {:?}",
                il.get(*ia),
                back.get(*ib)
            );
            assert_eq!(
                live_a.live_after(*ia),
                live_b.live_after(*ib),
                "live-after diverged at {:?} vs {:?}",
                il.get(*ia),
                back.get(*ib)
            );
        }
    }
}
