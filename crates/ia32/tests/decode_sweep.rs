//! Exhaustive decoder sweeps: the three decoding strategies must agree on
//! validity and length for every possible opcode byte (and two-byte opcode),
//! across representative ModRM shapes.

use rio_ia32::{decode_instr, decode_opcode, decode_sizeof};

/// ModRM bytes covering every mod/rm shape incl. SIB and disp forms.
const MODRMS: [u8; 9] = [
    0xC0, // mod=3 reg-reg
    0x00, // [eax]
    0x05, // disp32 absolute
    0x04, // SIB
    0x45, // disp8(ebp)
    0x85, // disp32(ebp)
    0x44, // SIB + disp8
    0x24, // SIB esp base
    0xE1, // mod=3, digit 4 (shl-group shapes)
];

fn check(bytes: &[u8]) {
    let size = decode_sizeof(bytes);
    let op = decode_opcode(bytes);
    let full = decode_instr(bytes, 0x40_0000);
    match (&size, &op, &full) {
        (Ok(n), Ok((_, m)), Ok((_, k))) => {
            assert_eq!(n, m, "sizeof vs opcode length on {bytes:02x?}");
            assert_eq!(n, k, "sizeof vs full length on {bytes:02x?}");
        }
        (Err(_), Err(_), Err(_)) => {}
        _ => panic!(
            "strategies disagree on {bytes:02x?}: sizeof={size:?} opcode={:?} full={}",
            op.as_ref().map(|(o, n)| (*o, *n)),
            full.is_ok()
        ),
    }
}

#[test]
fn all_one_byte_opcodes_agree_across_strategies() {
    for b0 in 0u8..=255 {
        if b0 == 0x0F {
            continue; // two-byte escape, covered below
        }
        for modrm in MODRMS {
            // Pad generously: enough bytes for any SIB/disp/imm shape.
            let bytes = [b0, modrm, 0x24, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77];
            check(&bytes);
        }
    }
}

#[test]
fn all_two_byte_opcodes_agree_across_strategies() {
    for b1 in 0u8..=255 {
        for modrm in MODRMS {
            let bytes = [0x0F, b1, modrm, 0x24, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66];
            check(&bytes);
        }
    }
}

#[test]
fn truncation_at_every_length_is_an_error_not_a_panic() {
    // Take several real instructions and feed every proper prefix.
    let samples: [&[u8]; 6] = [
        &[0x8b, 0x84, 0x8d, 0x11, 0x22, 0x33, 0x44], // mov with SIB+disp32
        &[0x81, 0xc0, 0x78, 0x56, 0x34, 0x12],       // add imm32
        &[0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00],       // jnl rel32
        &[0x0f, 0xba, 0xe0, 0x07],                   // bt imm8
        &[0xc7, 0x45, 0xfc, 1, 0, 0, 0],             // mov imm -> mem
        &[0xf7, 0xc3, 5, 0, 0, 0],                   // test imm32
    ];
    for s in samples {
        assert!(decode_sizeof(s).is_ok());
        for cut in 0..s.len() {
            let prefix = &s[..cut];
            assert!(
                decode_sizeof(prefix).is_err(),
                "prefix of length {cut} of {s:02x?} must not decode"
            );
            assert!(decode_instr(prefix, 0).is_err());
        }
    }
}
