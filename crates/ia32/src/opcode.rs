//! Opcode definitions and per-opcode metadata.
//!
//! Each [`Opcode`] carries the metadata the rest of the system needs without
//! consulting encoding tables: mnemonic, arithmetic-eflags effect (the Level 2
//! payload), and control-transfer classification.

use std::fmt;

use crate::eflags::{Eflags, EflagsEffect};

/// IA-32 condition codes, numbered as in the `Jcc`/`SETcc` opcode encodings
/// (`0x70+cc`, `0x0F 0x80+cc`, `0x0F 0x90+cc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cc {
    /// Overflow.
    O = 0,
    /// Not overflow.
    No = 1,
    /// Below (unsigned <), aka carry.
    B = 2,
    /// Not below (unsigned >=).
    Nb = 3,
    /// Zero / equal.
    Z = 4,
    /// Not zero / not equal.
    Nz = 5,
    /// Below or equal (unsigned <=).
    Be = 6,
    /// Not below or equal (unsigned >).
    Nbe = 7,
    /// Sign (negative).
    S = 8,
    /// Not sign.
    Ns = 9,
    /// Parity even.
    P = 10,
    /// Parity odd.
    Np = 11,
    /// Less (signed <).
    L = 12,
    /// Not less (signed >=).
    Nl = 13,
    /// Less or equal (signed <=).
    Le = 14,
    /// Not less or equal (signed >).
    Nle = 15,
}

impl Cc {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cc; 16] = [
        Cc::O,
        Cc::No,
        Cc::B,
        Cc::Nb,
        Cc::Z,
        Cc::Nz,
        Cc::Be,
        Cc::Nbe,
        Cc::S,
        Cc::Ns,
        Cc::P,
        Cc::Np,
        Cc::L,
        Cc::Nl,
        Cc::Le,
        Cc::Nle,
    ];

    /// Encoding number (0..=15).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Condition code from its encoding number.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 16`.
    pub fn from_code(code: u8) -> Cc {
        Cc::ALL[code as usize]
    }

    /// The logically negated condition (`Z` ↔ `Nz`, etc.). Flipping the low
    /// encoding bit negates any IA-32 condition.
    pub fn negate(self) -> Cc {
        Cc::from_code(self.code() ^ 1)
    }

    /// The arithmetic flags this condition reads.
    pub fn flags_read(self) -> Eflags {
        match self {
            Cc::O | Cc::No => Eflags::OF,
            Cc::B | Cc::Nb => Eflags::CF,
            Cc::Z | Cc::Nz => Eflags::ZF,
            Cc::Be | Cc::Nbe => Eflags::CF | Eflags::ZF,
            Cc::S | Cc::Ns => Eflags::SF,
            Cc::P | Cc::Np => Eflags::PF,
            Cc::L | Cc::Nl => Eflags::SF | Eflags::OF,
            Cc::Le | Cc::Nle => Eflags::SF | Eflags::OF | Eflags::ZF,
        }
    }

    /// Mnemonic suffix (`"z"`, `"nl"`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cc::O => "o",
            Cc::No => "no",
            Cc::B => "b",
            Cc::Nb => "nb",
            Cc::Z => "z",
            Cc::Nz => "nz",
            Cc::Be => "be",
            Cc::Nbe => "nbe",
            Cc::S => "s",
            Cc::Ns => "ns",
            Cc::P => "p",
            Cc::Np => "np",
            Cc::L => "l",
            Cc::Nl => "nl",
            Cc::Le => "le",
            Cc::Nle => "nle",
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// The instruction opcodes of the supported IA-32 subset.
///
/// Direct and indirect control transfers are distinct opcodes (`Jmp` vs
/// `JmpInd`, `Call` vs `CallInd`), mirroring DynamoRIO's `OP_jmp` /
/// `OP_jmp_ind` split: the dynamic translator treats them completely
/// differently (linking vs hashtable lookup).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Load effective address.
    Lea,
    /// Move register/memory/immediate.
    Mov,
    /// Move with zero extension.
    Movzx,
    /// Move with sign extension.
    Movsx,
    /// Integer add.
    Add,
    /// Bitwise or.
    Or,
    /// Add with carry.
    Adc,
    /// Subtract with borrow.
    Sbb,
    /// Bitwise and.
    And,
    /// Integer subtract.
    Sub,
    /// Bitwise xor.
    Xor,
    /// Compare (subtract, flags only).
    Cmp,
    /// Increment by one (does not write CF).
    Inc,
    /// Decrement by one (does not write CF).
    Dec,
    /// Two's-complement negate.
    Neg,
    /// One's-complement not (no flags).
    Not,
    /// Logical compare (and, flags only).
    Test,
    /// Exchange.
    Xchg,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Signed multiply (one-, two-, or three-operand forms).
    Imul,
    /// Unsigned multiply (`edx:eax = eax * r/m`).
    Mul,
    /// Unsigned divide.
    Div,
    /// Signed divide.
    Idiv,
    /// Sign-extend `eax` into `edx:eax`.
    Cdq,
    /// Sign-extend `ax` into `eax`.
    Cwde,
    /// Push onto stack.
    Push,
    /// Pop from stack.
    Pop,
    /// Push EFLAGS.
    Pushfd,
    /// Pop EFLAGS.
    Popfd,
    /// Load AH from flags.
    Lahf,
    /// Store AH into flags.
    Sahf,
    /// Set byte on condition.
    Set(Cc),
    /// Conditional move (`cmovcc r32, r/m32`).
    Cmov(Cc),
    /// Rotate left.
    Rol,
    /// Rotate right.
    Ror,
    /// Bit test (`bt r/m32, r32|imm8`): sets CF to the selected bit.
    Bt,
    /// Byte-swap a 32-bit register.
    Bswap,
    /// No operation.
    Nop,
    /// Breakpoint trap.
    Int3,
    /// Software interrupt (used as the simulated system-call gate).
    Int,
    /// Halt.
    Hlt,
    /// Direct unconditional jump.
    Jmp,
    /// Indirect unconditional jump.
    JmpInd,
    /// Conditional direct jump.
    Jcc(Cc),
    /// Jump if `%ecx` is zero (reads no eflags — DynamoRIO's flag-free
    /// indirect-branch comparison trick relies on this).
    Jecxz,
    /// Direct call.
    Call,
    /// Indirect call.
    CallInd,
    /// Near return.
    Ret,
    /// Pseudo-instruction: branch target label (never encoded; zero length).
    Label,
}

impl Opcode {
    /// Mnemonic string (AT&T style, no size suffix).
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Lea => "lea".into(),
            Opcode::Mov => "mov".into(),
            Opcode::Movzx => "movzx".into(),
            Opcode::Movsx => "movsx".into(),
            Opcode::Add => "add".into(),
            Opcode::Or => "or".into(),
            Opcode::Adc => "adc".into(),
            Opcode::Sbb => "sbb".into(),
            Opcode::And => "and".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Cmp => "cmp".into(),
            Opcode::Inc => "inc".into(),
            Opcode::Dec => "dec".into(),
            Opcode::Neg => "neg".into(),
            Opcode::Not => "not".into(),
            Opcode::Test => "test".into(),
            Opcode::Xchg => "xchg".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::Sar => "sar".into(),
            Opcode::Imul => "imul".into(),
            Opcode::Mul => "mul".into(),
            Opcode::Div => "div".into(),
            Opcode::Idiv => "idiv".into(),
            Opcode::Cdq => "cdq".into(),
            Opcode::Cwde => "cwde".into(),
            Opcode::Push => "push".into(),
            Opcode::Pop => "pop".into(),
            Opcode::Pushfd => "pushfd".into(),
            Opcode::Popfd => "popfd".into(),
            Opcode::Lahf => "lahf".into(),
            Opcode::Sahf => "sahf".into(),
            Opcode::Set(cc) => format!("set{cc}"),
            Opcode::Cmov(cc) => format!("cmov{cc}"),
            Opcode::Rol => "rol".into(),
            Opcode::Ror => "ror".into(),
            Opcode::Bt => "bt".into(),
            Opcode::Bswap => "bswap".into(),
            Opcode::Nop => "nop".into(),
            Opcode::Int3 => "int3".into(),
            Opcode::Int => "int".into(),
            Opcode::Hlt => "hlt".into(),
            Opcode::Jmp => "jmp".into(),
            Opcode::JmpInd => "jmp*".into(),
            Opcode::Jcc(cc) => format!("j{cc}"),
            Opcode::Jecxz => "jecxz".into(),
            Opcode::Call => "call".into(),
            Opcode::CallInd => "call*".into(),
            Opcode::Ret => "ret".into(),
            Opcode::Label => "<label>".into(),
        }
    }

    /// The instruction's effect on the arithmetic eflags.
    ///
    /// Flags left architecturally *undefined* are reported as written
    /// (clobbered). Shifts are conservative: a zero shift count leaves flags
    /// unchanged at runtime, but transformations must assume they are
    /// written.
    pub fn eflags_effect(self) -> EflagsEffect {
        use Opcode::*;
        match self {
            Add | Sub | Cmp | Neg | Test | And | Or | Xor | Imul | Mul | Div | Idiv => {
                EflagsEffect::writes(Eflags::ALL6)
            }
            Adc | Sbb => EflagsEffect::read_write(Eflags::CF, Eflags::ALL6),
            Inc | Dec => EflagsEffect::writes(Eflags::NOT_CF),
            Shl | Shr | Sar => EflagsEffect::writes(Eflags::ALL6),
            Jcc(cc) | Set(cc) | Cmov(cc) => EflagsEffect::reads(cc.flags_read()),
            Rol | Ror => EflagsEffect::writes(Eflags(Eflags::CF.0 | Eflags::OF.0)),
            Bt => EflagsEffect::writes(Eflags::CF),
            Sahf => EflagsEffect::writes(Eflags(
                Eflags::CF.0 | Eflags::PF.0 | Eflags::AF.0 | Eflags::ZF.0 | Eflags::SF.0,
            )),
            Lahf => EflagsEffect::reads(Eflags(
                Eflags::CF.0 | Eflags::PF.0 | Eflags::AF.0 | Eflags::ZF.0 | Eflags::SF.0,
            )),
            Pushfd => EflagsEffect::reads(Eflags::ALL6),
            Popfd => EflagsEffect::writes(Eflags::ALL6),
            _ => EflagsEffect::NONE,
        }
    }

    /// Whether this is a control-transfer instruction (CTI) — the only kind
    /// of instruction that may terminate a basic block.
    pub fn is_cti(self) -> bool {
        matches!(
            self,
            Opcode::Jmp
                | Opcode::JmpInd
                | Opcode::Jcc(_)
                | Opcode::Jecxz
                | Opcode::Call
                | Opcode::CallInd
                | Opcode::Ret
        )
    }

    /// Whether this CTI's target varies at runtime (requires hashtable
    /// lookup under the dynamic translator).
    pub fn is_indirect_cti(self) -> bool {
        matches!(self, Opcode::JmpInd | Opcode::CallInd | Opcode::Ret)
    }

    /// Whether this CTI falls through when its condition fails.
    pub fn is_conditional_cti(self) -> bool {
        matches!(self, Opcode::Jcc(_) | Opcode::Jecxz)
    }

    /// Whether this is a call (pushes a return address).
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Call | Opcode::CallInd)
    }

    /// Whether the instruction terminates the program's control flow from
    /// the translator's perspective (`hlt` ends the simulated program).
    pub fn is_halt(self) -> bool {
        matches!(self, Opcode::Hlt)
    }

    /// Whether the instruction may read memory (beyond instruction fetch),
    /// considering only explicit and implicit data operands.
    pub fn is_mem_read_capable(self) -> bool {
        !matches!(self, Opcode::Lea | Opcode::Label | Opcode::Nop)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_negation_flips_low_bit() {
        assert_eq!(Cc::Z.negate(), Cc::Nz);
        assert_eq!(Cc::Nl.negate(), Cc::L);
        for cc in Cc::ALL {
            assert_eq!(cc.negate().negate(), cc);
            assert_eq!(cc.flags_read(), cc.negate().flags_read());
        }
    }

    #[test]
    fn cc_round_trips_through_code() {
        for cc in Cc::ALL {
            assert_eq!(Cc::from_code(cc.code()), cc);
        }
    }

    #[test]
    fn inc_does_not_write_cf_but_add_does() {
        // The exact property the paper's inc2add client checks (Fig. 3).
        assert!(!Opcode::Inc.eflags_effect().written.contains(Eflags::CF));
        assert!(Opcode::Add.eflags_effect().written.contains(Eflags::CF));
        assert!(!Opcode::Dec.eflags_effect().written.contains(Eflags::CF));
        assert!(Opcode::Sub.eflags_effect().written.contains(Eflags::CF));
    }

    #[test]
    fn jnl_reads_sf_and_of() {
        // Matches Figure 2's "RSO" annotation on jnl.
        let eff = Opcode::Jcc(Cc::Nl).eflags_effect();
        assert_eq!(eff.read, Eflags::SF | Eflags::OF);
        assert!(eff.written.is_empty());
    }

    #[test]
    fn jecxz_reads_no_eflags() {
        // The property the flag-free indirect-branch comparison relies on.
        assert_eq!(Opcode::Jecxz.eflags_effect(), EflagsEffect::NONE);
    }

    #[test]
    fn cti_classification() {
        assert!(Opcode::Ret.is_cti());
        assert!(Opcode::Ret.is_indirect_cti());
        assert!(!Opcode::Ret.is_conditional_cti());
        assert!(Opcode::Jcc(Cc::Z).is_conditional_cti());
        assert!(Opcode::Jecxz.is_conditional_cti());
        assert!(!Opcode::Jmp.is_indirect_cti());
        assert!(Opcode::CallInd.is_indirect_cti());
        assert!(Opcode::Call.is_call());
        assert!(!Opcode::Mov.is_cti());
    }

    #[test]
    fn mnemonics_include_cc_suffixes() {
        assert_eq!(Opcode::Jcc(Cc::Nle).mnemonic(), "jnle");
        assert_eq!(Opcode::Set(Cc::B).mnemonic(), "setb");
    }

    #[test]
    fn lahf_sahf_exclude_of() {
        assert!(!Opcode::Sahf.eflags_effect().written.contains(Eflags::OF));
        assert!(!Opcode::Lahf.eflags_effect().read.contains(Eflags::OF));
        assert!(Opcode::Sahf.eflags_effect().written.contains(Eflags::CF));
    }
}
