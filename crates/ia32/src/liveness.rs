//! Backward register and eflags-bit liveness analysis over an
//! [`InstrList`].
//!
//! This is the client-facing dataflow analysis promised by the paper's
//! adaptive representation: Level 2 already records each instruction's
//! eflags effect "because on IA-32 many instructions modify the eflags
//! register, making them an important factor to consider in any code
//! transformation" (§3.1), and §4.2's `inc`→`add` example is exactly a
//! flag-liveness argument. This module turns those per-instruction effect
//! tables into a whole-list analysis: for every instruction it computes
//! which 32-bit registers and which arithmetic flag bits may still be read
//! before being overwritten.
//!
//! The analysis is deliberately conservative at every frontier where
//! control leaves the list — exit CTIs, calls, interrupts, and
//! instructions not decoded far enough to know their operands all force
//! the full register file and all six arithmetic flags live. A client that
//! consults [`Liveness`] therefore never sees "dead" for a value the
//! application could observe.

use std::collections::HashMap;
use std::fmt;

use crate::eflags::{Eflags, EflagsEffect};
use crate::ilist::{InstrId, InstrList};
use crate::instr::{Instr, Target};
use crate::opcode::Opcode;
use crate::opnd::Opnd;
use crate::reg::Reg;

/// A set of 32-bit registers, one bit per hardware register number.
///
/// Sub-registers are widened to their 32-bit parent: inserting `%al` marks
/// `%eax`, because any observation of `%al` is an observation of `%eax`'s
/// low byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegSet(pub u8);

impl RegSet {
    /// The empty set.
    pub const NONE: RegSet = RegSet(0);
    /// All eight 32-bit registers.
    pub const ALL: RegSet = RegSet(0xff);

    /// A set containing only `reg` (widened to its 32-bit parent).
    pub fn of(reg: Reg) -> RegSet {
        RegSet(1 << reg.parent32().number())
    }

    /// Insert `reg` (widened to its 32-bit parent).
    pub fn insert(&mut self, reg: Reg) {
        self.0 |= 1 << reg.parent32().number();
    }

    /// Remove `reg`'s 32-bit parent.
    pub fn remove(&mut self, reg: Reg) {
        self.0 &= !(1 << reg.parent32().number());
    }

    /// Whether `reg`'s 32-bit parent is in the set.
    pub fn contains(self, reg: Reg) -> bool {
        self.0 & (1 << reg.parent32().number()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self` without `other`).
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// True if no register is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The member registers, in hardware numbering order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::GPR32.into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

/// Registers and arithmetic flag bits live at one program point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveState {
    /// Live 32-bit registers.
    pub regs: RegSet,
    /// Live arithmetic flag bits.
    pub flags: Eflags,
}

impl LiveState {
    /// Nothing live.
    pub const NONE: LiveState = LiveState {
        regs: RegSet::NONE,
        flags: Eflags::NONE,
    };
    /// Everything live — the state at every frontier where control leaves
    /// the analyzed list.
    pub const ALL: LiveState = LiveState {
        regs: RegSet::ALL,
        flags: Eflags::ALL6,
    };

    /// Pointwise union.
    pub fn union(self, other: LiveState) -> LiveState {
        LiveState {
            regs: self.regs.union(other.regs),
            flags: self.flags | other.flags,
        }
    }
}

impl fmt::Display for LiveState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} |{}", self.regs, self.flags)
    }
}

/// The register and flag effects of a single instruction, as consumed by
/// the liveness transfer function and the client-safety lints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    /// Registers whose incoming value the instruction may observe
    /// (register sources plus every address register of its memory
    /// operands). For instructions not decoded to Level 3 this is
    /// [`RegSet::ALL`].
    pub uses: RegSet,
    /// Registers whose full 32-bit value the instruction definitely
    /// overwrites — safe to treat as killed by backward liveness.
    /// Sub-register and conditional (`cmovcc`) writes are excluded.
    pub kills: RegSet,
    /// Registers the instruction may write at all, including partial and
    /// conditional writes. A superset of `kills`; this is what a
    /// clobber-check must use.
    pub writes: RegSet,
    /// Arithmetic-flag reads and writes. For instructions not decoded to
    /// Level 2 the read set is all six flags (conservative barrier).
    pub flags: EflagsEffect,
}

/// Compute the [`Effects`] of one instruction.
pub fn effects(instr: &Instr) -> Effects {
    if instr.is_label() {
        return Effects::default();
    }
    let Some(op) = instr.opcode() else {
        // Not decoded far enough to see operands: assume it reads
        // everything and guarantees nothing.
        return Effects {
            uses: RegSet::ALL,
            kills: RegSet::NONE,
            writes: RegSet::NONE,
            flags: EflagsEffect::reads(Eflags::ALL6),
        };
    };
    let mut uses = RegSet::NONE;
    let mut kills = RegSet::NONE;
    let mut writes = RegSet::NONE;
    for src in instr.srcs() {
        match src {
            Opnd::Reg(r) => uses.insert(*r),
            Opnd::Mem(m) => {
                for r in m.address_regs() {
                    uses.insert(r);
                }
            }
            _ => {}
        }
    }
    // `jecxz` observes %ecx without listing it as an operand.
    if op == Opcode::Jecxz {
        uses.insert(Reg::Ecx);
    }
    for dst in instr.dsts() {
        match dst {
            Opnd::Reg(r) => {
                writes.insert(*r);
                // Only a full-width unconditional write kills the old
                // value: byte/word writes leave the rest of the register
                // observable, and cmovcc leaves all of it when the
                // condition fails.
                if r.size() == crate::opnd::OpSize::S32 && !matches!(op, Opcode::Cmov(_)) {
                    kills.insert(*r);
                }
            }
            Opnd::Mem(m) => {
                for r in m.address_regs() {
                    uses.insert(r);
                }
            }
            _ => {}
        }
    }
    Effects {
        uses,
        kills,
        writes,
        flags: instr.eflags(),
    }
}

/// Where control may go after one instruction, in list-position terms.
enum Succ {
    /// Falls through to the next instruction only.
    Next,
    /// Unconditional branch to a label at this position.
    Only(usize),
    /// Conditional branch: label position or fall-through.
    NextOr(usize),
    /// Control leaves the list (exit CTI, call, interrupt, or the end of
    /// the list): everything is live.
    Outside,
}

/// Backward liveness results for one [`InstrList`].
///
/// ```
/// use rio_ia32::{create, liveness::Liveness, InstrList, Opnd, Reg};
/// let mut il = InstrList::new();
/// let a = il.push_back(create::mov(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
/// let b = il.push_back(create::mov(Opnd::Reg(Reg::Eax), Opnd::imm32(2)));
/// let live = Liveness::analyze(&il);
/// // %eax is dead after `a`: `b` overwrites it before anything reads it.
/// assert!(!live.live_after(a).regs.contains(Reg::Eax));
/// // After `b` control leaves the list, so everything is live.
/// assert!(live.live_after(b).regs.contains(Reg::Eax));
/// ```
pub struct Liveness {
    pos: HashMap<InstrId, usize>,
    before: Vec<LiveState>,
    after: Vec<LiveState>,
}

impl Liveness {
    /// Run the analysis over `il`.
    ///
    /// Control flow within the list follows label targets
    /// ([`Target::Instr`]); any CTI targeting a code address
    /// ([`Target::Pc`]), any indirect CTI, any call, and `int`/`int3`/`hlt`
    /// are frontiers where the full state is live. The analysis iterates
    /// to a fixpoint, so backward branches to labels converge correctly.
    pub fn analyze(il: &InstrList) -> Liveness {
        let order: Vec<InstrId> = il.ids().collect();
        let n = order.len();
        let pos: HashMap<InstrId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();

        let mut effs = Vec::with_capacity(n);
        let mut succs = Vec::with_capacity(n);
        for (i, id) in order.iter().enumerate() {
            let instr = il.get(*id);
            effs.push(effects(instr));
            succs.push(successor(instr, i, n, &pos));
        }

        let mut before = vec![LiveState::NONE; n];
        let mut after = vec![LiveState::NONE; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let out = match succs[i] {
                    Succ::Outside => LiveState::ALL,
                    Succ::Next => {
                        if i + 1 < n {
                            before[i + 1]
                        } else {
                            LiveState::ALL
                        }
                    }
                    Succ::Only(j) => before[j],
                    Succ::NextOr(j) => {
                        let fall = if i + 1 < n {
                            before[i + 1]
                        } else {
                            LiveState::ALL
                        };
                        fall.union(before[j])
                    }
                };
                let e = &effs[i];
                let inn = LiveState {
                    regs: e.uses.union(out.regs.minus(e.kills)),
                    flags: e.flags.read | (out.flags & !e.flags.written),
                };
                if after[i] != out || before[i] != inn {
                    after[i] = out;
                    before[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { pos, before, after }
    }

    /// Live state immediately before `id` executes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the analyzed list.
    pub fn live_before(&self, id: InstrId) -> LiveState {
        self.before[self.pos[&id]]
    }

    /// Live state immediately after `id` executes (along all successors).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the analyzed list.
    pub fn live_after(&self, id: InstrId) -> LiveState {
        self.after[self.pos[&id]]
    }

    /// Whether `id` was part of the analyzed list.
    pub fn covers(&self, id: InstrId) -> bool {
        self.pos.contains_key(&id)
    }
}

fn successor(instr: &Instr, i: usize, n: usize, pos: &HashMap<InstrId, usize>) -> Succ {
    let at_end = i + 1 >= n;
    let Some(op) = instr.opcode() else {
        return if at_end { Succ::Outside } else { Succ::Next };
    };
    let fall = |cond_target: Option<usize>| match (at_end, cond_target) {
        (false, Some(j)) => Succ::NextOr(j),
        (false, None) => Succ::Next,
        (true, Some(j)) => Succ::NextOr(j), // fall-through past the end is Outside via union
        (true, None) => Succ::Outside,
    };
    match op {
        Opcode::Jmp => match instr.target() {
            Some(Target::Instr(l)) => match pos.get(&l) {
                Some(j) => Succ::Only(*j),
                None => Succ::Outside,
            },
            _ => Succ::Outside,
        },
        Opcode::Jcc(_) | Opcode::Jecxz => match instr.target() {
            Some(Target::Instr(l)) => match pos.get(&l) {
                Some(j) => fall(Some(*j)),
                None => Succ::Outside,
            },
            // A side exit: the taken edge leaves the list, so everything
            // is live regardless of the fall-through.
            _ => Succ::Outside,
        },
        Opcode::JmpInd
        | Opcode::Call
        | Opcode::CallInd
        | Opcode::Ret
        | Opcode::Int
        | Opcode::Int3
        | Opcode::Hlt => Succ::Outside,
        _ => {
            if at_end {
                Succ::Outside
            } else {
                Succ::Next
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create;
    use crate::opcode::Cc;
    use crate::opnd::{MemRef, OpSize};

    #[test]
    fn regset_widens_subregisters() {
        let mut s = RegSet::NONE;
        s.insert(Reg::Al);
        assert!(s.contains(Reg::Eax));
        assert!(s.contains(Reg::Ax));
        s.remove(Reg::Ah);
        assert!(!s.contains(Reg::Eax));
    }

    #[test]
    fn overwritten_register_is_dead_between_defs() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(1)));
        let b = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(2)));
        let live = Liveness::analyze(&il);
        assert!(!live.live_after(a).regs.contains(Reg::Ebx));
        assert!(live.live_after(b).regs.contains(Reg::Ebx));
    }

    #[test]
    fn read_keeps_register_live() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(1)));
        il.push_back(create::add(Opnd::Reg(Reg::Eax), Opnd::Reg(Reg::Ebx)));
        let live = Liveness::analyze(&il);
        assert!(live.live_after(a).regs.contains(Reg::Ebx));
        // %eax is read-modify-write, so it is live before the add too.
        assert!(live.live_before(a).regs.contains(Reg::Eax));
    }

    #[test]
    fn memory_address_registers_count_as_uses() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Esi), Opnd::imm32(0)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::base_disp(Reg::Esi, 4, OpSize::S32)),
            Opnd::imm32(7),
        ));
        let live = Liveness::analyze(&il);
        assert!(live.live_after(a).regs.contains(Reg::Esi));
    }

    #[test]
    fn flags_dead_between_full_writers() {
        let mut il = InstrList::new();
        let a = il.push_back(create::add(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        let b = il.push_back(create::sub(Opnd::Reg(Reg::Ebx), Opnd::imm32(1)));
        let live = Liveness::analyze(&il);
        // The sub overwrites all six flags before anything reads them.
        assert!(live.live_after(a).flags.is_empty());
        assert_eq!(live.live_after(b).flags, Eflags::ALL6);
    }

    #[test]
    fn inc_does_not_kill_carry() {
        let mut il = InstrList::new();
        let a = il.push_back(create::add(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::inc(Opnd::Reg(Reg::Ebx)));
        il.push_back(create::adc(Opnd::Reg(Reg::Ecx), Opnd::imm32(0)));
        let live = Liveness::analyze(&il);
        // adc reads CF; inc writes everything but CF, so CF stays live
        // across the inc back to the add.
        assert!(live.live_after(a).flags.contains(Eflags::CF));
        assert!(!live.live_after(a).flags.contains(Eflags::ZF));
    }

    #[test]
    fn jcc_reads_only_its_condition_flags() {
        let mut il = InstrList::new();
        let a = il.push_back(create::cmp(Opnd::Reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::jcc(Cc::Z, Target::Pc(0x400100)));
        let live = Liveness::analyze(&il);
        // The side exit makes everything live after the cmp...
        assert_eq!(live.live_after(a).flags, Eflags::ALL6);
        // ...but before the cmp only what the cmp itself needs.
        assert!(!live.live_before(a).flags.contains(Eflags::ZF));
    }

    #[test]
    fn conditional_branch_unions_both_paths() {
        let mut il = InstrList::new();
        let lbl = Instr::label();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Edi), Opnd::imm32(1)));
        let j = il.push_back(create::jecxz(Target::Pc(0))); // placeholder
        let kill = il.push_back(create::mov(Opnd::Reg(Reg::Edi), Opnd::imm32(2)));
        let l = il.push_back(lbl);
        il.push_back(create::add(Opnd::Reg(Reg::Eax), Opnd::Reg(Reg::Edi)));
        il.get_mut(j).set_target(Target::Instr(l));
        let live = Liveness::analyze(&il);
        // Taken path skips the kill, so %edi is live after `a`.
        assert!(live.live_after(a).regs.contains(Reg::Edi));
        // The kill itself sees a dead %edi coming in on its path: its own
        // write is what makes it live afterwards.
        assert!(live.live_after(kill).regs.contains(Reg::Edi));
        // jecxz observes %ecx.
        assert!(live.live_before(j).regs.contains(Reg::Ecx));
    }

    #[test]
    fn exit_cti_and_calls_are_frontiers() {
        for terminator in [
            create::jmp(Target::Pc(0x400000)),
            create::jmp_ind(Opnd::Reg(Reg::Eax)),
            create::ret(),
            create::call(Target::Pc(0x400000)),
            create::int(0x80),
        ] {
            let mut il = InstrList::new();
            let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebp), Opnd::imm32(1)));
            il.push_back(terminator);
            let live = Liveness::analyze(&il);
            assert_eq!(live.live_after(a), LiveState::ALL);
        }
    }

    #[test]
    fn undecoded_instruction_is_a_conservative_barrier() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(1)));
        il.push_back(Instr::raw(vec![0x90], 0));
        il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(2)));
        let live = Liveness::analyze(&il);
        // The raw byte might read anything, so %ebx stays live.
        assert!(live.live_after(a).regs.contains(Reg::Ebx));
    }

    #[test]
    fn cmov_does_not_kill_its_destination() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(1)));
        il.push_back(create::cmov(Cc::Z, Reg::Ebx, Opnd::Reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::Reg(Reg::Ecx), Opnd::Reg(Reg::Ebx)));
        let live = Liveness::analyze(&il);
        // If the condition fails the old %ebx flows through to the final
        // mov, so the first def stays live.
        assert!(live.live_after(a).regs.contains(Reg::Ebx));
    }

    #[test]
    fn partial_register_write_does_not_kill_parent() {
        let mut il = InstrList::new();
        let a = il.push_back(create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(0x1234)));
        il.push_back(create::mov(Opnd::Reg(Reg::Bl), Opnd::imm8(1)));
        il.push_back(create::push(Opnd::Reg(Reg::Ebx)));
        let live = Liveness::analyze(&il);
        // The byte write leaves bits 8..31 observable.
        assert!(live.live_after(a).regs.contains(Reg::Ebx));
        let e = effects(il.get(il.next_id(a).unwrap()));
        assert!(e.writes.contains(Reg::Ebx));
        assert!(e.kills.is_empty());
    }

    #[test]
    fn backward_branch_converges() {
        // loop: add eax, 1; dec ecx; jnz loop — %eax and %ecx live around
        // the back edge.
        let mut il = InstrList::new();
        let l = il.push_back(Instr::label());
        let a = il.push_back(create::add(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::dec(Opnd::Reg(Reg::Ecx)));
        il.push_back(create::jcc(Cc::Nz, Target::Instr(l)));
        let live = Liveness::analyze(&il);
        assert!(live.live_before(a).regs.contains(Reg::Eax));
        assert!(live.live_before(a).regs.contains(Reg::Ecx));
    }
}
