//! Instruction operands: registers, immediates, memory references, and code
//! addresses.
//!
//! IA-32 instructions "may contain between zero and eight sources and
//! destinations" (paper §3.1); each is one [`Opnd`].

use std::fmt;

use crate::ilist::InstrId;
use crate::reg::Reg;

/// Operand size in bytes for the supported subset (8-, 16-, 32-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpSize {
    /// 1 byte.
    S8,
    /// 2 bytes.
    S16,
    /// 4 bytes.
    S32,
}

impl OpSize {
    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            OpSize::S8 => 1,
            OpSize::S16 => 2,
            OpSize::S32 => 4,
        }
    }
}

impl fmt::Display for OpSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bytes())
    }
}

/// A memory reference of the form `disp(base, index, scale)`.
///
/// Any of base and index may be absent; `%esp` cannot be an index (IA-32 SIB
/// restriction, enforced at encode time). `size` is the access width.
///
/// # Examples
///
/// ```
/// use rio_ia32::{MemRef, Reg, OpSize};
/// let m = MemRef::base_disp(Reg::Esi, 0xc, OpSize::S32);
/// assert_eq!(m.to_string(), "0xc(%esi)");
/// let m = MemRef::base_index(Reg::Ecx, Reg::Eax, 1, 0, OpSize::S32);
/// assert_eq!(m.to_string(), "(%ecx,%eax,1)");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index: 1, 2, 4, or 8.
    pub scale: u8,
    /// Signed displacement.
    pub disp: i32,
    /// Access width.
    pub size: OpSize,
}

impl MemRef {
    /// `disp(base)` reference.
    pub fn base_disp(base: Reg, disp: i32, size: OpSize) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            size,
        }
    }

    /// `disp(base, index, scale)` reference.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32, size: OpSize) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            size,
        }
    }

    /// Absolute-address reference `*disp`.
    pub fn absolute(addr: u32, size: OpSize) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i32,
            size,
        }
    }

    /// `disp(,index,scale)` reference with no base.
    pub fn index_disp(index: Reg, scale: u8, disp: i32, size: OpSize) -> MemRef {
        MemRef {
            base: None,
            index: Some(index),
            scale,
            disp,
            size,
        }
    }

    /// Registers this reference reads to compute its address.
    pub fn address_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Whether `reg` (or an overlapping register) participates in address
    /// computation.
    pub fn uses_reg(&self, reg: Reg) -> bool {
        self.address_regs().any(|r| r.overlaps(reg))
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            if self.disp < 0 {
                write!(f, "-0x{:x}", -(self.disp as i64))?;
            } else {
                write!(f, "0x{:x}", self.disp)?;
            }
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some(i) = self.index {
                write!(f, ",{i},{}", self.scale)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// One instruction operand.
///
/// Branch targets use [`Opnd::Pc`] when they name an application address, or
/// [`Opnd::Instr`] when they name another instruction in the same
/// [`InstrList`](crate::InstrList) (used while building code, e.g. for the
/// inlined indirect-branch checks in traces; resolved at encode time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opnd {
    /// A register operand.
    Reg(Reg),
    /// An immediate with encoded width.
    Imm(i32, OpSize),
    /// A memory reference.
    Mem(MemRef),
    /// A code address (branch target or pushed return address).
    Pc(u32),
    /// A branch target naming an instruction in the same list (a label).
    Instr(InstrId),
}

impl Opnd {
    /// Register constructor.
    pub fn reg(r: Reg) -> Opnd {
        Opnd::Reg(r)
    }

    /// 8-bit immediate constructor (paper: `OPND_CREATE_INT8`).
    pub fn imm8(v: i8) -> Opnd {
        Opnd::Imm(v as i32, OpSize::S8)
    }

    /// 16-bit immediate constructor.
    pub fn imm16(v: i16) -> Opnd {
        Opnd::Imm(v as i32, OpSize::S16)
    }

    /// 32-bit immediate constructor (paper: `OPND_CREATE_INT32`).
    pub fn imm32(v: i32) -> Opnd {
        Opnd::Imm(v, OpSize::S32)
    }

    /// Memory constructor.
    pub fn mem(m: MemRef) -> Opnd {
        Opnd::Mem(m)
    }

    /// The operand's data size.
    ///
    /// `Pc` and `Instr` targets are code addresses, reported as 32-bit.
    pub fn size(&self) -> OpSize {
        match self {
            Opnd::Reg(r) => r.size(),
            Opnd::Imm(_, s) => *s,
            Opnd::Mem(m) => m.size,
            Opnd::Pc(_) | Opnd::Instr(_) => OpSize::S32,
        }
    }

    /// The register if this is a register operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Opnd::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The memory reference if this is a memory operand.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Opnd::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// The immediate value if this is an immediate operand.
    pub fn as_imm(&self) -> Option<i32> {
        match self {
            Opnd::Imm(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Whether this operand *reads* the given register when used as a source,
    /// including address-computation registers of memory operands.
    pub fn uses_reg(&self, reg: Reg) -> bool {
        match self {
            Opnd::Reg(r) => r.overlaps(reg),
            Opnd::Mem(m) => m.uses_reg(reg),
            _ => false,
        }
    }
}

impl From<Reg> for Opnd {
    fn from(r: Reg) -> Opnd {
        Opnd::Reg(r)
    }
}

impl From<MemRef> for Opnd {
    fn from(m: MemRef) -> Opnd {
        Opnd::Mem(m)
    }
}

impl fmt::Display for Opnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opnd::Reg(r) => write!(f, "{r}"),
            Opnd::Imm(v, _) => {
                if *v < 0 {
                    write!(f, "$-0x{:x}", -(*v as i64))
                } else {
                    write!(f, "$0x{v:x}")
                }
            }
            Opnd::Mem(m) => write!(f, "{m}"),
            Opnd::Pc(pc) => write!(f, "$0x{pc:08x}"),
            Opnd::Instr(id) => write!(f, "@{id:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_display_matches_att_syntax() {
        assert_eq!(
            MemRef::base_disp(Reg::Esi, 0x1c, OpSize::S32).to_string(),
            "0x1c(%esi)"
        );
        assert_eq!(
            MemRef::base_disp(Reg::Ebp, -8, OpSize::S32).to_string(),
            "-0x8(%ebp)"
        );
        assert_eq!(
            MemRef::base_index(Reg::Ecx, Reg::Eax, 4, 0x10, OpSize::S32).to_string(),
            "0x10(%ecx,%eax,4)"
        );
        assert_eq!(MemRef::absolute(0x8000, OpSize::S32).to_string(), "0x8000");
    }

    #[test]
    fn opnd_sizes() {
        assert_eq!(Opnd::imm8(1).size(), OpSize::S8);
        assert_eq!(Opnd::reg(Reg::Cl).size(), OpSize::S8);
        assert_eq!(Opnd::Pc(0x400000).size(), OpSize::S32);
    }

    #[test]
    fn uses_reg_sees_through_memory_addressing() {
        let m = Opnd::mem(MemRef::base_index(Reg::Ecx, Reg::Eax, 1, 0, OpSize::S32));
        assert!(m.uses_reg(Reg::Eax));
        assert!(m.uses_reg(Reg::Ecx));
        assert!(m.uses_reg(Reg::Al)); // overlapping sub-register
        assert!(!m.uses_reg(Reg::Ebx));
    }

    #[test]
    fn immediate_display_is_signed_hex() {
        assert_eq!(Opnd::imm8(1).to_string(), "$0x1");
        assert_eq!(Opnd::imm32(-16).to_string(), "$-0x10");
    }
}
