//! IA-32 register definitions.
//!
//! The subset supports the eight 32-bit general-purpose registers, their
//! 16-bit halves, and the eight 8-bit byte registers, matching the operand
//! sizes used by the supported instruction encodings.

use std::fmt;

use crate::opnd::OpSize;

/// An IA-32 general-purpose register (32-, 16-, or 8-bit view).
///
/// The discriminant order of each size class matches the hardware register
/// numbering used in ModRM/SIB encodings (`EAX`=0 .. `EDI`=7).
///
/// # Examples
///
/// ```
/// use rio_ia32::Reg;
/// assert_eq!(Reg::Esp.number(), 4);
/// assert_eq!(Reg::Ch.number(), 5); // high byte registers encode as 4..7
/// assert_eq!(Reg::Eax.to_string(), "%eax");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    // 32-bit
    Eax,
    Ecx,
    Edx,
    Ebx,
    Esp,
    Ebp,
    Esi,
    Edi,
    // 16-bit
    Ax,
    Cx,
    Dx,
    Bx,
    Sp,
    Bp,
    Si,
    Di,
    // 8-bit low
    Al,
    Cl,
    Dl,
    Bl,
    // 8-bit high
    Ah,
    Ch,
    Dh,
    Bh,
}

impl Reg {
    /// All 32-bit registers in hardware numbering order.
    pub const GPR32: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Hardware register number used in ModRM/SIB fields (0..=7).
    ///
    /// For 8-bit registers the numbering follows IA-32: `AL`..`BL` are 0..3
    /// and `AH`..`BH` are 4..7.
    pub fn number(self) -> u8 {
        match self {
            Reg::Eax | Reg::Ax | Reg::Al => 0,
            Reg::Ecx | Reg::Cx | Reg::Cl => 1,
            Reg::Edx | Reg::Dx | Reg::Dl => 2,
            Reg::Ebx | Reg::Bx | Reg::Bl => 3,
            Reg::Esp | Reg::Sp | Reg::Ah => 4,
            Reg::Ebp | Reg::Bp | Reg::Ch => 5,
            Reg::Esi | Reg::Si | Reg::Dh => 6,
            Reg::Edi | Reg::Di | Reg::Bh => 7,
        }
    }

    /// The operand size of this register view.
    pub fn size(self) -> OpSize {
        match self {
            Reg::Eax
            | Reg::Ecx
            | Reg::Edx
            | Reg::Ebx
            | Reg::Esp
            | Reg::Ebp
            | Reg::Esi
            | Reg::Edi => OpSize::S32,
            Reg::Ax | Reg::Cx | Reg::Dx | Reg::Bx | Reg::Sp | Reg::Bp | Reg::Si | Reg::Di => {
                OpSize::S16
            }
            _ => OpSize::S8,
        }
    }

    /// The 32-bit register backing this register view.
    ///
    /// Used by liveness-style analyses: a write to `%al` or `%ah` affects the
    /// contents of `%eax`.
    pub fn parent32(self) -> Reg {
        match self {
            Reg::Eax | Reg::Ax | Reg::Al | Reg::Ah => Reg::Eax,
            Reg::Ecx | Reg::Cx | Reg::Cl | Reg::Ch => Reg::Ecx,
            Reg::Edx | Reg::Dx | Reg::Dl | Reg::Dh => Reg::Edx,
            Reg::Ebx | Reg::Bx | Reg::Bl | Reg::Bh => Reg::Ebx,
            Reg::Esp | Reg::Sp => Reg::Esp,
            Reg::Ebp | Reg::Bp => Reg::Ebp,
            Reg::Esi | Reg::Si => Reg::Esi,
            Reg::Edi | Reg::Di => Reg::Edi,
        }
    }

    /// Whether the two registers overlap in the machine register file.
    pub fn overlaps(self, other: Reg) -> bool {
        self.parent32() == other.parent32()
    }

    /// Look up the register with hardware number `n` at the given size.
    ///
    /// 8-bit numbering maps 0..3 to the low-byte registers and 4..7 to the
    /// high-byte registers, as in ModRM encoding.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn from_number(n: u8, size: OpSize) -> Reg {
        let table32 = Reg::GPR32;
        let table16 = [
            Reg::Ax,
            Reg::Cx,
            Reg::Dx,
            Reg::Bx,
            Reg::Sp,
            Reg::Bp,
            Reg::Si,
            Reg::Di,
        ];
        let table8 = [
            Reg::Al,
            Reg::Cl,
            Reg::Dl,
            Reg::Bl,
            Reg::Ah,
            Reg::Ch,
            Reg::Dh,
            Reg::Bh,
        ];
        assert!(n < 8, "register number out of range: {n}");
        match size {
            OpSize::S32 => table32[n as usize],
            OpSize::S16 => table16[n as usize],
            OpSize::S8 => table8[n as usize],
        }
    }

    /// AT&T-style name without the `%` sigil.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ax => "ax",
            Reg::Cx => "cx",
            Reg::Dx => "dx",
            Reg::Bx => "bx",
            Reg::Sp => "sp",
            Reg::Bp => "bp",
            Reg::Si => "si",
            Reg::Di => "di",
            Reg::Al => "al",
            Reg::Cl => "cl",
            Reg::Dl => "dl",
            Reg::Bl => "bl",
            Reg::Ah => "ah",
            Reg::Ch => "ch",
            Reg::Dh => "dh",
            Reg::Bh => "bh",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips_for_all_sizes() {
        for n in 0..8u8 {
            for size in [OpSize::S8, OpSize::S16, OpSize::S32] {
                let r = Reg::from_number(n, size);
                assert_eq!(r.number(), n);
                assert_eq!(r.size(), size);
            }
        }
    }

    #[test]
    fn parent_and_overlap() {
        assert_eq!(Reg::Al.parent32(), Reg::Eax);
        assert_eq!(Reg::Ah.parent32(), Reg::Eax);
        assert_eq!(Reg::Di.parent32(), Reg::Edi);
        assert!(Reg::Al.overlaps(Reg::Ah));
        assert!(Reg::Eax.overlaps(Reg::Ax));
        assert!(!Reg::Eax.overlaps(Reg::Ebx));
    }

    #[test]
    fn high_byte_numbers_match_modrm_encoding() {
        assert_eq!(Reg::Ah.number(), 4);
        assert_eq!(Reg::Bh.number(), 7);
        assert_eq!(Reg::from_number(4, OpSize::S8), Reg::Ah);
    }

    #[test]
    fn display_uses_att_sigil() {
        assert_eq!(Reg::Esi.to_string(), "%esi");
        assert_eq!(Reg::Cl.to_string(), "%cl");
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn from_number_rejects_out_of_range() {
        let _ = Reg::from_number(8, OpSize::S32);
    }
}
