//! [`InstrList`] — the linear instruction-sequence representation.
//!
//! "Since DynamoRIO deals only with linear streams of code, it represents a
//! basic block or trace as a linked list of instructions called an
//! `InstrList`" (paper §3.1). The list is a slab-backed doubly-linked list:
//! insertion, removal, and replacement are O(1), and [`InstrId`] handles stay
//! stable across mutations — which is what lets branch operands
//! ([`Opnd::Instr`](crate::Opnd::Instr)) name labels inside the same list.

use std::fmt;

use crate::decode::{self, DecodeError};
use crate::instr::{Instr, Level};

/// A stable handle to an instruction within an [`InstrList`].
///
/// Handles are generation-checked: using a handle after its instruction was
/// removed panics rather than silently aliasing a reused slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId {
    idx: u32,
    gen: u32,
}

impl InstrId {
    /// Construct from a raw index with generation 0 (for tests and
    /// serialization only; normal code receives ids from list operations).
    pub fn from_raw(idx: u32) -> InstrId {
        InstrId { idx, gen: 0 }
    }

    /// The raw slot index.
    pub fn raw(self) -> u32 {
        self.idx
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}g{}", self.idx, self.gen)
    }
}

#[derive(Debug)]
struct Node {
    instr: Option<Instr>,
    prev: Option<u32>,
    next: Option<u32>,
    gen: u32,
}

/// A linear list of [`Instr`]s — the unit of code the framework operates on
/// (a basic block or a trace): single entry, multiple exits, no internal
/// join points.
///
/// # Examples
///
/// ```
/// use rio_ia32::{InstrList, create, Opnd, Reg};
///
/// let mut il = InstrList::new();
/// let a = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(7)));
/// let b = il.push_back(create::inc(Opnd::reg(Reg::Eax)));
/// assert_eq!(il.len(), 2);
/// assert_eq!(il.first_id(), Some(a));
/// assert_eq!(il.next_id(a), Some(b));
/// ```
#[derive(Debug, Default)]
pub struct InstrList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: Option<u32>,
    tail: Option<u32>,
    len: usize,
}

impl InstrList {
    /// Create an empty list.
    pub fn new() -> InstrList {
        InstrList::default()
    }

    /// Number of instructions in the list (labels included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, id: InstrId) -> &Node {
        let n = &self.nodes[id.idx as usize];
        assert_eq!(n.gen, id.gen, "stale InstrId {id:?}");
        assert!(n.instr.is_some(), "InstrId {id:?} no longer in list");
        n
    }

    fn alloc(&mut self, instr: Instr) -> u32 {
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            n.instr = Some(instr);
            n.prev = None;
            n.next = None;
            idx
        } else {
            self.nodes.push(Node {
                instr: Some(instr),
                prev: None,
                next: None,
                gen: 0,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn id_of(&self, idx: u32) -> InstrId {
        InstrId {
            idx,
            gen: self.nodes[idx as usize].gen,
        }
    }

    /// First instruction (paper: `instrlist_first`).
    pub fn first_id(&self) -> Option<InstrId> {
        self.head.map(|i| self.id_of(i))
    }

    /// Last instruction (paper: `instrlist_last`).
    pub fn last_id(&self) -> Option<InstrId> {
        self.tail.map(|i| self.id_of(i))
    }

    /// The instruction after `id` (paper: `instr_get_next`).
    pub fn next_id(&self, id: InstrId) -> Option<InstrId> {
        self.node(id).next.map(|i| self.id_of(i))
    }

    /// The instruction before `id` (paper: `instr_get_prev`).
    pub fn prev_id(&self, id: InstrId) -> Option<InstrId> {
        self.node(id).prev.map(|i| self.id_of(i))
    }

    /// Borrow the instruction for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (its instruction was removed).
    pub fn get(&self, id: InstrId) -> &Instr {
        self.node(id).instr.as_ref().unwrap()
    }

    /// Mutably borrow the instruction for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn get_mut(&mut self, id: InstrId) -> &mut Instr {
        let n = &mut self.nodes[id.idx as usize];
        assert_eq!(n.gen, id.gen, "stale InstrId {id:?}");
        n.instr.as_mut().expect("InstrId no longer in list")
    }

    /// Append an instruction (paper: `instrlist_append`).
    pub fn push_back(&mut self, instr: Instr) -> InstrId {
        let idx = self.alloc(instr);
        self.nodes[idx as usize].prev = self.tail;
        match self.tail {
            Some(t) => self.nodes[t as usize].next = Some(idx),
            None => self.head = Some(idx),
        }
        self.tail = Some(idx);
        self.len += 1;
        self.id_of(idx)
    }

    /// Prepend an instruction (paper: `instrlist_prepend`).
    pub fn push_front(&mut self, instr: Instr) -> InstrId {
        let idx = self.alloc(instr);
        self.nodes[idx as usize].next = self.head;
        match self.head {
            Some(h) => self.nodes[h as usize].prev = Some(idx),
            None => self.tail = Some(idx),
        }
        self.head = Some(idx);
        self.len += 1;
        self.id_of(idx)
    }

    /// Insert `instr` immediately before `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is stale.
    pub fn insert_before(&mut self, at: InstrId, instr: Instr) -> InstrId {
        let at_prev = self.node(at).prev;
        let idx = self.alloc(instr);
        self.nodes[idx as usize].prev = at_prev;
        self.nodes[idx as usize].next = Some(at.idx);
        self.nodes[at.idx as usize].prev = Some(idx);
        match at_prev {
            Some(p) => self.nodes[p as usize].next = Some(idx),
            None => self.head = Some(idx),
        }
        self.len += 1;
        self.id_of(idx)
    }

    /// Insert `instr` immediately after `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is stale.
    pub fn insert_after(&mut self, at: InstrId, instr: Instr) -> InstrId {
        let at_next = self.node(at).next;
        let idx = self.alloc(instr);
        self.nodes[idx as usize].next = at_next;
        self.nodes[idx as usize].prev = Some(at.idx);
        self.nodes[at.idx as usize].next = Some(idx);
        match at_next {
            Some(n) => self.nodes[n as usize].prev = Some(idx),
            None => self.tail = Some(idx),
        }
        self.len += 1;
        self.id_of(idx)
    }

    /// Remove and return the instruction at `id` (paper: `instrlist_remove` +
    /// `instr_destroy`). The id becomes stale.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn remove(&mut self, id: InstrId) -> Instr {
        let (prev, next) = {
            let n = self.node(id);
            (n.prev, n.next)
        };
        match prev {
            Some(p) => self.nodes[p as usize].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n as usize].prev = prev,
            None => self.tail = prev,
        }
        let node = &mut self.nodes[id.idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.prev = None;
        node.next = None;
        self.len -= 1;
        self.free.push(id.idx);
        node.instr.take().unwrap()
    }

    /// Replace the instruction at `id`, returning the old one. The id (and
    /// any branch operands naming it) remains valid and now refers to the new
    /// instruction — this is how the paper's `instrlist_replace` is used in
    /// the `inc2add` client (Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn replace(&mut self, id: InstrId, instr: Instr) -> Instr {
        let n = &mut self.nodes[id.idx as usize];
        assert_eq!(n.gen, id.gen, "stale InstrId {id:?}");
        n.instr.replace(instr).expect("InstrId no longer in list")
    }

    /// Ids in list order.
    pub fn ids(&self) -> Ids<'_> {
        Ids {
            list: self,
            cur: self.head,
        }
    }

    /// Iterate over instructions in list order.
    pub fn iter(&self) -> impl Iterator<Item = &Instr> {
        self.ids().map(move |id| self.get(id))
    }

    /// Move every instruction of `other` to the end of `self`, remapping
    /// intra-list branch targets. Used when stitching basic blocks into a
    /// trace.
    pub fn append(&mut self, mut other: InstrList) {
        let other_ids: Vec<InstrId> = other.ids().collect();
        let mut map: Vec<(InstrId, InstrId)> = Vec::with_capacity(other_ids.len());
        for oid in &other_ids {
            let instr = other.remove(*oid);
            let nid = self.push_back(instr);
            map.push((*oid, nid));
        }
        let new_ids: Vec<InstrId> = map.iter().map(|(_, n)| *n).collect();
        let remap = move |id: InstrId| -> InstrId {
            map.iter()
                .find(|(o, _)| *o == id)
                .map(|(_, n)| *n)
                .unwrap_or(id)
        };
        // Only the moved instructions may reference the old ids; ids of
        // pre-existing instructions can collide numerically with `other`'s
        // and must not be rewritten.
        for nid in new_ids {
            self.get_mut(nid).remap_instr_targets(&remap);
        }
    }

    /// Total memory footprint of all instructions plus list overhead, for
    /// the Table 2 reproduction.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<InstrList>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.iter().map(Instr::memory_bytes).sum::<usize>()
    }

    /// Decode one basic block's bytes into a list at the requested level of
    /// detail.
    ///
    /// * [`Level::L0`]: a single bundle `Instr` spanning all instructions
    ///   (only the final boundary is recorded).
    /// * [`Level::L1`]: one raw-bytes `Instr` per instruction.
    /// * [`Level::L2`]: opcode + eflags decoded per instruction.
    /// * [`Level::L3`] (or `L4`): fully decoded operands.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bytes contain an invalid encoding.
    pub fn decode_block(bytes: &[u8], app_pc: u32, level: Level) -> Result<InstrList, DecodeError> {
        let mut il = InstrList::new();
        match level {
            Level::L0 => {
                let mut off = 0u32;
                let mut last = 0u32;
                let mut count = 0u32;
                while (off as usize) < bytes.len() {
                    let len = decode::decode_sizeof(&bytes[off as usize..])?;
                    last = off;
                    count += 1;
                    off += len;
                }
                il.push_back(Instr::bundle(bytes.to_vec(), app_pc, last, count));
            }
            _ => {
                let mut off = 0usize;
                while off < bytes.len() {
                    let rest = &bytes[off..];
                    let pc = app_pc + off as u32;
                    let len = decode::decode_sizeof(rest)? as usize;
                    let raw = rest[..len].to_vec();
                    let mut instr = Instr::raw(raw, pc);
                    match level {
                        Level::L1 => {}
                        Level::L2 => decode::decode_opcode_into(rest, &mut instr)?,
                        _ => {
                            decode::decode_full_into(rest, pc, &mut instr)?;
                        }
                    }
                    il.push_back(instr);
                    off += len;
                }
            }
        }
        Ok(il)
    }
}

/// Iterator over [`InstrId`]s in list order. Created by [`InstrList::ids`].
#[derive(Debug)]
pub struct Ids<'a> {
    list: &'a InstrList,
    cur: Option<u32>,
}

impl Iterator for Ids<'_> {
    type Item = InstrId;
    fn next(&mut self) -> Option<InstrId> {
        let idx = self.cur?;
        self.cur = self.list.nodes[idx as usize].next;
        Some(self.list.id_of(idx))
    }
}

impl fmt::Display for InstrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in self.ids() {
            writeln!(f, "  {}", self.get(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create;
    use crate::instr::Target;
    use crate::opnd::Opnd;
    use crate::reg::Reg;

    fn nop() -> Instr {
        create::nop()
    }

    #[test]
    fn push_and_order() {
        let mut il = InstrList::new();
        let a = il.push_back(nop());
        let b = il.push_back(nop());
        let c = il.push_front(nop());
        assert_eq!(il.len(), 3);
        let ids: Vec<_> = il.ids().collect();
        assert_eq!(ids, vec![c, a, b]);
        assert_eq!(il.first_id(), Some(c));
        assert_eq!(il.last_id(), Some(b));
    }

    #[test]
    fn insert_before_and_after() {
        let mut il = InstrList::new();
        let a = il.push_back(nop());
        let b = il.insert_after(a, nop());
        let c = il.insert_before(b, nop());
        let ids: Vec<_> = il.ids().collect();
        assert_eq!(ids, vec![a, c, b]);
        assert_eq!(il.prev_id(b), Some(c));
        assert_eq!(il.next_id(a), Some(c));
    }

    #[test]
    fn remove_relinks_neighbors() {
        let mut il = InstrList::new();
        let a = il.push_back(nop());
        let b = il.push_back(nop());
        let c = il.push_back(nop());
        il.remove(b);
        assert_eq!(il.len(), 2);
        assert_eq!(il.next_id(a), Some(c));
        assert_eq!(il.prev_id(c), Some(a));
    }

    #[test]
    #[should_panic(expected = "stale InstrId")]
    fn stale_id_detected() {
        let mut il = InstrList::new();
        let a = il.push_back(nop());
        il.remove(a);
        let _b = il.push_back(nop()); // reuses the slot
        let _ = il.get(a);
    }

    #[test]
    fn replace_keeps_id_valid() {
        let mut il = InstrList::new();
        let a = il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        let old = il.replace(a, create::add(Opnd::reg(Reg::Eax), Opnd::imm8(1)));
        assert_eq!(old.opcode(), Some(crate::Opcode::Inc));
        assert_eq!(il.get(a).opcode(), Some(crate::Opcode::Add));
        assert_eq!(il.len(), 1);
    }

    #[test]
    fn append_remaps_label_targets() {
        // Build list B containing a jump to its own label, then append to A.
        let mut a = InstrList::new();
        a.push_back(nop());

        let mut b = InstrList::new();
        let lbl = b.push_back(Instr::label());
        let mut jmp = create::jmp(Target::Pc(0));
        jmp.set_target(Target::Instr(lbl));
        b.push_back(jmp);

        a.append(b);
        assert_eq!(a.len(), 3);
        let ids: Vec<_> = a.ids().collect();
        let new_lbl = ids[1];
        let jmp_id = ids[2];
        assert!(a.get(new_lbl).is_label());
        assert_eq!(a.get(jmp_id).target(), Some(Target::Instr(new_lbl)));
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut il = InstrList::new();
        let a = il.push_back(nop());
        il.remove(a);
        let b = il.push_back(nop());
        assert_eq!(a.raw(), b.raw()); // same slot
        assert_ne!(a, b); // different generation
        assert_eq!(il.len(), 1);
    }

    #[test]
    fn iter_matches_ids() {
        let mut il = InstrList::new();
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::dec(Opnd::reg(Reg::Ebx)));
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(ops, vec![crate::Opcode::Inc, crate::Opcode::Dec]);
    }
}
