//! Instruction-creation constructors.
//!
//! "Instruction generation is simplified through a set of macros. A macro is
//! provided for every IA-32 instruction. The macro takes as arguments only
//! those operands that are explicit and automatically fills in the implicit
//! operands" (paper §3.2). In Rust the `INSTR_CREATE_*` macros become plain
//! constructor functions: [`add`]`(dst, src)` is the analogue of
//! `INSTR_CREATE_add(ctx, dst, src)`.
//!
//! All constructors produce Level 4 instructions (synthesized, no raw bits).
//! The IA-32 abstraction can also be bypassed by building an
//! [`Instr`] from an opcode and complete operand lists with
//! [`Instr::new`].

use crate::instr::{Instr, Target};
use crate::opcode::{Cc, Opcode};
use crate::opnd::{MemRef, OpSize, Opnd};
use crate::reg::Reg;

fn stack_mem(disp: i32) -> Opnd {
    Opnd::Mem(MemRef::base_disp(Reg::Esp, disp, OpSize::S32))
}

/// `mov dst, src`.
pub fn mov(dst: Opnd, src: Opnd) -> Instr {
    Instr::new(Opcode::Mov, vec![src], vec![dst])
}

/// `lea dst, mem` — load effective address.
pub fn lea(dst: Reg, mem: MemRef) -> Instr {
    Instr::new(Opcode::Lea, vec![Opnd::Mem(mem)], vec![Opnd::reg(dst)])
}

/// `movzx dst32, src` (8- or 16-bit source).
pub fn movzx(dst: Reg, src: Opnd) -> Instr {
    Instr::new(Opcode::Movzx, vec![src], vec![Opnd::reg(dst)])
}

/// `movsx dst32, src` (8- or 16-bit source).
pub fn movsx(dst: Reg, src: Opnd) -> Instr {
    Instr::new(Opcode::Movsx, vec![src], vec![Opnd::reg(dst)])
}

fn arith(op: Opcode, dst: Opnd, src: Opnd) -> Instr {
    Instr::new(op, vec![src, dst], vec![dst])
}

/// `add dst, src` (paper Figure 3: `INSTR_CREATE_add`).
pub fn add(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Add, dst, src)
}

/// `sub dst, src` (paper Figure 3: `INSTR_CREATE_sub`).
pub fn sub(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Sub, dst, src)
}

/// `adc dst, src`.
pub fn adc(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Adc, dst, src)
}

/// `sbb dst, src`.
pub fn sbb(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Sbb, dst, src)
}

/// `and dst, src`.
pub fn and(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::And, dst, src)
}

/// `or dst, src`.
pub fn or(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Or, dst, src)
}

/// `xor dst, src`.
pub fn xor(dst: Opnd, src: Opnd) -> Instr {
    arith(Opcode::Xor, dst, src)
}

/// `cmp a, b` — computes `a - b`, writes flags only.
pub fn cmp(a: Opnd, b: Opnd) -> Instr {
    Instr::new(Opcode::Cmp, vec![a, b], vec![])
}

/// `test a, b` — computes `a & b`, writes flags only.
pub fn test(a: Opnd, b: Opnd) -> Instr {
    Instr::new(Opcode::Test, vec![a, b], vec![])
}

/// `inc rm` — increment; does not write CF.
pub fn inc(rm: Opnd) -> Instr {
    Instr::new(Opcode::Inc, vec![rm], vec![rm])
}

/// `dec rm` — decrement; does not write CF.
pub fn dec(rm: Opnd) -> Instr {
    Instr::new(Opcode::Dec, vec![rm], vec![rm])
}

/// `neg rm`.
pub fn neg(rm: Opnd) -> Instr {
    Instr::new(Opcode::Neg, vec![rm], vec![rm])
}

/// `not rm`.
pub fn not(rm: Opnd) -> Instr {
    Instr::new(Opcode::Not, vec![rm], vec![rm])
}

/// `xchg a, b`.
pub fn xchg(a: Opnd, b: Opnd) -> Instr {
    Instr::new(Opcode::Xchg, vec![a, b], vec![a, b])
}

/// `shl rm, count` (count: immediate or `%cl`).
pub fn shl(rm: Opnd, count: Opnd) -> Instr {
    Instr::new(Opcode::Shl, vec![count, rm], vec![rm])
}

/// `shr rm, count`.
pub fn shr(rm: Opnd, count: Opnd) -> Instr {
    Instr::new(Opcode::Shr, vec![count, rm], vec![rm])
}

/// `sar rm, count`.
pub fn sar(rm: Opnd, count: Opnd) -> Instr {
    Instr::new(Opcode::Sar, vec![count, rm], vec![rm])
}

/// Two-operand `imul dst, src` (`dst = dst * src`).
pub fn imul(dst: Reg, src: Opnd) -> Instr {
    Instr::new(
        Opcode::Imul,
        vec![src, Opnd::reg(dst)],
        vec![Opnd::reg(dst)],
    )
}

/// Three-operand `imul dst, src, imm`.
pub fn imul3(dst: Reg, src: Opnd, imm: Opnd) -> Instr {
    Instr::new(Opcode::Imul, vec![src, imm], vec![Opnd::reg(dst)])
}

/// One-operand `imul rm` (`edx:eax = eax * rm`).
pub fn imul1(rm: Opnd) -> Instr {
    Instr::new(
        Opcode::Imul,
        vec![rm, Opnd::reg(Reg::Eax)],
        vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
    )
}

/// `mul rm` (`edx:eax = eax * rm`, unsigned).
pub fn mul(rm: Opnd) -> Instr {
    Instr::new(
        Opcode::Mul,
        vec![rm, Opnd::reg(Reg::Eax)],
        vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
    )
}

/// `idiv rm` (`eax = edx:eax / rm`, `edx = remainder`, signed).
pub fn idiv(rm: Opnd) -> Instr {
    Instr::new(
        Opcode::Idiv,
        vec![rm, Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
        vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
    )
}

/// `div rm` (unsigned).
pub fn div(rm: Opnd) -> Instr {
    Instr::new(
        Opcode::Div,
        vec![rm, Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
        vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
    )
}

/// `cdq` — sign-extend `%eax` into `%edx`.
pub fn cdq() -> Instr {
    Instr::new(
        Opcode::Cdq,
        vec![Opnd::reg(Reg::Eax)],
        vec![Opnd::reg(Reg::Edx)],
    )
}

/// `cwde` — sign-extend `%ax` into `%eax`.
pub fn cwde() -> Instr {
    Instr::new(
        Opcode::Cwde,
        vec![Opnd::reg(Reg::Ax)],
        vec![Opnd::reg(Reg::Eax)],
    )
}

/// `push src` (register, immediate, memory, or code address).
pub fn push(src: Opnd) -> Instr {
    Instr::new(
        Opcode::Push,
        vec![src, Opnd::reg(Reg::Esp)],
        vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
    )
}

/// `pop dst`.
pub fn pop(dst: Opnd) -> Instr {
    Instr::new(
        Opcode::Pop,
        vec![Opnd::reg(Reg::Esp), stack_mem(0)],
        vec![dst, Opnd::reg(Reg::Esp)],
    )
}

/// `pushfd` — push EFLAGS.
pub fn pushfd() -> Instr {
    Instr::new(
        Opcode::Pushfd,
        vec![Opnd::reg(Reg::Esp)],
        vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
    )
}

/// `popfd` — pop EFLAGS.
pub fn popfd() -> Instr {
    Instr::new(
        Opcode::Popfd,
        vec![Opnd::reg(Reg::Esp), stack_mem(0)],
        vec![Opnd::reg(Reg::Esp)],
    )
}

/// `lahf` — flags into `%ah`.
pub fn lahf() -> Instr {
    Instr::new(Opcode::Lahf, vec![], vec![Opnd::reg(Reg::Ah)])
}

/// `sahf` — `%ah` into flags.
pub fn sahf() -> Instr {
    Instr::new(Opcode::Sahf, vec![Opnd::reg(Reg::Ah)], vec![])
}

/// `set<cc> rm8`.
pub fn setcc(cc: Cc, rm8: Opnd) -> Instr {
    Instr::new(Opcode::Set(cc), vec![], vec![rm8])
}

/// `cmov<cc> dst32, src` — conditional move.
pub fn cmov(cc: Cc, dst: Reg, src: Opnd) -> Instr {
    Instr::new(
        Opcode::Cmov(cc),
        vec![src, Opnd::reg(dst)],
        vec![Opnd::reg(dst)],
    )
}

/// `rol rm, count`.
pub fn rol(rm: Opnd, count: Opnd) -> Instr {
    Instr::new(Opcode::Rol, vec![count, rm], vec![rm])
}

/// `ror rm, count`.
pub fn ror(rm: Opnd, count: Opnd) -> Instr {
    Instr::new(Opcode::Ror, vec![count, rm], vec![rm])
}

/// `bt rm, bit` — test a bit into CF (bit: register or imm8).
pub fn bt(rm: Opnd, bit: Opnd) -> Instr {
    Instr::new(Opcode::Bt, vec![rm, bit], vec![])
}

/// `bswap r32`.
pub fn bswap(r: Reg) -> Instr {
    Instr::new(Opcode::Bswap, vec![Opnd::reg(r)], vec![Opnd::reg(r)])
}

/// `nop`.
pub fn nop() -> Instr {
    Instr::new(Opcode::Nop, vec![], vec![])
}

/// `int3` breakpoint.
pub fn int3() -> Instr {
    Instr::new(Opcode::Int3, vec![], vec![])
}

/// `int n` — software interrupt (the simulated system-call gate).
pub fn int(n: u8) -> Instr {
    Instr::new(Opcode::Int, vec![Opnd::Imm(n as i32, OpSize::S8)], vec![])
}

/// `hlt` — terminates the simulated program.
pub fn hlt() -> Instr {
    Instr::new(Opcode::Hlt, vec![], vec![])
}

/// Direct `jmp target`.
pub fn jmp(target: Target) -> Instr {
    Instr::new(Opcode::Jmp, vec![target.to_opnd()], vec![])
}

/// Conditional direct `j<cc> target`.
pub fn jcc(cc: Cc, target: Target) -> Instr {
    Instr::new(Opcode::Jcc(cc), vec![target.to_opnd()], vec![])
}

/// `jecxz target` — jump if `%ecx` is zero; reads no eflags.
pub fn jecxz(target: Target) -> Instr {
    Instr::new(
        Opcode::Jecxz,
        vec![target.to_opnd(), Opnd::reg(Reg::Ecx)],
        vec![],
    )
}

/// Direct `call target`.
pub fn call(target: Target) -> Instr {
    Instr::new(
        Opcode::Call,
        vec![target.to_opnd(), Opnd::reg(Reg::Esp)],
        vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
    )
}

/// Indirect `jmp *rm`.
pub fn jmp_ind(rm: Opnd) -> Instr {
    Instr::new(Opcode::JmpInd, vec![rm], vec![])
}

/// Indirect `call *rm`.
pub fn call_ind(rm: Opnd) -> Instr {
    Instr::new(
        Opcode::CallInd,
        vec![rm, Opnd::reg(Reg::Esp)],
        vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
    )
}

/// `ret`.
pub fn ret() -> Instr {
    Instr::new(
        Opcode::Ret,
        vec![Opnd::reg(Reg::Esp), stack_mem(0)],
        vec![Opnd::reg(Reg::Esp)],
    )
}

/// `ret imm16` — return and pop `imm` extra bytes.
pub fn ret_imm(imm: u16) -> Instr {
    Instr::new(
        Opcode::Ret,
        vec![
            Opnd::Imm(imm as i32, OpSize::S16),
            Opnd::reg(Reg::Esp),
            stack_mem(0),
        ],
        vec![Opnd::reg(Reg::Esp)],
    )
}

/// A label pseudo-instruction (branch target within an `InstrList`).
pub fn label() -> Instr {
    Instr::label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_instr;
    use crate::encode::encode_instr;
    use crate::instr::Level;

    fn round_trip(i: &Instr) -> Instr {
        let bytes = encode_instr(i, 0x1000, &|_| Some(0x1000)).unwrap();
        let (re, len) = decode_instr(&bytes, 0x1000).unwrap();
        assert_eq!(len as usize, bytes.len());
        re
    }

    #[test]
    fn constructors_are_level4() {
        assert_eq!(nop().level(), Level::L4);
        assert_eq!(add(Opnd::reg(Reg::Eax), Opnd::imm8(1)).level(), Level::L4);
    }

    #[test]
    fn created_instructions_round_trip_semantically() {
        let cases = vec![
            mov(Opnd::reg(Reg::Eax), Opnd::imm32(42)),
            lea(
                Reg::Esi,
                MemRef::base_index(Reg::Ecx, Reg::Eax, 1, 0, OpSize::S32),
            ),
            add(Opnd::reg(Reg::Ebx), Opnd::imm32(0x1234)),
            sub(
                Opnd::reg(Reg::Eax),
                Opnd::Mem(MemRef::base_disp(Reg::Esi, 0x1c, OpSize::S32)),
            ),
            cmp(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Ecx)),
            inc(Opnd::reg(Reg::Edi)),
            dec(Opnd::Mem(MemRef::base_disp(Reg::Ebp, -8, OpSize::S32))),
            shl(Opnd::reg(Reg::Ecx), Opnd::imm8(7)),
            imul(Reg::Eax, Opnd::reg(Reg::Ebx)),
            imul3(Reg::Edx, Opnd::reg(Reg::Ecx), Opnd::imm32(1000)),
            idiv(Opnd::reg(Reg::Ebx)),
            push(Opnd::reg(Reg::Ebp)),
            pop(Opnd::reg(Reg::Ebp)),
            test(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Eax)),
            setcc(Cc::Nz, Opnd::reg(Reg::Al)),
            movzx(Reg::Eax, Opnd::reg(Reg::Bl)),
            cdq(),
            ret(),
            int(0x80),
        ];
        for i in cases {
            let re = round_trip(&i);
            assert_eq!(i.opcode(), re.opcode(), "{i}");
            assert_eq!(i.srcs(), re.srcs(), "{i}");
            assert_eq!(i.dsts(), re.dsts(), "{i}");
        }
    }

    #[test]
    fn cti_constructors_round_trip_targets() {
        for i in [
            jmp(Target::Pc(0x2000)),
            jcc(Cc::Nl, Target::Pc(0x3000)),
            call(Target::Pc(0x400000)),
            jecxz(Target::Pc(0x1010)),
        ] {
            let re = round_trip(&i);
            assert_eq!(i.opcode(), re.opcode());
            assert_eq!(re.src(0), i.src(0), "{i}");
        }
    }

    #[test]
    fn implicit_operands_are_materialized() {
        let p = push(Opnd::reg(Reg::Eax));
        assert!(p.srcs().iter().any(|o| o.as_reg() == Some(Reg::Esp)));
        assert!(p.dsts().iter().any(|o| o.as_mem().is_some()));
        let d = idiv(Opnd::reg(Reg::Ecx));
        assert_eq!(d.srcs().len(), 3);
        let c = call(Target::Pc(0x1000));
        assert!(c.dsts().iter().any(|o| o.as_mem().is_some()));
    }

    #[test]
    fn inc2add_transformation_shape() {
        // The exact replacement from Figure 3 of the paper.
        let original = inc(Opnd::reg(Reg::Eax));
        let replacement = add(*original.dst(0), Opnd::imm8(1));
        assert_eq!(replacement.dst(0), original.dst(0));
        let bytes = encode_instr(&replacement, 0, &|_| None).unwrap();
        assert_eq!(bytes, vec![0x83, 0xC0, 0x01]);
    }
}

#[cfg(test)]
mod extended_isa_tests {
    use super::*;
    use crate::decode::decode_instr;
    use crate::encode::encode_instr;

    fn round_trip(i: &Instr) {
        let bytes = encode_instr(i, 0x1000, &|_| None).unwrap();
        let (re, len) = decode_instr(&bytes, 0x1000).unwrap();
        assert_eq!(len as usize, bytes.len(), "{i}");
        assert_eq!(i.opcode(), re.opcode(), "{i}");
        assert_eq!(i.srcs(), re.srcs(), "{i}");
        assert_eq!(i.dsts(), re.dsts(), "{i}");
    }

    #[test]
    fn cmov_round_trips_for_all_conditions() {
        for cc in Cc::ALL {
            round_trip(&cmov(cc, Reg::Edx, Opnd::reg(Reg::Esi)));
            round_trip(&cmov(
                cc,
                Reg::Eax,
                Opnd::Mem(MemRef::base_disp(Reg::Ebp, -8, OpSize::S32)),
            ));
        }
    }

    #[test]
    fn rotate_and_bit_ops_round_trip() {
        round_trip(&rol(Opnd::reg(Reg::Eax), Opnd::imm8(7)));
        round_trip(&ror(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Cl)));
        round_trip(&rol(
            Opnd::Mem(MemRef::base_disp(Reg::Esi, 4, OpSize::S32)),
            Opnd::imm8(1),
        ));
        round_trip(&bt(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Edx)));
        round_trip(&bt(Opnd::reg(Reg::Eax), Opnd::imm8(17)));
        round_trip(&bswap(Reg::Edi));
    }

    #[test]
    fn short_xchg_decodes() {
        // 0x93 = xchg %eax, %ebx
        let (i, len) = decode_instr(&[0x93], 0).unwrap();
        assert_eq!(len, 1);
        assert_eq!(i.opcode(), Some(Opcode::Xchg));
        assert_eq!(i.src(0).as_reg(), Some(Reg::Eax));
        assert_eq!(i.src(1).as_reg(), Some(Reg::Ebx));
    }

    #[test]
    fn cmov_eflags_metadata() {
        use crate::eflags::Eflags;
        let i = cmov(Cc::Z, Reg::Eax, Opnd::reg(Reg::Ebx));
        assert_eq!(i.eflags().read, Eflags::ZF);
        assert!(i.eflags().written.is_empty());
        let b = bt(Opnd::reg(Reg::Eax), Opnd::imm8(3));
        assert_eq!(b.eflags().written, Eflags::CF);
    }
}
