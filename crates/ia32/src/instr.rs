//! The [`Instr`] data structure with adaptive levels of detail.
//!
//! "A single instruction, or a group of bundled un-decoded instructions, is
//! represented in the list by an `Instr` data structure" (paper §3.1). The
//! five levels:
//!
//! * **Level 0** — raw bytes of a *series* of instructions; only the final
//!   instruction boundary is recorded.
//! * **Level 1** — one `Instr` per machine instruction, raw bytes only.
//! * **Level 2** — opcode and eflags effect decoded, raw bytes retained.
//! * **Level 3** — fully decoded operands, raw bytes still valid (fast
//!   re-encode by copying).
//! * **Level 4** — fully decoded, modified or newly created; raw bytes
//!   invalid, must be encoded from operands.
//!
//! Mutating operations implicitly raise an instruction to Level 4
//! ("modifying an operand will cause the raw bytes to become invalid").

use std::fmt;
use std::mem;

use crate::eflags::EflagsEffect;
use crate::ilist::InstrId;
use crate::opcode::Opcode;
use crate::opnd::Opnd;

/// The five levels of instruction detail (paper §3.1, Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Bundle of un-decoded instructions; final boundary recorded.
    L0,
    /// Un-decoded raw bits for a single instruction.
    L1,
    /// Opcode and eflags effect known.
    L2,
    /// Fully decoded, raw bits valid.
    L3,
    /// Fully decoded, raw bits invalid (requires full encode).
    L4,
}

/// A control-transfer target: an application address or another instruction
/// (label) in the same [`InstrList`](crate::InstrList).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// Original application code address.
    Pc(u32),
    /// An instruction in the same list, resolved at encode time.
    Instr(InstrId),
}

impl Target {
    /// Convert to the operand form stored in `srcs[0]` of a direct CTI.
    pub fn to_opnd(self) -> Opnd {
        match self {
            Target::Pc(pc) => Opnd::Pc(pc),
            Target::Instr(id) => Opnd::Instr(id),
        }
    }

    /// Extract a target from an operand, if it is one.
    pub fn from_opnd(op: &Opnd) -> Option<Target> {
        match op {
            Opnd::Pc(pc) => Some(Target::Pc(*pc)),
            Opnd::Instr(id) => Some(Target::Instr(*id)),
            _ => None,
        }
    }
}

/// A single instruction (or Level 0 bundle) in the adaptive representation.
///
/// # Examples
///
/// Creating and inspecting a synthesized (Level 4) instruction:
///
/// ```
/// use rio_ia32::{create, Opcode, Opnd, Reg, Level};
///
/// let add = create::add(Opnd::reg(Reg::Eax), Opnd::imm8(1));
/// assert_eq!(add.level(), Level::L4);
/// assert_eq!(add.opcode(), Some(Opcode::Add));
/// assert!(!add.raw_valid());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    level: Level,
    /// Original application pc (0 for synthesized instructions).
    app_pc: u32,
    /// Raw machine bytes; meaningful when `raw_valid`.
    raw: Vec<u8>,
    raw_valid: bool,
    /// For Level 0 bundles: byte offset of the final instruction.
    bundle_last_off: u32,
    /// For Level 0 bundles: number of bundled instructions.
    bundle_count: u32,
    opcode: Option<Opcode>,
    eflags: EflagsEffect,
    srcs: Vec<Opnd>,
    dsts: Vec<Opnd>,
    prefixes: u16,
    /// Free-form client annotation field (paper §3.2: "a field in the Instr
    /// data structure that can be used by the client for annotations").
    pub note: u64,
}

impl Instr {
    /// Create a Level 0 bundle over `bytes`, which hold `count` instructions,
    /// the last one beginning at `last_off`.
    pub fn bundle(bytes: Vec<u8>, app_pc: u32, last_off: u32, count: u32) -> Instr {
        Instr {
            level: Level::L0,
            app_pc,
            raw: bytes,
            raw_valid: true,
            bundle_last_off: last_off,
            bundle_count: count,
            opcode: None,
            eflags: EflagsEffect::NONE,
            srcs: Vec::new(),
            dsts: Vec::new(),
            prefixes: 0,
            note: 0,
        }
    }

    /// Create a Level 1 instruction holding only raw bytes.
    pub fn raw(bytes: Vec<u8>, app_pc: u32) -> Instr {
        Instr {
            level: Level::L1,
            app_pc,
            raw: bytes,
            raw_valid: true,
            bundle_last_off: 0,
            bundle_count: 1,
            opcode: None,
            eflags: EflagsEffect::NONE,
            srcs: Vec::new(),
            dsts: Vec::new(),
            prefixes: 0,
            note: 0,
        }
    }

    /// Create a synthesized (Level 4) instruction from opcode and operands.
    ///
    /// This is the workhorse behind the [`create`](crate::create)
    /// constructors; the eflags effect is derived from the opcode.
    pub fn new(opcode: Opcode, srcs: Vec<Opnd>, dsts: Vec<Opnd>) -> Instr {
        Instr {
            level: Level::L4,
            app_pc: 0,
            raw: Vec::new(),
            raw_valid: false,
            bundle_last_off: 0,
            bundle_count: 1,
            opcode: Some(opcode),
            eflags: opcode.eflags_effect(),
            srcs,
            dsts,
            prefixes: 0,
            note: 0,
        }
    }

    /// Create a label pseudo-instruction (a zero-length branch target).
    pub fn label() -> Instr {
        Instr::new(Opcode::Label, Vec::new(), Vec::new())
    }

    /// Current level of detail.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Original application address, or 0 for synthesized instructions.
    pub fn app_pc(&self) -> u32 {
        self.app_pc
    }

    /// Set the recorded application address (used when synthesized code
    /// stands in for an application instruction, e.g. strength reduction).
    pub fn set_app_pc(&mut self, pc: u32) {
        self.app_pc = pc;
    }

    /// Whether the stored raw bytes are a valid encoding of the instruction.
    pub fn raw_valid(&self) -> bool {
        self.raw_valid
    }

    /// The raw bytes, if valid.
    pub fn raw_bytes(&self) -> Option<&[u8]> {
        if self.raw_valid {
            Some(&self.raw)
        } else {
            None
        }
    }

    /// For Level 0 bundles, the byte offset of the final bundled instruction.
    pub fn bundle_last_offset(&self) -> u32 {
        self.bundle_last_off
    }

    /// For Level 0 bundles, the number of bundled instructions.
    pub fn bundle_count(&self) -> u32 {
        self.bundle_count
    }

    /// The opcode, if decoded to Level 2 or above (paper:
    /// `instr_get_opcode`).
    pub fn opcode(&self) -> Option<Opcode> {
        self.opcode
    }

    /// The eflags effect, if decoded to Level 2 or above (paper:
    /// `instr_get_eflags`).
    pub fn eflags(&self) -> EflagsEffect {
        self.eflags
    }

    /// Encoded prefix bits (paper: `instr_get_prefixes`).
    pub fn prefixes(&self) -> u16 {
        self.prefixes
    }

    /// Set prefix bits (paper: `instr_set_prefixes`).
    pub fn set_prefixes(&mut self, prefixes: u16) {
        self.prefixes = prefixes;
    }

    /// Source operands (valid at Level 3+). Implicit operands are
    /// materialized, so e.g. `pop %eax` lists `%esp` and `(%esp)` as sources.
    pub fn srcs(&self) -> &[Opnd] {
        &self.srcs
    }

    /// Destination operands (valid at Level 3+).
    pub fn dsts(&self) -> &[Opnd] {
        &self.dsts
    }

    /// Source operand `i` (paper: `instr_get_src`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn src(&self, i: usize) -> &Opnd {
        &self.srcs[i]
    }

    /// Destination operand `i` (paper: `instr_get_dst`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dst(&self, i: usize) -> &Opnd {
        &self.dsts[i]
    }

    /// Replace source operand `i`, invalidating raw bytes (level → 4).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_src(&mut self, i: usize, op: Opnd) {
        self.srcs[i] = op;
        self.invalidate_raw();
    }

    /// Replace destination operand `i`, invalidating raw bytes (level → 4).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_dst(&mut self, i: usize, op: Opnd) {
        self.dsts[i] = op;
        self.invalidate_raw();
    }

    /// The branch target of a direct CTI (stored as `srcs[0]`).
    pub fn target(&self) -> Option<Target> {
        let op = self.opcode?;
        if op.is_cti() && !op.is_indirect_cti() && op != Opcode::Ret {
            self.srcs.first().and_then(Target::from_opnd)
        } else {
            None
        }
    }

    /// Set the branch target of a direct CTI, invalidating raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a direct CTI decoded to Level 3+.
    pub fn set_target(&mut self, target: Target) {
        let op = self
            .opcode
            .expect("set_target requires a decoded instruction");
        assert!(
            op.is_cti() && !op.is_indirect_cti() && op != Opcode::Ret,
            "set_target on non-direct-CTI {op}"
        );
        if self.srcs.is_empty() {
            self.srcs.push(target.to_opnd());
        } else {
            self.srcs[0] = target.to_opnd();
        }
        self.invalidate_raw();
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_cti(&self) -> bool {
        self.opcode.is_some_and(Opcode::is_cti)
    }

    /// Whether this is a CTI that exits the enclosing fragment, i.e. its
    /// target is an application pc rather than a label in the same list
    /// (paper: `instr_is_exit_cti`). Indirect CTIs always exit.
    pub fn is_exit_cti(&self) -> bool {
        match self.opcode {
            Some(op) if op.is_indirect_cti() => true,
            Some(op) if op.is_cti() => {
                matches!(self.srcs.first(), Some(Opnd::Pc(_)))
            }
            _ => false,
        }
    }

    /// Whether this is a label pseudo-instruction.
    pub fn is_label(&self) -> bool {
        self.opcode == Some(Opcode::Label)
    }

    /// Explicitly mark raw bytes invalid, raising the level to 4.
    ///
    /// Implied by every mutating operation; exposed for clients that mutate
    /// state the representation cannot observe.
    pub fn invalidate_raw(&mut self) {
        self.raw_valid = false;
        self.raw = Vec::new();
        if self.level >= Level::L3 {
            self.level = Level::L4;
        }
    }

    /// Install decoded Level 2 state (opcode + eflags). Used by the decoder.
    pub(crate) fn install_l2(&mut self, opcode: Opcode) {
        self.opcode = Some(opcode);
        self.eflags = opcode.eflags_effect();
        if self.level < Level::L2 {
            self.level = Level::L2;
        }
    }

    /// Install decoded Level 3 state. Used by the decoder.
    pub(crate) fn install_l3(&mut self, opcode: Opcode, srcs: Vec<Opnd>, dsts: Vec<Opnd>) {
        self.opcode = Some(opcode);
        self.eflags = opcode.eflags_effect();
        self.srcs = srcs;
        self.dsts = dsts;
        if self.level < Level::L3 {
            self.level = Level::L3;
        }
    }

    /// Byte length of this instruction when encoded, if cheaply known (raw
    /// bytes valid). Labels have length 0.
    pub fn known_len(&self) -> Option<u32> {
        if self.is_label() {
            Some(0)
        } else if self.raw_valid {
            Some(self.raw.len() as u32)
        } else {
            None
        }
    }

    /// Approximate heap + inline memory footprint in bytes, for the Table 2
    /// reproduction.
    pub fn memory_bytes(&self) -> usize {
        mem::size_of::<Instr>()
            + self.raw.capacity()
            + self.srcs.capacity() * mem::size_of::<Opnd>()
            + self.dsts.capacity() * mem::size_of::<Opnd>()
    }

    /// Rewrite intra-list targets using `map` (used when an `InstrList` is
    /// appended into another and ids are remapped).
    pub(crate) fn remap_instr_targets(&mut self, map: &dyn Fn(InstrId) -> InstrId) {
        for op in self.srcs.iter_mut().chain(self.dsts.iter_mut()) {
            if let Opnd::Instr(id) = op {
                *id = map(*id);
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::disasm::fmt_instr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opnd::OpSize;
    use crate::reg::Reg;

    #[test]
    fn synthesized_instr_is_level4() {
        let i = Instr::new(
            Opcode::Add,
            vec![Opnd::imm8(1), Opnd::reg(Reg::Eax)],
            vec![Opnd::reg(Reg::Eax)],
        );
        assert_eq!(i.level(), Level::L4);
        assert!(!i.raw_valid());
        assert_eq!(i.opcode(), Some(Opcode::Add));
    }

    #[test]
    fn raw_instr_is_level1() {
        let i = Instr::raw(vec![0x90], 0x400000);
        assert_eq!(i.level(), Level::L1);
        assert!(i.raw_valid());
        assert_eq!(i.known_len(), Some(1));
        assert_eq!(i.opcode(), None);
    }

    #[test]
    fn bundle_records_final_boundary_only() {
        let i = Instr::bundle(vec![0x90, 0x90, 0x8d, 0x34, 0x01], 0x1000, 2, 3);
        assert_eq!(i.level(), Level::L0);
        assert_eq!(i.bundle_last_offset(), 2);
        assert_eq!(i.bundle_count(), 3);
    }

    #[test]
    fn mutation_invalidates_raw_and_raises_level() {
        let mut i = Instr::raw(vec![0x40], 0x1000); // inc %eax
        i.install_l3(
            Opcode::Inc,
            vec![Opnd::reg(Reg::Eax)],
            vec![Opnd::reg(Reg::Eax)],
        );
        assert_eq!(i.level(), Level::L3);
        assert!(i.raw_valid());
        i.set_dst(0, Opnd::reg(Reg::Ebx));
        assert_eq!(i.level(), Level::L4);
        assert!(!i.raw_valid());
        assert_eq!(i.known_len(), None);
    }

    #[test]
    fn target_accessors_work_on_direct_ctis() {
        let mut j = Instr::new(Opcode::Jmp, vec![Opnd::Pc(0x5000)], vec![]);
        assert_eq!(j.target(), Some(Target::Pc(0x5000)));
        assert!(j.is_exit_cti());
        j.set_target(Target::Instr(InstrId::from_raw(3)));
        assert_eq!(j.target(), Some(Target::Instr(InstrId::from_raw(3))));
        assert!(!j.is_exit_cti()); // now intra-list
    }

    #[test]
    fn indirect_ctis_always_exit() {
        let r = Instr::new(
            Opcode::Ret,
            vec![
                Opnd::reg(Reg::Esp),
                Opnd::mem(crate::MemRef::base_disp(Reg::Esp, 0, OpSize::S32)),
            ],
            vec![Opnd::reg(Reg::Esp)],
        );
        assert!(r.is_exit_cti());
        assert_eq!(r.target(), None);
    }

    #[test]
    fn labels_have_zero_length() {
        let l = Instr::label();
        assert!(l.is_label());
        assert_eq!(l.known_len(), Some(0));
    }

    #[test]
    #[should_panic(expected = "set_target on non-direct-CTI")]
    fn set_target_rejects_non_cti() {
        let mut i = Instr::new(Opcode::Nop, vec![], vec![]);
        i.set_target(Target::Pc(0));
    }

    #[test]
    fn memory_accounting_grows_with_operands() {
        let small = Instr::raw(vec![0x90], 0);
        let big = Instr::new(
            Opcode::Add,
            vec![Opnd::imm32(5), Opnd::reg(Reg::Eax)],
            vec![Opnd::reg(Reg::Eax)],
        );
        assert!(big.memory_bytes() >= small.memory_bytes());
    }
}
