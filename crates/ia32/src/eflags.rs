//! EFLAGS condition-code masks and per-instruction eflags effects.
//!
//! Level 2 of the adaptive instruction representation decodes "just enough to
//! determine the opcode and the instruction's effect on the eflags", because
//! on IA-32 "many instructions modify the eflags register, making them an
//! important factor to consider in any code transformation" (paper §3.1).
//!
//! An instruction's effect is captured by [`EflagsEffect`]: one mask of the
//! arithmetic flags it *reads* and one of the flags it *writes* (flags left
//! undefined by the architecture count as written — they are clobbered).

use std::fmt;

/// Bit masks for the six arithmetic EFLAGS bits, at their architectural
/// positions in the 32-bit EFLAGS register.
///
/// # Examples
///
/// ```
/// use rio_ia32::Eflags;
/// let flags = Eflags::CF | Eflags::ZF;
/// assert!(flags.contains(Eflags::CF));
/// assert!(!flags.contains(Eflags::OF));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Eflags(pub u32);

impl Eflags {
    /// Carry flag (bit 0).
    pub const CF: Eflags = Eflags(1 << 0);
    /// Parity flag (bit 2).
    pub const PF: Eflags = Eflags(1 << 2);
    /// Auxiliary carry flag (bit 4).
    pub const AF: Eflags = Eflags(1 << 4);
    /// Zero flag (bit 6).
    pub const ZF: Eflags = Eflags(1 << 6);
    /// Sign flag (bit 7).
    pub const SF: Eflags = Eflags(1 << 7);
    /// Overflow flag (bit 11).
    pub const OF: Eflags = Eflags(1 << 11);

    /// No flags.
    pub const NONE: Eflags = Eflags(0);
    /// All six arithmetic flags.
    pub const ALL6: Eflags =
        Eflags(Self::CF.0 | Self::PF.0 | Self::AF.0 | Self::ZF.0 | Self::SF.0 | Self::OF.0);
    /// The five flags written by `inc`/`dec` (everything except CF).
    pub const NOT_CF: Eflags = Eflags(Self::ALL6.0 & !Self::CF.0);
    /// OF | SF | ZF | PF | CF — the flags written by logic ops (AF undefined,
    /// counted as written separately).
    pub const OSZPC: Eflags =
        Eflags(Self::OF.0 | Self::SF.0 | Self::ZF.0 | Self::PF.0 | Self::CF.0);

    /// Whether every flag in `other` is present in `self`.
    pub fn contains(self, other: Eflags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag is shared between `self` and `other`.
    pub fn intersects(self, other: Eflags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Eflags {
    type Output = Eflags;
    fn bitor(self, rhs: Eflags) -> Eflags {
        Eflags(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for Eflags {
    type Output = Eflags;
    fn bitand(self, rhs: Eflags) -> Eflags {
        Eflags(self.0 & rhs.0)
    }
}

impl std::ops::Not for Eflags {
    type Output = Eflags;
    fn not(self) -> Eflags {
        Eflags(!self.0 & Eflags::ALL6.0)
    }
}

impl fmt::Display for Eflags {
    /// Formats in the paper's Figure 2 order: `CPAZSO` subset.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        for (mask, ch) in [
            (Eflags::CF, 'C'),
            (Eflags::PF, 'P'),
            (Eflags::AF, 'A'),
            (Eflags::ZF, 'Z'),
            (Eflags::SF, 'S'),
            (Eflags::OF, 'O'),
        ] {
            if self.contains(mask) {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// The read/written arithmetic-flag sets of one instruction.
///
/// This is the Level 2 payload of the adaptive representation. A flag that an
/// instruction leaves *undefined* is reported as written, because a
/// transformation must treat its prior value as destroyed.
///
/// # Examples
///
/// ```
/// use rio_ia32::{EflagsEffect, Eflags};
/// let add = EflagsEffect::writes(Eflags::ALL6);
/// assert!(add.written.contains(Eflags::CF));
/// let inc = EflagsEffect::writes(Eflags::NOT_CF);
/// assert!(!inc.written.contains(Eflags::CF)); // inc preserves CF
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct EflagsEffect {
    /// Flags whose incoming value the instruction observes.
    pub read: Eflags,
    /// Flags whose value the instruction defines or clobbers.
    pub written: Eflags,
}

impl EflagsEffect {
    /// An effect that neither reads nor writes flags.
    pub const NONE: EflagsEffect = EflagsEffect {
        read: Eflags::NONE,
        written: Eflags::NONE,
    };

    /// An effect that only writes the given flags.
    pub const fn writes(written: Eflags) -> EflagsEffect {
        EflagsEffect {
            read: Eflags::NONE,
            written,
        }
    }

    /// An effect that only reads the given flags.
    pub const fn reads(read: Eflags) -> EflagsEffect {
        EflagsEffect {
            read,
            written: Eflags::NONE,
        }
    }

    /// An effect that reads and writes the given flag sets.
    pub const fn read_write(read: Eflags, written: Eflags) -> EflagsEffect {
        EflagsEffect { read, written }
    }

    /// Merge two effects (union of reads and writes).
    pub fn union(self, other: EflagsEffect) -> EflagsEffect {
        EflagsEffect {
            read: self.read | other.read,
            written: self.written | other.written,
        }
    }
}

impl fmt::Display for EflagsEffect {
    /// Formats like Figure 2: `WCPAZSO` for writes, `RSO` for reads, `-` for
    /// no effect.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.read.is_empty() && self.written.is_empty() {
            return write!(f, "-");
        }
        if !self.read.is_empty() {
            write!(f, "R{}", self.read)?;
        }
        if !self.written.is_empty() {
            write!(f, "W{}", self.written)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_architectural_bit_positions() {
        assert_eq!(Eflags::CF.0, 0x001);
        assert_eq!(Eflags::PF.0, 0x004);
        assert_eq!(Eflags::AF.0, 0x010);
        assert_eq!(Eflags::ZF.0, 0x040);
        assert_eq!(Eflags::SF.0, 0x080);
        assert_eq!(Eflags::OF.0, 0x800);
    }

    #[test]
    fn display_matches_figure2_style() {
        assert_eq!(EflagsEffect::writes(Eflags::ALL6).to_string(), "WCPAZSO");
        assert_eq!(
            EflagsEffect::reads(Eflags::SF | Eflags::OF).to_string(),
            "RSO"
        );
        assert_eq!(EflagsEffect::NONE.to_string(), "-");
    }

    #[test]
    fn not_cf_excludes_only_carry() {
        assert!(!Eflags::NOT_CF.contains(Eflags::CF));
        assert!(Eflags::NOT_CF.contains(Eflags::OF));
        assert!(Eflags::NOT_CF.contains(Eflags::ZF));
    }

    #[test]
    fn union_merges_reads_and_writes() {
        let a = EflagsEffect::reads(Eflags::CF);
        let b = EflagsEffect::writes(Eflags::ZF);
        let u = a.union(b);
        assert_eq!(u.read, Eflags::CF);
        assert_eq!(u.written, Eflags::ZF);
    }

    #[test]
    fn not_operator_stays_within_arithmetic_flags() {
        let inv = !Eflags::CF;
        assert_eq!(inv, Eflags::NOT_CF);
        assert_eq!(!Eflags::ALL6, Eflags::NONE);
    }
}
