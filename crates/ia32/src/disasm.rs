//! Disassembly in the DynamoRIO `srcs -> dsts` style shown in Figure 2.
//!
//! The printer shows explicit *and* implicit operands, so `pop %ebx` prints
//! as `pop %esp (%esp) -> %ebx %esp` — the complete dataflow of the
//! instruction, which is the form transformations reason about.

use std::fmt;

use crate::instr::{Instr, Level};

/// Format one instruction: mnemonic, sources, `->`, destinations.
pub(crate) fn fmt_instr(instr: &Instr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match instr.level() {
        Level::L0 => {
            write!(
                f,
                "<bundle of {} instrs, {} bytes>",
                instr.bundle_count(),
                instr.raw_bytes().map_or(0, <[u8]>::len)
            )
        }
        Level::L1 => {
            write!(f, "<raw")?;
            if let Some(bytes) = instr.raw_bytes() {
                for b in bytes {
                    write!(f, " {b:02x}")?;
                }
            }
            write!(f, ">")
        }
        Level::L2 => {
            let op = instr.opcode().expect("L2 has opcode");
            write!(f, "{} [{}]", op, instr.eflags())
        }
        _ => {
            let op = instr.opcode().expect("L3/L4 has opcode");
            if instr.is_label() {
                return write!(f, "<label>");
            }
            write!(f, "{op}")?;
            for s in instr.srcs() {
                write!(f, " {s}")?;
            }
            if !instr.dsts().is_empty() {
                write!(f, " ->")?;
                for d in instr.dsts() {
                    write!(f, " {d}")?;
                }
            }
            Ok(())
        }
    }
}

/// One row of a Figure 2-style listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisasmLine {
    /// Application address of the instruction.
    pub pc: u32,
    /// Raw bytes, formatted as space-separated hex.
    pub raw: String,
    /// Mnemonic and operands (empty below Level 2).
    pub text: String,
    /// Eflags-effect column (empty below Level 2).
    pub eflags: String,
}

/// Disassemble a byte sequence into Figure 2-style lines at full detail.
///
/// # Errors
///
/// Returns [`DecodeError`](crate::DecodeError) on invalid encodings.
///
/// # Examples
///
/// ```
/// use rio_ia32::disasm::disassemble;
/// let lines = disassemble(&[0x8b, 0x46, 0x0c], 0x1000)?;
/// assert_eq!(lines[0].text, "mov 0xc(%esi) -> %eax");
/// # Ok::<(), rio_ia32::DecodeError>(())
/// ```
pub fn disassemble(bytes: &[u8], pc: u32) -> Result<Vec<DisasmLine>, crate::DecodeError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let (instr, len) = crate::decode::decode_instr(&bytes[off..], pc + off as u32)?;
        let raw = bytes[off..off + len as usize]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push(DisasmLine {
            pc: pc + off as u32,
            raw,
            text: instr.to_string(),
            eflags: instr.eflags().to_string(),
        });
        off += len as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create;
    use crate::instr::Target;
    use crate::opnd::{MemRef, OpSize};
    use crate::reg::Reg;

    #[test]
    fn figure2_rendering() {
        // The paper's Figure 2 sequence, Level 3 rows.
        let bytes: &[u8] = &[
            0x8d, 0x34, 0x01, 0x8b, 0x46, 0x0c, 0x2b, 0x46, 0x1c, 0x0f, 0xb7, 0x4e, 0x08, 0xc1,
            0xe1, 0x07, 0x3b, 0xc1, 0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00,
        ];
        let lines = disassemble(bytes, 0x77f5_17af).unwrap();
        let texts: Vec<&str> = lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "lea (%ecx,%eax,1) -> %esi",
                "mov 0xc(%esi) -> %eax",
                "sub 0x1c(%esi) %eax -> %eax",
                "movzx 0x8(%esi) -> %ecx",
                "shl $0x7 %ecx -> %ecx",
                "cmp %eax %ecx",
                "jnl $0x77f52269",
            ]
        );
        let flags: Vec<&str> = lines.iter().map(|l| l.eflags.as_str()).collect();
        assert_eq!(
            flags,
            vec!["-", "-", "WCPAZSO", "-", "WCPAZSO", "WCPAZSO", "RSO"]
        );
    }

    #[test]
    fn synthesized_instruction_display() {
        let i = create::add(Opnd::reg(Reg::Eax), Opnd::imm8(1));
        assert_eq!(i.to_string(), "add $0x1 %eax -> %eax");
        let m = create::mov(
            Opnd::Mem(MemRef::base_disp(Reg::Ebp, -4, OpSize::S32)),
            Opnd::reg(Reg::Ecx),
        );
        assert_eq!(m.to_string(), "mov %ecx -> -0x4(%ebp)");
    }

    #[test]
    fn level_specific_display() {
        let raw = crate::Instr::raw(vec![0x40], 0);
        assert_eq!(raw.to_string(), "<raw 40>");
        let bundle = crate::Instr::bundle(vec![0x40, 0x41], 0, 1, 2);
        assert_eq!(bundle.to_string(), "<bundle of 2 instrs, 2 bytes>");
        let jmp = create::jmp(Target::Pc(0x1234));
        assert_eq!(jmp.to_string(), "jmp $0x00001234");
    }

    use crate::opnd::Opnd;
}
