//! Template-matching IA-32 encoder.
//!
//! "To encode an `Instr`, first the raw bit pointer is checked. If it is
//! valid, the instruction is encoded by simply copying the raw bits. If the
//! raw bits are invalid (Level 4), the instruction must be fully encoded from
//! its operands. Encoding an IA-32 instruction is costly, as many
//! instructions have special forms when the operands have certain values.
//! The encoder must walk through every operand and find an instruction
//! template that matches." (paper §3.1)
//!
//! The special short forms are implemented: `inc %reg` (one byte), `add
//! $imm8` sign-extended group-1 forms, accumulator (`%eax`) short forms,
//! `push $imm8`, shift-by-one, etc.
//!
//! Direct CTIs are position-dependent, so whenever a decoded direct CTI is
//! encoded its displacement is re-materialized from its absolute target
//! rather than copied — this is what allows fragments to be placed anywhere
//! in the code cache.

use std::error::Error;
use std::fmt;

use crate::ilist::{InstrId, InstrList};
use crate::instr::Instr;
use crate::opcode::Opcode;
use crate::opnd::{MemRef, OpSize, Opnd};
use crate::reg::Reg;

/// Errors produced when encoding instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// No encoding template matches the instruction's operands.
    NoTemplate(Opcode),
    /// The instruction has neither valid raw bits nor decoded operands.
    NotDecoded,
    /// A branch names a label that the resolver cannot place.
    UnresolvedLabel(InstrId),
    /// A rel8-only branch (`jecxz`) target is out of range.
    TargetOutOfRange {
        /// The required displacement.
        disp: i64,
    },
    /// An operand combination that IA-32 cannot express (e.g. `%esp` index,
    /// bad scale).
    InvalidOperand,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NoTemplate(op) => write!(f, "no encoding template for {op}"),
            EncodeError::NotDecoded => write!(f, "instruction not decoded and raw bits invalid"),
            EncodeError::UnresolvedLabel(id) => write!(f, "unresolved label {id:?}"),
            EncodeError::TargetOutOfRange { disp } => {
                write!(f, "branch displacement {disp} out of range")
            }
            EncodeError::InvalidOperand => write!(f, "operand not encodable"),
        }
    }
}

impl Error for EncodeError {}

/// Target resolver: maps an intra-list label id to its code address.
pub type Resolver<'a> = &'a dyn Fn(InstrId) -> Option<u32>;

fn push_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn fits_i8(v: i32) -> bool {
    (-128..=127).contains(&v)
}

/// Emit a ModRM byte (plus SIB/displacement) for `reg_digit` and the given
/// r/m operand.
fn emit_modrm(out: &mut Vec<u8>, reg_digit: u8, rm: &Opnd) -> Result<(), EncodeError> {
    match rm {
        Opnd::Reg(r) => {
            out.push(0xC0 | (reg_digit << 3) | r.number());
            Ok(())
        }
        Opnd::Mem(m) => emit_modrm_mem(out, reg_digit, m),
        _ => Err(EncodeError::InvalidOperand),
    }
}

fn emit_modrm_mem(out: &mut Vec<u8>, reg_digit: u8, m: &MemRef) -> Result<(), EncodeError> {
    if let Some(idx) = m.index {
        if idx == Reg::Esp || idx.size() != OpSize::S32 {
            return Err(EncodeError::InvalidOperand);
        }
        if ![1, 2, 4, 8].contains(&m.scale) {
            return Err(EncodeError::InvalidOperand);
        }
    }
    if let Some(b) = m.base {
        if b.size() != OpSize::S32 {
            return Err(EncodeError::InvalidOperand);
        }
    }

    let scale_bits = match m.scale {
        1 => 0u8,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => 0,
    };

    match (m.base, m.index) {
        (None, None) => {
            // Absolute: mod=00 rm=101 disp32.
            out.push((reg_digit << 3) | 5);
            push_i32(out, m.disp);
            Ok(())
        }
        (None, Some(idx)) => {
            // SIB with no base: mod=00 rm=100, sib base=101, disp32.
            out.push((reg_digit << 3) | 4);
            out.push((scale_bits << 6) | (idx.number() << 3) | 5);
            push_i32(out, m.disp);
            Ok(())
        }
        (Some(base), index) => {
            let needs_sib = index.is_some() || base == Reg::Esp;
            // mod selection: %ebp base cannot use mod=00 (that means disp32).
            let (mod_bits, disp_len) = if m.disp == 0 && base != Reg::Ebp {
                (0u8, 0u8)
            } else if fits_i8(m.disp) {
                (1, 1)
            } else {
                (2, 4)
            };
            if needs_sib {
                out.push((mod_bits << 6) | (reg_digit << 3) | 4);
                let idx_bits = index.map_or(4, |i| i.number());
                out.push((scale_bits << 6) | (idx_bits << 3) | base.number());
            } else {
                out.push((mod_bits << 6) | (reg_digit << 3) | base.number());
            }
            match disp_len {
                0 => {}
                1 => out.push(m.disp as i8 as u8),
                _ => push_i32(out, m.disp),
            }
            Ok(())
        }
    }
}

fn reg32(op: &Opnd) -> Option<Reg> {
    op.as_reg().filter(|r| r.size() == OpSize::S32)
}

/// Group-1 arithmetic opcodes and their encoding index.
fn grp1_index(op: Opcode) -> Option<u8> {
    match op {
        Opcode::Add => Some(0),
        Opcode::Or => Some(1),
        Opcode::Adc => Some(2),
        Opcode::Sbb => Some(3),
        Opcode::And => Some(4),
        Opcode::Sub => Some(5),
        Opcode::Xor => Some(6),
        Opcode::Cmp => Some(7),
        _ => None,
    }
}

fn grp2_digit(op: Opcode) -> Option<u8> {
    match op {
        Opcode::Rol => Some(0),
        Opcode::Ror => Some(1),
        Opcode::Shl => Some(4),
        Opcode::Shr => Some(5),
        Opcode::Sar => Some(7),
        _ => None,
    }
}

/// Resolve a branch-target operand to an absolute code address.
fn resolve_target(op: &Opnd, resolve: Resolver<'_>) -> Result<u32, EncodeError> {
    match op {
        Opnd::Pc(pc) => Ok(*pc),
        Opnd::Instr(id) => resolve(*id).ok_or(EncodeError::UnresolvedLabel(*id)),
        _ => Err(EncodeError::InvalidOperand),
    }
}

/// Whether the encoder may copy this instruction's raw bits verbatim.
///
/// Direct CTIs with decoded targets are position-dependent, so they are
/// always re-encoded from their absolute target. Everything else in the
/// subset is position-independent.
fn can_copy_raw(instr: &Instr) -> bool {
    if !instr.raw_valid() {
        return false;
    }
    match instr.opcode() {
        Some(op) if op.is_cti() && !op.is_indirect_cti() && op != Opcode::Ret => {
            // Copy only if operands were never decoded (Level 1/2).
            instr.srcs().is_empty()
        }
        _ => true,
    }
}

/// Encode a single instruction placed at address `at_pc`.
///
/// `resolve` maps intra-list label ids to addresses; pass `&|_| None` when
/// the instruction cannot contain label targets.
///
/// # Errors
///
/// Returns [`EncodeError`] if no template matches, a label is unresolved, or
/// a rel8 target is out of range.
///
/// # Examples
///
/// ```
/// use rio_ia32::{create, encode_instr, Opnd, Reg};
/// let i = create::add(Opnd::reg(Reg::Eax), Opnd::imm8(1));
/// let bytes = encode_instr(&i, 0x1000, &|_| None)?;
/// assert_eq!(bytes, vec![0x83, 0xc0, 0x01]); // short imm8 form
/// # Ok::<(), rio_ia32::EncodeError>(())
/// ```
pub fn encode_instr(
    instr: &Instr,
    at_pc: u32,
    resolve: Resolver<'_>,
) -> Result<Vec<u8>, EncodeError> {
    if instr.is_label() {
        return Ok(Vec::new());
    }
    if can_copy_raw(instr) {
        return Ok(instr.raw_bytes().unwrap().to_vec());
    }
    let Some(op) = instr.opcode() else {
        return Err(EncodeError::NotDecoded);
    };
    let mut out = Vec::with_capacity(8);
    encode_from_operands(instr, op, at_pc, resolve, &mut out)?;
    Ok(out)
}

fn encode_from_operands(
    instr: &Instr,
    op: Opcode,
    at_pc: u32,
    resolve: Resolver<'_>,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    let srcs = instr.srcs();
    let dsts = instr.dsts();
    let no_template = || EncodeError::NoTemplate(op);

    // Group-1 arithmetic (incl. cmp) shares template logic.
    if let Some(idx) = grp1_index(op) {
        let base = idx * 8;
        // Intel operand positions: `op first, second`.
        let (first, second) = if op == Opcode::Cmp {
            (
                srcs.first().ok_or_else(no_template)?,
                srcs.get(1).ok_or_else(no_template)?,
            )
        } else {
            (
                dsts.first().ok_or_else(no_template)?,
                srcs.first().ok_or_else(no_template)?,
            )
        };
        let size = first.size().max(second.size());
        match second {
            Opnd::Imm(v, _) => {
                if size == OpSize::S8 {
                    if first.as_reg() == Some(Reg::Al) {
                        out.push(base + 4);
                    } else {
                        out.push(0x80);
                        emit_modrm(out, idx, first)?;
                    }
                    out.push(*v as i8 as u8);
                } else if fits_i8(*v) {
                    out.push(0x83);
                    emit_modrm(out, idx, first)?;
                    out.push(*v as i8 as u8);
                } else if first.as_reg() == Some(Reg::Eax) {
                    out.push(base + 5);
                    push_i32(out, *v);
                } else {
                    out.push(0x81);
                    emit_modrm(out, idx, first)?;
                    push_i32(out, *v);
                }
            }
            Opnd::Reg(r) => {
                // op r/m, r form.
                let opc = if size == OpSize::S8 { base } else { base + 1 };
                out.push(opc);
                emit_modrm(out, r.number(), first)?;
            }
            Opnd::Mem(_) => {
                // op r, r/m form: first must be a register.
                let r = first.as_reg().ok_or_else(no_template)?;
                let opc = if size == OpSize::S8 {
                    base + 2
                } else {
                    base + 3
                };
                out.push(opc);
                emit_modrm(out, r.number(), second)?;
            }
            _ => return Err(no_template()),
        }
        return Ok(());
    }

    if let Some(digit) = grp2_digit(op) {
        let count = srcs.first().ok_or_else(no_template)?;
        let rm = dsts.first().ok_or_else(no_template)?;
        let is8 = rm.size() == OpSize::S8;
        match count {
            Opnd::Imm(1, _) => {
                out.push(if is8 { 0xD0 } else { 0xD1 });
                emit_modrm(out, digit, rm)?;
            }
            Opnd::Imm(v, _) => {
                out.push(if is8 { 0xC0 } else { 0xC1 });
                emit_modrm(out, digit, rm)?;
                out.push(*v as u8);
            }
            Opnd::Reg(Reg::Cl) => {
                out.push(if is8 { 0xD2 } else { 0xD3 });
                emit_modrm(out, digit, rm)?;
            }
            _ => return Err(no_template()),
        }
        return Ok(());
    }

    match op {
        Opcode::Mov => {
            let src = srcs.first().ok_or_else(no_template)?;
            let dst = dsts.first().ok_or_else(no_template)?;
            match (dst, src) {
                (Opnd::Reg(r), Opnd::Imm(v, _)) => match r.size() {
                    OpSize::S32 => {
                        out.push(0xB8 + r.number());
                        push_i32(out, *v);
                    }
                    OpSize::S8 => {
                        out.push(0xB0 + r.number());
                        out.push(*v as u8);
                    }
                    OpSize::S16 => return Err(no_template()),
                },
                (Opnd::Reg(r), _) => {
                    out.push(if r.size() == OpSize::S8 { 0x8A } else { 0x8B });
                    emit_modrm(out, r.number(), src)?;
                }
                (Opnd::Mem(m), Opnd::Reg(r)) => {
                    let _ = m;
                    out.push(if r.size() == OpSize::S8 { 0x88 } else { 0x89 });
                    emit_modrm(out, r.number(), dst)?;
                }
                (Opnd::Mem(m), Opnd::Imm(v, _)) => {
                    if m.size == OpSize::S8 {
                        out.push(0xC6);
                        emit_modrm(out, 0, dst)?;
                        out.push(*v as u8);
                    } else {
                        out.push(0xC7);
                        emit_modrm(out, 0, dst)?;
                        push_i32(out, *v);
                    }
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Lea => {
            let r = dsts.first().and_then(reg32).ok_or_else(no_template)?;
            let mem = srcs.first().ok_or_else(no_template)?;
            if !matches!(mem, Opnd::Mem(_)) {
                return Err(no_template());
            }
            out.push(0x8D);
            emit_modrm(out, r.number(), mem)?;
        }
        Opcode::Movzx | Opcode::Movsx => {
            let r = dsts.first().and_then(reg32).ok_or_else(no_template)?;
            let src = srcs.first().ok_or_else(no_template)?;
            let b2 = match (op, src.size()) {
                (Opcode::Movzx, OpSize::S8) => 0xB6,
                (Opcode::Movzx, OpSize::S16) => 0xB7,
                (Opcode::Movsx, OpSize::S8) => 0xBE,
                (Opcode::Movsx, OpSize::S16) => 0xBF,
                _ => return Err(no_template()),
            };
            out.push(0x0F);
            out.push(b2);
            emit_modrm(out, r.number(), src)?;
        }
        Opcode::Test => {
            let a = srcs.first().ok_or_else(no_template)?;
            let b = srcs.get(1).ok_or_else(no_template)?;
            match (a, b) {
                (Opnd::Reg(Reg::Eax), Opnd::Imm(v, _)) => {
                    out.push(0xA9);
                    push_i32(out, *v);
                }
                (Opnd::Reg(Reg::Al), Opnd::Imm(v, _)) => {
                    out.push(0xA8);
                    out.push(*v as u8);
                }
                (_, Opnd::Imm(v, _)) => {
                    if a.size() == OpSize::S8 {
                        out.push(0xF6);
                        emit_modrm(out, 0, a)?;
                        out.push(*v as u8);
                    } else {
                        out.push(0xF7);
                        emit_modrm(out, 0, a)?;
                        push_i32(out, *v);
                    }
                }
                (_, Opnd::Reg(r)) => {
                    out.push(if r.size() == OpSize::S8 { 0x84 } else { 0x85 });
                    emit_modrm(out, r.number(), a)?;
                }
                (Opnd::Reg(r), Opnd::Mem(_)) => {
                    out.push(if r.size() == OpSize::S8 { 0x84 } else { 0x85 });
                    emit_modrm(out, r.number(), b)?;
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Xchg => {
            let a = srcs.first().ok_or_else(no_template)?;
            let b = srcs.get(1).ok_or_else(no_template)?;
            let is8 = a.size() == OpSize::S8;
            match (a, b) {
                (_, Opnd::Reg(r)) => {
                    out.push(if is8 { 0x86 } else { 0x87 });
                    emit_modrm(out, r.number(), a)?;
                }
                (Opnd::Reg(r), _) => {
                    out.push(if is8 { 0x86 } else { 0x87 });
                    emit_modrm(out, r.number(), b)?;
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Inc | Opcode::Dec => {
            let rm = dsts.first().ok_or_else(no_template)?;
            let digit = if op == Opcode::Inc { 0 } else { 1 };
            if let Some(r) = reg32(rm) {
                out.push(if op == Opcode::Inc { 0x40 } else { 0x48 } + r.number());
            } else if rm.size() == OpSize::S8 {
                out.push(0xFE);
                emit_modrm(out, digit, rm)?;
            } else {
                out.push(0xFF);
                emit_modrm(out, digit, rm)?;
            }
        }
        Opcode::Neg | Opcode::Not => {
            let rm = dsts.first().ok_or_else(no_template)?;
            let digit = if op == Opcode::Neg { 3 } else { 2 };
            out.push(if rm.size() == OpSize::S8 { 0xF6 } else { 0xF7 });
            emit_modrm(out, digit, rm)?;
        }
        Opcode::Mul | Opcode::Div | Opcode::Idiv => {
            let rm = srcs.first().ok_or_else(no_template)?;
            let digit = match op {
                Opcode::Mul => 4,
                Opcode::Div => 6,
                _ => 7,
            };
            out.push(if rm.size() == OpSize::S8 { 0xF6 } else { 0xF7 });
            emit_modrm(out, digit, rm)?;
        }
        Opcode::Imul => {
            match (srcs, dsts) {
                // One-operand form: srcs [rm, eax], dsts [edx, eax].
                ([rm, Opnd::Reg(Reg::Eax)], [Opnd::Reg(Reg::Edx), Opnd::Reg(Reg::Eax)]) => {
                    out.push(0xF7);
                    emit_modrm(out, 5, rm)?;
                }
                // Three-operand form: srcs [rm, imm], dsts [reg].
                ([rm, Opnd::Imm(v, _)], [Opnd::Reg(r)]) => {
                    if fits_i8(*v) {
                        out.push(0x6B);
                        emit_modrm(out, r.number(), rm)?;
                        out.push(*v as i8 as u8);
                    } else {
                        out.push(0x69);
                        emit_modrm(out, r.number(), rm)?;
                        push_i32(out, *v);
                    }
                }
                // Two-operand form: srcs [rm, reg], dsts [reg].
                ([rm, Opnd::Reg(r1)], [Opnd::Reg(r2)]) if r1 == r2 => {
                    out.push(0x0F);
                    out.push(0xAF);
                    emit_modrm(out, r1.number(), rm)?;
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Push => {
            let src = srcs.first().ok_or_else(no_template)?;
            match src {
                Opnd::Reg(r) if r.size() == OpSize::S32 => out.push(0x50 + r.number()),
                Opnd::Imm(v, _) if fits_i8(*v) => {
                    out.push(0x6A);
                    out.push(*v as i8 as u8);
                }
                Opnd::Imm(v, _) => {
                    out.push(0x68);
                    push_i32(out, *v);
                }
                Opnd::Pc(pc) => {
                    // Pushing a code address (e.g. a return address) uses the
                    // imm32 form regardless of value.
                    out.push(0x68);
                    push_i32(out, *pc as i32);
                }
                Opnd::Mem(_) => {
                    out.push(0xFF);
                    emit_modrm(out, 6, src)?;
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Pop => {
            let dst = dsts.first().ok_or_else(no_template)?;
            match dst {
                Opnd::Reg(r) if r.size() == OpSize::S32 => out.push(0x58 + r.number()),
                Opnd::Mem(_) => {
                    out.push(0x8F);
                    emit_modrm(out, 0, dst)?;
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Pushfd => out.push(0x9C),
        Opcode::Popfd => out.push(0x9D),
        Opcode::Sahf => out.push(0x9E),
        Opcode::Lahf => out.push(0x9F),
        Opcode::Cwde => out.push(0x98),
        Opcode::Cdq => out.push(0x99),
        Opcode::Nop => out.push(0x90),
        Opcode::Int3 => out.push(0xCC),
        Opcode::Hlt => out.push(0xF4),
        Opcode::Int => {
            let v = srcs
                .first()
                .and_then(Opnd::as_imm)
                .ok_or_else(no_template)?;
            out.push(0xCD);
            out.push(v as u8);
        }
        Opcode::Set(cc) => {
            let rm = dsts.first().ok_or_else(no_template)?;
            out.push(0x0F);
            out.push(0x90 + cc.code());
            emit_modrm(out, 0, rm)?;
        }
        Opcode::Cmov(cc) => {
            let r = dsts.first().and_then(reg32).ok_or_else(no_template)?;
            let rm = srcs.first().ok_or_else(no_template)?;
            out.push(0x0F);
            out.push(0x40 + cc.code());
            emit_modrm(out, r.number(), rm)?;
        }
        Opcode::Bt => {
            let rm = srcs.first().ok_or_else(no_template)?;
            match srcs.get(1) {
                Some(Opnd::Reg(r)) => {
                    out.push(0x0F);
                    out.push(0xA3);
                    emit_modrm(out, r.number(), rm)?;
                }
                Some(Opnd::Imm(v, _)) => {
                    out.push(0x0F);
                    out.push(0xBA);
                    emit_modrm(out, 4, rm)?;
                    out.push(*v as u8);
                }
                _ => return Err(no_template()),
            }
        }
        Opcode::Bswap => {
            let r = dsts.first().and_then(reg32).ok_or_else(no_template)?;
            out.push(0x0F);
            out.push(0xC8 + r.number());
        }
        Opcode::Jmp => {
            let target = resolve_target(srcs.first().ok_or_else(no_template)?, resolve)?;
            out.push(0xE9);
            let disp = target.wrapping_sub(at_pc.wrapping_add(5)) as i32;
            push_i32(out, disp);
        }
        Opcode::Call => {
            let target = resolve_target(srcs.first().ok_or_else(no_template)?, resolve)?;
            out.push(0xE8);
            let disp = target.wrapping_sub(at_pc.wrapping_add(5)) as i32;
            push_i32(out, disp);
        }
        Opcode::Jcc(cc) => {
            let target = resolve_target(srcs.first().ok_or_else(no_template)?, resolve)?;
            out.push(0x0F);
            out.push(0x80 + cc.code());
            let disp = target.wrapping_sub(at_pc.wrapping_add(6)) as i32;
            push_i32(out, disp);
        }
        Opcode::Jecxz => {
            let target = resolve_target(srcs.first().ok_or_else(no_template)?, resolve)?;
            let disp = target.wrapping_sub(at_pc.wrapping_add(2)) as i32;
            if !fits_i8(disp) {
                return Err(EncodeError::TargetOutOfRange { disp: disp as i64 });
            }
            out.push(0xE3);
            out.push(disp as i8 as u8);
        }
        Opcode::JmpInd | Opcode::CallInd => {
            let rm = srcs.first().ok_or_else(no_template)?;
            out.push(0xFF);
            emit_modrm(out, if op == Opcode::JmpInd { 4 } else { 2 }, rm)?;
        }
        Opcode::Ret => {
            if let Some(Opnd::Imm(v, _)) = srcs.first() {
                out.push(0xC2);
                out.extend_from_slice(&(*v as u16).to_le_bytes());
            } else {
                out.push(0xC3);
            }
        }
        Opcode::Label => {}
        _ => return Err(no_template()),
    }
    Ok(())
}

/// Result of encoding an entire [`InstrList`]: the bytes plus each
/// instruction's offset within them.
#[derive(Clone, Debug)]
pub struct EncodedList {
    /// The encoded machine code.
    pub bytes: Vec<u8>,
    /// `(id, offset)` for every instruction, in list order. Labels appear
    /// with the offset of the following instruction.
    pub offsets: Vec<(InstrId, u32)>,
}

impl EncodedList {
    /// Offset of instruction `id`, if present.
    pub fn offset_of(&self, id: InstrId) -> Option<u32> {
        self.offsets.iter().find(|(i, _)| *i == id).map(|(_, o)| *o)
    }
}

/// Encode a whole list at `start_pc`, resolving intra-list label targets.
///
/// Uses two passes: the first computes each instruction's size (all
/// synthesized direct branches use fixed rel32 forms, so sizes are
/// target-independent), the second encodes with resolved displacements.
///
/// # Errors
///
/// Returns [`EncodeError`] if any instruction fails to encode.
pub fn encode_list(il: &InstrList, start_pc: u32) -> Result<EncodedList, EncodeError> {
    // Pass 1: compute offsets. Labels resolve to the branch's own address
    // (sizes are target-independent: synthesized direct branches use fixed
    // rel32 forms, and a self-targeting rel8 jecxz is always in range).
    let mut offsets: Vec<(InstrId, u32)> = Vec::with_capacity(il.len());
    let mut off = 0u32;
    for id in il.ids() {
        offsets.push((id, off));
        let instr = il.get(id);
        let at = start_pc.wrapping_add(off);
        let dummy = |_: InstrId| Some(at);
        let len = match instr.known_len() {
            Some(l) if can_copy_raw(instr) || instr.is_label() => l,
            _ => encode_instr(instr, at, &dummy)?.len() as u32,
        };
        off += len;
    }

    // Pass 2: encode with real label addresses.
    let lookup = |id: InstrId| -> Option<u32> {
        offsets
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, o)| start_pc.wrapping_add(*o))
    };
    let mut bytes = Vec::with_capacity(off as usize);
    for (id, o) in &offsets {
        debug_assert_eq!(bytes.len() as u32, *o);
        let enc = encode_instr(il.get(*id), start_pc.wrapping_add(*o), &lookup)?;
        bytes.extend_from_slice(&enc);
    }
    Ok(EncodedList { bytes, offsets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::create;
    use crate::decode::decode_instr;
    use crate::instr::Target;

    fn no_labels(_: InstrId) -> Option<u32> {
        None
    }

    fn enc(i: &Instr) -> Vec<u8> {
        encode_instr(i, 0x1000, &no_labels).unwrap()
    }

    #[test]
    fn short_forms_are_selected() {
        // inc %eax -> one byte
        assert_eq!(enc(&create::inc(Opnd::reg(Reg::Eax))), vec![0x40]);
        // add $1, %ecx -> 83 c1 01 (imm8 form)
        assert_eq!(
            enc(&create::add(Opnd::reg(Reg::Ecx), Opnd::imm8(1))),
            vec![0x83, 0xC1, 0x01]
        );
        // add $0x1000, %eax -> accumulator form 05
        assert_eq!(
            enc(&create::add(Opnd::reg(Reg::Eax), Opnd::imm32(0x1000))),
            vec![0x05, 0x00, 0x10, 0x00, 0x00]
        );
        // push $3 -> 6a 03
        assert_eq!(enc(&create::push(Opnd::imm8(3))), vec![0x6A, 0x03]);
        // shl $1, %eax -> d1 e0
        assert_eq!(
            enc(&create::shl(Opnd::reg(Reg::Eax), Opnd::imm8(1))),
            vec![0xD1, 0xE0]
        );
    }

    #[test]
    fn raw_fast_path_copies_bytes() {
        let (i, _) = decode_instr(&[0x8b, 0x46, 0x0c], 0x400000).unwrap();
        assert!(i.raw_valid());
        assert_eq!(enc(&i), vec![0x8b, 0x46, 0x0c]);
    }

    #[test]
    fn direct_cti_is_rematerialized_not_copied() {
        // jmp rel8 decoded at 0x2000 targeting 0x2000; encoded at 0x1000 it
        // must still target 0x2000 (now rel32).
        let (i, _) = decode_instr(&[0xeb, 0xfe], 0x2000).unwrap();
        let bytes = enc(&i);
        assert_eq!(bytes[0], 0xE9);
        let (re, _) = decode_instr(&bytes, 0x1000).unwrap();
        assert_eq!(re.src(0), &Opnd::Pc(0x2000));
    }

    #[test]
    fn modrm_addressing_round_trips() {
        let cases: Vec<MemRef> = vec![
            MemRef::base_disp(Reg::Esi, 0xc, OpSize::S32),
            MemRef::base_disp(Reg::Ebp, 0, OpSize::S32), // needs disp8=0
            MemRef::base_disp(Reg::Esp, 8, OpSize::S32), // needs SIB
            MemRef::base_disp(Reg::Eax, -300, OpSize::S32), // disp32
            MemRef::base_index(Reg::Ecx, Reg::Eax, 1, 0, OpSize::S32),
            MemRef::base_index(Reg::Ebp, Reg::Edi, 8, 5, OpSize::S32),
            MemRef::index_disp(Reg::Ebx, 4, 0x10, OpSize::S32),
            MemRef::absolute(0x12345678, OpSize::S32),
        ];
        for m in cases {
            let i = create::mov(Opnd::reg(Reg::Edx), Opnd::Mem(m));
            let bytes = enc(&i);
            let (re, len) = decode_instr(&bytes, 0).unwrap();
            assert_eq!(len as usize, bytes.len());
            assert_eq!(re.src(0).as_mem(), Some(&m), "case {m}");
        }
    }

    #[test]
    fn esp_index_rejected() {
        let m = MemRef::base_index(Reg::Eax, Reg::Esp, 1, 0, OpSize::S32);
        let i = create::mov(Opnd::reg(Reg::Edx), Opnd::Mem(m));
        assert_eq!(
            encode_instr(&i, 0, &no_labels),
            Err(EncodeError::InvalidOperand)
        );
    }

    #[test]
    fn jecxz_range_enforced() {
        let j = create::jecxz(Target::Pc(0x10_0000));
        assert!(matches!(
            encode_instr(&j, 0, &no_labels),
            Err(EncodeError::TargetOutOfRange { .. })
        ));
        let near = create::jecxz(Target::Pc(0x1010));
        assert!(encode_instr(&near, 0x1000, &no_labels).is_ok());
    }

    #[test]
    fn encode_list_resolves_forward_and_backward_labels() {
        let mut il = InstrList::new();
        // L1: nop; jmp L2; nop; L2: jmp L1
        let top = il.push_back(Instr::label());
        il.push_back(create::nop());
        let mut fwd = create::jmp(Target::Pc(0));

        il.push_back(create::nop());
        let bottom = il.push_back(Instr::label());
        let mut back = create::jmp(Target::Pc(0));
        back.set_target(Target::Instr(top));
        il.push_back(back);
        fwd.set_target(Target::Instr(bottom));
        let fwd_id = il.insert_after(il.ids().nth(1).unwrap(), fwd);

        let encoded = encode_list(&il, 0x5000).unwrap();
        // Verify the forward jmp targets the bottom label's offset.
        let fwd_off = encoded.offset_of(fwd_id).unwrap();
        let disp = i32::from_le_bytes(
            encoded.bytes[(fwd_off + 1) as usize..(fwd_off + 5) as usize]
                .try_into()
                .unwrap(),
        );
        let target = 0x5000u32
            .wrapping_add(fwd_off + 5)
            .wrapping_add(disp as u32);
        assert_eq!(Some(target - 0x5000), encoded.offset_of(bottom));
    }

    #[test]
    fn semantic_round_trip_after_invalidation() {
        // decode -> mutate (invalidate raw) -> encode -> decode must agree.
        let originals: Vec<Vec<u8>> = vec![
            vec![0x2b, 0x46, 0x1c],             // sub mem, eax
            vec![0x0f, 0xb7, 0x4e, 0x08],       // movzx
            vec![0xc1, 0xe1, 0x07],             // shl imm
            vec![0xf7, 0xdb],                   // neg ebx
            vec![0x6b, 0xc3, 0x09],             // imul eax, ebx, 9
            vec![0x0f, 0x94, 0xc1],             // setz %cl
            vec![0x87, 0xd9],                   // xchg
            vec![0xc7, 0x45, 0xfc, 1, 0, 0, 0], // mov $1 -> -4(%ebp)
        ];
        for bytes in originals {
            let (mut i, _) = decode_instr(&bytes, 0).unwrap();
            i.invalidate_raw();
            let re = encode_instr(&i, 0, &no_labels).unwrap();
            let (j, _) = decode_instr(&re, 0).unwrap();
            assert_eq!(i.opcode(), j.opcode(), "bytes {bytes:x?}");
            assert_eq!(i.srcs(), j.srcs(), "bytes {bytes:x?}");
            assert_eq!(i.dsts(), j.dsts(), "bytes {bytes:x?}");
        }
    }

    #[test]
    fn ret_forms() {
        assert_eq!(enc(&create::ret()), vec![0xC3]);
        assert_eq!(enc(&create::ret_imm(8)), vec![0xC2, 0x08, 0x00]);
    }

    #[test]
    fn push_pc_uses_imm32_form() {
        let i = create::push(Opnd::Pc(0x0040_1234));
        assert_eq!(enc(&i), vec![0x68, 0x34, 0x12, 0x40, 0x00]);
    }
}
