//! # rio-ia32 — IA-32 subset instruction manipulation library
//!
//! This crate implements the instruction-representation layer of the RIO
//! dynamic code modification system, reproducing the design described in
//! *An Infrastructure for Adaptive Dynamic Optimization* (CGO 2003):
//!
//! * authentic variable-length IA-32 machine-code **encodings** (ModRM, SIB,
//!   displacements, immediates, opcode groups, short special forms),
//! * an **adaptive level-of-detail** instruction representation with five
//!   levels ([`Level`]), from raw byte bundles (Level 0) up to fully decoded,
//!   synthesized instructions (Level 4),
//! * [`Instr`] and [`InstrList`] — the linear single-entry multiple-exit
//!   code-sequence representation used for basic blocks and traces,
//! * a multi-strategy **decoder** ([`decode`]) — boundary scan, opcode+eflags
//!   decode, and full operand decode — and a template-matching **encoder**
//!   ([`encode`]) with a raw-bit fast path,
//! * instruction-creation constructors ([`create`]) mirroring the paper's
//!   `INSTR_CREATE_*` macros, and
//! * a disassembler ([`disasm`]) printing the `srcs -> dsts` style shown in
//!   Figure 2 of the paper.
//!
//! ## Example
//!
//! ```
//! use rio_ia32::{InstrList, Level};
//!
//! // The Figure 2 example bytes: lea; mov; sub; movzx; shl; cmp; jnl
//! let bytes: &[u8] = &[
//!     0x8d, 0x34, 0x01, 0x8b, 0x46, 0x0c, 0x2b, 0x46, 0x1c, 0x0f, 0xb7,
//!     0x4e, 0x08, 0xc1, 0xe1, 0x07, 0x3b, 0xc1, 0x0f, 0x8d, 0xa2, 0x0a,
//!     0x00, 0x00,
//! ];
//! let ilist = InstrList::decode_block(bytes, 0x40_0000, Level::L1)?;
//! assert_eq!(ilist.len(), 7);
//! # Ok::<(), rio_ia32::DecodeError>(())
//! ```

#![forbid(unsafe_code)]

pub mod create;
pub mod decode;
pub mod disasm;
pub mod eflags;
pub mod encode;
pub mod ilist;
pub mod instr;
pub mod liveness;
pub mod opcode;
pub mod opnd;
pub mod reg;

pub use decode::{decode_instr, decode_opcode, decode_sizeof, DecodeError};
pub use eflags::{Eflags, EflagsEffect};
pub use encode::{encode_instr, EncodeError};
pub use ilist::{InstrId, InstrList};
pub use instr::{Instr, Level, Target};
pub use liveness::{effects, Effects, LiveState, Liveness, RegSet};
pub use opcode::{Cc, Opcode};
pub use opnd::{MemRef, OpSize, Opnd};
pub use reg::Reg;
