//! Multi-strategy IA-32 decoder.
//!
//! "To support the multiple `Instr` levels, multiple decoding strategies are
//! employed" (paper §3.1):
//!
//! * [`decode_sizeof`] — the Level 0/1 strategy: find the instruction
//!   boundary only ("even this is non-trivial for IA-32").
//! * [`decode_opcode`] — the Level 2 strategy: decode "just enough to
//!   determine the opcode and the instruction's effect on the eflags".
//! * [`decode_instr`] — the Level 3/4 strategy: a full decode determining
//!   all operands, including implicit ones.

use std::error::Error;
use std::fmt;

use crate::instr::Instr;
use crate::opcode::{Cc, Opcode};
use crate::opnd::{MemRef, OpSize, Opnd};
use crate::reg::Reg;

/// Errors produced when decoding machine bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte (or byte pair / group digit) is not part of the
    /// supported subset.
    InvalidOpcode {
        /// The offending opcode byte.
        byte: u8,
        /// Whether it followed a `0x0F` escape.
        two_byte: bool,
    },
    /// The byte stream ended in the middle of an instruction.
    Truncated,
    /// A ModRM/SIB combination that cannot be expressed (e.g. `%esp` index).
    InvalidModRm,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode { byte, two_byte } => {
                if *two_byte {
                    write!(f, "invalid opcode 0f {byte:02x}")
                } else {
                    write!(f, "invalid opcode {byte:02x}")
                }
            }
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::InvalidModRm => write!(f, "invalid modrm/sib encoding"),
        }
    }
}

impl Error for DecodeError {}

fn get(bytes: &[u8], i: usize) -> Result<u8, DecodeError> {
    bytes.get(i).copied().ok_or(DecodeError::Truncated)
}

fn read_i8(bytes: &[u8], i: usize) -> Result<i32, DecodeError> {
    Ok(get(bytes, i)? as i8 as i32)
}

fn read_u16(bytes: &[u8], i: usize) -> Result<i32, DecodeError> {
    Ok(u16::from_le_bytes([get(bytes, i)?, get(bytes, i + 1)?]) as i32)
}

fn read_i32(bytes: &[u8], i: usize) -> Result<i32, DecodeError> {
    Ok(i32::from_le_bytes([
        get(bytes, i)?,
        get(bytes, i + 1)?,
        get(bytes, i + 2)?,
        get(bytes, i + 3)?,
    ]))
}

/// Parsed ModRM (+ SIB + displacement) information.
#[derive(Debug)]
struct ModRm {
    /// Total bytes consumed starting at the ModRM byte.
    len: u32,
    /// The `reg` field (register operand or group digit).
    reg: u8,
    /// The r/m operand at the requested access size.
    opnd: Opnd,
}

/// Length in bytes of a ModRM + SIB + displacement cluster.
fn modrm_len(bytes: &[u8]) -> Result<u32, DecodeError> {
    let m = get(bytes, 0)?;
    let mod_ = m >> 6;
    let rm = m & 7;
    if mod_ == 3 {
        return Ok(1);
    }
    let mut len = 1u32;
    let mut disp32_base = mod_ == 0 && rm == 5;
    if rm == 4 {
        let sib = get(bytes, 1)?;
        len += 1;
        if mod_ == 0 && (sib & 7) == 5 {
            disp32_base = true;
        }
    }
    len += match mod_ {
        0 => {
            if disp32_base {
                4
            } else {
                0
            }
        }
        1 => 1,
        2 => 4,
        _ => unreachable!(),
    };
    // Validate there are enough bytes for the displacement.
    if bytes.len() < len as usize {
        return Err(DecodeError::Truncated);
    }
    Ok(len)
}

/// Parse a full ModRM cluster; `size` is the data size of the r/m operand.
fn parse_modrm(bytes: &[u8], size: OpSize) -> Result<ModRm, DecodeError> {
    let m = get(bytes, 0)?;
    let mod_ = m >> 6;
    let reg = (m >> 3) & 7;
    let rm = m & 7;

    if mod_ == 3 {
        return Ok(ModRm {
            len: 1,
            reg,
            opnd: Opnd::Reg(Reg::from_number(rm, size)),
        });
    }

    let mut off = 1usize;
    let mut base: Option<Reg> = Some(Reg::from_number(rm, OpSize::S32));
    let mut index: Option<Reg> = None;
    let mut scale = 1u8;

    if rm == 4 {
        let sib = get(bytes, off)?;
        off += 1;
        scale = 1 << (sib >> 6);
        let idx = (sib >> 3) & 7;
        let b = sib & 7;
        index = if idx == 4 {
            None // %esp cannot be an index
        } else {
            Some(Reg::from_number(idx, OpSize::S32))
        };
        base = if b == 5 && mod_ == 0 {
            None // disp32 with no base
        } else {
            Some(Reg::from_number(b, OpSize::S32))
        };
    } else if rm == 5 && mod_ == 0 {
        base = None; // absolute disp32
    }

    let disp = match mod_ {
        0 => {
            if base.is_none() && (rm == 5 || rm == 4) {
                let d = read_i32(bytes, off)?;
                off += 4;
                d
            } else {
                0
            }
        }
        1 => {
            let d = read_i8(bytes, off)?;
            off += 1;
            d
        }
        2 => {
            let d = read_i32(bytes, off)?;
            off += 4;
            d
        }
        _ => unreachable!(),
    };

    Ok(ModRm {
        len: off as u32,
        reg,
        opnd: Opnd::Mem(MemRef {
            base,
            index,
            scale,
            disp,
            size,
        }),
    })
}

/// The eight "group 1" arithmetic opcodes in encoding order.
const GRP1: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Or,
    Opcode::Adc,
    Opcode::Sbb,
    Opcode::And,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Cmp,
];

fn grp2_opcode(digit: u8) -> Result<Opcode, DecodeError> {
    match digit {
        0 => Ok(Opcode::Rol),
        1 => Ok(Opcode::Ror),
        4 => Ok(Opcode::Shl),
        5 => Ok(Opcode::Shr),
        7 => Ok(Opcode::Sar),
        _ => Err(DecodeError::InvalidOpcode {
            byte: 0xC1,
            two_byte: false,
        }),
    }
}

fn grp3_opcode(digit: u8) -> Result<Opcode, DecodeError> {
    match digit {
        0 => Ok(Opcode::Test),
        2 => Ok(Opcode::Not),
        3 => Ok(Opcode::Neg),
        4 => Ok(Opcode::Mul),
        5 => Ok(Opcode::Imul),
        6 => Ok(Opcode::Div),
        7 => Ok(Opcode::Idiv),
        _ => Err(DecodeError::InvalidOpcode {
            byte: 0xF7,
            two_byte: false,
        }),
    }
}

/// Shape of the bytes following the opcode, for the boundary-scan strategy.
#[derive(Clone, Copy, Debug)]
struct Shape {
    opcode_len: u32,
    has_modrm: bool,
    imm: u32,
}

/// Classify the first byte(s) just enough to compute the instruction length.
fn shape_of(bytes: &[u8]) -> Result<Shape, DecodeError> {
    let b = get(bytes, 0)?;
    let s = |has_modrm: bool, imm: u32| {
        Ok(Shape {
            opcode_len: 1,
            has_modrm,
            imm,
        })
    };
    // Arithmetic block 0x00..=0x3D, forms 0..=5.
    if b <= 0x3D && (b & 7) <= 5 {
        return match b & 7 {
            0..=3 => s(true, 0),
            4 => s(false, 1),
            _ => s(false, 4),
        };
    }
    match b {
        0x40..=0x5F => s(false, 0), // inc/dec/push/pop r32
        0x68 => s(false, 4),        // push imm32
        0x69 => s(true, 4),         // imul r, rm, imm32
        0x6A => s(false, 1),        // push imm8
        0x6B => s(true, 1),         // imul r, rm, imm8
        0x70..=0x7F => s(false, 1), // jcc rel8
        0x80 => s(true, 1),         // grp1 rm8, imm8
        0x81 => s(true, 4),         // grp1 rm32, imm32
        0x83 => s(true, 1),         // grp1 rm32, imm8
        0x84..=0x87 => s(true, 0),  // test/xchg
        0x88..=0x8B => s(true, 0),  // mov
        0x8D => {
            // lea requires a memory operand (mod != 3).
            if get(bytes, 1)? >> 6 == 3 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 0)
        }
        0x8F => {
            // pop rm32: /0 only.
            if (get(bytes, 1)? >> 3) & 7 != 0 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 0)
        }
        0x90 => s(false, 0),        // nop
        0x91..=0x97 => s(false, 0), // xchg %eax, r32 (short form)
        0x98 | 0x99 => s(false, 0), // cwde / cdq
        0x9C..=0x9F => s(false, 0), // pushfd/popfd/sahf/lahf
        0xA8 => s(false, 1),        // test al, imm8
        0xA9 => s(false, 4),        // test eax, imm32
        0xB0..=0xB7 => s(false, 1), // mov r8, imm8
        0xB8..=0xBF => s(false, 4), // mov r32, imm32
        0xC0 | 0xC1 => {
            // grp2: rol/ror/shl/shr/sar digits.
            let digit = (get(bytes, 1)? >> 3) & 7;
            if !matches!(digit, 0 | 1 | 4 | 5 | 7) {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 1)
        }
        0xC2 => s(false, 2), // ret imm16
        0xC3 => s(false, 0), // ret
        0xC6 | 0xC7 => {
            // mov rm, imm: /0 only.
            if (get(bytes, 1)? >> 3) & 7 != 0 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, if b == 0xC6 { 1 } else { 4 })
        }
        0xCC => s(false, 0), // int3
        0xCD => s(false, 1), // int imm8
        0xD0..=0xD3 => {
            let digit = (get(bytes, 1)? >> 3) & 7;
            if !matches!(digit, 0 | 1 | 4 | 5 | 7) {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 0)
        }
        0xE3 => s(false, 1),        // jecxz rel8
        0xE8 | 0xE9 => s(false, 4), // call/jmp rel32
        0xEB => s(false, 1),        // jmp rel8
        0xF4 => s(false, 0),        // hlt
        0xF6 | 0xF7 => {
            // grp3: immediate present only for the test form (/0); /1 is
            // invalid.
            let m = get(bytes, 1)?;
            let digit = (m >> 3) & 7;
            if digit == 1 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            let imm = if digit == 0 {
                if b == 0xF6 {
                    1
                } else {
                    4
                }
            } else {
                0
            };
            s(true, imm)
        }
        0xFE => {
            if (get(bytes, 1)? >> 3) & 7 > 1 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 0)
        }
        0xFF => {
            if !matches!((get(bytes, 1)? >> 3) & 7, 0 | 1 | 2 | 4 | 6) {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            s(true, 0)
        }
        0x0F => {
            let b2 = get(bytes, 1)?;
            let s2 = |has_modrm: bool, imm: u32| {
                Ok(Shape {
                    opcode_len: 2,
                    has_modrm,
                    imm,
                })
            };
            match b2 {
                0x40..=0x4F => s2(true, 0),               // cmovcc r32, rm32
                0x80..=0x8F => s2(false, 4),              // jcc rel32
                0x90..=0x9F => s2(true, 0),               // setcc rm8
                0xA3 => s2(true, 0),                      // bt rm32, r32
                0xAF => s2(true, 0),                      // imul r32, rm32
                0xB6 | 0xB7 | 0xBE | 0xBF => s2(true, 0), // movzx/movsx
                0xBA => {
                    // grp8: only bt (/4) is supported.
                    if (get(bytes, 2)? >> 3) & 7 != 4 {
                        return Err(DecodeError::InvalidOpcode {
                            byte: b2,
                            two_byte: true,
                        });
                    }
                    s2(true, 1)
                }
                0xC8..=0xCF => s2(false, 0), // bswap r32
                _ => Err(DecodeError::InvalidOpcode {
                    byte: b2,
                    two_byte: true,
                }),
            }
        }
        _ => Err(DecodeError::InvalidOpcode {
            byte: b,
            two_byte: false,
        }),
    }
}

/// Compute the length of the instruction at the start of `bytes` without
/// decoding it — the Level 0/1 strategy.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported opcodes or truncated input.
///
/// # Examples
///
/// ```
/// use rio_ia32::decode_sizeof;
/// assert_eq!(decode_sizeof(&[0x8d, 0x34, 0x01])?, 3); // lea (%ecx,%eax,1)
/// assert_eq!(decode_sizeof(&[0x0f, 0x8d, 0, 0, 0, 0])?, 6); // jnl rel32
/// # Ok::<(), rio_ia32::DecodeError>(())
/// ```
pub fn decode_sizeof(bytes: &[u8]) -> Result<u32, DecodeError> {
    let shape = shape_of(bytes)?;
    let mut len = shape.opcode_len;
    if shape.has_modrm {
        len += modrm_len(&bytes[shape.opcode_len as usize..])?;
    }
    len += shape.imm;
    if bytes.len() < len as usize {
        return Err(DecodeError::Truncated);
    }
    Ok(len)
}

/// Decode only the opcode (Level 2 strategy). Returns the opcode and the
/// instruction length.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported opcodes or truncated input.
pub fn decode_opcode(bytes: &[u8]) -> Result<(Opcode, u32), DecodeError> {
    let len = decode_sizeof(bytes)?;
    let b = bytes[0];
    if b <= 0x3D && (b & 7) <= 5 {
        return Ok((GRP1[(b >> 3) as usize], len));
    }
    let op = match b {
        0x40..=0x47 => Opcode::Inc,
        0x48..=0x4F => Opcode::Dec,
        0x50..=0x57 | 0x68 | 0x6A => Opcode::Push,
        0x58..=0x5F => Opcode::Pop,
        0x69 | 0x6B => Opcode::Imul,
        0x70..=0x7F => Opcode::Jcc(Cc::from_code(b & 0xF)),
        0x80 | 0x81 | 0x83 => GRP1[((bytes[1] >> 3) & 7) as usize],
        0x84 | 0x85 => Opcode::Test,
        0x86 | 0x87 => Opcode::Xchg,
        0x88..=0x8B => Opcode::Mov,
        0x8D => Opcode::Lea,
        0x8F => Opcode::Pop,
        0x90 => Opcode::Nop,
        0x91..=0x97 => Opcode::Xchg,
        0x98 => Opcode::Cwde,
        0x99 => Opcode::Cdq,
        0x9C => Opcode::Pushfd,
        0x9D => Opcode::Popfd,
        0x9E => Opcode::Sahf,
        0x9F => Opcode::Lahf,
        0xA8 | 0xA9 => Opcode::Test,
        0xB0..=0xBF | 0xC6 | 0xC7 => Opcode::Mov,
        0xC0 | 0xC1 | 0xD0..=0xD3 => grp2_opcode((bytes[1] >> 3) & 7)?,
        0xC2 | 0xC3 => Opcode::Ret,
        0xCC => Opcode::Int3,
        0xCD => Opcode::Int,
        0xE3 => Opcode::Jecxz,
        0xE8 => Opcode::Call,
        0xE9 | 0xEB => Opcode::Jmp,
        0xF4 => Opcode::Hlt,
        0xF6 | 0xF7 => grp3_opcode((bytes[1] >> 3) & 7)?,
        0xFE => match (bytes[1] >> 3) & 7 {
            0 => Opcode::Inc,
            1 => Opcode::Dec,
            _ => {
                return Err(DecodeError::InvalidOpcode {
                    byte: 0xFE,
                    two_byte: false,
                })
            }
        },
        0xFF => match (bytes[1] >> 3) & 7 {
            0 => Opcode::Inc,
            1 => Opcode::Dec,
            2 => Opcode::CallInd,
            4 => Opcode::JmpInd,
            6 => Opcode::Push,
            _ => {
                return Err(DecodeError::InvalidOpcode {
                    byte: 0xFF,
                    two_byte: false,
                })
            }
        },
        0x0F => {
            let b2 = bytes[1];
            match b2 {
                0x40..=0x4F => Opcode::Cmov(Cc::from_code(b2 & 0xF)),
                0x80..=0x8F => Opcode::Jcc(Cc::from_code(b2 & 0xF)),
                0x90..=0x9F => Opcode::Set(Cc::from_code(b2 & 0xF)),
                0xA3 | 0xBA => Opcode::Bt,
                0xAF => Opcode::Imul,
                0xB6 | 0xB7 => Opcode::Movzx,
                0xBE | 0xBF => Opcode::Movsx,
                0xC8..=0xCF => Opcode::Bswap,
                _ => {
                    return Err(DecodeError::InvalidOpcode {
                        byte: b2,
                        two_byte: true,
                    })
                }
            }
        }
        _ => {
            return Err(DecodeError::InvalidOpcode {
                byte: b,
                two_byte: false,
            })
        }
    };
    Ok((op, len))
}

/// Install Level 2 state into an existing raw instruction.
pub(crate) fn decode_opcode_into(bytes: &[u8], instr: &mut Instr) -> Result<(), DecodeError> {
    let (op, _) = decode_opcode(bytes)?;
    instr.install_l2(op);
    Ok(())
}

/// Implicit stack-memory operand at `disp(%esp)`.
fn stack_mem(disp: i32) -> Opnd {
    Opnd::Mem(MemRef::base_disp(Reg::Esp, disp, OpSize::S32))
}

/// Operand vectors for a group-1 arithmetic op in Intel `op first, second`
/// form, following the DynamoRIO convention: for flag-only ops (`cmp`,
/// `test`) sources are in operand order; otherwise `srcs = [src, dst]`,
/// `dsts = [dst]`.
fn arith_operands(op: Opcode, first: Opnd, second: Opnd) -> (Vec<Opnd>, Vec<Opnd>) {
    match op {
        Opcode::Cmp | Opcode::Test => (vec![first, second], Vec::new()),
        _ => (vec![second, first], vec![first]),
    }
}

/// Fully decode the instruction at the start of `bytes`, located at
/// application address `pc`. Returns the instruction (Level 3: operands
/// decoded, raw bits retained) and its length.
///
/// Implicit operands are materialized (e.g. `%esp` and stack memory for
/// push/pop/call/ret, `%edx:%eax` for mul/div), so dataflow analyses can
/// treat `srcs()`/`dsts()` as complete.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported opcodes or truncated input.
///
/// # Examples
///
/// ```
/// use rio_ia32::{decode_instr, Opcode, Opnd, Reg};
/// let (instr, len) = decode_instr(&[0x8b, 0x46, 0x0c], 0x1000)?;
/// assert_eq!(len, 3);
/// assert_eq!(instr.opcode(), Some(Opcode::Mov));
/// assert_eq!(instr.dst(0), &Opnd::reg(Reg::Eax));
/// # Ok::<(), rio_ia32::DecodeError>(())
/// ```
pub fn decode_instr(bytes: &[u8], pc: u32) -> Result<(Instr, u32), DecodeError> {
    let len = decode_sizeof(bytes)?;
    let mut instr = Instr::raw(bytes[..len as usize].to_vec(), pc);
    decode_full_into(bytes, pc, &mut instr)?;
    Ok((instr, len))
}

/// Install Level 3 state into an existing raw instruction.
pub(crate) fn decode_full_into(
    bytes: &[u8],
    pc: u32,
    instr: &mut Instr,
) -> Result<(), DecodeError> {
    let len = decode_sizeof(bytes)?;
    let next_pc = pc.wrapping_add(len);
    let b = bytes[0];

    // Arithmetic block 0x00..=0x3D.
    if b <= 0x3D && (b & 7) <= 5 {
        let op = GRP1[(b >> 3) as usize];
        let (first, second) = match b & 7 {
            0 => {
                let m = parse_modrm(&bytes[1..], OpSize::S8)?;
                (m.opnd, Opnd::Reg(Reg::from_number(m.reg, OpSize::S8)))
            }
            1 => {
                let m = parse_modrm(&bytes[1..], OpSize::S32)?;
                (m.opnd, Opnd::Reg(Reg::from_number(m.reg, OpSize::S32)))
            }
            2 => {
                let m = parse_modrm(&bytes[1..], OpSize::S8)?;
                (Opnd::Reg(Reg::from_number(m.reg, OpSize::S8)), m.opnd)
            }
            3 => {
                let m = parse_modrm(&bytes[1..], OpSize::S32)?;
                (Opnd::Reg(Reg::from_number(m.reg, OpSize::S32)), m.opnd)
            }
            4 => (
                Opnd::reg(Reg::Al),
                Opnd::Imm(read_i8(bytes, 1)?, OpSize::S8),
            ),
            _ => (
                Opnd::reg(Reg::Eax),
                Opnd::Imm(read_i32(bytes, 1)?, OpSize::S32),
            ),
        };
        let (srcs, dsts) = arith_operands(op, first, second);
        instr.install_l3(op, srcs, dsts);
        return Ok(());
    }

    let (op, srcs, dsts): (Opcode, Vec<Opnd>, Vec<Opnd>) = match b {
        0x40..=0x47 => {
            let r = Opnd::Reg(Reg::from_number(b - 0x40, OpSize::S32));
            (Opcode::Inc, vec![r], vec![r])
        }
        0x48..=0x4F => {
            let r = Opnd::Reg(Reg::from_number(b - 0x48, OpSize::S32));
            (Opcode::Dec, vec![r], vec![r])
        }
        0x50..=0x57 => {
            let r = Opnd::Reg(Reg::from_number(b - 0x50, OpSize::S32));
            (
                Opcode::Push,
                vec![r, Opnd::reg(Reg::Esp)],
                vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
            )
        }
        0x58..=0x5F => {
            let r = Opnd::Reg(Reg::from_number(b - 0x58, OpSize::S32));
            (
                Opcode::Pop,
                vec![Opnd::reg(Reg::Esp), stack_mem(0)],
                vec![r, Opnd::reg(Reg::Esp)],
            )
        }
        0x68 => (
            Opcode::Push,
            vec![
                Opnd::Imm(read_i32(bytes, 1)?, OpSize::S32),
                Opnd::reg(Reg::Esp),
            ],
            vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
        ),
        0x6A => (
            Opcode::Push,
            vec![
                Opnd::Imm(read_i8(bytes, 1)?, OpSize::S8),
                Opnd::reg(Reg::Esp),
            ],
            vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
        ),
        0x69 | 0x6B => {
            let m = parse_modrm(&bytes[1..], OpSize::S32)?;
            let imm_off = 1 + m.len as usize;
            let imm = if b == 0x69 {
                Opnd::Imm(read_i32(bytes, imm_off)?, OpSize::S32)
            } else {
                Opnd::Imm(read_i8(bytes, imm_off)?, OpSize::S8)
            };
            let dst = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
            (Opcode::Imul, vec![m.opnd, imm], vec![dst])
        }
        0x70..=0x7F => {
            let target = next_pc.wrapping_add(read_i8(bytes, 1)? as u32);
            (
                Opcode::Jcc(Cc::from_code(b & 0xF)),
                vec![Opnd::Pc(target)],
                vec![],
            )
        }
        0x80 | 0x81 | 0x83 => {
            let size = if b == 0x80 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let op = GRP1[m.reg as usize];
            let imm_off = 1 + m.len as usize;
            let imm = if b == 0x81 {
                Opnd::Imm(read_i32(bytes, imm_off)?, OpSize::S32)
            } else {
                Opnd::Imm(read_i8(bytes, imm_off)?, OpSize::S8)
            };
            let (srcs, dsts) = arith_operands(op, m.opnd, imm);
            (op, srcs, dsts)
        }
        0x84 | 0x85 => {
            let size = if b == 0x84 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let r = Opnd::Reg(Reg::from_number(m.reg, size));
            (Opcode::Test, vec![m.opnd, r], vec![])
        }
        0x86 | 0x87 => {
            let size = if b == 0x86 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let r = Opnd::Reg(Reg::from_number(m.reg, size));
            (Opcode::Xchg, vec![m.opnd, r], vec![m.opnd, r])
        }
        0x88 | 0x89 => {
            let size = if b == 0x88 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let r = Opnd::Reg(Reg::from_number(m.reg, size));
            (Opcode::Mov, vec![r], vec![m.opnd])
        }
        0x8A | 0x8B => {
            let size = if b == 0x8A { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let r = Opnd::Reg(Reg::from_number(m.reg, size));
            (Opcode::Mov, vec![m.opnd], vec![r])
        }
        0x8D => {
            let m = parse_modrm(&bytes[1..], OpSize::S32)?;
            if !matches!(m.opnd, Opnd::Mem(_)) {
                return Err(DecodeError::InvalidModRm);
            }
            let r = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
            (Opcode::Lea, vec![m.opnd], vec![r])
        }
        0x8F => {
            let m = parse_modrm(&bytes[1..], OpSize::S32)?;
            if m.reg != 0 {
                return Err(DecodeError::InvalidOpcode {
                    byte: 0x8F,
                    two_byte: false,
                });
            }
            (
                Opcode::Pop,
                vec![Opnd::reg(Reg::Esp), stack_mem(0)],
                vec![m.opnd, Opnd::reg(Reg::Esp)],
            )
        }
        0x90 => (Opcode::Nop, vec![], vec![]),
        0x91..=0x97 => {
            let r = Opnd::Reg(Reg::from_number(b - 0x90, OpSize::S32));
            let a = Opnd::reg(Reg::Eax);
            (Opcode::Xchg, vec![a, r], vec![a, r])
        }
        0x98 => (
            Opcode::Cwde,
            vec![Opnd::reg(Reg::Ax)],
            vec![Opnd::reg(Reg::Eax)],
        ),
        0x99 => (
            Opcode::Cdq,
            vec![Opnd::reg(Reg::Eax)],
            vec![Opnd::reg(Reg::Edx)],
        ),
        0x9C => (
            Opcode::Pushfd,
            vec![Opnd::reg(Reg::Esp)],
            vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
        ),
        0x9D => (
            Opcode::Popfd,
            vec![Opnd::reg(Reg::Esp), stack_mem(0)],
            vec![Opnd::reg(Reg::Esp)],
        ),
        0x9E => (Opcode::Sahf, vec![Opnd::reg(Reg::Ah)], vec![]),
        0x9F => (Opcode::Lahf, vec![], vec![Opnd::reg(Reg::Ah)]),
        0xA8 => (
            Opcode::Test,
            vec![
                Opnd::reg(Reg::Al),
                Opnd::Imm(read_i8(bytes, 1)?, OpSize::S8),
            ],
            vec![],
        ),
        0xA9 => (
            Opcode::Test,
            vec![
                Opnd::reg(Reg::Eax),
                Opnd::Imm(read_i32(bytes, 1)?, OpSize::S32),
            ],
            vec![],
        ),
        0xB0..=0xB7 => {
            let r = Opnd::Reg(Reg::from_number(b - 0xB0, OpSize::S8));
            (
                Opcode::Mov,
                vec![Opnd::Imm(read_i8(bytes, 1)?, OpSize::S8)],
                vec![r],
            )
        }
        0xB8..=0xBF => {
            let r = Opnd::Reg(Reg::from_number(b - 0xB8, OpSize::S32));
            (
                Opcode::Mov,
                vec![Opnd::Imm(read_i32(bytes, 1)?, OpSize::S32)],
                vec![r],
            )
        }
        0xC0 | 0xC1 => {
            let size = if b == 0xC0 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let op = grp2_opcode(m.reg)?;
            let imm = Opnd::Imm(read_i8(bytes, 1 + m.len as usize)?, OpSize::S8);
            (op, vec![imm, m.opnd], vec![m.opnd])
        }
        0xC2 => (
            Opcode::Ret,
            vec![
                Opnd::Imm(read_u16(bytes, 1)?, OpSize::S16),
                Opnd::reg(Reg::Esp),
                stack_mem(0),
            ],
            vec![Opnd::reg(Reg::Esp)],
        ),
        0xC3 => (
            Opcode::Ret,
            vec![Opnd::reg(Reg::Esp), stack_mem(0)],
            vec![Opnd::reg(Reg::Esp)],
        ),
        0xC6 | 0xC7 => {
            let size = if b == 0xC6 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            if m.reg != 0 {
                return Err(DecodeError::InvalidOpcode {
                    byte: b,
                    two_byte: false,
                });
            }
            let imm_off = 1 + m.len as usize;
            let imm = if b == 0xC6 {
                Opnd::Imm(read_i8(bytes, imm_off)?, OpSize::S8)
            } else {
                Opnd::Imm(read_i32(bytes, imm_off)?, OpSize::S32)
            };
            (Opcode::Mov, vec![imm], vec![m.opnd])
        }
        0xCC => (Opcode::Int3, vec![], vec![]),
        0xCD => (
            Opcode::Int,
            vec![Opnd::Imm(get(bytes, 1)? as i32, OpSize::S8)],
            vec![],
        ),
        0xD0 | 0xD1 => {
            let size = if b == 0xD0 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let op = grp2_opcode(m.reg)?;
            (op, vec![Opnd::imm8(1), m.opnd], vec![m.opnd])
        }
        0xD2 | 0xD3 => {
            let size = if b == 0xD2 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let op = grp2_opcode(m.reg)?;
            (op, vec![Opnd::reg(Reg::Cl), m.opnd], vec![m.opnd])
        }
        0xE3 => {
            let target = next_pc.wrapping_add(read_i8(bytes, 1)? as u32);
            (
                Opcode::Jecxz,
                vec![Opnd::Pc(target), Opnd::reg(Reg::Ecx)],
                vec![],
            )
        }
        0xE8 => {
            let target = next_pc.wrapping_add(read_i32(bytes, 1)? as u32);
            (
                Opcode::Call,
                vec![Opnd::Pc(target), Opnd::reg(Reg::Esp)],
                vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
            )
        }
        0xE9 => {
            let target = next_pc.wrapping_add(read_i32(bytes, 1)? as u32);
            (Opcode::Jmp, vec![Opnd::Pc(target)], vec![])
        }
        0xEB => {
            let target = next_pc.wrapping_add(read_i8(bytes, 1)? as u32);
            (Opcode::Jmp, vec![Opnd::Pc(target)], vec![])
        }
        0xF4 => (Opcode::Hlt, vec![], vec![]),
        0xF6 | 0xF7 => {
            let size = if b == 0xF6 { OpSize::S8 } else { OpSize::S32 };
            let m = parse_modrm(&bytes[1..], size)?;
            let op = grp3_opcode(m.reg)?;
            match op {
                Opcode::Test => {
                    let imm_off = 1 + m.len as usize;
                    let imm = if b == 0xF6 {
                        Opnd::Imm(read_i8(bytes, imm_off)?, OpSize::S8)
                    } else {
                        Opnd::Imm(read_i32(bytes, imm_off)?, OpSize::S32)
                    };
                    (Opcode::Test, vec![m.opnd, imm], vec![])
                }
                Opcode::Not | Opcode::Neg => (op, vec![m.opnd], vec![m.opnd]),
                Opcode::Mul | Opcode::Imul => (
                    op,
                    vec![m.opnd, Opnd::reg(Reg::Eax)],
                    vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
                ),
                _ => (
                    // div / idiv
                    op,
                    vec![m.opnd, Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
                    vec![Opnd::reg(Reg::Edx), Opnd::reg(Reg::Eax)],
                ),
            }
        }
        0xFE => {
            let m = parse_modrm(&bytes[1..], OpSize::S8)?;
            let op = match m.reg {
                0 => Opcode::Inc,
                1 => Opcode::Dec,
                _ => {
                    return Err(DecodeError::InvalidOpcode {
                        byte: 0xFE,
                        two_byte: false,
                    })
                }
            };
            (op, vec![m.opnd], vec![m.opnd])
        }
        0xFF => {
            let m = parse_modrm(&bytes[1..], OpSize::S32)?;
            match m.reg {
                0 => (Opcode::Inc, vec![m.opnd], vec![m.opnd]),
                1 => (Opcode::Dec, vec![m.opnd], vec![m.opnd]),
                2 => (
                    Opcode::CallInd,
                    vec![m.opnd, Opnd::reg(Reg::Esp)],
                    vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
                ),
                4 => (Opcode::JmpInd, vec![m.opnd], vec![]),
                6 => (
                    Opcode::Push,
                    vec![m.opnd, Opnd::reg(Reg::Esp)],
                    vec![Opnd::reg(Reg::Esp), stack_mem(-4)],
                ),
                _ => {
                    return Err(DecodeError::InvalidOpcode {
                        byte: 0xFF,
                        two_byte: false,
                    })
                }
            }
        }
        0x0F => {
            let b2 = bytes[1];
            match b2 {
                0x40..=0x4F => {
                    let m = parse_modrm(&bytes[2..], OpSize::S32)?;
                    let r = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
                    // cmov conditionally writes r; r is also a source.
                    (
                        Opcode::Cmov(Cc::from_code(b2 & 0xF)),
                        vec![m.opnd, r],
                        vec![r],
                    )
                }
                0xA3 => {
                    let m = parse_modrm(&bytes[2..], OpSize::S32)?;
                    let r = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
                    (Opcode::Bt, vec![m.opnd, r], vec![])
                }
                0xBA => {
                    let m = parse_modrm(&bytes[2..], OpSize::S32)?;
                    if m.reg != 4 {
                        return Err(DecodeError::InvalidOpcode {
                            byte: b2,
                            two_byte: true,
                        });
                    }
                    let imm = Opnd::Imm(read_i8(bytes, 2 + m.len as usize)?, OpSize::S8);
                    (Opcode::Bt, vec![m.opnd, imm], vec![])
                }
                0xC8..=0xCF => {
                    let r = Opnd::Reg(Reg::from_number(b2 - 0xC8, OpSize::S32));
                    (Opcode::Bswap, vec![r], vec![r])
                }
                0x80..=0x8F => {
                    let target = next_pc.wrapping_add(read_i32(bytes, 2)? as u32);
                    (
                        Opcode::Jcc(Cc::from_code(b2 & 0xF)),
                        vec![Opnd::Pc(target)],
                        vec![],
                    )
                }
                0x90..=0x9F => {
                    let m = parse_modrm(&bytes[2..], OpSize::S8)?;
                    (Opcode::Set(Cc::from_code(b2 & 0xF)), vec![], vec![m.opnd])
                }
                0xAF => {
                    let m = parse_modrm(&bytes[2..], OpSize::S32)?;
                    let r = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
                    (Opcode::Imul, vec![m.opnd, r], vec![r])
                }
                0xB6 | 0xB7 | 0xBE | 0xBF => {
                    let src_size = if b2 & 1 == 0 { OpSize::S8 } else { OpSize::S16 };
                    let m = parse_modrm(&bytes[2..], src_size)?;
                    let r = Opnd::Reg(Reg::from_number(m.reg, OpSize::S32));
                    let op = if b2 < 0xBE {
                        Opcode::Movzx
                    } else {
                        Opcode::Movsx
                    };
                    (op, vec![m.opnd], vec![r])
                }
                _ => {
                    return Err(DecodeError::InvalidOpcode {
                        byte: b2,
                        two_byte: true,
                    })
                }
            }
        }
        _ => {
            return Err(DecodeError::InvalidOpcode {
                byte: b,
                two_byte: false,
            })
        }
    };

    instr.install_l3(op, srcs, dsts);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 instruction bytes from the paper.
    const FIG2: &[u8] = &[
        0x8d, 0x34, 0x01, // lea (%ecx,%eax,1) -> %esi
        0x8b, 0x46, 0x0c, // mov 0xc(%esi) -> %eax
        0x2b, 0x46, 0x1c, // sub 0x1c(%esi) %eax -> %eax
        0x0f, 0xb7, 0x4e, 0x08, // movzx 0x8(%esi) -> %ecx
        0xc1, 0xe1, 0x07, // shl $0x07 %ecx -> %ecx
        0x3b, 0xc1, // cmp %eax %ecx
        0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00, // jnl
    ];

    #[test]
    fn sizeof_walks_figure2_block() {
        let mut off = 0usize;
        let mut lens = Vec::new();
        while off < FIG2.len() {
            let len = decode_sizeof(&FIG2[off..]).unwrap() as usize;
            lens.push(len);
            off += len;
        }
        assert_eq!(lens, vec![3, 3, 3, 4, 3, 2, 6]);
    }

    #[test]
    fn opcode_decode_matches_figure2() {
        let expected = [
            Opcode::Lea,
            Opcode::Mov,
            Opcode::Sub,
            Opcode::Movzx,
            Opcode::Shl,
            Opcode::Cmp,
            Opcode::Jcc(Cc::Nl),
        ];
        let mut off = 0usize;
        for want in expected {
            let (op, len) = decode_opcode(&FIG2[off..]).unwrap();
            assert_eq!(op, want);
            off += len as usize;
        }
    }

    #[test]
    fn full_decode_lea_with_sib() {
        let (i, len) = decode_instr(&[0x8d, 0x34, 0x01], 0).unwrap();
        assert_eq!(len, 3);
        assert_eq!(i.opcode(), Some(Opcode::Lea));
        let m = i.src(0).as_mem().unwrap();
        assert_eq!(m.base, Some(Reg::Ecx));
        assert_eq!(m.index, Some(Reg::Eax));
        assert_eq!(m.scale, 1);
        assert_eq!(i.dst(0).as_reg(), Some(Reg::Esi));
    }

    #[test]
    fn full_decode_sub_operand_convention() {
        // sub %eax, 0x1c(%esi): srcs = [mem, eax], dsts = [eax]
        let (i, _) = decode_instr(&[0x2b, 0x46, 0x1c], 0).unwrap();
        assert_eq!(i.opcode(), Some(Opcode::Sub));
        assert!(i.src(0).as_mem().is_some());
        assert_eq!(i.src(1).as_reg(), Some(Reg::Eax));
        assert_eq!(i.dst(0).as_reg(), Some(Reg::Eax));
    }

    #[test]
    fn full_decode_jcc_target() {
        // jnl at pc=0x1000, len 6, disp 0xaa2 -> target 0x1000+6+0xaa2
        let (i, len) = decode_instr(&[0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00], 0x1000).unwrap();
        assert_eq!(len, 6);
        assert_eq!(i.src(0), &Opnd::Pc(0x1000 + 6 + 0xaa2));
        assert!(i.is_exit_cti());
    }

    #[test]
    fn rel8_jump_sign_extends() {
        // jmp -2 (infinite loop): EB FE at pc 0x2000 -> target 0x2000
        let (i, _) = decode_instr(&[0xeb, 0xfe], 0x2000).unwrap();
        assert_eq!(i.src(0), &Opnd::Pc(0x2000));
    }

    #[test]
    fn push_pop_materialize_stack_operands() {
        let (push, _) = decode_instr(&[0x50], 0).unwrap(); // push %eax
        assert_eq!(push.opcode(), Some(Opcode::Push));
        assert_eq!(push.src(1).as_reg(), Some(Reg::Esp));
        assert_eq!(push.dst(0).as_reg(), Some(Reg::Esp));
        assert!(push.dst(1).as_mem().is_some());

        let (pop, _) = decode_instr(&[0x5b], 0).unwrap(); // pop %ebx
        assert_eq!(pop.dst(0).as_reg(), Some(Reg::Ebx));
        assert!(pop.src(1).as_mem().is_some());
    }

    #[test]
    fn ret_decodes_with_stack_operands() {
        let (ret, _) = decode_instr(&[0xc3], 0).unwrap();
        assert_eq!(ret.opcode(), Some(Opcode::Ret));
        assert!(ret.is_exit_cti());
        let (retn, len) = decode_instr(&[0xc2, 0x08, 0x00], 0).unwrap();
        assert_eq!(len, 3);
        assert_eq!(retn.src(0).as_imm(), Some(8));
    }

    #[test]
    fn grp3_test_has_immediate_but_neg_does_not() {
        // test $5, %ebx = f7 c3 05 00 00 00
        assert_eq!(decode_sizeof(&[0xf7, 0xc3, 5, 0, 0, 0]).unwrap(), 6);
        // neg %ebx = f7 db
        assert_eq!(decode_sizeof(&[0xf7, 0xdb]).unwrap(), 2);
        let (t, _) = decode_instr(&[0xf7, 0xc3, 5, 0, 0, 0], 0).unwrap();
        assert_eq!(t.opcode(), Some(Opcode::Test));
        let (n, _) = decode_instr(&[0xf7, 0xdb], 0).unwrap();
        assert_eq!(n.opcode(), Some(Opcode::Neg));
    }

    #[test]
    fn div_materializes_edx_eax() {
        let (d, _) = decode_instr(&[0xf7, 0xfb], 0).unwrap(); // idiv %ebx
        assert_eq!(d.opcode(), Some(Opcode::Idiv));
        assert_eq!(d.srcs().len(), 3);
        assert_eq!(d.dsts().len(), 2);
    }

    #[test]
    fn modrm_disp_forms() {
        // mov 0x12345678, %eax (absolute): 8b 05 78 56 34 12
        let (i, len) = decode_instr(&[0x8b, 0x05, 0x78, 0x56, 0x34, 0x12], 0).unwrap();
        assert_eq!(len, 6);
        let m = i.src(0).as_mem().unwrap();
        assert_eq!(m.base, None);
        assert_eq!(m.disp, 0x12345678);

        // mov disp8(%ebp): 8b 45 fc
        let (i, _) = decode_instr(&[0x8b, 0x45, 0xfc], 0).unwrap();
        let m = i.src(0).as_mem().unwrap();
        assert_eq!(m.base, Some(Reg::Ebp));
        assert_eq!(m.disp, -4);

        // mov disp32(%esi): 8b 86 00 01 00 00
        let (i, _) = decode_instr(&[0x8b, 0x86, 0, 1, 0, 0], 0).unwrap();
        assert_eq!(i.src(0).as_mem().unwrap().disp, 0x100);

        // SIB with esp base: mov (%esp), %ecx = 8b 0c 24
        let (i, _) = decode_instr(&[0x8b, 0x0c, 0x24], 0).unwrap();
        let m = i.src(0).as_mem().unwrap();
        assert_eq!(m.base, Some(Reg::Esp));
        assert_eq!(m.index, None);

        // SIB no-base: mov 0x10(,%ebx,4), %eax = 8b 04 9d 10 00 00 00
        let (i, len) = decode_instr(&[0x8b, 0x04, 0x9d, 0x10, 0, 0, 0], 0).unwrap();
        assert_eq!(len, 7);
        let m = i.src(0).as_mem().unwrap();
        assert_eq!(m.base, None);
        assert_eq!(m.index, Some(Reg::Ebx));
        assert_eq!(m.scale, 4);
        assert_eq!(m.disp, 0x10);
    }

    #[test]
    fn indirect_ctis() {
        let (c, _) = decode_instr(&[0xff, 0xd0], 0).unwrap(); // call *%eax
        assert_eq!(c.opcode(), Some(Opcode::CallInd));
        let (j, _) = decode_instr(&[0xff, 0x24, 0x85, 0, 0, 0, 0x08], 0).unwrap(); // jmp *0x8000000(,%eax,4)
        assert_eq!(j.opcode(), Some(Opcode::JmpInd));
        let m = j.src(0).as_mem().unwrap();
        assert_eq!(m.index, Some(Reg::Eax));
        assert_eq!(m.scale, 4);
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(matches!(
            decode_sizeof(&[0xD7]),
            Err(DecodeError::InvalidOpcode { byte: 0xD7, .. })
        ));
        assert!(matches!(
            decode_instr(&[0x0f, 0x05], 0),
            Err(DecodeError::InvalidOpcode {
                byte: 0x05,
                two_byte: true
            })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(
            decode_sizeof(&[0x81, 0xc0, 1, 2]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_sizeof(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode_sizeof(&[0x0f]), Err(DecodeError::Truncated));
    }

    #[test]
    fn setcc_and_movsx() {
        let (s, _) = decode_instr(&[0x0f, 0x94, 0xc0], 0).unwrap(); // setz %al
        assert_eq!(s.opcode(), Some(Opcode::Set(Cc::Z)));
        assert_eq!(s.dst(0).as_reg(), Some(Reg::Al));
        let (m, _) = decode_instr(&[0x0f, 0xbe, 0xc3], 0).unwrap(); // movsx %bl -> %eax
        assert_eq!(m.opcode(), Some(Opcode::Movsx));
        assert_eq!(m.src(0).as_reg(), Some(Reg::Bl));
        assert_eq!(m.dst(0).as_reg(), Some(Reg::Eax));
    }

    #[test]
    fn shift_by_cl_and_by_one() {
        let (s, _) = decode_instr(&[0xd3, 0xe0], 0).unwrap(); // shl %cl, %eax
        assert_eq!(s.opcode(), Some(Opcode::Shl));
        assert_eq!(s.src(0).as_reg(), Some(Reg::Cl));
        let (s, _) = decode_instr(&[0xd1, 0xf8], 0).unwrap(); // sar $1, %eax
        assert_eq!(s.opcode(), Some(Opcode::Sar));
        assert_eq!(s.src(0).as_imm(), Some(1));
    }

    #[test]
    fn jecxz_reads_ecx() {
        let (j, _) = decode_instr(&[0xe3, 0x05], 0x100).unwrap();
        assert_eq!(j.opcode(), Some(Opcode::Jecxz));
        assert_eq!(j.src(0), &Opnd::Pc(0x107));
        assert_eq!(j.src(1).as_reg(), Some(Reg::Ecx));
    }
}
