//! Abstract syntax of the Dyna workload language.

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed remainder)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expressions. All values are 32-bit signed integers with wrapping
/// arithmetic.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Variable (local, parameter, or global scalar).
    Var(String),
    /// Global array element `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e` (yields 0 or 1).
    Not(Box<Expr>),
    /// Direct call `f(args)`.
    Call(String, Vec<Expr>),
    /// Indirect call `icall(target, args...)` through a function address.
    ICall(Box<Expr>, Vec<Expr>),
    /// Address of a function `&f`.
    FnAddr(String),
    /// Short-circuit logical and `a && b` (yields 0 or 1).
    AndAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit logical or `a || b` (yields 0 or 1).
    OrOr(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var x = e;` — declare and initialize a local.
    Let(String, Expr),
    /// `x = e;`
    Assign(String, Expr),
    /// `a[i] = e;`
    Store(String, Expr, Expr),
    /// `x++;` (compiles to a memory `inc`)
    Inc(String),
    /// `x--;` (compiles to a memory `dec`)
    Dec(String),
    /// `while (c) { ... }`
    While(Expr, Vec<Stmt>),
    /// `if (c) { ... } else { ... }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `return e;` (`return;` returns 0)
    Return(Expr),
    /// `print(e);` — decimal line to program output.
    Print(Expr),
    /// `printc(e);` — single byte to program output.
    PrintC(Expr),
    /// `switch (e) { case k { } ... default { } }` — dense jump table.
    Switch(Expr, Vec<(i32, Vec<Stmt>)>, Vec<Stmt>),
    /// `break;` — exit the innermost `while`.
    Break,
    /// `continue;` — jump to the innermost `while`'s test.
    Continue,
    /// Expression statement (usually a call).
    Expr(Expr),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Name (entry point is `main`).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A global declaration: scalar (`global g = 3;`) or array
/// (`global a[100];`, zero-initialized).
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element count (1 for scalars).
    pub len: u32,
    /// Initial value of element 0 (scalars only).
    pub init: i32,
}

/// A whole program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Global declarations.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}
