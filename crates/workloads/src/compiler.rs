//! The Dyna compiler entry point.

use std::error::Error;
use std::fmt;

use rio_ia32::EncodeError;
use rio_sim::Image;

use crate::codegen::Codegen;
use crate::parser::{parse, ParseError};

/// Compilation failures.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Source failed to parse.
    Parse(ParseError),
    /// Reference to an undeclared variable.
    UnknownVar {
        /// Variable name.
        name: String,
        /// Function it was used in.
        function: String,
    },
    /// Call to an undefined function.
    UnknownFunction(String),
    /// Call with the wrong argument count.
    Arity {
        /// Function name.
        function: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// Duplicate global or function name.
    Duplicate(String),
    /// No `main` function.
    NoMain,
    /// `break`/`continue` outside a loop.
    StrayLoopControl {
        /// Which statement (`"break"` or `"continue"`).
        what: &'static str,
        /// Function it appeared in.
        function: String,
    },
    /// Generated code failed to encode (internal error).
    Encode(EncodeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::UnknownVar { name, function } => {
                write!(f, "unknown variable `{name}` in `{function}`")
            }
            CompileError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            CompileError::Arity {
                function,
                expected,
                got,
            } => write!(f, "`{function}` takes {expected} arguments, got {got}"),
            CompileError::Duplicate(n) => write!(f, "duplicate definition of `{n}`"),
            CompileError::NoMain => write!(f, "no `main` function"),
            CompileError::StrayLoopControl { what, function } => {
                write!(f, "`{what}` outside a loop in `{function}`")
            }
            CompileError::Encode(e) => write!(f, "internal encoding failure: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<EncodeError> for CompileError {
    fn from(e: EncodeError) -> CompileError {
        CompileError::Encode(e)
    }
}

/// Compile Dyna source into a loadable [`Image`].
///
/// # Errors
///
/// Returns [`CompileError`] on parse or semantic failures.
///
/// # Examples
///
/// ```
/// use rio_workloads::compile;
/// use rio_sim::{run_native, CpuKind};
///
/// let image = compile("fn main() { return 6 * 7; }")?;
/// let result = run_native(&image, CpuKind::Pentium4);
/// assert_eq!(result.exit_code, 42);
/// # Ok::<(), rio_workloads::CompileError>(())
/// ```
pub fn compile(src: &str) -> Result<Image, CompileError> {
    let prog = parse(src)?;
    Codegen::new().compile(&prog)
}
