//! Lexer for the Dyna workload language.

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Num(i32),
    /// Identifier.
    Ident(String),
    /// Keyword: `fn`, `var`, `global`, `while`, `if`, `else`, `return`,
    /// `print`, `printc`, `switch`, `case`, `default`, `icall`, `break`.
    Kw(&'static str),
    /// Punctuation or operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{k}"),
            Tok::Sym(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: u32,
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} on line {}",
            self.ch, self.line
        )
    }
}

impl Error for LexError {}

const KEYWORDS: &[&str] = &[
    "fn", "var", "global", "while", "if", "else", "return", "print", "printc", "switch", "case",
    "default", "icall", "break", "continue",
];

/// Tokenize Dyna source. Comments run from `//` to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on characters outside the language.
pub fn lex(src: &str) -> Result<Vec<(Tok, u32)>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push((Tok::Sym("/"), line));
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n.wrapping_mul(10).wrapping_add(v as i64);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Num(n as i32), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match KEYWORDS.iter().find(|k| **k == s) {
                    Some(k) => out.push((Tok::Kw(k), line)),
                    None => out.push((Tok::Ident(s), line)),
                }
            }
            _ => {
                chars.next();
                let two =
                    |second: char,
                     sym2: &'static str,
                     sym1: &'static str,
                     chars: &mut std::iter::Peekable<std::str::Chars<'_>>| {
                        if chars.peek() == Some(&second) {
                            chars.next();
                            sym2
                        } else {
                            sym1
                        }
                    };
                let sym: &'static str = match c {
                    '+' => two('+', "++", "+", &mut chars),
                    '-' => two('-', "--", "-", &mut chars),
                    '*' => "*",
                    '%' => "%",
                    '&' => two('&', "&&", "&", &mut chars),
                    '|' => two('|', "||", "|", &mut chars),
                    '^' => "^",
                    '(' => "(",
                    ')' => ")",
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    ';' => ";",
                    ',' => ",",
                    '!' => two('=', "!=", "!", &mut chars),
                    '=' => two('=', "==", "=", &mut chars),
                    '<' => {
                        if chars.peek() == Some(&'<') {
                            chars.next();
                            "<<"
                        } else if chars.peek() == Some(&'=') {
                            chars.next();
                            "<="
                        } else {
                            "<"
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'>') {
                            chars.next();
                            ">>"
                        } else if chars.peek() == Some(&'=') {
                            chars.next();
                            ">="
                        } else {
                            ">"
                        }
                    }
                    other => return Err(LexError { line, ch: other }),
                };
                out.push((Tok::Sym(sym), line));
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_function_header() {
        assert_eq!(
            toks("fn main() { return 42; }"),
            vec![
                Tok::Kw("fn"),
                Tok::Ident("main".into()),
                Tok::Sym("("),
                Tok::Sym(")"),
                Tok::Sym("{"),
                Tok::Kw("return"),
                Tok::Num(42),
                Tok::Sym(";"),
                Tok::Sym("}"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            toks("a << b >> c <= d >= e == f != g ++ --"),
            vec![
                Tok::Ident("a".into()),
                Tok::Sym("<<"),
                Tok::Ident("b".into()),
                Tok::Sym(">>"),
                Tok::Ident("c".into()),
                Tok::Sym("<="),
                Tok::Ident("d".into()),
                Tok::Sym(">="),
                Tok::Ident("e".into()),
                Tok::Sym("=="),
                Tok::Ident("f".into()),
                Tok::Sym("!="),
                Tok::Ident("g".into()),
                Tok::Sym("++"),
                Tok::Sym("--"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let lexed = lex("x // comment\ny").unwrap();
        assert_eq!(lexed[0], (Tok::Ident("x".into()), 1));
        assert_eq!(lexed[1], (Tok::Ident("y".into()), 2));
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.line, 1);
    }

    #[test]
    fn numbers_wrap_like_i32() {
        assert_eq!(toks("2147483647"), vec![Tok::Num(i32::MAX), Tok::Eof]);
    }
}
