//! Recursive-descent parser for the Dyna workload language.

use std::error::Error;
use std::fmt;

use crate::ast::{BinOp, Expr, Function, Global, Program, Stmt};
use crate::lexer::{lex, LexError, Tok};

/// A parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What the parser wanted.
        expected: String,
        /// 1-based line.
        line: u32,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                line,
            } => write!(f, "line {line}: expected {expected}, found `{found}`"),
        }
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError::Lex(e)
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            line: self.line(),
        }
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{s}`")))
        }
    }

    fn try_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn try_kw(&mut self, k: &str) -> bool {
        if matches!(self.peek(), Tok::Kw(x) if *x == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn num(&mut self) -> Result<i32, ParseError> {
        let neg = self.try_sym("-");
        match *self.peek() {
            Tok::Num(n) => {
                self.bump();
                Ok(if neg { n.wrapping_neg() } else { n })
            }
            _ => Err(self.unexpected("number")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program::default();
        loop {
            if self.try_kw("fn") {
                p.functions.push(self.function()?);
            } else if self.try_kw("global") {
                let name = self.ident()?;
                let len = if self.try_sym("[") {
                    let n = self.num()?;
                    self.eat_sym("]")?;
                    n.max(1) as u32
                } else {
                    1
                };
                let init = if self.try_sym("=") { self.num()? } else { 0 };
                self.eat_sym(";")?;
                p.globals.push(Global { name, len, init });
            } else if matches!(self.peek(), Tok::Eof) {
                break;
            } else {
                return Err(self.unexpected("`fn`, `global`, or end of input"));
            }
        }
        Ok(p)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let name = self.ident()?;
        self.eat_sym("(")?;
        let mut params = Vec::new();
        if !self.try_sym(")") {
            loop {
                params.push(self.ident()?);
                if self.try_sym(")") {
                    break;
                }
                self.eat_sym(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_sym("{")?;
        let mut out = Vec::new();
        while !self.try_sym("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.try_kw("var") {
            let name = self.ident()?;
            self.eat_sym("=")?;
            let e = self.expr()?;
            self.eat_sym(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.try_kw("while") {
            self.eat_sym("(")?;
            let c = self.expr()?;
            self.eat_sym(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body));
        }
        if self.try_kw("if") {
            self.eat_sym("(")?;
            let c = self.expr()?;
            self.eat_sym(")")?;
            let then = self.block()?;
            let els = if self.try_kw("else") {
                if matches!(self.peek(), Tok::Kw("if")) {
                    self.bump();
                    self.eat_sym("(")?;
                    let c2 = self.expr()?;
                    self.eat_sym(")")?;
                    let t2 = self.block()?;
                    let e2 = if self.try_kw("else") {
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    vec![Stmt::If(c2, t2, e2)]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.try_kw("break") {
            self.eat_sym(";")?;
            return Ok(Stmt::Break);
        }
        if self.try_kw("continue") {
            self.eat_sym(";")?;
            return Ok(Stmt::Continue);
        }
        if self.try_kw("return") {
            let e = if self.try_sym(";") {
                return Ok(Stmt::Return(Expr::Num(0)));
            } else {
                self.expr()?
            };
            self.eat_sym(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.try_kw("print") {
            self.eat_sym("(")?;
            let e = self.expr()?;
            self.eat_sym(")")?;
            self.eat_sym(";")?;
            return Ok(Stmt::Print(e));
        }
        if self.try_kw("printc") {
            self.eat_sym("(")?;
            let e = self.expr()?;
            self.eat_sym(")")?;
            self.eat_sym(";")?;
            return Ok(Stmt::PrintC(e));
        }
        if self.try_kw("switch") {
            self.eat_sym("(")?;
            let e = self.expr()?;
            self.eat_sym(")")?;
            self.eat_sym("{")?;
            let mut cases = Vec::new();
            let mut default = Vec::new();
            loop {
                if self.try_kw("case") {
                    let k = self.num()?;
                    let body = self.block()?;
                    cases.push((k, body));
                } else if self.try_kw("default") {
                    default = self.block()?;
                } else if self.try_sym("}") {
                    break;
                } else {
                    return Err(self.unexpected("`case`, `default`, or `}`"));
                }
            }
            return Ok(Stmt::Switch(e, cases, default));
        }
        // Assignment / increment / array store / expression statement.
        if let Tok::Ident(name) = self.peek().clone() {
            // Look ahead past the identifier.
            let save = self.pos;
            self.bump();
            if self.try_sym("++") {
                self.eat_sym(";")?;
                return Ok(Stmt::Inc(name));
            }
            if self.try_sym("--") {
                self.eat_sym(";")?;
                return Ok(Stmt::Dec(name));
            }
            if self.try_sym("=") {
                let e = self.expr()?;
                self.eat_sym(";")?;
                return Ok(Stmt::Assign(name, e));
            }
            if self.try_sym("[") {
                let idx = self.expr()?;
                self.eat_sym("]")?;
                if self.try_sym("=") {
                    let e = self.expr()?;
                    self.eat_sym(";")?;
                    return Ok(Stmt::Store(name, idx, e));
                }
            }
            // Not an assignment: reparse as an expression statement.
            self.pos = save;
        }
        let e = self.expr()?;
        self.eat_sym(";")?;
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.logic_or()
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logic_and()?;
        while matches!(self.peek(), Tok::Sym("||")) {
            self.bump();
            let rhs = self.logic_and()?;
            lhs = Expr::OrOr(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bin_or()?;
        while matches!(self.peek(), Tok::Sym("&&")) {
            self.bump();
            let rhs = self.bin_or()?;
            lhs = Expr::AndAnd(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bin_level(
        &mut self,
        ops: &[(&str, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (sym, op) in ops {
                if matches!(self.peek(), Tok::Sym(s) if s == sym) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Bin(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bin_or(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(&[("|", BinOp::Or), ("^", BinOp::Xor)], Parser::bin_and)
    }

    fn bin_and(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(&[("&", BinOp::And)], Parser::bin_cmp)
    }

    fn bin_cmp(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(
            &[
                ("==", BinOp::Eq),
                ("!=", BinOp::Ne),
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Parser::bin_shift,
        )
    }

    fn bin_shift(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], Parser::bin_add)
    }

    fn bin_add(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(&[("+", BinOp::Add), ("-", BinOp::Sub)], Parser::bin_mul)
    }

    fn bin_mul(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.try_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.try_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.try_sym("&") {
            let name = self.ident()?;
            return Ok(Expr::FnAddr(name));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.try_kw("icall") {
            self.eat_sym("(")?;
            let target = self.expr()?;
            let mut args = Vec::new();
            while self.try_sym(",") {
                args.push(self.expr()?);
            }
            self.eat_sym(")")?;
            return Ok(Expr::ICall(Box::new(target), args));
        }
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.try_sym("(") {
                    let mut args = Vec::new();
                    if !self.try_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_sym(")") {
                                break;
                            }
                            self.eat_sym(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.try_sym("[") {
                    let idx = self.expr()?;
                    self.eat_sym("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

/// Parse Dyna source into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic failures.
///
/// # Examples
///
/// ```
/// use rio_workloads::parser::parse;
/// let p = parse("fn main() { return 1 + 2 * 3; }")?;
/// assert_eq!(p.functions.len(), 1);
/// # Ok::<(), rio_workloads::parser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence() {
        let p = parse("fn main() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(e) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Num(1)),
                Box::new(Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Num(2)),
                    Box::new(Expr::Num(3))
                ))
            )
        );
    }

    #[test]
    fn parses_globals_and_arrays() {
        let p = parse("global g = 5; global a[100]; fn main() { return g + a[3]; }").unwrap();
        assert_eq!(p.globals[0].init, 5);
        assert_eq!(p.globals[1].len, 100);
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "fn main() {
                var i = 0;
                while (i < 10) { i++; }
                if (i == 10) { print(i); } else { print(0); }
                return i;
            }",
        )
        .unwrap();
        assert_eq!(p.functions[0].body.len(), 4);
        assert!(matches!(p.functions[0].body[1], Stmt::While(..)));
        assert!(matches!(p.functions[0].body[2], Stmt::If(..)));
    }

    #[test]
    fn parses_switch_and_icall() {
        let p = parse(
            "fn h(x) { return x; }
             fn main() {
                var p = &h;
                var v = icall(p, 3);
                switch (v) {
                    case 0 { print(0); }
                    case 1 { print(1); }
                    default { print(9); }
                }
                return v;
            }",
        )
        .unwrap();
        let body = &p.functions[1].body;
        assert!(matches!(&body[0], Stmt::Let(_, Expr::FnAddr(f)) if f == "h"));
        assert!(matches!(&body[1], Stmt::Let(_, Expr::ICall(..))));
        let Stmt::Switch(_, cases, default) = &body[2] else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(default.len(), 1);
    }

    #[test]
    fn parses_inc_dec_and_array_store() {
        let p = parse("global a[4]; fn main() { var i = 0; i++; i--; a[i] = 7; return a[i]; }")
            .unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[1], Stmt::Inc(_)));
        assert!(matches!(body[2], Stmt::Dec(_)));
        assert!(matches!(body[3], Stmt::Store(..)));
    }

    #[test]
    fn reports_errors_with_line() {
        let err = parse("fn main() {\n  return @;\n}").unwrap_err();
        assert!(matches!(err, ParseError::Lex(LexError { line: 2, .. })));
        let err = parse("fn main() { return 1 }").unwrap_err();
        let ParseError::Unexpected { expected, .. } = err else {
            panic!()
        };
        assert!(expected.contains(';'));
    }

    #[test]
    fn else_if_chains() {
        let p = parse(
            "fn main() { var x = 3;
               if (x == 1) { return 1; }
               else if (x == 2) { return 2; }
               else { return 3; }
             }",
        )
        .unwrap();
        let Stmt::If(_, _, els) = &p.functions[0].body[1] else {
            panic!()
        };
        assert!(matches!(&els[0], Stmt::If(..)));
    }
}
