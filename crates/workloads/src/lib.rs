//! # rio-workloads — the Dyna language and SPEC2000-like benchmark suite
//!
//! The paper evaluates on SPEC2000 binaries compiled with `gcc -O3`. This
//! crate substitutes a small imperative language ("Dyna") with a compiler to
//! the IA-32 subset, plus a suite of synthetic benchmarks named after their
//! SPEC counterparts whose *characteristics* (loop-heavy vs call-heavy,
//! indirect-branch density, redundant-load density, code reuse) mirror the
//! originals — the properties the paper's evaluation actually turns on.
//!
//! The compiler is intentionally naive (see [`codegen`]), so its output
//! exhibits the redundancies real compiled code has on register-starved
//! IA-32.
//!
//! ```
//! use rio_workloads::compile;
//! use rio_sim::{run_native, CpuKind};
//!
//! let image = compile(
//!     "fn main() {
//!          var sum = 0;
//!          var i = 1;
//!          while (i <= 10) { sum = sum + i; i++; }
//!          return sum;
//!      }",
//! )?;
//! assert_eq!(run_native(&image, CpuKind::Pentium4).exit_code, 55);
//! # Ok::<(), rio_workloads::CompileError>(())
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod compiler;
pub mod faulting;
pub mod lexer;
pub mod parser;
pub mod smc;
pub mod suite;

pub use compiler::{compile, CompileError};
pub use suite::{benchmark, compiled, compiled_suite, suite, suite_scaled, Benchmark, Category};
