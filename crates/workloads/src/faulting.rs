//! Faulting workloads for the fault-transparency harness.
//!
//! Each program exercises a guest fault path: a divide error raised inside
//! a hot loop (so the faulting instruction sits in a trace once the engine
//! warms up), a wild load into a guarded region, and unhandled variants of
//! both. The handled variants register a Dyna fault handler (`sethandler`)
//! whose output folds in both the fault kind and the faulting application
//! pc — so native, emulation, and cache runs print byte-identical output
//! only if fault translation reports the identical `(kind, pc)` in every
//! mode.

use rio_sim::ExecRegion;

/// Base of the guarded region the wild-load workloads poke.
pub const GUARD_BASE: u32 = 0x2000_0000;

/// Length of the guarded region.
pub const GUARD_LEN: u32 = 0x1000;

/// The guard regions to install (via `Machine::set_guard_regions` or
/// `run_native_guarded`) so the wild-load workloads actually fault.
pub fn guard_regions() -> Vec<ExecRegion> {
    vec![ExecRegion::new(GUARD_BASE, GUARD_BASE + GUARD_LEN)]
}

/// Divide-by-zero inside a hot loop, recovered by a handler. The loop runs
/// long enough for the engine to build a trace before the divisor goes to
/// zero, so the fault is raised from mangled trace code; the handler
/// checksum folds in the faulting pc, making mistranslation visible in the
/// output. Exits 0.
pub fn div_recover() -> String {
    "global faults = 0;
     global checksum = 0;

     fn handler(kind, pc) {
         faults = faults + 1;
         checksum = checksum + kind * 7 + pc % 251;
         return 0;
     }

     fn main() {
         sethandler(&handler);
         var i = 1;
         var d = 3;
         var s = 0;
         while (i <= 120) {
             if (i == 100) { d = 0; }
             s = s + (i * 5 + 3) / d;
             i++;
         }
         print(s);
         print(faults);
         print(checksum);
         return 0;
     }"
    .to_string()
}

/// Number of faults [`div_recover`] raises (iterations 100..=120).
pub const DIV_RECOVER_FAULTS: i32 = 21;

/// A load from the guarded region, recovered by a handler. The skipped
/// `mov %eax,(%eax)` leaves the address in `%eax`, so the printed value is
/// the guarded address itself — identical in every execution mode. Exits 0.
pub fn wild_load() -> String {
    format!(
        "global seen = 0;

         fn handler(kind, pc) {{
             seen = seen + kind * 1000 + pc % 251;
             return 0;
         }}

         fn main() {{
             sethandler(&handler);
             var x = peek({GUARD_BASE});
             print(x);
             print(seen);
             return 0;
         }}"
    )
}

/// Divide-by-zero with no handler registered: the run ends with an
/// unhandled divide error (exit 129 under the 128+kind convention).
pub fn div_unhandled() -> String {
    "fn main() {
         var a = 10;
         var b = 0;
         return a / b;
     }"
    .to_string()
}

/// Wild load with no handler registered: an unhandled memory fault
/// (exit 131) when the guard regions are installed.
pub fn wild_unhandled() -> String {
    format!(
        "fn main() {{
             return peek({GUARD_BASE});
         }}"
    )
}
