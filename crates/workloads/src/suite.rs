//! The SPEC2000-like synthetic benchmark suite.
//!
//! Each benchmark is a Dyna program named after the SPEC CPU2000 workload
//! whose *execution character* it mimics — the property structure the
//! paper's evaluation turns on, not the original source:
//!
//! * **FP-like** benchmarks are tight loop kernels with high code reuse and
//!   dense redundant loads (coefficients and accumulators live in memory) —
//!   where redundant load removal shines (§5: "does well on a number of
//!   floating-point benchmarks", 40% on mgrid). No x87 exists in the
//!   subset; arithmetic-intensive integer kernels stand in for FP.
//! * **Integer** benchmarks are branchy, call-heavy, and indirect-branch
//!   heavy (switch dispatch, function-pointer tables, returns from many
//!   sites) — where indirect-branch dispatch and custom traces win.
//! * `gcc`- and `perlbmk`-like benchmarks have large static footprints and
//!   little code reuse, so translation and optimization time cannot be
//!   amortized — the paper's slowdown cases.
//!
//! Every benchmark prints a checksum, so native-vs-RIO equivalence is fully
//! checkable.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rio_sim::Image;

use crate::compile;

/// Workload category (SPEC's integer vs floating-point split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// SPECint-like: branchy / call-heavy / indirect-heavy.
    Int,
    /// SPECfp-like: loop kernels with high reuse.
    Fp,
}

/// One synthetic benchmark.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// SPEC-analog name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// One-line character description.
    pub character: &'static str,
    /// Dyna source.
    pub source: String,
}

fn fp(name: &'static str, character: &'static str, source: String) -> Benchmark {
    Benchmark {
        name,
        category: Category::Fp,
        character,
        source,
    }
}

fn int(name: &'static str, character: &'static str, source: String) -> Benchmark {
    Benchmark {
        name,
        category: Category::Int,
        character,
        source,
    }
}

/// `mgrid`-like: 3-point stencil smoothing passes over a grid; the inner
/// loop reloads three coefficient globals and the accumulator every element.
fn mgrid(passes: i32) -> String {
    format!(
        "global u[260];
         global c0 = 5; global c1 = 3; global c2 = 5;
         fn main() {{
             var i = 0;
             while (i < 260) {{ u[i] = i * 7 % 1000; i++; }}
             var p = 0;
             while (p < {passes}) {{
                 var j = 1;
                 while (j < 259) {{
                     var l = u[j-1];
                     var c = u[j];
                     var r = u[j+1];
                     u[j] = (c0 * l + c1 * c + c2 * r + l + r + c) / 16;
                     j++;
                 }}
                 p++;
             }}
             var s = 0;
             var k = 0;
             while (k < 260) {{ s = s + u[k]; k++; }}
             print(s);
             return s % 251;
         }}"
    )
}

/// `swim`-like: two-array relaxation with coefficient reloads.
fn swim(passes: i32) -> String {
    format!(
        "global h[200]; global v[200];
         global dt = 3; global dx = 7;
         fn main() {{
             var i = 0;
             while (i < 200) {{ h[i] = i * 13 % 500; v[i] = i * 29 % 500; i++; }}
             var p = 0;
             while (p < {passes}) {{
                 var j = 1;
                 while (j < 199) {{
                     h[j] = h[j] + dt * (v[j+1] - v[j-1]) / dx;
                     v[j] = v[j] + dt * (h[j+1] - h[j-1]) / dx;
                     j++;
                 }}
                 p++;
             }}
             var s = 0; var k = 0;
             while (k < 200) {{ s = s + h[k] + v[k]; k++; }}
             print(s);
             return s % 251;
         }}"
    )
}

/// `applu`-like: nested loop nest with multiply-heavy body and a
/// memory-resident accumulator.
fn applu(outer: i32) -> String {
    format!(
        "global acc = 0;
         global w[64];
         fn main() {{
             var i = 0;
             while (i < 64) {{ w[i] = i * i % 97; i++; }}
             var o = 0;
             while (o < {outer}) {{
                 var a = 0;
                 while (a < 16) {{
                     var b = 0;
                     while (b < 16) {{
                         acc = acc + w[a] * w[b] + w[(a+b) % 64];
                         b++;
                     }}
                     a++;
                 }}
                 o++;
             }}
             print(acc);
             return acc % 251;
         }}"
    )
}

/// `art`-like: neural-net-ish scan computing dot products and a running
/// maximum.
fn art(passes: i32) -> String {
    format!(
        "global f1[128]; global f2[128];
         global best = 0;
         fn main() {{
             var i = 0;
             while (i < 128) {{ f1[i] = i * 31 % 211; f2[i] = i * 17 % 193; i++; }}
             var p = 0;
             while (p < {passes}) {{
                 var dot = 0;
                 var j = 0;
                 while (j < 128) {{ dot = dot + f1[j] * f2[j]; j++; }}
                 if (dot > best) {{ best = dot; }}
                 var k = 0;
                 while (k < 128) {{ f1[k] = (f1[k] + f2[k]) % 211; k++; }}
                 p++;
             }}
             print(best);
             return best % 251;
         }}"
    )
}

/// `equake`-like: indexed (sparse-ish) gathers and scatters.
fn equake(passes: i32) -> String {
    format!(
        "global val[150]; global col[150]; global x[150]; global y[150];
         fn main() {{
             var i = 0;
             while (i < 150) {{
                 val[i] = i * 7 % 100 + 1;
                 col[i] = i * 53 % 150;
                 x[i] = i % 10;
                 i++;
             }}
             var p = 0;
             while (p < {passes}) {{
                 var j = 0;
                 while (j < 150) {{
                     y[j] = y[j] + val[j] * x[col[j]];
                     j++;
                 }}
                 var k = 0;
                 while (k < 150) {{ x[k] = y[k] % 1000; k++; }}
                 p++;
             }}
             var s = 0; var k = 0;
             while (k < 150) {{ s = s + y[k]; k++; }}
             print(s);
             return s % 251;
         }}"
    )
}

/// `ammp`-like: molecular-dynamics-ish arithmetic with counter increments
/// everywhere (inc/dec fuel).
fn ammp(passes: i32) -> String {
    format!(
        "global pos[100]; global vel[100];
         global steps = 0; global clamps = 0;
         fn main() {{
             var i = 0;
             while (i < 100) {{ pos[i] = i * 11 % 301; vel[i] = i * 5 % 17 - 8; i++; }}
             var p = 0;
             while (p < {passes}) {{
                 var j = 0;
                 while (j < 100) {{
                     vel[j] = vel[j] + (pos[(j+1) % 100] - pos[j]) / 16;
                     pos[j] = pos[j] + vel[j];
                     if (pos[j] > 1000) {{ pos[j] = 1000; clamps++; }}
                     if (pos[j] < 0) {{ pos[j] = 0; clamps++; }}
                     steps++;
                     j++;
                 }}
                 p++;
             }}
             print(steps);
             print(clamps);
             var s = 0; var k = 0;
             while (k < 100) {{ s = s + pos[k]; k++; }}
             return s % 251;
         }}"
    )
}

/// `gzip`-like: byte-stream processing with shifts, masks, and a code
/// table, moderate branching.
fn gzip(bytes: i32) -> String {
    format!(
        "global table[64]; global hist[16];
         fn main() {{
             var i = 0;
             while (i < 64) {{ table[i] = (i * 2654435 + 105) % 256; i++; }}
             var state = 12345;
             var out = 0;
             var n = 0;
             while (n < {bytes}) {{
                 state = (state * 1103515 + 12345) & 2147483647;
                 var byte = (state >> 7) & 255;
                 var code = table[byte & 63];
                 if (byte > 200) {{
                     out = out + ((code << 3) ^ byte);
                 }} else {{
                     if (byte & 1) {{ out = out + (code >> 2); }}
                     else {{ out = out - code; }}
                 }}
                 hist[byte & 15] = hist[byte & 15] + 1;
                 n++;
             }}
             print(out);
             print(hist[3]);
             return out % 251;
         }}"
    )
}

/// `vpr`-like: place-and-route-ish loops with moderate branching and
/// arithmetic; high code reuse (the paper's friendly integer benchmark).
fn vpr(moves: i32) -> String {
    format!(
        "global grid[256]; global cost = 0;
         fn bb_cost(a, b) {{
             var da = grid[a % 256];
             var db = grid[b % 256];
             return (da - db) * (a % 16 - b % 16);
         }}
         fn main() {{
             var i = 0;
             while (i < 256) {{ grid[i] = i * 37 % 64; i++; }}
             var seed = 999;
             var m = 0;
             while (m < {moves}) {{
                 seed = (seed * 1103515 + 12345) & 2147483647;
                 var a = seed % 256;
                 var b = (seed >> 8) % 256;
                 var delta = bb_cost(a, b);
                 if (delta < 0) {{
                     var t = grid[a]; grid[a] = grid[b]; grid[b] = t;
                     cost = cost + delta;
                 }} else {{
                     cost = cost + 1;
                 }}
                 m++;
             }}
             print(cost);
             return cost % 251;
         }}"
    )
}

/// `gcc`-like: a large static footprint (dozens of distinct functions) each
/// executed a handful of times — translation overhead cannot be amortized.
fn gcc(reps: i32) -> String {
    let mut src = String::new();
    for i in 0..48 {
        src.push_str(&format!(
            "fn pass{i}(x) {{
                 var t = x + {i};
                 t = t * 3 - (x >> 2);
                 if (t > 1000) {{ t = t % 1000; }}
                 var u = t * {m} % 509;
                 return u + x % 7;
             }}\n",
            m = 2 * i + 3
        ));
    }
    src.push_str(&format!(
        "fn main() {{
             var acc = 1;
             var r = 0;
             while (r < {reps}) {{
                 acc = pass0(acc); acc = pass1(acc); acc = pass2(acc); acc = pass3(acc);
                 acc = pass4(acc); acc = pass5(acc); acc = pass6(acc); acc = pass7(acc);
                 acc = pass8(acc); acc = pass9(acc); acc = pass10(acc); acc = pass11(acc);
                 acc = pass12(acc); acc = pass13(acc); acc = pass14(acc); acc = pass15(acc);
                 acc = pass16(acc); acc = pass17(acc); acc = pass18(acc); acc = pass19(acc);
                 acc = pass20(acc); acc = pass21(acc); acc = pass22(acc); acc = pass23(acc);
                 acc = pass24(acc); acc = pass25(acc); acc = pass26(acc); acc = pass27(acc);
                 acc = pass28(acc); acc = pass29(acc); acc = pass30(acc); acc = pass31(acc);
                 acc = pass32(acc); acc = pass33(acc); acc = pass34(acc); acc = pass35(acc);
                 acc = pass36(acc); acc = pass37(acc); acc = pass38(acc); acc = pass39(acc);
                 acc = pass40(acc); acc = pass41(acc); acc = pass42(acc); acc = pass43(acc);
                 acc = pass44(acc); acc = pass45(acc); acc = pass46(acc); acc = pass47(acc);
                 r++;
             }}
             print(acc);
             return acc % 251;
         }}"
    ));
    src
}

/// `mcf`-like: pointer chasing through a `next` array — data-dependent
/// loads and an unpredictable loop exit.
fn mcf(walks: i32) -> String {
    format!(
        "global next[512]; global weight[512];
         fn main() {{
             var i = 0;
             while (i < 512) {{
                 next[i] = (i * 167 + 41) % 512;
                 weight[i] = i % 31 - 15;
                 i++;
             }}
             var total = 0;
             var w = 0;
             while (w < {walks}) {{
                 var node = w % 512;
                 var hops = 0;
                 var sum = 0;
                 while (hops < 40) {{
                     sum = sum + weight[node];
                     node = next[node];
                     if (sum > 100) {{ hops = 40; }}
                     hops++;
                 }}
                 total = total + sum;
                 w++;
             }}
             print(total);
             return total % 251;
         }}"
    )
}

/// `crafty`-like: chess-engine-ish mix of switch dispatch, helper calls,
/// and branchy evaluation — the paper's indirect-branch-hostile benchmark.
fn crafty(nodes: i32) -> String {
    format!(
        "global board[64]; global evals = 0;
         fn material(sq) {{
             var p = board[sq % 64];
             switch (p % 6) {{
                 case 0 {{ return 1; }}
                 case 1 {{ return 3; }}
                 case 2 {{ return 3; }}
                 case 3 {{ return 5; }}
                 case 4 {{ return 9; }}
                 default {{ return 0; }}
             }}
         }}
         fn mobility(sq) {{
             var m = 0;
             var d = 1;
             while (d <= 4) {{
                 var t = (sq + d * 8) % 64;
                 if (board[t] == 0) {{ m++; }}
                 d++;
             }}
             return m;
         }}
         fn evaluate(sq) {{
             evals++;
             return material(sq) * 100 + mobility(sq);
         }}
         fn main() {{
             var i = 0;
             while (i < 64) {{ board[i] = i * 13 % 7; i++; }}
             var seed = 77;
             var best = 0;
             var n = 0;
             while (n < {nodes}) {{
                 seed = (seed * 1103515 + 12345) & 2147483647;
                 var sq = seed % 64;
                 var score = evaluate(sq);
                 if (score > best) {{ best = score; }}
                 board[sq] = (board[sq] + 1) % 7;
                 n++;
             }}
             print(best);
             print(evals);
             return best % 251;
         }}"
    )
}

/// `parser`-like: recursive descent over a token array.
fn parser(sentences: i32) -> String {
    format!(
        "global toks[64]; global pos = 0; global parses = 0;
         fn peek() {{ return toks[pos % 64]; }}
         fn advance() {{ pos++; return 0; }}
         fn factor(depth) {{
             var t = peek();
             advance();
             if (depth > 0) {{
                 if (t % 3 == 0) {{ return factor(depth - 1) + 1; }}
             }}
             return t % 10;
         }}
         fn term(depth) {{
             var v = factor(depth);
             if (peek() % 5 == 0) {{ advance(); v = v * factor(depth); }}
             return v;
         }}
         fn sentence(depth) {{
             var v = term(depth);
             while (peek() % 7 == 0) {{ advance(); v = v + term(depth); }}
             parses++;
             return v;
         }}
         fn main() {{
             var i = 0;
             while (i < 64) {{ toks[i] = (i * 2654435 + 7) % 97; i++; }}
             var s = 0;
             var n = 0;
             while (n < {sentences}) {{
                 pos = n * 3;
                 s = s + sentence(4);
                 n++;
             }}
             print(s);
             print(parses);
             return s % 251;
         }}"
    )
}

/// `eon`-like: ray-tracer-ish virtual dispatch through a function-pointer
/// table in the hot loop — the inline-cache workload (§4.3's natural prey).
fn eon(rays: i32) -> String {
    format!(
        "global shaders[4]; global hits = 0;
         fn flat(x) {{ return x * 2 + 1; }}
         fn phong(x) {{ return x * 3 - (x >> 3); }}
         fn mirror(x) {{ return (x << 1) ^ 255; }}
         fn glass(x) {{ return x * 5 / 3; }}
         fn main() {{
             shaders[0] = &flat; shaders[1] = &phong;
             shaders[2] = &mirror; shaders[3] = &glass;
             var seed = 31415;
             var color = 0;
             var r = 0;
             while (r < {rays}) {{
                 seed = (seed * 1103515 + 12345) & 2147483647;
                 // Skewed distribution: shader 1 dominates, like a scene
                 // dominated by one material.
                 var pick = seed % 16;
                 var s = 1;
                 if (pick < 3) {{ s = 0; }}
                 if (pick == 14) {{ s = 2; }}
                 if (pick == 15) {{ s = 3; }}
                 color = (color + icall(shaders[s], seed % 1000)) % 100000;
                 hits++;
                 r++;
             }}
             print(color);
             print(hits);
             return color % 251;
         }}"
    )
}

/// `perlbmk`-like: a bytecode interpreter with a big dense switch, run
/// briefly over many distinct "scripts" — little code reuse per script.
fn perlbmk(scripts: i32) -> String {
    format!(
        "global prog[128]; global stack[32]; global sp = 0; global ran = 0;
         fn step(op, operand) {{
             switch (op) {{
                 case 0 {{ stack[sp % 32] = operand; sp++; }}
                 case 1 {{ sp--; }}
                 case 2 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] + operand; }}
                 case 3 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] * 2; }}
                 case 4 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] - operand; }}
                 case 5 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] ^ operand; }}
                 case 6 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] >> 1; }}
                 case 7 {{ stack[(sp-1) % 32] = stack[(sp-1) % 32] << 1; }}
                 default {{ ran = ran + operand; }}
             }}
             ran++;
             return 0;
         }}
         fn main() {{
             var s = 0;
             while (s < {scripts}) {{
                 // \"Compile\" a fresh script.
                 var i = 0;
                 while (i < 128) {{
                     prog[i] = (i * 73 + s * 129 + 11) % 1024;
                     i++;
                 }}
                 sp = 1;
                 stack[0] = s;
                 // Interpret it once.
                 var pc = 0;
                 while (pc < 128) {{
                     var insn = prog[pc];
                     step(insn % 9, insn / 9);
                     pc++;
                 }}
                 s++;
             }}
             print(ran);
             print(stack[0]);
             return ran % 251;
         }}"
    )
}

/// `gap`-like: group-theory-ish modular arithmetic with helper calls.
fn gap(iters: i32) -> String {
    format!(
        "global seen = 0;
         fn mulmod(a, b, m) {{ return a * b % m; }}
         fn powmod(b, e, m) {{
             var r = 1;
             var base = b % m;
             while (e > 0) {{
                 if (e & 1) {{ r = mulmod(r, base, m); }}
                 base = mulmod(base, base, m);
                 e = e >> 1;
             }}
             return r;
         }}
         fn main() {{
             var s = 0;
             var n = 0;
             while (n < {iters}) {{
                 s = (s + powmod(n % 97 + 2, 20 + n % 13, 10007)) % 100003;
                 seen++;
                 n++;
             }}
             print(s);
             print(seen);
             return s % 251;
         }}"
    )
}

/// `vortex`-like: database-ish deep call chains per transaction (the
/// call/return-heavy benchmark custom traces target).
fn vortex(txns: i32) -> String {
    format!(
        "global db[256]; global commits = 0;
         fn hash(k) {{ return (k * 2654435 + 971) % 256; }}
         fn lookup(k) {{ return db[hash(k)]; }}
         fn update(k, v) {{ db[hash(k)] = v; return v; }}
         fn validate(v) {{ if (v < 0) {{ return 0 - v; }} return v; }}
         fn txn(k) {{
             var v = lookup(k);
             v = validate(v + k % 17 - 8);
             update(k, v);
             commits++;
             return v;
         }}
         fn main() {{
             var i = 0;
             while (i < 256) {{ db[i] = i * 3 % 101; i++; }}
             var s = 0;
             var t = 0;
             while (t < {txns}) {{
                 s = (s + txn(t * 7919)) % 1000003;
                 t++;
             }}
             print(s);
             print(commits);
             return s % 251;
         }}"
    )
}

/// `bzip2`-like: bit-twiddling compression-ish loops.
fn bzip2(blocks: i32) -> String {
    format!(
        "global buf[256]; global freq[16];
         fn main() {{
             var b = 0;
             var crc = 0;
             while (b < {blocks}) {{
                 var i = 0;
                 while (i < 256) {{
                     buf[i] = (i * 131 + b * 17) & 255;
                     i++;
                 }}
                 // Run-length + frequency pass.
                 var j = 0;
                 var run = 0;
                 while (j < 256) {{
                     var v = buf[j];
                     if (v == buf[(j + 255) % 256]) {{ run++; }}
                     else {{ run = 0; }}
                     freq[v & 15] = freq[v & 15] + 1;
                     crc = ((crc << 1) ^ v ^ run) & 16777215;
                     j++;
                 }}
                 b++;
             }}
             print(crc);
             print(freq[7]);
             return crc % 251;
         }}"
    )
}

/// `twolf`-like: simulated-annealing-ish mix of loops, branches, and
/// occasional helper calls.
fn twolf(moves: i32) -> String {
    format!(
        "global cells[128]; global temp = 1000; global accepted = 0;
         fn cost(a, b) {{
             var d = cells[a % 128] - cells[b % 128];
             if (d < 0) {{ d = 0 - d; }}
             return d + (a ^ b) % 9;
         }}
         fn main() {{
             var i = 0;
             while (i < 128) {{ cells[i] = i * 59 % 97; i++; }}
             var seed = 4242;
             var total = 0;
             var m = 0;
             while (m < {moves}) {{
                 seed = (seed * 1103515 + 12345) & 2147483647;
                 var a = seed % 128;
                 var b = (seed >> 9) % 128;
                 var before = cost(a, b);
                 var t = cells[a]; cells[a] = cells[b]; cells[b] = t;
                 var after = cost(a, b);
                 if (after > before + temp % 7) {{
                     t = cells[a]; cells[a] = cells[b]; cells[b] = t;
                 }} else {{
                     accepted++;
                     total = total + before - after;
                 }}
                 if (m % 100 == 99) {{ temp = temp * 9 / 10 + 1; }}
                 m++;
             }}
             print(total);
             print(accepted);
             return total % 251;
         }}"
    )
}

/// The full suite at default (Figure 5) scales.
///
/// The default is 10x the unit scale: runs are long enough (5-15M simulated
/// instructions) to amortize translation warmup the way the paper's
/// minutes-long SPEC runs do. Tests use [`suite_scaled`] with small scales.
pub fn suite() -> Vec<Benchmark> {
    suite_scaled(10)
}

/// The suite with all iteration counts multiplied by `scale` (tests use
/// small scales; benchmarks larger ones).
pub fn suite_scaled(scale: i32) -> Vec<Benchmark> {
    vec![
        // SPECint-like.
        int(
            "gzip",
            "byte-stream shifts/masks, table lookups",
            gzip(4000 * scale),
        ),
        int(
            "vpr",
            "loop-heavy placement moves, high reuse",
            vpr(4000 * scale),
        ),
        int(
            "gcc",
            "48 distinct functions, little reuse (overhead-hostile)",
            gcc(40 * scale),
        ),
        int(
            "mcf",
            "pointer chasing, data-dependent branches",
            mcf(500 * scale),
        ),
        int(
            "crafty",
            "switch dispatch + helper calls + branchy evaluation",
            crafty(2000 * scale),
        ),
        int(
            "parser",
            "recursive descent over token stream",
            parser(1200 * scale),
        ),
        int(
            "eon",
            "virtual dispatch via function-pointer table",
            eon(3000 * scale),
        ),
        int(
            "perlbmk",
            "bytecode interpreter, fresh script per run (overhead-hostile)",
            perlbmk(8 * scale),
        ),
        int(
            "gap",
            "modular exponentiation with helper calls",
            gap(800 * scale),
        ),
        int(
            "vortex",
            "deep call chains per transaction",
            vortex(2500 * scale),
        ),
        int("bzip2", "bit-twiddling block passes", bzip2(60 * scale)),
        int(
            "twolf",
            "annealing moves: loops + branches + calls",
            twolf(3000 * scale),
        ),
        // SPECfp-like.
        fp(
            "wupwise",
            "dense inner products (applu variant)",
            applu(45 * scale),
        ),
        fp(
            "swim",
            "two-array relaxation, coefficient reloads",
            swim(60 * scale),
        ),
        fp(
            "mgrid",
            "stencil smoothing, dense redundant loads",
            mgrid(70 * scale),
        ),
        fp(
            "applu",
            "nested multiply-heavy loop nest",
            applu(40 * scale),
        ),
        fp("art", "dot-product scans with running max", art(80 * scale)),
        fp(
            "equake",
            "indexed sparse gathers/scatters",
            equake(100 * scale),
        ),
        fp(
            "ammp",
            "dynamics steps with counter increments",
            ammp(90 * scale),
        ),
    ]
}

/// Look up one benchmark by name at the default scale.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// Compile `b`, returning a shared image. Each distinct source is compiled
/// exactly once per process and the resulting [`Image`] shared via `Arc`
/// across every caller and worker thread — a suite run under N engine
/// configurations pays for one compile, not N.
///
/// # Panics
///
/// Panics if the benchmark source fails to compile (suite sources are
/// generated and must always compile).
pub fn compiled(b: &Benchmark) -> Arc<Image> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Image>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(img) = cache.lock().unwrap().get(&b.source) {
        return Arc::clone(img);
    }
    // Compile outside the lock so a slow compile never serializes the
    // worker pool; a concurrent duplicate loses the insert race and is
    // dropped (results are identical either way).
    let img = Arc::new(
        compile(&b.source).unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name)),
    );
    Arc::clone(cache.lock().unwrap().entry(b.source.clone()).or_insert(img))
}

/// The full suite at default scale, paired with shared compiled images.
pub fn compiled_suite() -> Vec<(Benchmark, Arc<Image>)> {
    suite()
        .into_iter()
        .map(|b| {
            let img = compiled(&b);
            (b, img)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn every_benchmark_compiles() {
        for b in suite() {
            compile(&b.source).unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
        }
    }

    #[test]
    fn suite_has_both_categories() {
        let s = suite();
        assert!(s.iter().filter(|b| b.category == Category::Int).count() >= 10);
        assert!(s.iter().filter(|b| b.category == Category::Fp).count() >= 6);
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mgrid").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn compiled_images_are_shared() {
        let b = benchmark("mgrid").unwrap();
        let a = compiled(&b);
        let c = compiled(&b);
        assert!(Arc::ptr_eq(&a, &c), "same source must share one image");
        // Different scale -> different source -> different image.
        let small = suite_scaled(1)
            .into_iter()
            .find(|x| x.name == "mgrid")
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &compiled(&small)));
        // Shareable across worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<Image>>();
    }
}
