//! Code generation from Dyna ASTs to IA-32 subset machine code.
//!
//! The generator is intentionally naive, mirroring how unoptimized compiler
//! output looks on register-starved IA-32 (and why the paper's dynamic
//! optimizations find work to do even in `gcc -O3` binaries):
//!
//! * every variable lives in memory (locals on the `%ebp` frame, globals in
//!   the data segment) and is **reloaded at each use** — redundant loads for
//!   §4.1's client;
//! * `x++` / `x--` compile to memory `inc`/`dec` — strength-reduction fuel
//!   for §4.2's client;
//! * dense `switch` statements compile to **jump tables** (`jmp *t(,%eax,4)`)
//!   and `icall` to indirect calls — targets for §4.3's client;
//! * calls use a cdecl-like convention (args pushed right-to-left, caller
//!   cleans, result in `%eax`) — inlining material for §4.4's client.

use std::collections::HashMap;

use rio_ia32::encode::encode_list;
use rio_ia32::{create, Cc, InstrId, InstrList, MemRef, OpSize, Opnd, Reg, Target};
use rio_sim::Image;

use crate::ast::{BinOp, Expr, Function, Program, Stmt};
use crate::compiler::CompileError;

/// Where switch jump tables are placed (above globals).
const TABLE_BASE: u32 = Image::DATA_BASE + 0x0080_0000;

struct FnCtx {
    name: String,
    /// name -> ebp-relative offset (locals negative, params positive).
    slots: HashMap<String, i32>,
    next_local: i32,
    /// Innermost-first stack of pending `break`/`continue` jumps, patched
    /// when the loop's labels are placed.
    loop_stack: Vec<LoopJumps>,
}

#[derive(Default)]
struct LoopJumps {
    breaks: Vec<InstrId>,
    continues: Vec<InstrId>,
}

pub(crate) struct Codegen {
    il: InstrList,
    fn_labels: HashMap<String, InstrId>,
    fn_arity: HashMap<String, usize>,
    globals: HashMap<String, (u32, u32)>,
    data: Vec<(u32, Vec<u8>)>,
    data_next: u32,
    table_next: u32,
    fnaddr_patches: Vec<(InstrId, String)>,
    table_patches: Vec<(u32, Vec<InstrId>)>,
    call_patches: Vec<(InstrId, String)>,
}

fn slot_opnd(disp: i32) -> Opnd {
    Opnd::Mem(MemRef::base_disp(Reg::Ebp, disp, OpSize::S32))
}

fn global_opnd(addr: u32) -> Opnd {
    Opnd::Mem(MemRef::absolute(addr, OpSize::S32))
}

fn eax() -> Opnd {
    Opnd::reg(Reg::Eax)
}

fn ecx() -> Opnd {
    Opnd::reg(Reg::Ecx)
}

impl Codegen {
    pub(crate) fn new() -> Codegen {
        Codegen {
            il: InstrList::new(),
            fn_labels: HashMap::new(),
            fn_arity: HashMap::new(),
            globals: HashMap::new(),
            data: Vec::new(),
            data_next: Image::DATA_BASE,
            table_next: TABLE_BASE,
            fnaddr_patches: Vec::new(),
            table_patches: Vec::new(),
            call_patches: Vec::new(),
        }
    }

    pub(crate) fn compile(mut self, prog: &Program) -> Result<Image, CompileError> {
        // Lay out globals.
        for g in &prog.globals {
            if self.globals.contains_key(&g.name) {
                return Err(CompileError::Duplicate(g.name.clone()));
            }
            let addr = self.data_next;
            self.data_next += g.len * 4;
            self.globals.insert(g.name.clone(), (addr, g.len));
            if g.init != 0 {
                self.data.push((addr, g.init.to_le_bytes().to_vec()));
            }
        }
        // Forward-declare every function (labels first, for forward calls).
        for f in &prog.functions {
            if self.fn_arity.contains_key(&f.name) {
                return Err(CompileError::Duplicate(f.name.clone()));
            }
            self.fn_arity.insert(f.name.clone(), f.params.len());
        }
        if !self.fn_arity.contains_key("main") {
            return Err(CompileError::NoMain);
        }

        // Entry stub: call main; exit(eax).
        let entry_call = self.il.push_back(create::call(Target::Pc(0)));
        self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
        self.il.push_back(create::mov(eax(), Opnd::imm32(1)));
        self.il.push_back(create::int(0x80));
        self.il.push_back(create::hlt()); // unreachable backstop

        for f in &prog.functions {
            let label = self.il.push_back(create::label());
            self.fn_labels.insert(f.name.clone(), label);
            self.function(f)?;
        }

        let main_label = self.fn_labels["main"];
        self.il
            .get_mut(entry_call)
            .set_target(Target::Instr(main_label));
        self.resolve_calls()?;

        // Encode, then patch absolute addresses (function pointers, jump
        // tables). Patching changes only fixed-width imm32 values, so
        // offsets are stable and a single re-encode suffices.
        let first = encode_list(&self.il, Image::CODE_BASE)?;
        for (id, name) in &self.fnaddr_patches {
            let label = self
                .fn_labels
                .get(name)
                .copied()
                .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
            let addr = Image::CODE_BASE + first.offset_of(label).expect("label encoded");
            self.il.get_mut(*id).set_src(0, Opnd::imm32(addr as i32));
        }
        for (table_addr, labels) in &self.table_patches {
            let mut bytes = Vec::with_capacity(labels.len() * 4);
            for l in labels {
                let addr = Image::CODE_BASE + first.offset_of(*l).expect("label encoded");
                bytes.extend_from_slice(&addr.to_le_bytes());
            }
            self.data.push((*table_addr, bytes));
        }
        let finl = encode_list(&self.il, Image::CODE_BASE)?;
        debug_assert_eq!(first.bytes.len(), finl.bytes.len());

        Ok(Image {
            code: finl.bytes,
            data: self.data,
            entry: Image::CODE_BASE,
        })
    }

    fn function(&mut self, f: &Function) -> Result<(), CompileError> {
        let mut ctx = FnCtx {
            name: f.name.clone(),
            slots: HashMap::new(),
            next_local: -4,
            loop_stack: Vec::new(),
        };
        for (i, p) in f.params.iter().enumerate() {
            // Saved ebp at 0(%ebp), return address at 4(%ebp), args above.
            ctx.slots.insert(p.clone(), 8 + 4 * i as i32);
        }
        // Pre-size the frame: count `var` declarations recursively.
        let nlocals = count_lets(&f.body);

        self.il.push_back(create::push(Opnd::reg(Reg::Ebp)));
        self.il
            .push_back(create::mov(Opnd::reg(Reg::Ebp), Opnd::reg(Reg::Esp)));
        if nlocals > 0 {
            self.il.push_back(create::sub(
                Opnd::reg(Reg::Esp),
                Opnd::imm32(4 * nlocals as i32),
            ));
        }
        self.stmts(&mut ctx, &f.body)?;
        // Implicit `return 0`.
        self.il.push_back(create::mov(eax(), Opnd::imm32(0)));
        self.epilogue();
        Ok(())
    }

    fn epilogue(&mut self) {
        self.il
            .push_back(create::mov(Opnd::reg(Reg::Esp), Opnd::reg(Reg::Ebp)));
        self.il.push_back(create::pop(Opnd::reg(Reg::Ebp)));
        self.il.push_back(create::ret());
    }

    /// Resolve a scalar variable to its memory operand.
    fn var_slot(&self, ctx: &FnCtx, name: &str) -> Result<Opnd, CompileError> {
        if let Some(disp) = ctx.slots.get(name) {
            return Ok(slot_opnd(*disp));
        }
        if let Some((addr, _)) = self.globals.get(name) {
            return Ok(global_opnd(*addr));
        }
        Err(CompileError::UnknownVar {
            name: name.to_string(),
            function: ctx.name.clone(),
        })
    }

    fn array_base(&self, ctx: &FnCtx, name: &str) -> Result<u32, CompileError> {
        self.globals
            .get(name)
            .map(|(a, _)| *a)
            .ok_or_else(|| CompileError::UnknownVar {
                name: name.to_string(),
                function: ctx.name.clone(),
            })
    }

    fn stmts(&mut self, ctx: &mut FnCtx, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(ctx, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let(name, e) => {
                self.eval(ctx, e)?;
                let disp = *ctx.slots.entry(name.clone()).or_insert_with(|| {
                    let d = ctx.next_local;
                    ctx.next_local -= 4;
                    d
                });
                self.il.push_back(create::mov(slot_opnd(disp), eax()));
            }
            Stmt::Assign(name, e) => {
                self.eval(ctx, e)?;
                let slot = self.var_slot(ctx, name)?;
                self.il.push_back(create::mov(slot, eax()));
            }
            Stmt::Store(name, idx, e) => {
                let base = self.array_base(ctx, name)?;
                self.eval(ctx, e)?;
                self.il.push_back(create::push(eax()));
                self.eval(ctx, idx)?;
                self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                self.il.push_back(create::pop(ecx()));
                self.il.push_back(create::mov(
                    Opnd::Mem(MemRef::index_disp(Reg::Ebx, 4, base as i32, OpSize::S32)),
                    ecx(),
                ));
            }
            Stmt::Inc(name) => {
                let slot = self.var_slot(ctx, name)?;
                self.il.push_back(create::inc(slot));
            }
            Stmt::Dec(name) => {
                let slot = self.var_slot(ctx, name)?;
                self.il.push_back(create::dec(slot));
            }
            Stmt::While(cond, body) => {
                // Rotated loop (as real compilers emit): guard test, body,
                // bottom test with a backward conditional branch. `continue`
                // jumps to the bottom test; `break` jumps past the loop.
                self.eval(ctx, cond)?;
                self.il.push_back(create::test(eax(), eax()));
                let skip = self.il.push_back(create::jcc(Cc::Z, Target::Pc(0)));
                let top = self.il.push_back(create::label());
                ctx.loop_stack.push(LoopJumps::default());
                self.stmts(ctx, body)?;
                let jumps = ctx.loop_stack.pop().expect("loop stack balanced");
                let cont = self.il.push_back(create::label());
                self.eval(ctx, cond)?;
                self.il.push_back(create::test(eax(), eax()));
                let mut back = create::jcc(Cc::Nz, Target::Pc(0));
                back.set_target(Target::Instr(top));
                self.il.push_back(back);
                let end = self.il.push_back(create::label());
                self.il.get_mut(skip).set_target(Target::Instr(end));
                for j in jumps.breaks {
                    self.il.get_mut(j).set_target(Target::Instr(end));
                }
                for j in jumps.continues {
                    self.il.get_mut(j).set_target(Target::Instr(cont));
                }
            }
            Stmt::Break => {
                let j = self.il.push_back(create::jmp(Target::Pc(0)));
                ctx.loop_stack
                    .last_mut()
                    .ok_or_else(|| CompileError::StrayLoopControl {
                        what: "break",
                        function: ctx.name.clone(),
                    })?
                    .breaks
                    .push(j);
            }
            Stmt::Continue => {
                let j = self.il.push_back(create::jmp(Target::Pc(0)));
                ctx.loop_stack
                    .last_mut()
                    .ok_or_else(|| CompileError::StrayLoopControl {
                        what: "continue",
                        function: ctx.name.clone(),
                    })?
                    .continues
                    .push(j);
            }
            Stmt::If(cond, then, els) => {
                self.eval(ctx, cond)?;
                self.il.push_back(create::test(eax(), eax()));
                let to_else = self.il.push_back(create::jcc(Cc::Z, Target::Pc(0)));
                self.stmts(ctx, then)?;
                if els.is_empty() {
                    let end = self.il.push_back(create::label());
                    self.il.get_mut(to_else).set_target(Target::Instr(end));
                } else {
                    let skip = self.il.push_back(create::jmp(Target::Pc(0)));
                    let else_l = self.il.push_back(create::label());
                    self.il.get_mut(to_else).set_target(Target::Instr(else_l));
                    self.stmts(ctx, els)?;
                    let end = self.il.push_back(create::label());
                    self.il.get_mut(skip).set_target(Target::Instr(end));
                }
            }
            Stmt::Return(e) => {
                self.eval(ctx, e)?;
                self.epilogue();
            }
            Stmt::Print(e) => {
                self.eval(ctx, e)?;
                self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                self.il.push_back(create::mov(eax(), Opnd::imm32(2)));
                self.il.push_back(create::int(0x80));
            }
            Stmt::PrintC(e) => {
                self.eval(ctx, e)?;
                self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                self.il.push_back(create::mov(eax(), Opnd::imm32(3)));
                self.il.push_back(create::int(0x80));
            }
            Stmt::Switch(e, cases, default) => self.switch(ctx, e, cases, default)?,
            Stmt::Expr(e) => {
                self.eval(ctx, e)?;
            }
        }
        Ok(())
    }

    fn switch(
        &mut self,
        ctx: &mut FnCtx,
        e: &Expr,
        cases: &[(i32, Vec<Stmt>)],
        default: &[Stmt],
    ) -> Result<(), CompileError> {
        self.eval(ctx, e)?;
        let min = cases.iter().map(|(k, _)| *k).min().unwrap_or(0);
        let max = cases.iter().map(|(k, _)| *k).max().unwrap_or(0);
        let span = (max as i64 - min as i64 + 1) as u32;
        let dense = !cases.is_empty() && span as usize <= cases.len() * 4 + 8 && span <= 1024;

        let mut case_labels: Vec<(i32, InstrId)> = Vec::new();
        let default_label;
        let end_jumps: Vec<InstrId>;

        if dense {
            // Jump table: translate into a real indirect jump — the
            // workloads' main source of `jmp *`.
            if min != 0 {
                self.il.push_back(create::sub(eax(), Opnd::imm32(min)));
            }
            self.il
                .push_back(create::cmp(eax(), Opnd::imm32(span as i32)));
            let to_default = self.il.push_back(create::jcc(Cc::Nb, Target::Pc(0)));
            let table_addr = self.table_next;
            self.table_next += span * 4;
            self.il
                .push_back(create::jmp_ind(Opnd::Mem(MemRef::index_disp(
                    Reg::Eax,
                    4,
                    table_addr as i32,
                    OpSize::S32,
                ))));

            let mut jumps = Vec::new();
            for (k, body) in cases {
                let l = self.il.push_back(create::label());
                case_labels.push((*k, l));
                self.stmts(ctx, body)?;
                jumps.push(self.il.push_back(create::jmp(Target::Pc(0))));
            }
            default_label = self.il.push_back(create::label());
            self.il
                .get_mut(to_default)
                .set_target(Target::Instr(default_label));
            self.stmts(ctx, default)?;
            end_jumps = jumps;

            // Table entries: case label or default.
            let mut entries = Vec::with_capacity(span as usize);
            for k in min..=max {
                let l = case_labels
                    .iter()
                    .find(|(ck, _)| *ck == k)
                    .map(|(_, l)| *l)
                    .unwrap_or(default_label);
                entries.push(l);
            }
            self.table_patches.push((table_addr, entries));
        } else {
            // Sparse: compare chain.
            let mut to_case = Vec::new();
            for (k, _) in cases {
                self.il.push_back(create::cmp(eax(), Opnd::imm32(*k)));
                to_case.push(self.il.push_back(create::jcc(Cc::Z, Target::Pc(0))));
            }
            let to_default = self.il.push_back(create::jmp(Target::Pc(0)));
            let mut jumps = Vec::new();
            for ((_, body), j) in cases.iter().zip(to_case) {
                let l = self.il.push_back(create::label());
                self.il.get_mut(j).set_target(Target::Instr(l));
                self.stmts(ctx, body)?;
                jumps.push(self.il.push_back(create::jmp(Target::Pc(0))));
            }
            default_label = self.il.push_back(create::label());
            self.il
                .get_mut(to_default)
                .set_target(Target::Instr(default_label));
            self.stmts(ctx, default)?;
            end_jumps = jumps;
        }

        let end = self.il.push_back(create::label());
        for j in end_jumps {
            self.il.get_mut(j).set_target(Target::Instr(end));
        }
        Ok(())
    }

    fn eval(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                self.il.push_back(create::mov(eax(), Opnd::imm32(*n)));
            }
            Expr::Var(name) => {
                let slot = self.var_slot(ctx, name)?;
                self.il.push_back(create::mov(eax(), slot));
            }
            Expr::Index(name, idx) => {
                // Index value moves through %ebx so the address register
                // survives the load (and repeated identical loads become
                // visible to redundant-load removal).
                let base = self.array_base(ctx, name)?;
                self.eval(ctx, idx)?;
                self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                self.il.push_back(create::mov(
                    eax(),
                    Opnd::Mem(MemRef::index_disp(Reg::Ebx, 4, base as i32, OpSize::S32)),
                ));
            }
            Expr::Bin(op, l, r) => {
                // Simple right operands (literals, scalar variables) load
                // straight into %ecx — the common case, and the source of
                // the repeated same-slot loads redundant-load removal eats.
                match r.as_ref() {
                    Expr::Num(n) => {
                        self.eval(ctx, l)?;
                        self.il.push_back(create::mov(ecx(), Opnd::imm32(*n)));
                    }
                    Expr::Var(name) => {
                        let slot = self.var_slot(ctx, name)?;
                        self.eval(ctx, l)?;
                        self.il.push_back(create::mov(ecx(), slot));
                    }
                    _ => {
                        self.eval(ctx, r)?;
                        self.il.push_back(create::push(eax()));
                        self.eval(ctx, l)?;
                        // Pop into %edx where possible so %ecx keeps
                        // whatever scalar it last loaded (shift counts must
                        // be in %cl; division clobbers %edx).
                        match op {
                            BinOp::Shl | BinOp::Shr | BinOp::Div | BinOp::Rem => {
                                self.il.push_back(create::pop(ecx()));
                                self.binop(*op);
                            }
                            _ => {
                                self.il.push_back(create::pop(Opnd::reg(Reg::Edx)));
                                self.binop_rhs(*op, Reg::Edx);
                            }
                        }
                        return Ok(());
                    }
                }
                self.binop(*op);
            }
            Expr::Neg(e) => {
                self.eval(ctx, e)?;
                self.il.push_back(create::neg(eax()));
            }
            Expr::Not(e) => {
                self.eval(ctx, e)?;
                self.il.push_back(create::test(eax(), eax()));
                self.il.push_back(create::setcc(Cc::Z, Opnd::reg(Reg::Al)));
                self.il
                    .push_back(create::movzx(Reg::Eax, Opnd::reg(Reg::Al)));
            }
            Expr::Call(name, args) => {
                // Thread intrinsics (unless shadowed by a user definition):
                // spawn(&f) -> thread id, yield(), texit().
                if !self.fn_arity.contains_key(name) {
                    match (name.as_str(), args.len()) {
                        ("spawn", 1) => {
                            self.eval(ctx, &args[0])?;
                            self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                            self.il.push_back(create::mov(eax(), Opnd::imm32(10)));
                            self.il.push_back(create::int(0x80));
                            return Ok(());
                        }
                        ("yield", 0) => {
                            self.il.push_back(create::mov(eax(), Opnd::imm32(11)));
                            self.il.push_back(create::int(0x80));
                            return Ok(());
                        }
                        ("texit", 0) => {
                            self.il.push_back(create::mov(eax(), Opnd::imm32(12)));
                            self.il.push_back(create::int(0x80));
                            return Ok(());
                        }
                        // sethandler(&f) -> previous handler address (0 if
                        // none); sethandler(0) clears. The handler is called
                        // as f(kind, pc) on every fault.
                        ("sethandler", 1) => {
                            self.eval(ctx, &args[0])?;
                            self.il.push_back(create::mov(Opnd::reg(Reg::Ebx), eax()));
                            self.il.push_back(create::mov(eax(), Opnd::imm32(20)));
                            self.il.push_back(create::int(0x80));
                            return Ok(());
                        }
                        // poke(addr, value) -> value: store a 32-bit word
                        // to an arbitrary address (for self-modifying-code
                        // workloads that patch their own instructions).
                        ("poke", 2) => {
                            self.eval(ctx, &args[1])?;
                            self.il.push_back(create::push(eax()));
                            self.eval(ctx, &args[0])?;
                            self.il.push_back(create::pop(Opnd::reg(Reg::Edx)));
                            self.il.push_back(create::mov(
                                Opnd::Mem(MemRef::base_disp(Reg::Eax, 0, OpSize::S32)),
                                Opnd::reg(Reg::Edx),
                            ));
                            self.il.push_back(create::mov(eax(), Opnd::reg(Reg::Edx)));
                            return Ok(());
                        }
                        // peek(addr) -> the 32-bit word at an arbitrary
                        // address (for provoking memory faults on guarded
                        // regions).
                        ("peek", 1) => {
                            self.eval(ctx, &args[0])?;
                            self.il.push_back(create::mov(
                                eax(),
                                Opnd::Mem(MemRef::base_disp(Reg::Eax, 0, OpSize::S32)),
                            ));
                            return Ok(());
                        }
                        _ => {}
                    }
                }
                let arity = *self
                    .fn_arity
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
                if arity != args.len() {
                    return Err(CompileError::Arity {
                        function: name.clone(),
                        expected: arity,
                        got: args.len(),
                    });
                }
                for a in args.iter().rev() {
                    self.eval(ctx, a)?;
                    self.il.push_back(create::push(eax()));
                }
                // Forward reference: the label may not exist yet; use a
                // placeholder patched via the name table at the end.
                let call = self.il.push_back(create::call(Target::Pc(0)));
                self.pending_call(call, name.clone());
                if !args.is_empty() {
                    self.il.push_back(create::add(
                        Opnd::reg(Reg::Esp),
                        Opnd::imm32(4 * args.len() as i32),
                    ));
                }
            }
            Expr::ICall(target, args) => {
                for a in args.iter().rev() {
                    self.eval(ctx, a)?;
                    self.il.push_back(create::push(eax()));
                }
                self.eval(ctx, target)?;
                self.il.push_back(create::call_ind(eax()));
                if !args.is_empty() {
                    self.il.push_back(create::add(
                        Opnd::reg(Reg::Esp),
                        Opnd::imm32(4 * args.len() as i32),
                    ));
                }
            }
            Expr::FnAddr(name) => {
                if !self.fn_arity.contains_key(name) {
                    return Err(CompileError::UnknownFunction(name.clone()));
                }
                let id = self.il.push_back(create::mov(eax(), Opnd::imm32(0)));
                self.fnaddr_patches.push((id, name.clone()));
            }
            Expr::AndAnd(l, r) => {
                // Short circuit: if l == 0, result is 0 without evaluating r.
                self.eval(ctx, l)?;
                self.il.push_back(create::test(eax(), eax()));
                let short = self.il.push_back(create::jcc(Cc::Z, Target::Pc(0)));
                self.eval(ctx, r)?;
                self.il.push_back(create::test(eax(), eax()));
                let out = self.il.push_back(create::label());
                self.il.get_mut(short).set_target(Target::Instr(out));
                // Normalize whichever flags we arrived with into 0/1.
                self.il.push_back(create::setcc(Cc::Nz, Opnd::reg(Reg::Al)));
                self.il
                    .push_back(create::movzx(Reg::Eax, Opnd::reg(Reg::Al)));
            }
            Expr::OrOr(l, r) => {
                self.eval(ctx, l)?;
                self.il.push_back(create::test(eax(), eax()));
                let short = self.il.push_back(create::jcc(Cc::Nz, Target::Pc(0)));
                self.eval(ctx, r)?;
                self.il.push_back(create::test(eax(), eax()));
                let out = self.il.push_back(create::label());
                self.il.get_mut(short).set_target(Target::Instr(out));
                self.il.push_back(create::setcc(Cc::Nz, Opnd::reg(Reg::Al)));
                self.il
                    .push_back(create::movzx(Reg::Eax, Opnd::reg(Reg::Al)));
            }
        }
        Ok(())
    }

    /// Record a direct call to `name`; the target label is resolved once
    /// all functions have been generated (forward references).
    fn pending_call(&mut self, call: InstrId, name: String) {
        self.call_patches.push((call, name));
    }

    fn resolve_calls(&mut self) -> Result<(), CompileError> {
        let patches = std::mem::take(&mut self.call_patches);
        for (id, name) in patches {
            let label = self
                .fn_labels
                .get(&name)
                .copied()
                .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
            self.il.get_mut(id).set_target(Target::Instr(label));
        }
        Ok(())
    }

    fn binop(&mut self, op: BinOp) {
        self.binop_rhs(op, Reg::Ecx);
    }

    /// Emit the operation `eax = eax <op> rhs`.
    ///
    /// # Panics
    ///
    /// Shifts require the count in `%ecx` and division requires `%edx` free;
    /// callers route those through `%ecx`.
    fn binop_rhs(&mut self, op: BinOp, rhs: Reg) {
        let ecx = || Opnd::reg(rhs);
        match op {
            BinOp::Shl | BinOp::Shr | BinOp::Div | BinOp::Rem => {
                assert_eq!(rhs, Reg::Ecx, "shift/div rhs must be %ecx");
            }
            _ => {}
        }
        match op {
            BinOp::Add => {
                self.il.push_back(create::add(eax(), ecx()));
            }
            BinOp::Sub => {
                self.il.push_back(create::sub(eax(), ecx()));
            }
            BinOp::Mul => {
                self.il.push_back(create::imul(Reg::Eax, ecx()));
            }
            BinOp::Div => {
                self.il.push_back(create::cdq());
                self.il.push_back(create::idiv(ecx()));
            }
            BinOp::Rem => {
                self.il.push_back(create::cdq());
                self.il.push_back(create::idiv(ecx()));
                self.il.push_back(create::mov(eax(), Opnd::reg(Reg::Edx)));
            }
            BinOp::And => {
                self.il.push_back(create::and(eax(), ecx()));
            }
            BinOp::Or => {
                self.il.push_back(create::or(eax(), ecx()));
            }
            BinOp::Xor => {
                self.il.push_back(create::xor(eax(), ecx()));
            }
            BinOp::Shl => {
                self.il.push_back(create::shl(eax(), Opnd::reg(Reg::Cl)));
            }
            BinOp::Shr => {
                self.il.push_back(create::sar(eax(), Opnd::reg(Reg::Cl)));
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let cc = match op {
                    BinOp::Eq => Cc::Z,
                    BinOp::Ne => Cc::Nz,
                    BinOp::Lt => Cc::L,
                    BinOp::Le => Cc::Le,
                    BinOp::Gt => Cc::Nle,
                    _ => Cc::Nl,
                };
                self.il.push_back(create::cmp(eax(), ecx()));
                self.il.push_back(create::setcc(cc, Opnd::reg(Reg::Al)));
                self.il
                    .push_back(create::movzx(Reg::Eax, Opnd::reg(Reg::Al)));
            }
        }
    }
}

/// Count `var` declarations (conservatively; duplicates share a slot but
/// over-allocating is harmless).
fn count_lets(body: &[Stmt]) -> usize {
    let mut n = 0;
    for s in body {
        match s {
            Stmt::Let(..) => n += 1,
            Stmt::While(_, b) => n += count_lets(b),
            Stmt::If(_, t, e) => n += count_lets(t) + count_lets(e),
            Stmt::Switch(_, cases, d) => {
                n += count_lets(d);
                for (_, b) in cases {
                    n += count_lets(b);
                }
            }
            _ => {}
        }
    }
    n
}
