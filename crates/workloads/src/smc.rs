//! Self-modifying-code workloads for the cache-consistency harness.
//!
//! Each program patches its own instructions with `poke` (a compiler
//! intrinsic emitting a plain 32-bit store), so under the code cache every
//! patch raises a `CodeWrite` exit and precise invalidation. The programs
//! are deterministic: native, emulation, and cache runs must produce
//! byte-identical output, and any stale fragment surviving an overlapping
//! write changes the printed values.
//!
//! The patch encoding used throughout overwrites a victim function's first
//! six bytes with `mov %eax, imm32; ret` (`B8 xx xx xx xx C3`) via two
//! word stores:
//!
//! * word 0 at `&f`:     `B8 val 00 00` — little-endian `184 + 256 * val`
//!   (valid for `0 <= val < 128`),
//! * word 1 at `&f + 4`: `00 C3 00 00` — little-endian `49920`
//!   ([`RET_WORD`]): the final zero immediate byte, then `ret`.
//!
//! Between the two stores the victim's bytes are a torn, undecodable
//! instruction — legal, because nothing executes the victim until both
//! words land (consistency only requires that *executed* code is current).

/// Second patch word: last immediate byte of the `mov`, then `ret`.
pub const RET_WORD: u32 = 49920;

/// First patch word for `mov %eax, val; ...` with `0 <= val < 128`.
pub fn mov_eax_word(val: u32) -> u32 {
    assert!(val < 128, "imm must stay in the low byte");
    184 + 256 * val
}

/// A store that overwrites the *writer's own basic block* with identical
/// bytes (read back via `peek` first). The write overlaps the fragment
/// containing the store itself, so the engine must invalidate the fragment
/// it is currently executing and still make forward progress — the
/// self-write-loop guard. Prints 45, exits 0.
pub fn self_write() -> String {
    "fn main() {
         var p = &main;
         var w = peek(p);
         poke(p, w);
         var i = 0;
         var s = 0;
         while (i < 10) { s = s + i; i++; }
         print(s);
         return 0;
     }"
    .to_string()
}

/// Expected printed value of [`self_write`] (`0 + 1 + ... + 9`).
pub const SELF_WRITE_SUM: i32 = 45;

/// A hot loop that re-patches a victim function's return value every
/// iteration and calls it. The victim's fragment (and any trace it was
/// stitched into) must be invalidated on every patch, rebuilt from the new
/// bytes on the next call, and the running sum proves no stale copy ever
/// executed. Prints 765, exits 0.
pub fn patch_loop() -> String {
    format!(
        "fn stub() {{
             var pad1 = 1;
             var pad2 = 2;
             return pad1 + pad2 + 2;
         }}

         fn main() {{
             var p = &stub;
             var s = stub();
             var i = 0;
             while (i < 16) {{
                 poke(p, 184 + 256 * (40 + i));
                 poke(p + 4, {RET_WORD});
                 s = s + stub();
                 i++;
             }}
             print(s);
             return 0;
         }}"
    )
}

/// Expected printed value of [`patch_loop`]:
/// `5 + sum(40 + i for i in 0..16)`.
pub const PATCH_LOOP_SUM: i32 = 5 + 16 * 40 + 120;

/// Writes fresh code over a victim function, then jumps to it through a
/// function *pointer* (`icall`), exercising the indirect-branch lookup
/// against an invalidated fragment: the lookup must miss and rebuild, not
/// hit the stale copy. Prints 6 then 99, exits 0.
pub fn write_then_icall() -> String {
    format!(
        "fn scratch() {{
             var a = 1;
             var b = 2;
             var c = 3;
             return a + b + c;
         }}

         fn main() {{
             var p = &scratch;
             var before = scratch();
             poke(p, 184 + 256 * 99);
             poke(p + 4, {RET_WORD});
             var after = icall(p);
             print(before);
             print(after);
             return 0;
         }}"
    )
}

/// Expected printed values of [`write_then_icall`].
pub const WRITE_THEN_ICALL_BEFORE: i32 = 6;
/// Value the freshly written code returns.
pub const WRITE_THEN_ICALL_AFTER: i32 = 99;
