//! Compiler correctness: Dyna programs produce the right results when run
//! natively, and identical results under the RIO engine.

use rio_sim::{run_native, CpuKind};
use rio_workloads::{compile, CompileError};

fn run(src: &str) -> (i32, String) {
    let image = compile(src).expect("compiles");
    let r = run_native(&image, CpuKind::Pentium4);
    (r.exit_code, r.output)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("fn main() { return 1 + 2 * 3; }").0, 7);
    assert_eq!(run("fn main() { return (1 + 2) * 3; }").0, 9);
    assert_eq!(run("fn main() { return 10 - 3 - 2; }").0, 5);
    assert_eq!(run("fn main() { return 100 / 7; }").0, 14);
    assert_eq!(run("fn main() { return 100 % 7; }").0, 2);
    assert_eq!(run("fn main() { return -100 / 7; }").0, -14);
    assert_eq!(run("fn main() { return -100 % 7; }").0, -2);
    assert_eq!(run("fn main() { return 1 << 10; }").0, 1024);
    assert_eq!(run("fn main() { return -16 >> 2; }").0, -4);
    assert_eq!(run("fn main() { return 12 & 10; }").0, 8);
    assert_eq!(run("fn main() { return 12 | 10; }").0, 14);
    assert_eq!(run("fn main() { return 12 ^ 10; }").0, 6);
    assert_eq!(run("fn main() { return -(5); }").0, -5);
    assert_eq!(run("fn main() { return !0 + !7; }").0, 1);
}

#[test]
fn comparisons_yield_zero_or_one() {
    assert_eq!(run("fn main() { return (3 < 5) + (5 < 3); }").0, 1);
    assert_eq!(run("fn main() { return (3 <= 3) + (3 >= 4); }").0, 1);
    assert_eq!(run("fn main() { return (3 == 3) + (3 != 3); }").0, 1);
    assert_eq!(run("fn main() { return (-1 < 1); }").0, 1); // signed compare
    assert_eq!(run("fn main() { return (5 > 2) * 10; }").0, 10);
}

#[test]
fn variables_and_assignment() {
    assert_eq!(
        run("fn main() { var x = 3; var y = 4; x = x * y; return x + y; }").0,
        16
    );
    assert_eq!(
        run("fn main() { var x = 10; x++; x++; x--; return x; }").0,
        11
    );
}

#[test]
fn while_loops() {
    assert_eq!(
        run("fn main() { var s = 0; var i = 1; while (i <= 100) { s = s + i; i++; } return s; }").0,
        5050
    );
    // Nested loops.
    assert_eq!(
        run("fn main() {
            var s = 0; var i = 0;
            while (i < 10) {
                var j = 0;
                while (j < 10) { s++; j++; }
                i++;
            }
            return s;
        }")
        .0,
        100
    );
}

#[test]
fn if_else_chains() {
    let src = "fn classify(x) {
        if (x < 0) { return 0 - 1; }
        else if (x == 0) { return 0; }
        else { return 1; }
    }
    fn main() { return classify(0-5) * 100 + classify(0) * 10 + classify(9); }";
    assert_eq!(run(src).0, -99); // -1*100 + 0 + 1
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        run("fn add(a, b) { return a + b; } fn main() { return add(40, 2); }").0,
        42
    );
    assert_eq!(
        run(
            "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             fn main() { return fib(15); }"
        )
        .0,
        610
    );
    assert_eq!(
        run(
            "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
             fn main() { return fact(10); }"
        )
        .0,
        3628800
    );
}

#[test]
fn globals_and_arrays() {
    assert_eq!(
        run("global g = 7; fn main() { g = g * 6; return g; }").0,
        42
    );
    assert_eq!(
        run("global a[10];
             fn main() {
                 var i = 0;
                 while (i < 10) { a[i] = i * i; i++; }
                 var s = 0;
                 i = 0;
                 while (i < 10) { s = s + a[i]; i++; }
                 return s;
             }")
        .0,
        285
    );
}

#[test]
fn print_output() {
    let (code, out) = run("fn main() { print(42); print(0-7); printc(33); return 0; }");
    assert_eq!(code, 0);
    assert_eq!(out, "42\n-7\n!");
}

#[test]
fn dense_switch_uses_jump_table() {
    let src = "fn pick(x) {
        switch (x) {
            case 0 { return 10; }
            case 1 { return 20; }
            case 2 { return 30; }
            case 3 { return 40; }
            default { return 99; }
        }
    }
    fn main() { return pick(0) + pick(1) + pick(2) + pick(3) + pick(7) + pick(0-1); }";
    let image = compile(src).unwrap();
    // A dense switch must contain an indirect jump (ff 24 85 = jmp *disp(,eax,4)).
    assert!(
        image.code.windows(3).any(|w| w == [0xFF, 0x24, 0x85]),
        "expected a jump table"
    );
    assert_eq!(run(src).0, 10 + 20 + 30 + 40 + 99 + 99);
}

#[test]
fn sparse_switch_uses_compare_chain() {
    let src = "fn pick(x) {
        switch (x) {
            case 0 { return 1; }
            case 1000 { return 2; }
            default { return 3; }
        }
    }
    fn main() { return pick(0) * 100 + pick(1000) * 10 + pick(5); }";
    let image = compile(src).unwrap();
    assert!(
        !image.code.windows(3).any(|w| w == [0xFF, 0x24, 0x85]),
        "sparse switch should not build a table"
    );
    assert_eq!(run(src).0, 123);
}

#[test]
fn function_pointers_and_icall() {
    let src = "fn double(x) { return x * 2; }
        fn triple(x) { return x * 3; }
        fn main() {
            var p = &double;
            var q = &triple;
            return icall(p, 10) + icall(q, 10);
        }";
    assert_eq!(run(src).0, 50);
}

#[test]
fn function_pointer_tables_dispatch() {
    let src = "global ops[4];
        fn op0(x) { return x + 1; }
        fn op1(x) { return x * 2; }
        fn op2(x) { return x - 3; }
        fn op3(x) { return x / 2; }
        fn main() {
            ops[0] = &op0; ops[1] = &op1; ops[2] = &op2; ops[3] = &op3;
            var acc = 100;
            var i = 0;
            while (i < 8) {
                acc = icall(ops[i % 4], acc);
                i++;
            }
            return acc;
        }";
    // 100 ->101 ->202 ->199 ->99 ->100 ->200 ->197 ->98
    assert_eq!(run(src).0, 98);
}

#[test]
fn signed_wrapping_arithmetic() {
    assert_eq!(
        run("fn main() { return 2147483647 + 1 == (0 - 2147483647) - 1; }").0,
        1
    );
    assert_eq!(
        run("fn main() { var x = 65535; return x * x; }").0,
        (65535i64 * 65535) as i32
    );
}

#[test]
fn compile_errors_are_reported() {
    assert!(matches!(
        compile("fn main() { return x; }"),
        Err(CompileError::UnknownVar { .. })
    ));
    assert!(matches!(
        compile("fn main() { return f(1); }"),
        Err(CompileError::UnknownFunction(_))
    ));
    assert!(matches!(
        compile("fn f(a, b) { return a; } fn main() { return f(1); }"),
        Err(CompileError::Arity {
            expected: 2,
            got: 1,
            ..
        })
    ));
    assert!(matches!(
        compile("fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }"),
        Err(CompileError::Duplicate(_))
    ));
    assert!(matches!(
        compile("fn f() { return 0; }"),
        Err(CompileError::NoMain)
    ));
    assert!(matches!(
        compile("fn main() { return 1 + ; }"),
        Err(CompileError::Parse(_))
    ));
}

#[test]
fn compiled_programs_run_identically_under_rio() {
    use rio_core::{NullClient, Options, Rio};
    let srcs = [
        "fn main() { var s = 0; var i = 1; while (i <= 200) { s = s + i * i; i++; } return s % 100000; }",
        "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
         fn main() { print(fib(12)); return 0; }",
        "global t[8];
         fn h(x) { return x * 17 + 3; }
         fn main() {
             var i = 0;
             while (i < 8) { t[i] = h(i); i++; }
             var s = 0;
             i = 0;
             while (i < 8) {
                 switch (t[i] % 4) {
                     case 0 { s = s + 1; }
                     case 1 { s = s + 10; }
                     case 2 { s = s + 100; }
                     case 3 { s = s + 1000; }
                 }
                 i++;
             }
             print(s);
             return s % 251;
         }",
    ];
    for src in srcs {
        let image = compile(src).unwrap();
        let native = run_native(&image, CpuKind::Pentium4);
        for opts in [Options::cache_only(), Options::full()] {
            let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
            let r = rio.run();
            assert_eq!(r.exit_code, native.exit_code, "src: {src}");
            assert_eq!(r.app_output, native.output, "src: {src}");
        }
    }
}

#[test]
fn short_circuit_logic() {
    // Values and truth table.
    assert_eq!(
        run("fn main() { return (1 && 2) + (0 && 1) * 10 + (1 || 0) * 100 + (0 || 0) * 1000; }").0,
        101
    );
    // Short-circuit: the right side must not run when skipped.
    let (code, out) = run("global hits = 0;
         fn effect() { hits++; return 1; }
         fn main() {
             var a = 0 && effect();   // effect not called
             var b = 1 || effect();   // effect not called
             var c = 1 && effect();   // called
             var d = 0 || effect();   // called
             print(hits);
             return a + b * 10 + c * 100 + d * 1000;
         }");
    assert_eq!(out, "2\n");
    assert_eq!(code, 1110);
}

#[test]
fn logic_precedence_is_lowest() {
    assert_eq!(run("fn main() { return 1 + 1 && 1; }").0, 1); // (1+1) && 1
    assert_eq!(run("fn main() { return 0 * 5 || 3 > 2; }").0, 1);
    assert_eq!(run("fn main() { return 1 && 0 || 1; }").0, 1); // (1&&0) || 1
}

#[test]
fn break_and_continue() {
    // break exits the innermost loop only.
    assert_eq!(
        run("fn main() {
            var s = 0; var i = 0;
            while (i < 100) {
                if (i == 10) { break; }
                s = s + i;
                i++;
            }
            return s;
        }")
        .0,
        45
    );
    // continue skips the rest of the body (and still advances via the
    // statement before it).
    assert_eq!(
        run("fn main() {
            var s = 0; var i = 0;
            while (i < 10) {
                i++;
                if (i & 1) { continue; }
                s = s + i;
            }
            return s;
        }")
        .0,
        2 + 4 + 6 + 8 + 10
    );
    // Nested: break/continue bind to the inner loop.
    assert_eq!(
        run("fn main() {
            var hits = 0; var i = 0;
            while (i < 5) {
                var j = 0;
                while (j < 10) {
                    j++;
                    if (j == 3) { continue; }
                    if (j == 6) { break; }
                    hits++;
                }
                i++;
            }
            return hits;
        }")
        .0,
        5 * 4 // j = 1,2,4,5 per outer iteration
    );
}

#[test]
fn stray_break_is_a_compile_error() {
    assert!(matches!(
        compile("fn main() { break; return 0; }"),
        Err(CompileError::StrayLoopControl { what: "break", .. })
    ));
    assert!(matches!(
        compile("fn main() { continue; return 0; }"),
        Err(CompileError::StrayLoopControl {
            what: "continue",
            ..
        })
    ));
}
