//! Program shepherding: a security client (the paper's reference \[23\],
//! "Secure Execution via Program Shepherding"), demonstrating the
//! conclusion's claim that the interface is general enough for "sandboxing,
//! intrusion detection".
//!
//! The client maintains a **shadow return stack** via clean calls inserted
//! at every call and return: a call records its return address; a return
//! checks that the address about to be popped from the application stack
//! matches the shadow top. A mismatch means the return address was
//! overwritten — the signature of a stack-smashing control-flow hijack.
//!
//! Calls and returns are instrumented both in basic blocks (before mangling,
//! where they are still `call`/`ret` instructions) and in traces (after
//! mangling, where calls appear as `push $return_pc` and returns as inlined
//! check regions or lookup exits).

use rio_core::{find_ib_checks, Client, Core, IndKind, Note};
use rio_ia32::{InstrId, InstrList, Opcode, Opnd, Reg};

/// Clean-call argument tags.
const TAG_CALL: u64 = 1 << 62;
const TAG_RET: u64 = 2 << 62;

/// A detected control-flow violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// What the shadow stack expected (top entry; 0 if empty).
    pub expected: u32,
    /// Where the return was actually about to go.
    pub actual: u32,
}

/// The program-shepherding client.
#[derive(Debug, Default)]
pub struct Shepherd {
    shadow: Vec<u32>,
    /// Calls observed.
    pub calls_seen: u64,
    /// Returns checked.
    pub rets_checked: u64,
    /// Return-address violations detected.
    pub violations: Vec<Violation>,
    /// Deepest shadow stack observed.
    pub max_depth: usize,
}

impl Shepherd {
    /// Create the client.
    pub fn new() -> Shepherd {
        Shepherd::default()
    }

    /// Instrument one list: insert a clean call before every application
    /// call (raw `call`, or mangled `push $pc`) and before every return
    /// (raw `ret`, mangled lookup exit, or inlined check region).
    fn instrument(&mut self, core: &mut Core, il: &mut InstrList) {
        // Return sites: inlined check regions (begin at the spill)...
        let checks = find_ib_checks(il);
        let mut ret_sites: Vec<InstrId> = checks
            .iter()
            .filter(|c| c.kind == IndKind::Ret)
            .map(|c| c.begin)
            .collect();
        // Ids covered by any check region (their internal miss-path jumps
        // must not be instrumented a second time).
        let mut in_region: Vec<InstrId> = Vec::new();
        for c in &checks {
            let mut cur = Some(c.begin);
            while let Some(id) = cur {
                in_region.push(id);
                if id == c.end {
                    break;
                }
                cur = il.next_id(id);
            }
        }
        let ids: Vec<InstrId> = il.ids().collect();
        for id in &ids {
            let instr = il.get(*id);
            match instr.opcode() {
                // Raw application return (basic-block hook, pre-mangle).
                Some(Opcode::Ret) => ret_sites.push(*id),
                // Mangled lookup-exit return: walk back to the first
                // app-originated instruction (the spill carries the ret's
                // app pc), which is where %esp still points at the return
                // address.
                Some(Opcode::Jmp)
                    if matches!(Note::parse(instr.note), Some(Note::IbExit(IndKind::Ret)))
                        && !in_region.contains(id) =>
                {
                    let mut cur = il.prev_id(*id);
                    while let Some(p) = cur {
                        if il.get(p).app_pc() != 0 {
                            ret_sites.push(p);
                            break;
                        }
                        cur = il.prev_id(p);
                    }
                }
                _ => {}
            }
        }

        // Call sites: raw `call` (any kind), or mangled `push $ret_pc`.
        let mut call_sites: Vec<(InstrId, u32)> = Vec::new();
        for id in &ids {
            let instr = il.get(*id);
            match instr.opcode() {
                Some(Opcode::Call | Opcode::CallInd) if instr.app_pc() != 0 => {
                    // Return address = instruction end = app_pc + length.
                    if let Some(len) = instr.known_len() {
                        call_sites.push((*id, instr.app_pc() + len));
                    }
                }
                Some(Opcode::Push) if instr.app_pc() != 0 => {
                    if let Some(Opnd::Pc(ret)) = instr.srcs().first() {
                        call_sites.push((*id, *ret));
                    }
                }
                _ => {}
            }
        }

        for (id, ret_pc) in call_sites {
            let cc = core.clean_call_instr(TAG_CALL | ret_pc as u64);
            il.insert_before(id, cc);
        }
        for id in ret_sites {
            let cc = core.clean_call_instr(TAG_RET);
            il.insert_before(id, cc);
        }
    }
}

impl Client for Shepherd {
    fn name(&self) -> &'static str {
        "shepherd"
    }

    fn basic_block(&mut self, core: &mut Core, _tag: u32, bb: &mut InstrList) {
        self.instrument(core, bb);
    }

    fn trace(&mut self, core: &mut Core, _tag: u32, trace: &mut InstrList) {
        self.instrument(core, trace);
    }

    fn clean_call(&mut self, core: &mut Core, arg: u64) {
        if arg & TAG_CALL != 0 {
            self.calls_seen += 1;
            self.shadow.push(arg as u32);
            self.max_depth = self.max_depth.max(self.shadow.len());
        } else if arg & TAG_RET != 0 {
            self.rets_checked += 1;
            // At this point %esp points at the application return address.
            let esp = core.machine.cpu.reg(Reg::Esp);
            let actual = core.machine.mem.read_u32(esp);
            let expected = self.shadow.pop().unwrap_or(0);
            if actual != expected {
                self.violations.push(Violation { expected, actual });
            }
        }
    }

    fn on_exit(&mut self, core: &mut Core) {
        core.printf(format!(
            "shepherd: {} calls, {} returns checked, {} violations\n",
            self.calls_seen,
            self.rets_checked,
            self.violations.len()
        ));
        for v in self.violations.iter().take(5) {
            core.printf(format!(
                "  VIOLATION: return to {:#010x}, expected {:#010x}\n",
                v.actual, v.expected
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Cc, MemRef, OpSize, Target};
    use rio_sim::{run_native, CpuKind, Image};

    fn benign_program(iters: i32) -> Image {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        let top = il.push_back(create::label());
        let c = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        let f = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(2)));
        il.push_back(create::ret());
        il.get_mut(c).set_target(Target::Instr(f));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    /// A function that overwrites its own return address, redirecting the
    /// return to a gadget — the classic hijack pattern.
    fn hijack_program() -> Image {
        let mut il = InstrList::new();
        let c = il.push_back(create::call(Target::Pc(0)));
        // Legitimate continuation: exit(1).
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(1)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        // "Gadget": exit(66).
        let gadget = il.push_back(create::label());
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(66)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        // f: overwrite [esp] with the gadget address, then ret.
        let f = il.push_back(create::label());
        let patch = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::base_disp(Reg::Esp, 0, OpSize::S32)),
            Opnd::reg(Reg::Eax),
        ));
        il.push_back(create::ret());
        il.get_mut(c).set_target(Target::Instr(f));
        // Resolve the gadget address.
        let enc = encode_list(&il, Image::CODE_BASE).unwrap();
        let gadget_addr = Image::CODE_BASE + enc.offset_of(gadget).unwrap();
        il.get_mut(patch)
            .set_src(0, Opnd::imm32(gadget_addr as i32));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn benign_program_has_no_violations() {
        let img = benign_program(300);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, Shepherd::new());
        let r = rio.run();
        assert_eq!(
            r.exit_code, native.exit_code,
            "instrumentation broke execution"
        );
        assert_eq!(rio.client.violations, vec![]);
        assert_eq!(rio.client.calls_seen, 300);
        assert_eq!(rio.client.rets_checked, 300);
        assert!(r.client_output.contains("0 violations"));
    }

    #[test]
    fn return_address_overwrite_is_detected() {
        let img = hijack_program();
        let mut rio = Rio::new(
            &img,
            Options::with_indirect_links(),
            CpuKind::Pentium4,
            Shepherd::new(),
        );
        let r = rio.run();
        // The hijack succeeds (monitoring, not enforcement)...
        assert_eq!(r.exit_code, 66);
        // ...but shepherding caught it.
        assert_eq!(rio.client.violations.len(), 1);
        let v = rio.client.violations[0];
        assert_ne!(v.actual, v.expected);
        assert!(r.client_output.contains("VIOLATION"));
    }

    #[test]
    fn recursion_tracks_depth() {
        use rio_workloads::compile;
        let image = compile(
            "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             fn main() { return fib(12); }",
        )
        .unwrap();
        let native = run_native(&image, CpuKind::Pentium4);
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, Shepherd::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert!(rio.client.violations.is_empty());
        assert!(rio.client.max_depth >= 12, "depth {}", rio.client.max_depth);
        assert_eq!(rio.client.calls_seen, rio.client.rets_checked);
    }
}
