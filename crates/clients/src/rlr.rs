//! Redundant load removal (paper §4.1).
//!
//! "Because there are so few registers in IA-32, local variables are
//! frequently loaded from and stored back to the stack. If a variable's
//! value is already in a register, a subsequent load can be removed."
//!
//! The analysis is a forward scan over the linear trace maintaining a set of
//! `register == memory` equivalences:
//!
//! * a load `mov M -> R` with `(R, M)` already known is deleted;
//! * a load or store establishes `(R, M)`;
//! * writes kill equivalences whose register is overwritten or whose address
//!   registers change; stores kill equivalences whose memory may alias the
//!   written location (same-base displacement disambiguation, conservative
//!   otherwise).
//!
//! Removal is globally safe: when `(R, M)` holds, deleting the reload leaves
//! the machine in an identical state on every path, including trace exits.

use rio_core::{Client, Core};
use rio_ia32::{InstrId, InstrList, MemRef, OpSize, Opcode, Opnd, Reg};

/// Modeled cycles of client analysis per instruction scanned.
const ANALYSIS_COST_PER_INSTR: u64 = 14;

/// A known register/memory equivalence.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Pair {
    reg: Reg,
    mem: MemRef,
}

/// Whether two memory references may overlap.
///
/// Same base/index/scale with displacements at least an access apart cannot
/// alias. `%esp`-relative accesses (push/pop traffic) cannot alias
/// `%ebp`-relative frame slots under the standard stack discipline (`%esp`
/// stays below every live frame slot) — the assumption that makes removal
/// profitable in real stack-spill code. Anything else conservatively may
/// alias.
fn may_alias(a: &MemRef, b: &MemRef) -> bool {
    if a.base == b.base && a.index == b.index && a.scale == b.scale {
        let (lo, hi, lo_size) = if a.disp <= b.disp {
            (a.disp, b.disp, a.size)
        } else {
            (b.disp, a.disp, b.size)
        };
        return (hi - lo) < lo_size.bytes() as i32;
    }
    let is_frame =
        |x: &MemRef| matches!(x.base, Some(Reg::Esp) | Some(Reg::Ebp)) && x.index.is_none();
    let is_global = |x: &MemRef| x.base.is_none();
    // Stack discipline: push/pop traffic below %esp never overlaps live
    // %ebp frame slots.
    let stack_disjoint = |x: &MemRef, y: &MemRef| {
        x.base == Some(Reg::Esp)
            && x.index.is_none()
            && y.base == Some(Reg::Ebp)
            && y.index.is_none()
    };
    if stack_disjoint(a, b) || stack_disjoint(b, a) {
        return false;
    }
    // Data-segment accesses (absolute or table-indexed) never overlap the
    // stack frame in the simulated address-space layout.
    if (is_frame(a) && is_global(b)) || (is_frame(b) && is_global(a)) {
        return false;
    }
    true
}

/// The redundant-load-removal client.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rlr {
    /// Loads examined.
    pub loads_seen: u64,
    /// Loads removed.
    pub loads_removed: u64,
    /// Loads replaced by register-register copies (the value was live in a
    /// different register).
    pub loads_copied: u64,
}

impl Rlr {
    /// Create the client.
    pub fn new() -> Rlr {
        Rlr::default()
    }

    /// Run the optimization over one linear list; returns removals.
    pub fn transform(&mut self, core: &mut Core, il: &mut InstrList) -> u64 {
        let ids: Vec<InstrId> = il.ids().collect();
        core.charge(ANALYSIS_COST_PER_INSTR * ids.len() as u64);
        let mut pairs: Vec<Pair> = Vec::new();
        let mut removed = 0u64;

        for id in ids {
            let instr = il.get(id);
            let Some(op) = instr.opcode() else { continue };
            if instr.is_label() {
                continue;
            }

            // Register-register copies propagate facts: after `mov r1, r2`,
            // r1 holds everything r2 did.
            if op == Opcode::Mov {
                if let (Some(Opnd::Reg(src)), Some(Opnd::Reg(dst))) =
                    (instr.srcs().first(), instr.dsts().first())
                {
                    if src.size() == OpSize::S32 && dst.size() == OpSize::S32 {
                        let (src, dst) = (*src, *dst);
                        pairs.retain(|p| !p.reg.overlaps(dst) && !p.mem.uses_reg(dst));
                        let inherited: Vec<Pair> = pairs
                            .iter()
                            .filter(|p| p.reg == src && !p.mem.uses_reg(dst))
                            .map(|p| Pair {
                                reg: dst,
                                mem: p.mem,
                            })
                            .collect();
                        pairs.extend(inherited);
                        continue;
                    }
                }
            }

            // Classify plain register<->memory moves.
            let as_load = (op == Opcode::Mov)
                .then(|| match (instr.srcs().first(), instr.dsts().first()) {
                    (Some(Opnd::Mem(m)), Some(Opnd::Reg(r)))
                        if r.size() == OpSize::S32 && m.size == OpSize::S32 =>
                    {
                        Some((*r, *m))
                    }
                    _ => None,
                })
                .flatten();
            let as_store = (op == Opcode::Mov)
                .then(|| match (instr.srcs().first(), instr.dsts().first()) {
                    (Some(Opnd::Reg(r)), Some(Opnd::Mem(m)))
                        if r.size() == OpSize::S32 && m.size == OpSize::S32 =>
                    {
                        Some((*r, *m))
                    }
                    _ => None,
                })
                .flatten();

            if let Some((r, m)) = as_load {
                self.loads_seen += 1;
                if pairs.iter().any(|p| p.reg == r && p.mem == m) {
                    // The register already holds this memory value.
                    il.remove(id);
                    self.loads_removed += 1;
                    removed += 1;
                    continue;
                }
                if let Some(src) = pairs
                    .iter()
                    .find(|p| p.mem == m && !p.reg.overlaps(r))
                    .map(|p| p.reg)
                {
                    // The value is live in another register: a reg-reg copy
                    // is cheaper than the memory load ("if a variable's
                    // value is already in a register...").
                    let mut copy = rio_ia32::create::mov(Opnd::Reg(r), Opnd::Reg(src));
                    copy.set_app_pc(il.get(id).app_pc());
                    il.replace(id, copy);
                    self.loads_copied += 1;
                    pairs.retain(|p| !p.reg.overlaps(r) && !p.mem.uses_reg(r));
                    pairs.push(Pair { reg: r, mem: m });
                    continue;
                }
                // New fact (unless the address depends on the loaded reg).
                pairs.retain(|p| !p.reg.overlaps(r) && !p.mem.uses_reg(r));
                if !m.uses_reg(r) {
                    pairs.push(Pair { reg: r, mem: m });
                }
                continue;
            }

            if let Some((r, m)) = as_store {
                // The store may clobber other tracked locations.
                pairs.retain(|p| !may_alias(&p.mem, &m) || (p.reg == r && p.mem == m));
                if !pairs.iter().any(|p| p.reg == r && p.mem == m) && !m.uses_reg(r) {
                    pairs.push(Pair { reg: r, mem: m });
                }
                continue;
            }

            // Generic kill rules.
            let instr = il.get(id);
            for dst in instr.dsts() {
                match dst {
                    Opnd::Reg(r) => {
                        pairs.retain(|p| !p.reg.overlaps(*r) && !p.mem.uses_reg(*r));
                    }
                    Opnd::Mem(m) => {
                        pairs.retain(|p| !may_alias(&p.mem, m));
                    }
                    _ => {}
                }
            }
            // Calls (incl. clean calls) clobber memory arbitrarily.
            if op.is_call() {
                pairs.clear();
            }
        }
        removed
    }
}

impl Client for Rlr {
    fn name(&self) -> &'static str {
        "rlr"
    }

    fn trace(&mut self, core: &mut Core, _tag: u32, trace: &mut InstrList) {
        self.transform(core, trace);
    }

    fn on_exit(&mut self, core: &mut Core) {
        core.printf(format!(
            "rlr: removed {} and copied {} of {} loads\n",
            self.loads_removed, self.loads_copied, self.loads_seen
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_core::Options;
    use rio_ia32::{create, Target};
    use rio_sim::{CpuKind, Image};

    fn setup() -> (Rlr, Core) {
        let image = Image::from_code(vec![0xf4]);
        let core = Core::new(&image, Options::default(), CpuKind::Pentium4);
        (Rlr::new(), core)
    }

    fn local(disp: i32) -> MemRef {
        MemRef::base_disp(Reg::Ebp, disp, OpSize::S32)
    }

    #[test]
    fn removes_reload_after_load() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4)))); // redundant
        assert_eq!(c.transform(&mut core, &mut il), 1);
        assert_eq!(il.len(), 2);
    }

    #[test]
    fn removes_reload_after_store() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::Mem(local(-8)), Opnd::reg(Reg::Ecx)));
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::Mem(local(-8)))); // redundant
        assert_eq!(c.transform(&mut core, &mut il), 1);
    }

    #[test]
    fn register_overwrite_kills_fact() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0))); // kills
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 0);
    }

    #[test]
    fn aliasing_store_kills_fact_but_disjoint_does_not() {
        let (mut c, mut core) = setup();
        // Disjoint displacements on the same base: fact survives.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::mov(Opnd::Mem(local(-8)), Opnd::reg(Reg::Ebx)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 1);

        // Same location: fact dies.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::mov(Opnd::Mem(local(-4)), Opnd::reg(Reg::Ebx)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 0);

        // Different base register: conservatively dies.
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::base_disp(Reg::Esi, 0, OpSize::S32)),
            Opnd::reg(Reg::Ebx),
        ));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 0);
    }

    #[test]
    fn base_register_change_kills_fact() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::add(Opnd::reg(Reg::Ebp), Opnd::imm32(16))); // ebp changed
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 0);
    }

    #[test]
    fn load_through_own_register_establishes_nothing() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        let m = MemRef::base_disp(Reg::Eax, 0, OpSize::S32);
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(m))); // eax = *eax
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(m))); // NOT redundant
        assert_eq!(c.transform(&mut core, &mut il), 0);
        assert_eq!(il.len(), 2);
    }

    #[test]
    fn facts_survive_exit_ctis() {
        // Linear traces: side exits don't invalidate equivalences.
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::jcc(rio_ia32::Cc::Z, Target::Pc(0x9000)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 1);
    }

    #[test]
    fn push_does_not_kill_ebp_locals() {
        // push writes (%esp), which under the stack discipline cannot alias
        // a live %ebp frame slot — the reload stays removable.
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        il.push_back(create::push(Opnd::reg(Reg::Ebx)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        assert_eq!(c.transform(&mut core, &mut il), 1);
    }

    #[test]
    fn load_into_other_register_becomes_copy() {
        let (mut c, mut core) = setup();
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::Mem(local(-4))));
        let second = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-4))));
        c.transform(&mut core, &mut il);
        assert_eq!(c.loads_copied, 1);
        let i = il.get(second);
        assert_eq!(i.src(0).as_reg(), Some(Reg::Ecx)); // now a reg-reg mov
                                                       // And the new fact allows a further removal.
        let mut il2 = InstrList::new();
        il2.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::Mem(local(-8))));
        il2.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-8))));
        il2.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(local(-8))));
        let mut c2 = Rlr::new();
        c2.transform(&mut core, &mut il2);
        assert_eq!(c2.loads_copied, 1);
        assert_eq!(c2.loads_removed, 1);
    }

    #[test]
    fn end_to_end_correctness_with_redundant_loads() {
        use rio_core::Rio;
        use rio_ia32::encode::encode_list;
        // Loop with two loads of the same local per iteration.
        let mut il = InstrList::new();
        let slot = MemRef::absolute(Image::DATA_BASE, OpSize::S32);
        il.push_back(create::mov(Opnd::Mem(slot), Opnd::imm32(5)));
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(600)));
        let top = il.push_back(create::label());
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(slot)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(slot))); // redundant
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Eax)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(rio_ia32::Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        let image = Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes);

        let native = rio_sim::run_native(&image, CpuKind::Pentium4);
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, Rlr::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(r.exit_code, 6000);
        assert!(rio.client.loads_removed >= 1);
        // The optimized run does fewer loads than native in steady state
        // would suggest... at minimum it's architecturally identical.
    }
}
