//! Adaptive indirect branch dispatch (paper §4.3, Figure 4).
//!
//! The indirect-branch hashtable lookup "is the single greatest source of
//! overhead". This client value-profiles indirect branch targets on the
//! lookup path of each trace and, once enough samples accumulate,
//! **rewrites the trace from inside itself**: a chain of flag-free
//! compare-and-branch pairs for the hottest targets is inserted before the
//! profiling call, turning most lookups into direct (linkable!) exits —
//! "adaptively replacing the hashtable lookup with a series of compares and
//! direct branches".
//!
//! The profiling call is kept after the compares, so only residual misses
//! are sampled. "No profiling is done to determine if the inserted targets
//! remain hot; once a target is inserted, it is never removed."

use std::collections::HashMap;

use rio_core::{layout, Client, Core, Note};
use rio_ia32::{create, Instr, InstrId, InstrList, MemRef, OpSize, Opnd, Reg, Target};

/// Samples collected at a site before it is rewritten.
const DEFAULT_THRESHOLD: usize = 64;
/// Maximum compare-branch pairs inserted per site (bounded by `jecxz`'s
/// rel8 reach across the chain).
const MAX_TARGETS: usize = 4;
/// Modeled cycles for one trace rewrite (decode + insert + re-encode).
const REWRITE_COST: u64 = 4000;

/// Per-site profiling state.
#[derive(Debug)]
struct Site {
    /// Trace this site lives in.
    trace_tag: u32,
    /// The clean-call sentinel identifying the site's call instruction.
    sentinel: u32,
    /// Collected target samples since the last rewrite.
    samples: Vec<u32>,
    /// Whether the site has been rewritten (one rewrite per site).
    rewritten: bool,
    /// Whether a sideline rewrite has been queued.
    queued: bool,
}

/// The adaptive indirect-branch dispatch client.
#[derive(Debug, Default)]
pub struct IbDispatch {
    sites: Vec<Site>,
    /// Sampling threshold before rewriting.
    pub threshold: usize,
    /// Perform rewrites on the sideline optimizer (§3.4's planned
    /// "sideline optimization") instead of inside the profiling call:
    /// the rewrite is queued and executed at the next dispatch with its
    /// analysis time charged off the critical path.
    pub sideline: bool,
    /// Total samples observed.
    pub samples_taken: u64,
    /// Trace rewrites performed.
    pub rewrites: u64,
    /// Compare-branch pairs inserted.
    pub targets_inserted: u64,
}

impl IbDispatch {
    /// Create the client with the default sampling threshold.
    pub fn new() -> IbDispatch {
        IbDispatch {
            threshold: DEFAULT_THRESHOLD,
            ..IbDispatch::default()
        }
    }

    /// Create with a custom sampling threshold (for experiments).
    pub fn with_threshold(threshold: usize) -> IbDispatch {
        IbDispatch {
            threshold,
            ..IbDispatch::default()
        }
    }

    /// Create a sideline-rewriting variant with the default threshold.
    pub fn with_sideline() -> IbDispatch {
        IbDispatch {
            threshold: DEFAULT_THRESHOLD,
            sideline: true,
            ..IbDispatch::default()
        }
    }

    /// The hottest distinct targets among `samples`, most frequent first.
    fn hot_targets(samples: &[u32], max: usize) -> Vec<u32> {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for s in samples {
            *counts.entry(*s).or_default() += 1;
        }
        let mut by_count: Vec<(u32, u32)> = counts.into_iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_count.into_iter().take(max).map(|(t, _)| t).collect()
    }

    /// Rewrite the trace containing `site`: insert the dispatch chain.
    /// `on_sideline` charges the analysis to the sideline budget.
    fn rewrite(&mut self, core: &mut Core, site_idx: usize, on_sideline: bool) {
        let (tag, sentinel) = {
            let s = &self.sites[site_idx];
            (s.trace_tag, s.sentinel)
        };
        let Some(mut il) = core.decode_fragment(tag) else {
            return;
        };
        // Locate this site's profiling call and the ib-exit jmp after it.
        let Some(call_id) = il.ids().find(|id| {
            let i = il.get(*id);
            i.opcode() == Some(rio_ia32::Opcode::Call) && i.target() == Some(Target::Pc(sentinel))
        }) else {
            return;
        };
        let mut exit_search = il.next_id(call_id);
        let exit_id = loop {
            match exit_search {
                Some(id) if matches!(Note::parse(il.get(id).note), Some(Note::IbExit(_))) => {
                    break id;
                }
                Some(id) => exit_search = il.next_id(id),
                None => return,
            }
        };

        let targets = Self::hot_targets(&self.sites[site_idx].samples, MAX_TARGETS);
        if targets.is_empty() {
            return;
        }

        // Before the call: the compare chain (flag-free, as in the engine's
        // own inlined checks). After the exit jmp: one match block per
        // target restoring the app %ecx and exiting directly.
        let ecx_slot = Opnd::Mem(MemRef::absolute(layout::ECX_SLOT, OpSize::S32));
        let mut match_blocks: Vec<(InstrId, u32)> = Vec::new();
        let mut insert_after = exit_id;
        for t in &targets {
            let lbl = il.insert_after(insert_after, Instr::label());
            let restore = il.insert_after(lbl, create::mov(Opnd::reg(Reg::Ecx), ecx_slot));
            // Mark the restore so re-emission knows the %ecx spill region
            // ends here (keeps the fragment's fault-translation rows and
            // the cache verifier's spill-balance check exact).
            il.get_mut(restore).note = Note::IbCheckEnd.pack();
            let exit = il.insert_after(restore, create::jmp(Target::Pc(*t)));
            insert_after = exit;
            match_blocks.push((lbl, *t));
        }
        for (lbl, t) in &match_blocks {
            il.insert_before(
                call_id,
                create::lea(
                    Reg::Ecx,
                    MemRef::base_disp(Reg::Ecx, -(*t as i32), OpSize::S32),
                ),
            );
            let mut jz = create::jecxz(Target::Pc(0));
            jz.set_target(Target::Instr(*lbl));
            il.insert_before(call_id, jz);
            il.insert_before(
                call_id,
                create::lea(
                    Reg::Ecx,
                    MemRef::base_disp(Reg::Ecx, *t as i32, OpSize::S32),
                ),
            );
        }

        if on_sideline {
            core.charge_sideline(REWRITE_COST);
        } else {
            core.charge(REWRITE_COST);
        }
        if core.replace_fragment(tag, il) {
            self.rewrites += 1;
            self.targets_inserted += targets.len() as u64;
            let site = &mut self.sites[site_idx];
            site.rewritten = true;
            site.samples.clear();
        }
    }
}

impl Client for IbDispatch {
    fn name(&self) -> &'static str {
        "ibdispatch"
    }

    fn trace(&mut self, core: &mut Core, tag: u32, trace: &mut InstrList) {
        // Instrument every indirect-branch lookup path in the trace with a
        // profiling call (Figure 4, upper half).
        let exits: Vec<InstrId> = trace
            .ids()
            .filter(|id| matches!(Note::parse(trace.get(*id).note), Some(Note::IbExit(_))))
            .collect();
        for exit_id in exits {
            let site_id = self.sites.len() as u64;
            let call = core.clean_call_instr(site_id);
            let sentinel = match call.target() {
                Some(Target::Pc(p)) => p,
                _ => unreachable!("clean call instr targets its sentinel"),
            };
            trace.insert_before(exit_id, call);
            self.sites.push(Site {
                trace_tag: tag,
                sentinel,
                samples: Vec::new(),
                rewritten: false,
                queued: false,
            });
        }
    }

    fn clean_call(&mut self, core: &mut Core, arg: u64) {
        let idx = arg as usize;
        // The runtime target is in %ecx at the profiling point.
        let target = core.machine.cpu.reg(Reg::Ecx);
        self.samples_taken += 1;
        let (ready, rewritten, queued, trace_tag) = {
            let site = &mut self.sites[idx];
            site.samples.push(target);
            (
                site.samples.len() >= self.threshold,
                site.rewritten,
                site.queued,
                site.trace_tag,
            )
        };
        if ready && !rewritten {
            if self.sideline {
                if !queued {
                    self.sites[idx].queued = true;
                    core.request_sideline(trace_tag, idx as u64);
                }
            } else {
                self.rewrite(core, idx, false);
            }
        }
    }

    fn sideline_optimize(&mut self, core: &mut Core, _tag: u32, arg: u64) {
        let idx = arg as usize;
        if !self.sites[idx].rewritten {
            self.rewrite(core, idx, true);
        }
        self.sites[idx].queued = false;
    }

    fn on_exit(&mut self, core: &mut Core) {
        core.printf(format!(
            "ibdispatch: {} sites, {} samples, {} rewrites, {} targets inserted\n",
            self.sites.len(),
            self.samples_taken,
            self.rewrites,
            self.targets_inserted
        ));
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_ia32::encode::encode_list;
    use rio_ia32::Cc;
    use rio_sim::{run_native, CpuKind, Image};

    #[test]
    fn hot_targets_orders_by_frequency() {
        let samples = [5, 7, 7, 7, 5, 9];
        assert_eq!(IbDispatch::hot_targets(&samples, 2), vec![7, 5]);
        assert_eq!(IbDispatch::hot_targets(&samples, 10), vec![7, 5, 9]);
        assert!(IbDispatch::hot_targets(&[], 4).is_empty());
    }

    /// A call-heavy program where the callee returns to two different call
    /// sites — the return's inlined target check misses half the time,
    /// which is exactly the pattern §4.3 targets.
    pub(crate) fn two_site_call_program(iters: i32) -> Image {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        let top = il.push_back(create::label());
        let c1 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(1)));
        let c2 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        let f = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(2)));
        il.push_back(create::ret());
        il.get_mut(c1).set_target(Target::Instr(f));
        il.get_mut(c2).set_target(Target::Instr(f));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn profiles_rewrites_and_preserves_semantics() {
        let img = two_site_call_program(3_000);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            IbDispatch::with_threshold(32),
        );
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code, "rewrite broke execution");
        assert!(rio.client.samples_taken > 0, "no profiling happened");
        assert!(rio.client.rewrites >= 1, "no rewrite: {:?}", rio.client);
        assert!(r.stats.replacements >= 1);
    }

    #[test]
    fn dispatch_reduces_hashtable_lookups() {
        let img = two_site_call_program(10_000);
        let mut base = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            rio_core::NullClient,
        );
        let a = base.run();
        let mut opt = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            IbDispatch::with_threshold(32),
        );
        let b = opt.run();
        assert_eq!(a.exit_code, b.exit_code);
        assert!(
            b.stats.ib_lookups < a.stats.ib_lookups,
            "dispatch chains should absorb lookups: {} vs {}",
            b.stats.ib_lookups,
            a.stats.ib_lookups
        );
    }
}

#[cfg(test)]
mod sideline_tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_sim::{run_native, CpuKind};

    #[test]
    fn sideline_rewrites_preserve_semantics_and_move_cost_off_path() {
        let img = tests::two_site_call_program(5_000);
        let native = run_native(&img, CpuKind::Pentium4);

        let mut inline = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            IbDispatch::with_threshold(32),
        );
        let a = inline.run();
        assert_eq!(a.exit_code, native.exit_code);
        assert_eq!(a.sideline_cycles, 0);

        let mut side = IbDispatch::with_sideline();
        side.threshold = 32;
        let mut sideline = Rio::new(&img, Options::full(), CpuKind::Pentium4, side);
        let b = sideline.run();
        assert_eq!(
            b.exit_code, native.exit_code,
            "sideline rewrite broke execution"
        );
        assert!(sideline.client.rewrites >= 1, "{:?}", sideline.client);
        assert!(
            b.sideline_cycles > 0,
            "analysis should land on the sideline"
        );
    }
}
