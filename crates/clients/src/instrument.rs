//! Instrumentation clients — the interface "is not restricted to
//! optimization and can be used for instrumentation, profiling, dynamic
//! translation, etc." (abstract).
//!
//! * [`InsCount`] counts executed application instructions with **inline**
//!   counter updates (flags preserved around the inserted `add`).
//! * [`BbProfile`] counts per-block executions with clean calls and reports
//!   the hottest blocks.
//! * [`OpStats`] gathers a static opcode histogram of all code the
//!   application ever executed.

use std::collections::HashMap;

use rio_core::{Client, Core};
use rio_ia32::{create, InstrList, MemRef, OpSize, Opcode, Opnd};
use rio_sim::Image;

/// Address of the inline instruction counter in RIO data space.
const COUNTER_ADDR: u32 = Image::RIO_DATA_BASE + 0x100;

/// Counts executed application instructions by inserting
/// `pushfd; add $n, counter; popfd` at the top of every basic block.
///
/// Eflags must be preserved around the inserted `add` — precisely the
/// concern Level 2 of the instruction representation exists for.
#[derive(Clone, Copy, Debug, Default)]
pub struct InsCount {
    /// Final count (valid after the run).
    pub executed: u64,
}

impl InsCount {
    /// Create the client.
    pub fn new() -> InsCount {
        InsCount::default()
    }
}

fn counter_opnd() -> Opnd {
    Opnd::Mem(MemRef::absolute(COUNTER_ADDR, OpSize::S32))
}

/// Insert `pushfd; add $n, counter; popfd` before `at`.
fn insert_count(il: &mut InstrList, at: rio_ia32::InstrId, n: u32) {
    if n == 0 {
        return;
    }
    il.insert_before(at, create::pushfd());
    il.insert_before(at, create::add(counter_opnd(), Opnd::imm32(n as i32)));
    il.insert_before(at, create::popfd());
}

impl Client for InsCount {
    fn name(&self) -> &'static str {
        "inscount"
    }

    fn basic_block(&mut self, _core: &mut Core, _tag: u32, bb: &mut InstrList) {
        // All instructions of a basic block execute whenever it is entered
        // (the block ends at its first CTI), so one counter update at the
        // top is exact. Bundle-aware for the Level 0 fast path.
        let n: u32 = bb.iter().map(|i| i.bundle_count().max(1)).sum();
        let first = bb.first_id().expect("nonempty block");
        insert_count(bb, first, n);
    }

    fn trace(&mut self, _core: &mut Core, _tag: u32, trace: &mut InstrList) {
        // Traces supersede instrumented blocks, and side exits mean not all
        // of a trace executes: count per segment. Every application
        // instruction (identified by a nonzero app pc after mangling) in a
        // segment executes iff the segment is reached; each segment ends at
        // an exit CTI, whose own count is attributed to its segment.
        let ids: Vec<rio_ia32::InstrId> = trace.ids().collect();
        let mut segment = 0u32;
        let mut segment_start = None;
        for id in ids {
            let instr = trace.get(id);
            if segment_start.is_none() {
                segment_start = Some(id);
            }
            if instr.app_pc() != 0 {
                segment += instr.bundle_count().max(1);
            }
            let ends_segment = instr.is_exit_cti()
                || matches!(
                    instr.opcode(),
                    Some(rio_ia32::Opcode::Int | rio_ia32::Opcode::Hlt)
                );
            if ends_segment {
                insert_count(trace, segment_start.expect("segment started"), segment);
                segment = 0;
                segment_start = None;
            }
        }
        if let Some(start) = segment_start {
            insert_count(trace, start, segment);
        }
    }

    fn on_exit(&mut self, core: &mut Core) {
        self.executed = core.machine.mem.read_u32(COUNTER_ADDR) as u64;
        core.printf(format!(
            "inscount: {} instructions executed\n",
            self.executed
        ));
    }
}

/// Counts block executions via clean calls; reports the hottest tags.
#[derive(Clone, Debug, Default)]
pub struct BbProfile {
    counts: HashMap<u32, u64>,
    /// Number of hottest blocks to report.
    pub top: usize,
}

impl BbProfile {
    /// Create the client reporting the top `top` blocks.
    pub fn new(top: usize) -> BbProfile {
        BbProfile {
            counts: HashMap::new(),
            top,
        }
    }

    /// Execution count recorded for `tag`.
    pub fn count(&self, tag: u32) -> u64 {
        self.counts.get(&tag).copied().unwrap_or(0)
    }

    /// `(tag, count)` pairs, hottest first.
    pub fn hottest(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.counts.iter().map(|(t, c)| (*t, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl Client for BbProfile {
    fn name(&self) -> &'static str {
        "bbprofile"
    }

    fn basic_block(&mut self, core: &mut Core, tag: u32, bb: &mut InstrList) {
        let call = core.clean_call_instr(tag as u64);
        let first = bb.first_id().expect("nonempty block");
        bb.insert_before(first, call);
    }

    fn clean_call(&mut self, _core: &mut Core, arg: u64) {
        *self.counts.entry(arg as u32).or_default() += 1;
    }

    fn on_exit(&mut self, core: &mut Core) {
        core.printf("bbprofile: hottest blocks\n");
        for (tag, count) in self.hottest().into_iter().take(self.top) {
            core.printf(format!("  {tag:#010x}: {count}\n"));
        }
    }
}

/// Static opcode histogram over every block the application executed.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    counts: HashMap<&'static str, u64>,
}

impl OpStats {
    /// Create the client.
    pub fn new() -> OpStats {
        OpStats::default()
    }

    /// Occurrences of the given opcode mnemonic in decoded code.
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }
}

/// Interned mnemonic for histogram keys.
fn mnemonic_key(op: Opcode) -> &'static str {
    match op {
        Opcode::Mov => "mov",
        Opcode::Lea => "lea",
        Opcode::Add => "add",
        Opcode::Sub => "sub",
        Opcode::Cmp => "cmp",
        Opcode::Inc => "inc",
        Opcode::Dec => "dec",
        Opcode::Imul => "imul",
        Opcode::Idiv => "idiv",
        Opcode::Push => "push",
        Opcode::Pop => "pop",
        Opcode::Call => "call",
        Opcode::CallInd => "call*",
        Opcode::Ret => "ret",
        Opcode::Jmp => "jmp",
        Opcode::JmpInd => "jmp*",
        Opcode::Jcc(_) => "jcc",
        Opcode::Test => "test",
        Opcode::And => "and",
        Opcode::Or => "or",
        Opcode::Xor => "xor",
        Opcode::Shl => "shl",
        Opcode::Shr => "shr",
        Opcode::Sar => "sar",
        Opcode::Movzx => "movzx",
        Opcode::Movsx => "movsx",
        Opcode::Int => "int",
        Opcode::Hlt => "hlt",
        _ => "other",
    }
}

impl Client for OpStats {
    fn name(&self) -> &'static str {
        "opstats"
    }

    fn basic_block(&mut self, _core: &mut Core, _tag: u32, bb: &mut InstrList) {
        for instr in bb.iter() {
            if let Some(op) = instr.opcode() {
                *self.counts.entry(mnemonic_key(op)).or_default() += 1;
            }
        }
    }

    fn on_exit(&mut self, core: &mut Core) {
        let mut rows: Vec<(&str, u64)> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        core.printf("opstats: static opcode histogram\n");
        for (m, c) in rows {
            core.printf(format!("  {m:>6}: {c}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_ia32::encode::encode_list;
    use rio_ia32::{Cc, Reg, Target};
    use rio_sim::{run_native, CpuKind};

    fn loop_image(n: i32) -> Image {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(n)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Esi)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn inscount_is_exact_without_traces() {
        let img = loop_image(200);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(
            &img,
            Options::with_indirect_links(),
            CpuKind::Pentium4,
            InsCount::new(),
        );
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(
            rio.client.executed, native.counters.instructions,
            "block-level inline counting must be exact"
        );
    }

    #[test]
    fn inscount_is_nearly_exact_with_traces() {
        // Traces legitimately eliminate inter-block jmps, so the in-cache
        // count may slightly undercount native execution.
        let img = loop_image(200);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, InsCount::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        let n = native.counters.instructions;
        assert!(
            rio.client.executed <= n && rio.client.executed * 100 >= n * 95,
            "trace counting should be within 5%: {} vs {n}",
            rio.client.executed
        );
    }

    #[test]
    fn inscount_preserves_flags() {
        // The loop's jnz depends on dec's ZF; if the inserted add clobbered
        // flags the loop would run forever or exit early.
        let img = loop_image(50);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, InsCount::new());
        assert_eq!(rio.run().exit_code, native.exit_code);
    }

    #[test]
    fn bbprofile_counts_loop_iterations() {
        let img = loop_image(123);
        let mut rio = Rio::new(
            &img,
            // Block-level profiling: disable traces so blocks keep running.
            Options::with_indirect_links(),
            CpuKind::Pentium4,
            BbProfile::new(3),
        );
        let r = rio.run();
        let hottest = rio.client.hottest();
        // The first iteration runs inside the overlapping entry block (the
        // block built at the program entry extends through the loop's first
        // CTI), so the loop-top block itself executes n-1 times.
        assert_eq!(hottest[0].1, 122, "loop-top block runs n-1 times");
        assert!(r.client_output.contains("hottest blocks"));
    }

    #[test]
    fn opstats_sees_application_opcodes() {
        let img = loop_image(10);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, OpStats::new());
        let r = rio.run();
        assert!(rio.client.count("add") >= 1);
        assert!(rio.client.count("jcc") >= 1);
        assert!(rio.client.count("int") >= 1);
        assert!(r.client_output.contains("opcode histogram"));
    }
}
