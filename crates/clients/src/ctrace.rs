//! Custom call-inlining traces (paper §4.4).
//!
//! "The standard DynamoRIO traces focus on loops and often end up with a hot
//! procedure call's return in a different trace from the call." This client
//! uses the custom-trace interface to inline whole procedure calls:
//!
//! * every direct call target is marked a **trace head**
//!   (`dr_mark_trace_head`);
//! * the `end_trace` hook ends a trace one block after a return is crossed
//!   ("once a return is reached, the trace is ended after the next basic
//!   block"), or at a maximum size "to prevent too much unrolling of loops
//!   inside calls";
//! * in the trace hook, inlined return checks are **removed entirely**,
//!   assuming the calling convention holds (§4.4's final paragraph) — the
//!   return collapses to a single `lea` popping the return address.

use std::collections::HashMap;

use rio_core::{elide_ret_check, find_ib_checks, Client, Core, EndTraceDecision, IndKind};
use rio_ia32::{InstrList, Opcode, Target};

/// Default cap on blocks per custom trace.
const DEFAULT_MAX_BBS: usize = 12;
/// Modeled cycles per elision (pattern match + rewrite).
const ELIDE_COST: u64 = 120;

/// How a basic block ends, as observed by the `basic_block` hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockKind {
    /// Ends in a call (direct or indirect).
    Call,
    /// Ends in a return.
    Ret,
    /// Anything else.
    Other,
}

/// Per-recording state for the `end_trace` policy.
#[derive(Clone, Copy, Debug)]
struct RecState {
    trace_tag: u32,
    /// Tag of the block most recently added to the trace.
    last: u32,
    /// Inlined-call nesting depth.
    depth: i32,
    /// A return at depth 0 was inlined; end after the next block.
    ret_pending: bool,
}

/// The custom-traces client.
#[derive(Clone, Debug)]
pub struct CTrace {
    /// Maximum blocks stitched into one custom trace.
    pub max_bbs: usize,
    /// Whether to elide inlined return checks (the calling-convention
    /// assumption). On by default, as in the paper.
    pub elide_returns: bool,
    /// Terminator kind per block tag, gathered in the `basic_block` hook —
    /// the client-side bookkeeping that drives `end_trace`.
    block_kind: HashMap<u32, BlockKind>,
    rec: Option<RecState>,
    /// Call-site blocks marked as trace heads.
    pub calls_marked: u64,
    /// Return checks removed.
    pub rets_elided: u64,
}

impl Default for CTrace {
    fn default() -> CTrace {
        CTrace {
            max_bbs: DEFAULT_MAX_BBS,
            elide_returns: true,
            block_kind: HashMap::new(),
            rec: None,
            calls_marked: 0,
            rets_elided: 0,
        }
    }
}

impl CTrace {
    /// Create with default parameters.
    pub fn new() -> CTrace {
        CTrace::default()
    }

    /// Create with a custom trace-size cap (for the parameter-sweep bench).
    pub fn with_max_bbs(max_bbs: usize) -> CTrace {
        CTrace {
            max_bbs,
            ..CTrace::default()
        }
    }
}

impl Client for CTrace {
    fn name(&self) -> &'static str {
        "ctrace"
    }

    fn basic_block(&mut self, core: &mut Core, tag: u32, bb: &mut InstrList) {
        // Classify the terminator for the end_trace policy, and mark blocks
        // that end in a direct call as trace heads, so traces begin at the
        // call site. Starting at the call site (not the callee) is what
        // makes the inlined return target "nearly guaranteed" to match —
        // and what makes return elision sound: the matching `call` (the
        // pushed return address) is inside the same trace.
        let Some(last) = bb.last_id() else { return };
        let last = bb.get(last);
        let kind = match last.opcode() {
            Some(Opcode::Call | Opcode::CallInd) => BlockKind::Call,
            Some(Opcode::Ret) => BlockKind::Ret,
            _ => BlockKind::Other,
        };
        self.block_kind.insert(tag, kind);
        if last.opcode() == Some(Opcode::Call) && matches!(last.target(), Some(Target::Pc(_))) {
            if !core.is_trace_head(tag) {
                self.calls_marked += 1;
            }
            core.mark_trace_head(tag);
        }
    }

    fn end_trace(&mut self, core: &mut Core, trace_tag: u32, next_tag: u32) -> EndTraceDecision {
        // (Re)initialize per-recording state.
        let mut rec = match self.rec {
            Some(r) if r.trace_tag == trace_tag => r,
            _ => RecState {
                trace_tag,
                last: trace_tag,
                depth: 0,
                ret_pending: false,
            },
        };
        if core.recording_block_count() >= self.max_bbs {
            self.rec = None;
            return EndTraceDecision::End;
        }
        if rec.ret_pending {
            // The block after the return has been inlined; stop here.
            self.rec = None;
            return EndTraceDecision::End;
        }
        let kind = self
            .block_kind
            .get(&rec.last)
            .copied()
            .unwrap_or(BlockKind::Other);
        let decision = match kind {
            BlockKind::Call => {
                rec.depth += 1;
                EndTraceDecision::Continue
            }
            BlockKind::Ret => {
                rec.depth -= 1;
                if rec.depth <= 0 {
                    // Returned out of the inlined call: one more block.
                    rec.ret_pending = true;
                }
                EndTraceDecision::Continue
            }
            // Outside any inlined call, behave like standard traces so
            // plain loop code is unaffected.
            BlockKind::Other if rec.depth > 0 => EndTraceDecision::Continue,
            BlockKind::Other => EndTraceDecision::Default,
        };
        rec.last = next_tag;
        self.rec = Some(rec);
        decision
    }

    fn trace(&mut self, core: &mut Core, _tag: u32, trace: &mut InstrList) {
        self.rec = None;
        if !self.elide_returns {
            return;
        }
        // A return check may be elided only when the matching call is inside
        // the trace: walk the trace maintaining the stack of return
        // addresses pushed by inlined calls (`push $pc` from mangled call
        // instructions); a Ret check whose expected target equals the
        // top-of-stack is provably redundant under the calling convention.
        let checks = find_ib_checks(trace);
        let mut pushed: Vec<u32> = Vec::new();
        let ids: Vec<_> = trace.ids().collect();
        let mut check_iter = checks.iter().peekable();
        let mut to_elide = Vec::new();
        for id in ids {
            if let Some(check) = check_iter.peek() {
                if check.begin == id {
                    if check.kind == IndKind::Ret && pushed.last() == Some(&check.expected) {
                        pushed.pop();
                        to_elide.push(**check);
                    } else if check.kind == IndKind::Ret {
                        // Unmatched return: consume a frame if any.
                        pushed.pop();
                    }
                    check_iter.next();
                    continue;
                }
            }
            let instr = trace.get(id);
            // Inlined calls appear as `push $return_pc` with an app pc.
            if instr.opcode() == Some(Opcode::Push) && instr.app_pc() != 0 {
                if let Some(rio_ia32::Opnd::Pc(ret)) = instr.srcs().first() {
                    pushed.push(*ret);
                }
            }
        }
        for check in to_elide {
            elide_ret_check(trace, &check);
            core.charge(ELIDE_COST);
            self.rets_elided += 1;
        }
    }

    fn on_exit(&mut self, core: &mut Core) {
        core.printf(format!(
            "ctrace: {} call targets marked, {} returns elided\n",
            self.calls_marked, self.rets_elided
        ));
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rio_core::{NullClient, Options, Rio};
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Cc, Opnd, Reg};
    use rio_sim::{run_native, CpuKind, Image};

    /// A loop calling a small function from two sites (returns miss the
    /// standard inlined target half the time).
    pub(crate) fn call_program(iters: i32) -> Image {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        let top = il.push_back(create::label());
        let c1 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(1)));
        let c2 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        let f = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(2)));
        il.push_back(create::ret());
        il.get_mut(c1).set_target(Target::Instr(f));
        il.get_mut(c2).set_target(Target::Instr(f));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn marks_call_targets_and_elides_returns() {
        let img = call_program(2_000);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, CTrace::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code, "elision broke execution");
        assert!(rio.client.calls_marked >= 1);
        assert!(rio.client.rets_elided >= 1, "{:?}", rio.client);
        assert!(r.stats.traces_built >= 1);
    }

    #[test]
    fn elision_removes_return_overhead() {
        let img = call_program(20_000);
        let mut base = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
        let a = base.run();
        let mut opt = Rio::new(&img, Options::full(), CpuKind::Pentium4, CTrace::new());
        let b = opt.run();
        assert_eq!(a.exit_code, b.exit_code);
        assert!(
            b.stats.ib_lookups < a.stats.ib_lookups,
            "inlined+elided returns should cut lookups: {} vs {}",
            b.stats.ib_lookups,
            a.stats.ib_lookups
        );
    }

    #[test]
    fn respects_max_trace_size() {
        let img = call_program(2_000);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            CTrace::with_max_bbs(2),
        );
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert!(r.stats.traces_built >= 1);
    }

    #[test]
    fn disabled_elision_still_correct() {
        let img = call_program(1_000);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut client = CTrace::new();
        client.elide_returns = false;
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, client);
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(rio.client.rets_elided, 0);
    }
}

#[cfg(test)]
mod mispredict_tests {
    use super::*;
    use rio_core::{NullClient, Options, Rio};
    use rio_sim::CpuKind;

    #[test]
    fn custom_traces_recover_return_prediction() {
        // The §4.4 payoff: call-site-anchored traces inline the matching
        // return, eliminating the translated-return mispredictions that
        // standard traces leave behind.
        let img = tests::call_program(5_000);
        let mut standard = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
        let a = standard.run();
        let mut custom = Rio::new(&img, Options::full(), CpuKind::Pentium4, CTrace::new());
        let b = custom.run();
        assert_eq!(a.exit_code, b.exit_code);
        assert!(
            b.counters.ind_mispredicts * 2 < a.counters.ind_mispredicts,
            "custom traces should absorb return mispredictions: {} vs {}",
            b.counters.ind_mispredicts,
            a.counters.ind_mispredicts
        );
    }
}
