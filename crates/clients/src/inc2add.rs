//! Strength reduction: `inc` → `add 1` / `dec` → `sub 1` (paper §4.2,
//! Figure 3).
//!
//! "On the Pentium 4 the `inc` instruction is slower than `add 1` ... The
//! opposite is true on the Pentium 3." The client checks the processor
//! family at initialization and disables itself on anything but the
//! Pentium 4 model — "a perfect example of an architecture-specific
//! optimization that is best performed dynamically".
//!
//! The analysis is a direct port of Figure 3: the replacement is legal only
//! if the carry flag (`CF`) — which `add` writes but `inc` does not — is
//! dead: some later instruction in the linear stream writes `CF` before any
//! instruction reads it, without crossing a fragment exit.

use rio_core::{Client, Core};
use rio_ia32::{create, Eflags, InstrId, InstrList, Opcode, Opnd};
use rio_sim::CpuKind;

/// Modeled cycles of client work per instruction examined.
const ANALYSIS_COST_PER_INSTR: u64 = 6;

/// The strength-reduction client.
#[derive(Clone, Copy, Debug, Default)]
pub struct Inc2Add {
    enabled: bool,
    /// `inc`/`dec` instructions examined.
    pub num_examined: u64,
    /// Instructions converted.
    pub num_converted: u64,
}

impl Inc2Add {
    /// Create the client (enabled state decided at `init`).
    pub fn new() -> Inc2Add {
        Inc2Add::default()
    }

    /// Whether the conversion of the `inc`/`dec` at `id` is legal: CF must
    /// be written before it is read, without reaching a fragment exit
    /// (Figure 3's `inc2add` helper).
    fn convertible(il: &InstrList, id: InstrId) -> bool {
        let mut cur = Some(id);
        while let Some(i) = cur {
            let instr = il.get(i);
            if i != id {
                let eflags = instr.eflags();
                // "add writes CF, inc does not, check ok!"
                if eflags.read.contains(Eflags::CF) {
                    return false;
                }
                // "if writes but doesn't read, we can replace"
                if eflags.written.contains(Eflags::CF) {
                    return true;
                }
                // "simplification: stop at first exit"
                if instr.is_exit_cti() {
                    return false;
                }
            }
            cur = il.next_id(i);
        }
        false
    }

    /// Apply the transformation to one list; returns conversions made.
    pub fn transform(&mut self, core: &mut Core, il: &mut InstrList) -> u64 {
        if !self.enabled {
            return 0;
        }
        let mut converted = 0;
        let ids: Vec<InstrId> = il.ids().collect();
        core.charge(ANALYSIS_COST_PER_INSTR * ids.len() as u64);
        for id in ids {
            let instr = il.get(id);
            let opcode = instr.opcode();
            if !matches!(opcode, Some(Opcode::Inc | Opcode::Dec)) {
                continue;
            }
            self.num_examined += 1;
            if !Self::convertible(il, id) {
                continue;
            }
            let dst = *il.get(id).dst(0);
            let app_pc = il.get(id).app_pc();
            let prefixes = il.get(id).prefixes();
            let mut replacement = if opcode == Some(Opcode::Inc) {
                create::add(dst, Opnd::imm8(1))
            } else {
                create::sub(dst, Opnd::imm8(1))
            };
            replacement.set_prefixes(prefixes);
            replacement.set_app_pc(app_pc);
            il.replace(id, replacement);
            self.num_converted += 1;
            converted += 1;
        }
        converted
    }
}

impl Client for Inc2Add {
    fn name(&self) -> &'static str {
        "inc2add"
    }

    fn init(&mut self, core: &mut Core) {
        self.enabled = core.proc_kind() == CpuKind::Pentium4;
        self.num_examined = 0;
        self.num_converted = 0;
    }

    fn on_exit(&mut self, core: &mut Core) {
        if self.enabled {
            core.printf(format!(
                "converted {} out of {}\n",
                self.num_converted, self.num_examined
            ));
        } else {
            core.printf("kept original inc/dec\n");
        }
    }

    fn trace(&mut self, core: &mut Core, _tag: u32, trace: &mut InstrList) {
        self.transform(core, trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_ia32::{Reg, Target};
    use rio_sim::Image;

    fn client(kind: CpuKind) -> (Inc2Add, Core) {
        let image = Image::from_code(vec![0xf4]);
        let mut core = Core::new(&image, Options::default(), kind);
        let mut c = Inc2Add::new();
        c.init(&mut core);
        (c, core)
    }

    #[test]
    fn converts_when_cf_is_clobbered_later() {
        let (mut c, mut core) = client(CpuKind::Pentium4);
        let mut il = InstrList::new();
        let inc = il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::imm32(1))); // writes CF
        il.push_back(create::jmp(Target::Pc(0x1000)));
        assert_eq!(c.transform(&mut core, &mut il), 1);
        assert_eq!(il.get(inc).opcode(), Some(Opcode::Add));
        assert_eq!(il.get(inc).src(0).as_imm(), Some(1));
    }

    #[test]
    fn dec_becomes_sub() {
        let (mut c, mut core) = client(CpuKind::Pentium4);
        let mut il = InstrList::new();
        let dec = il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Ebx)));
        assert_eq!(c.transform(&mut core, &mut il), 1);
        assert_eq!(il.get(dec).opcode(), Some(Opcode::Sub));
    }

    #[test]
    fn refuses_when_cf_is_read() {
        let (mut c, mut core) = client(CpuKind::Pentium4);
        let mut il = InstrList::new();
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::adc(Opnd::reg(Reg::Ebx), Opnd::imm32(0))); // reads CF!
        assert_eq!(c.transform(&mut core, &mut il), 0);
        assert_eq!(c.num_examined, 1);
    }

    #[test]
    fn refuses_when_exit_reached_first() {
        let (mut c, mut core) = client(CpuKind::Pentium4);
        let mut il = InstrList::new();
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::jmp(Target::Pc(0x1000))); // exit before CF write
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::imm32(1)));
        assert_eq!(c.transform(&mut core, &mut il), 0);
    }

    #[test]
    fn disabled_on_pentium3() {
        let (mut c, mut core) = client(CpuKind::Pentium3);
        let mut il = InstrList::new();
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::reg(Reg::Ebx)));
        assert_eq!(c.transform(&mut core, &mut il), 0);
        assert_eq!(c.num_examined, 0); // never even examined
        c.on_exit(&mut core);
        assert!(core.client_output().contains("kept original"));
    }

    #[test]
    fn jcc_reading_only_zf_does_not_block() {
        // jnz reads ZF, not CF; the scan continues past it... but jnz is an
        // exit CTI, which stops the scan conservatively.
        let (mut c, mut core) = client(CpuKind::Pentium4);
        let mut il = InstrList::new();
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::jcc(rio_ia32::Cc::Nz, Target::Pc(0x1000)));
        il.push_back(create::add(Opnd::reg(Reg::Ebx), Opnd::imm32(1)));
        assert_eq!(c.transform(&mut core, &mut il), 0);
    }

    #[test]
    fn end_to_end_preserves_results_and_converts() {
        // A loop whose body has a convertible inc (CF clobbered by the
        // following add before the flags-reading jnz... actually dec writes
        // flags: inc eax; add edi, 2; dec esi; jnz — inc's CF-dead proof is
        // the add.
        use rio_ia32::encode::encode_list;
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(400)));
        let top = il.push_back(create::label());
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(2)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(rio_ia32::Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        let image = Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes);

        let native = rio_sim::run_native(&image, CpuKind::Pentium4);
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, Inc2Add::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(r.exit_code, 400);
        assert!(rio.client.num_converted >= 1, "{:?}", rio.client);
        assert!(r.client_output.starts_with("converted"));
    }
}
