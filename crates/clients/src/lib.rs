//! # rio-clients — sample RIO clients
//!
//! The four optimizations of the paper's §4, built on the
//! [`rio_core`] client interface, plus instrumentation clients
//! demonstrating non-optimization uses:
//!
//! | Client | Paper section | What it does |
//! |---|---|---|
//! | [`Rlr`] | §4.1 | removes redundant loads within traces |
//! | [`Inc2Add`] | §4.2, Fig. 3 | `inc`→`add 1` strength reduction on the Pentium 4 |
//! | [`IbDispatch`] | §4.3, Fig. 4 | adaptive indirect-branch dispatch with self-rewriting traces |
//! | [`CTrace`] | §4.4 | custom call-inlining traces with return elision |
//! | [`Combined`] | §5, Fig. 5 last bar | all four at once |
//! | [`InsCount`], [`BbProfile`], [`OpStats`] | abstract | instrumentation / profiling |
//! | [`Shepherd`] | conclusion / ref \[23\] | program shepherding: shadow-stack return-address checking |
//!
//! ## Example
//!
//! ```no_run
//! use rio_clients::Inc2Add;
//! use rio_core::{Rio, Options};
//! use rio_sim::{Image, CpuKind};
//!
//! let image = Image::from_code(vec![0xf4]);
//! let mut rio = Rio::new(&image, Options::default(), CpuKind::Pentium4, Inc2Add::new());
//! let result = rio.run();
//! println!("{}", result.client_output);
//! ```

#![forbid(unsafe_code)]

pub mod combined;
pub mod ctrace;
pub mod ibdispatch;
pub mod inc2add;
pub mod instrument;
pub mod rlr;
pub mod shepherd;

pub use combined::Combined;
pub use ctrace::CTrace;
pub use ibdispatch::IbDispatch;
pub use inc2add::Inc2Add;
pub use instrument::{BbProfile, InsCount, OpStats};
pub use rlr::Rlr;
pub use shepherd::Shepherd;
