//! All four sample optimizations applied in combination — the final bar of
//! Figure 5.
//!
//! Composition order within each hook follows the natural pipeline: the
//! custom-trace client shapes *which* traces exist (`end_trace`, trace
//! heads); within the trace hook, return checks are elided first, then
//! redundant loads removed, then strength reduction, and finally the
//! indirect-branch dispatch profiling is attached (it must see the final
//! exit structure).

use rio_core::{Client, Core, EndTraceDecision};
use rio_ia32::InstrList;

use crate::ctrace::CTrace;
use crate::ibdispatch::IbDispatch;
use crate::inc2add::Inc2Add;
use crate::rlr::Rlr;

/// The combination client: RLR + inc2add + IB dispatch + custom traces.
#[derive(Debug, Default)]
pub struct Combined {
    /// Redundant load removal.
    pub rlr: Rlr,
    /// Strength reduction.
    pub inc2add: Inc2Add,
    /// Adaptive indirect branch dispatch.
    pub ibdispatch: IbDispatch,
    /// Custom call-inlining traces.
    pub ctrace: CTrace,
}

impl Combined {
    /// Create the combination with each client's defaults.
    pub fn new() -> Combined {
        Combined::default()
    }
}

impl Client for Combined {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn init(&mut self, core: &mut Core) {
        self.rlr.init(core);
        self.inc2add.init(core);
        self.ibdispatch.init(core);
        self.ctrace.init(core);
    }

    fn on_exit(&mut self, core: &mut Core) {
        self.rlr.on_exit(core);
        self.inc2add.on_exit(core);
        self.ibdispatch.on_exit(core);
        self.ctrace.on_exit(core);
    }

    fn basic_block(&mut self, core: &mut Core, tag: u32, bb: &mut InstrList) {
        self.ctrace.basic_block(core, tag, bb);
    }

    fn end_trace(&mut self, core: &mut Core, trace_tag: u32, next_tag: u32) -> EndTraceDecision {
        self.ctrace.end_trace(core, trace_tag, next_tag)
    }

    fn trace(&mut self, core: &mut Core, tag: u32, trace: &mut InstrList) {
        self.ctrace.trace(core, tag, trace);
        self.rlr.trace(core, tag, trace);
        self.inc2add.trace(core, tag, trace);
        self.ibdispatch.trace(core, tag, trace);
    }

    fn clean_call(&mut self, core: &mut Core, arg: u64) {
        // Only ibdispatch registers clean calls.
        self.ibdispatch.clean_call(core, arg);
    }

    fn fragment_deleted(&mut self, core: &mut Core, tag: u32) {
        self.ibdispatch.fragment_deleted(core, tag);
    }

    fn sideline_optimize(&mut self, core: &mut Core, tag: u32, arg: u64) {
        self.ibdispatch.sideline_optimize(core, tag, arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_core::{Options, Rio};
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Cc, MemRef, OpSize, Opnd, Reg, Target};
    use rio_sim::{run_native, CpuKind, Image};

    /// A workload exercising all four optimizations at once: a loop calling
    /// a function that reloads a global twice and counts with inc.
    fn mixed_program(iters: i32) -> Image {
        let slot = MemRef::absolute(Image::DATA_BASE, OpSize::S32);
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::Mem(slot), Opnd::imm32(3)));
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        let top = il.push_back(create::label());
        let c1 = il.push_back(create::call(Target::Pc(0)));
        let c2 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::int(0x80));
        // f: inc edi; eax = slot; edi += eax; eax = slot (redundant);
        //    edi += eax; ret — the inc is CF-dead (the add writes CF).
        let f = il.push_back(create::label());
        il.push_back(create::inc(Opnd::reg(Reg::Edi)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(slot)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Eax)));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::Mem(slot)));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Eax)));
        il.push_back(create::ret());
        il.get_mut(c1).set_target(Target::Instr(f));
        il.get_mut(c2).set_target(Target::Instr(f));
        Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
    }

    #[test]
    fn combined_preserves_semantics_and_each_part_fires() {
        let img = mixed_program(5_000);
        let native = run_native(&img, CpuKind::Pentium4);
        let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, Combined::new());
        let r = rio.run();
        assert_eq!(r.exit_code, native.exit_code, "combination broke execution");
        let c = &rio.client;
        assert!(c.rlr.loads_removed >= 1, "rlr idle: {:?}", c.rlr);
        assert!(
            c.inc2add.num_converted >= 1,
            "inc2add idle: {:?}",
            c.inc2add
        );
        assert!(c.ctrace.calls_marked >= 1, "ctrace idle: {:?}", c.ctrace);
        // With ctrace eliding returns, ibdispatch may see few sites; it must
        // at least have run its hooks without breaking anything.
        assert!(r.client_output.contains("rlr:"));
        assert!(r.client_output.contains("ibdispatch:"));
        assert!(r.client_output.contains("ctrace:"));
    }

    #[test]
    fn combined_beats_base_rio_on_friendly_workload() {
        let img = mixed_program(30_000);
        let mut base = Rio::new(
            &img,
            Options::full(),
            CpuKind::Pentium4,
            rio_core::NullClient,
        );
        let a = base.run();
        let mut opt = Rio::new(&img, Options::full(), CpuKind::Pentium4, Combined::new());
        let b = opt.run();
        assert_eq!(a.exit_code, b.exit_code);
        assert!(
            b.counters.cycles < a.counters.cycles,
            "combined should win on a hot, optimizable workload: {} vs {}",
            b.counters.cycles,
            a.counters.cycles
        );
    }
}
