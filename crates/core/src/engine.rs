//! The execution engine: dispatch, fragment entry, trace recording, and the
//! runtime sentinel handlers (Figure 1 of the paper).
//!
//! Control alternates between the code cache (the simulated machine
//! executing emitted fragments) and the engine (this module). The
//! performance-critical transitions — the dotted lines of Figure 1 — are
//! where the overhead cost model charges cycles: context switches, dispatch
//! work, and indirect-branch hashtable lookups.
//!
//! # Resumable sessions
//!
//! Execution is organized as a *session*: [`Rio::step`] advances the
//! program by a bounded amount of work (a [`StepBudget`] of instructions,
//! cycles, and/or wall-clock time) and returns a [`StepOutcome`]. A session
//! suspends only at engine safe points — control out of the code cache, or
//! between bounded execution chunks with all engine state quiescent — so a
//! suspended `Rio` can be resumed (or handed to another thread; the engine
//! is `Send`) with no observable difference from an uninterrupted run.
//! [`Rio::run`] is a thin wrapper that steps with an unlimited budget.

use rio_ia32::InstrList;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rio_ia32::Reg;
use rio_sim::cpu::CpuState;
use rio_sim::os::{SyscallAction, THREAD_STACK_SIZE};
use rio_sim::{
    deliver_fault, resume_pc_after, Counters, CpuExit, CpuKind, ExecRegion, FaultKind, Image,
    SYSCALL_VECTOR,
};

use crate::build::decode_bb;
use crate::cache::{ExitKind, FragmentId, FragmentKind, IndKind};
use crate::client::{Client, EndTraceDecision};
use crate::config::{layout, ExecMode, Options};
use crate::core::{Core, Recording};
use crate::emit::emit_fragment;
use crate::link::link_exit;
use crate::mangle::{mangle_bb, mangle_trace_connector, Terminator};
use crate::stats::Stats;
use crate::verify::LintSnapshot;

/// Result of running a program under RIO.
#[derive(Clone, Debug)]
pub struct RioRunResult {
    /// Application exit status.
    pub exit_code: i32,
    /// Buffered application output.
    pub app_output: String,
    /// Buffered client output (`dr_printf`).
    pub client_output: String,
    /// Machine execution counters (instructions, cycles, predictors).
    pub counters: Counters,
    /// Engine statistics.
    pub stats: Stats,
    /// Cycles spent in sideline optimization (not charged to the run).
    pub sideline_cycles: u64,
    /// The unhandled guest fault that ended the run, if any (`exit_code` is
    /// then `128 + fault kind`).
    pub fault: Option<Fault>,
}

/// A bound on how much work one [`Rio::step`] call may perform before
/// suspending. All limits are measured from the start of the step; absent
/// limits are unlimited. Budgets are checked at engine safe points, so a
/// step may slightly overshoot a cycle or wall-clock limit (never by more
/// than one bounded execution chunk).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBudget {
    /// Suspend after this many simulated instructions.
    pub max_instructions: Option<u64>,
    /// Suspend after this many simulated cycles.
    pub max_cycles: Option<u64>,
    /// Suspend after this much host wall-clock time (hard timeout for
    /// non-terminating images).
    pub timeout: Option<Duration>,
}

impl StepBudget {
    /// No limits: run to completion (or fault).
    pub fn unlimited() -> StepBudget {
        StepBudget::default()
    }

    /// Limit the step to `n` simulated instructions.
    pub fn instructions(n: u64) -> StepBudget {
        StepBudget {
            max_instructions: Some(n),
            ..StepBudget::default()
        }
    }

    /// Limit the step to `n` simulated cycles.
    pub fn cycles(n: u64) -> StepBudget {
        StepBudget {
            max_cycles: Some(n),
            ..StepBudget::default()
        }
    }

    /// Add an instruction limit to this budget.
    pub fn with_max_instructions(mut self, n: u64) -> StepBudget {
        self.max_instructions = Some(n);
        self
    }

    /// Add a cycle limit to this budget.
    pub fn with_max_cycles(mut self, n: u64) -> StepBudget {
        self.max_cycles = Some(n);
        self
    }

    /// Add a host wall-clock timeout to this budget.
    pub fn with_timeout(mut self, d: Duration) -> StepBudget {
        self.timeout = Some(d);
        self
    }
}

/// Which budget limit caused a step to suspend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The instruction limit was reached.
    InstructionBudget,
    /// The cycle limit was reached.
    CycleBudget,
    /// The wall-clock timeout expired.
    Timeout,
}

/// A terminal execution failure: a guest fault with no registered handler
/// (or one past the delivery cap), or control at an address the engine
/// cannot classify. Guest faults carry both the cache address where the
/// machine actually faulted and the translated application pc, so reports
/// are meaningful in either address space.
#[derive(Clone, Debug)]
pub struct Fault {
    /// `eip` at the time of the fault: a code-cache address when the fault
    /// was raised inside an emitted fragment, an application address under
    /// emulation or quarantined execution.
    pub cache_eip: u32,
    /// The application pc the faulting address translates to, when known.
    pub app_pc: Option<u32>,
    /// Architectural fault kind for guest faults; `None` for engine-level
    /// classification failures.
    pub kind: Option<FaultKind>,
    /// Human-readable description carrying both addresses.
    pub message: String,
}

impl Fault {
    /// An unhandled guest fault.
    fn guest(kind: FaultKind, cache_eip: u32, app_pc: Option<u32>, addr: u32) -> Fault {
        let message = match app_pc {
            Some(pc) => format!(
                "unhandled {kind} at cache eip {cache_eip:#x} (app pc {pc:#x}, fault addr {addr:#x})"
            ),
            None => format!(
                "unhandled {kind} at eip {cache_eip:#x} (fault addr {addr:#x}, no app translation)"
            ),
        };
        Fault {
            cache_eip,
            app_pc,
            kind: Some(kind),
            message,
        }
    }

    /// An engine-level failure (no architectural fault kind).
    fn engine(cache_eip: u32, message: String) -> Fault {
        Fault {
            cache_eip,
            app_pc: None,
            kind: None,
            message,
        }
    }

    /// Process exit status conventionally reported for this fault:
    /// `128 + kind` (129 divide error, 130 invalid opcode, 131 memory
    /// fault), or 128 for engine-level failures.
    pub fn exit_code(&self) -> i32 {
        128 + self.kind.map_or(0, |k| k.code() as i32)
    }
}

/// Result of one [`Rio::step`] call.
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// The budget was exhausted; the session is suspended at a safe point
    /// and can be resumed with another `step`.
    Running(StopReason),
    /// The application exited with this status. Subsequent steps return
    /// `Exited` again without executing anything.
    Exited(i32),
    /// Execution failed: an unhandled guest fault or an engine
    /// classification failure. The session stays suspended at the fault —
    /// stepping again re-attempts (and re-reports) it, so a harness can
    /// register a handler or flush the cache and resume.
    Faulted(Fault),
}

/// Budget accounting for one step: counter values at the start of the step
/// plus the wall-clock deadline.
struct BudgetMeter {
    budget: StepBudget,
    start_instructions: u64,
    start_cycles: u64,
    deadline: Option<Instant>,
}

/// Fuel per bounded machine-execution chunk when a cycle or wall-clock
/// limit needs periodic re-checking.
const CHUNK_FUEL: u64 = 8192;

/// Fuel for an effectively-unbounded machine run (matches `Machine::run`).
const UNLIMITED_FUEL: u64 = 1 << 44;

impl BudgetMeter {
    fn start(budget: StepBudget, counters: &Counters) -> BudgetMeter {
        BudgetMeter {
            budget,
            start_instructions: counters.instructions,
            start_cycles: counters.cycles,
            deadline: budget.timeout.map(|d| Instant::now() + d),
        }
    }

    /// Check the budget at a safe point.
    fn exhausted(&self, counters: &Counters) -> Option<StopReason> {
        if let Some(n) = self.budget.max_instructions {
            if counters.instructions - self.start_instructions >= n {
                return Some(StopReason::InstructionBudget);
            }
        }
        if let Some(n) = self.budget.max_cycles {
            if counters.cycles - self.start_cycles >= n {
                return Some(StopReason::CycleBudget);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Timeout);
            }
        }
        None
    }

    /// Fuel for the next machine-execution chunk: exactly the remaining
    /// instruction budget when one is set (so instruction limits are
    /// precise), bounded when cycle/time limits need periodic re-checking,
    /// effectively unlimited otherwise.
    fn fuel(&self, counters: &Counters) -> u64 {
        let mut fuel = if self.budget.max_cycles.is_some() || self.deadline.is_some() {
            CHUNK_FUEL
        } else {
            UNLIMITED_FUEL
        };
        if let Some(n) = self.budget.max_instructions {
            let used = counters.instructions - self.start_instructions;
            fuel = fuel.min(n.saturating_sub(used)).max(1);
        }
        fuel
    }
}

/// The RIO engine coupled with a client.
///
/// # Examples
///
/// ```no_run
/// use rio_core::{Rio, NullClient, Options};
/// use rio_sim::{Image, CpuKind};
///
/// let image = Image::from_code(vec![0xf4]); // hlt
/// let mut rio = Rio::new(&image, Options::default(), CpuKind::Pentium4, NullClient);
/// let result = rio.run();
/// assert_eq!(result.exit_code, 0);
/// ```
///
/// Stepping with a budget:
///
/// ```no_run
/// use rio_core::{Rio, NullClient, Options, StepBudget, StepOutcome};
/// use rio_sim::{Image, CpuKind};
///
/// let image = Image::from_code(vec![0xf4]);
/// let mut rio = Rio::new(&image, Options::default(), CpuKind::Pentium4, NullClient);
/// loop {
///     match rio.step(StepBudget::instructions(10_000)) {
///         StepOutcome::Running(_) => continue, // safe point: inspect, flush, resume
///         StepOutcome::Exited(code) => break assert_eq!(code, 0),
///         StepOutcome::Faulted(f) => break eprintln!("{}", f.message),
///     }
/// }
/// ```
pub struct Rio<C: Client> {
    /// Engine state (exposed so harnesses can inspect cache and stats).
    pub core: Core,
    /// The coupled client.
    pub client: C,
    /// Session progress (which mode is active, suspended-thread state).
    phase: Phase,
}

/// Session progress of a [`Rio`].
enum Phase {
    /// No step taken yet; client `init`/`thread_init` hooks not yet fired.
    Unstarted,
    /// Pure-emulation session (Table 1, row 1).
    Emulating,
    /// Code-cache session with its scheduler state.
    InCache(CacheSession),
    /// The application exited with this status.
    Finished(i32),
}

/// Suspendable state of a code-cache session: everything `run_cache` used
/// to keep in locals.
struct CacheSession {
    /// Threads waiting for their turn on the (single) simulated CPU.
    parked: VecDeque<Parked>,
    /// Engine action to perform before re-entering the cache; `None` while
    /// the machine is mid-execution (suspended by fuel, not by the engine).
    pending: Option<Resume>,
}

enum Leave {
    /// `eip` has been set; resume execution in the cache.
    Resume,
    /// Dispatch to this application tag.
    Dispatch(u32),
}

/// How a parked thread resumes.
enum Resume {
    /// Dispatch to an application tag.
    Dispatch(u32),
    /// Continue in the cache at the saved `eip`, with the saved execution
    /// regions (preserves mid-recording restrictions across switches).
    InCache(Vec<ExecRegion>),
}

/// A thread waiting for its turn on the (single) simulated CPU.
struct Parked {
    tid: usize,
    cpu: CpuState,
    resume: Resume,
}

/// Cycle cost of an engine-level thread switch.
const THREAD_SWITCH_COST: u64 = 400;

/// Faults observed in one fragment before it is evicted and its tag
/// quarantined (self-healing for corrupted cache copies).
const FAULT_EVICT_THRESHOLD: u32 = 2;

impl<C: Client> Rio<C> {
    /// Create an engine over `image` with the given options, processor
    /// model, and client.
    pub fn new(image: &Image, options: Options, kind: CpuKind, client: C) -> Rio<C> {
        Rio {
            core: Core::new(image, options, kind),
            client,
            phase: Phase::Unstarted,
        }
    }

    /// Run the application to completion under the engine.
    ///
    /// Equivalent to stepping with [`StepBudget::unlimited`] until exit:
    /// counters, stats, and output are bit-identical however the run is
    /// sliced into steps.
    ///
    /// An unhandled guest fault ends the run cleanly (never a panic): the
    /// result carries the [`Fault`] in [`RioRunResult::fault`] and an exit
    /// status of `128 + fault kind`, mirroring what the simulated OS
    /// reports for an unhandled fault under native execution.
    pub fn run(&mut self) -> RioRunResult {
        loop {
            match self.step(StepBudget::unlimited()) {
                StepOutcome::Running(_) => {}
                StepOutcome::Exited(code) => return self.result_snapshot(code),
                StepOutcome::Faulted(f) => {
                    let mut r = self.result_snapshot(f.exit_code());
                    r.fault = Some(f);
                    return r;
                }
            }
        }
    }

    /// Advance the session by at most `budget` worth of work.
    ///
    /// The first step fires the client `init`/`thread_init` hooks; the step
    /// that observes program exit fires `thread_exit`/`on_exit` before
    /// returning [`StepOutcome::Exited`]. A suspended session holds all its
    /// state in `self` — resuming with another `step` (from this thread or
    /// another; `Rio` is `Send`) continues exactly where execution stopped,
    /// and the interleaving of steps has no effect on counters, stats, or
    /// output.
    pub fn step(&mut self, budget: StepBudget) -> StepOutcome {
        if matches!(self.phase, Phase::Unstarted) {
            self.client.init(&mut self.core);
            self.client.thread_init(&mut self.core);
            self.phase = match self.core.options.mode {
                ExecMode::Emulate => {
                    let (s, e) = self.core.app_code_range;
                    self.core
                        .machine
                        .set_exec_regions(vec![ExecRegion::new(s, e)]);
                    Phase::Emulating
                }
                ExecMode::Cache => {
                    // Monitor the application code region for stores so
                    // self-modifying code surfaces as `CpuExit::CodeWrite`
                    // (paper §6: cache consistency). The engine's own
                    // writes (fragment emission, link patching) go through
                    // the memory API directly and are exempt.
                    let (s, e) = self.core.app_code_range;
                    self.core
                        .machine
                        .set_watch_regions(vec![ExecRegion::new(s, e)]);
                    Phase::InCache(CacheSession {
                        parked: VecDeque::new(),
                        pending: Some(Resume::Dispatch(self.core.app_entry)),
                    })
                }
            };
        }
        let meter = BudgetMeter::start(budget, &self.core.machine.counters);
        // Take the phase out so the step helpers can borrow `self` freely.
        match std::mem::replace(&mut self.phase, Phase::Unstarted) {
            Phase::Unstarted => unreachable!("session started above"),
            Phase::Finished(code) => {
                self.phase = Phase::Finished(code);
                StepOutcome::Exited(code)
            }
            Phase::Emulating => {
                let outcome = self.step_emulate(&meter);
                self.settle(Phase::Emulating, outcome)
            }
            Phase::InCache(mut session) => {
                let outcome = self.step_cache(&mut session, &meter);
                self.settle(Phase::InCache(session), outcome)
            }
        }
    }

    /// Record the outcome of a step: on exit, fire the exit hooks exactly
    /// once and pin the phase to `Finished`; otherwise restore the
    /// suspended phase.
    fn settle(&mut self, suspended: Phase, outcome: StepOutcome) -> StepOutcome {
        match outcome {
            StepOutcome::Exited(code) => {
                // Final safe point: anything still queued for verification
                // gets checked before the exit hooks observe the stats.
                self.core.drain_verify_queue();
                self.client.thread_exit(&mut self.core);
                self.client.on_exit(&mut self.core);
                self.phase = Phase::Finished(code);
                StepOutcome::Exited(code)
            }
            other => {
                self.phase = suspended;
                other
            }
        }
    }

    /// Whether the session has exited, and with what status.
    pub fn exit_status(&self) -> Option<i32> {
        match self.phase {
            Phase::Finished(code) => Some(code),
            _ => None,
        }
    }

    /// The run result as of now, with the given exit status. For completed
    /// sessions this equals what [`Rio::run`] returns; for suspended ones
    /// it is a partial snapshot (harnesses reporting on budget-exhausted
    /// runs pass their own status convention).
    pub fn result_snapshot(&self, exit_code: i32) -> RioRunResult {
        RioRunResult {
            exit_code,
            app_output: self.core.os.output.clone(),
            client_output: self.core.client_output().to_string(),
            counters: self.core.machine.counters,
            stats: self.core.stats,
            sideline_cycles: self.core.sideline_cycles(),
            fault: None,
        }
    }

    // ----- emulation mode (Table 1, row 1) --------------------------------

    fn step_emulate(&mut self, meter: &BudgetMeter) -> StepOutcome {
        loop {
            // Every emulated instruction boundary is a safe point.
            if let Some(reason) = meter.exhausted(&self.core.machine.counters) {
                return StepOutcome::Running(reason);
            }
            let per_instr = self.core.costs.emulate_per_instr;
            self.core.machine.charge(per_instr);
            self.core.stats.emulated_instrs += 1;
            match self.core.machine.run_steps(1) {
                CpuExit::FuelExhausted => {}
                CpuExit::Halt => return StepOutcome::Exited(self.core.os.exit_code.unwrap_or(0)),
                CpuExit::Syscall(SYSCALL_VECTOR) => {
                    let (machine, os) = (&mut self.core.machine, &mut self.core.os);
                    if !os.handle_syscall(machine) {
                        return StepOutcome::Exited(self.core.os.exit_code.unwrap_or(0));
                    }
                }
                CpuExit::Fault { kind, pc, addr } => {
                    // Under emulation the faulting pc *is* the app pc.
                    self.core.stats.faults_raised += 1;
                    self.client.fault_event(&mut self.core, kind, pc, Some(pc));
                    match self.core.os.take_delivery_target() {
                        Some(handler) => {
                            let resume = resume_pc_after(&self.core.machine, pc);
                            deliver_fault(&mut self.core.machine, handler, kind, pc, resume);
                            self.core.stats.faults_delivered += 1;
                        }
                        None => {
                            return StepOutcome::Faulted(Fault::guest(kind, pc, Some(pc), addr))
                        }
                    }
                }
                CpuExit::CodeWrite { .. } => {
                    // Watches are only installed in cache mode; if one is
                    // somehow active, the store has committed and the
                    // interpreter's decode cache already invalidated
                    // itself, so emulation just continues.
                }
                other => {
                    let eip = self.core.machine.cpu.eip;
                    return StepOutcome::Faulted(Fault::engine(
                        eip,
                        format!("emulation failed: {other:?} at eip={eip:#x}"),
                    ));
                }
            }
        }
    }

    // ----- code-cache mode -------------------------------------------------

    fn step_cache(&mut self, session: &mut CacheSession, meter: &BudgetMeter) -> StepOutcome {
        loop {
            // Safe point: either the engine is about to act (control is out
            // of the cache) or the machine is suspended between fuel chunks.
            if let Some(reason) = meter.exhausted(&self.core.machine.counters) {
                return StepOutcome::Running(reason);
            }
            if let Some(action) = session.pending.take() {
                match action {
                    Resume::Dispatch(t) => {
                        if self.core.take_fault_quarantine(t) {
                            self.emulate_quarantined(t);
                        } else {
                            match self.dispatch(t) {
                                Ok(frag) => self.enter(frag),
                                Err(fault) => {
                                    if let Some(outcome) = self.failed_dispatch(session, t, fault) {
                                        return outcome;
                                    }
                                }
                            }
                        }
                    }
                    Resume::InCache(regions) => {
                        self.core.machine.set_exec_regions(regions);
                    }
                }
            }
            let fuel = meter.fuel(&self.core.machine.counters);
            match self.core.machine.run_steps(fuel) {
                // Out of fuel, not out of work: loop to the budget check.
                CpuExit::FuelExhausted => {}
                CpuExit::Halt => match self.retire_thread(&mut session.parked) {
                    Some(next) => session.pending = Some(next),
                    None => return StepOutcome::Exited(self.core.os.exit_code.unwrap_or(0)),
                },
                CpuExit::Syscall(SYSCALL_VECTOR) => {
                    let next_tid = self.spawnable_tid();
                    let act = {
                        let (machine, os) = (&mut self.core.machine, &mut self.core.os);
                        os.handle_syscall_threaded(machine, next_tid)
                    };
                    match act {
                        SyscallAction::Continue => {}
                        SyscallAction::ExitProgram => {
                            return StepOutcome::Exited(self.core.os.exit_code.unwrap_or(0));
                        }
                        SyscallAction::Spawn { entry } => {
                            self.spawn_thread(&mut session.parked, entry);
                        }
                        SyscallAction::Yield => {
                            if let Some(next) = session.parked.pop_front() {
                                let regions = self.core.machine.exec_regions().to_vec();
                                let prev = Parked {
                                    tid: self.core.cur,
                                    cpu: self.core.machine.cpu.clone(),
                                    resume: Resume::InCache(regions),
                                };
                                session.parked.push_back(prev);
                                session.pending = Some(self.switch_to(next));
                            }
                        }
                        SyscallAction::ThreadExit => {
                            match self.retire_thread(&mut session.parked) {
                                Some(next) => session.pending = Some(next),
                                None => {
                                    return StepOutcome::Exited(self.core.os.exit_code.unwrap_or(0))
                                }
                            }
                        }
                    }
                }
                CpuExit::OutOfRegion(addr) => match self.handle_leave(addr) {
                    Ok(Leave::Resume) => {}
                    Ok(Leave::Dispatch(t)) => session.pending = Some(Resume::Dispatch(t)),
                    Err(fault) => return StepOutcome::Faulted(fault),
                },
                CpuExit::Fault { kind, pc, addr } => {
                    if let Some(outcome) = self.handle_guest_fault(session, kind, pc, addr) {
                        return outcome;
                    }
                }
                CpuExit::CodeWrite { pc, addr, len } => {
                    self.handle_code_write(session, pc, addr, len);
                }
                other => {
                    let eip = self.core.machine.cpu.eip;
                    return StepOutcome::Faulted(Fault::engine(
                        eip,
                        format!("execution failed: {other:?} at eip={eip:#x}"),
                    ));
                }
            }
        }
    }

    // ----- guest faults ----------------------------------------------------

    /// A guest fault surfaced while executing under the engine. Translates
    /// the faulting cache address back to application state (rolling back
    /// the `%ecx` spill when the fault landed inside a mangled
    /// indirect-branch region), evicts repeatedly-faulting fragments, and
    /// either delivers the fault to the registered guest handler or
    /// surfaces a terminal `Faulted` outcome. Returns `None` when execution
    /// can continue (fault delivered).
    fn handle_guest_fault(
        &mut self,
        session: &mut CacheSession,
        kind: FaultKind,
        pc: u32,
        addr: u32,
    ) -> Option<StepOutcome> {
        self.core.stats.faults_raised += 1;
        // Quarantined blocks execute application code directly, so a fault
        // there (or anywhere below the cache) already has app coordinates.
        let mut app_pc = (pc < Image::CACHE_BASE).then_some(pc);
        let mut ecx_spilled = false;
        let mut evicted: Option<u32> = None;
        if pc >= Image::CACHE_BASE {
            if let Some(id) = self.core.threads[self.core.cur].cache.frag_by_addr(pc) {
                let (tag, translation) = {
                    let f = self.core.threads[self.core.cur].cache.frag(id);
                    (f.tag, f.translate(pc))
                };
                app_pc = Some(translation.map_or(tag, |t| t.app_pc));
                ecx_spilled = translation.is_some_and(|t| t.ecx_spilled);
                let faults = {
                    let f = self.core.threads[self.core.cur].cache.frag_mut(id);
                    f.faults += 1;
                    f.faults
                };
                if faults >= FAULT_EVICT_THRESHOLD {
                    // Self-healing: a fragment that keeps faulting (e.g. a
                    // corrupted cache copy) is evicted; its block runs by
                    // emulation once, then is rebuilt fresh.
                    let tag = self.core.fault_evict(id);
                    self.client.fragment_deleted(&mut self.core, tag);
                    evicted = Some(tag);
                }
            }
        }
        self.client.fault_event(&mut self.core, kind, pc, app_pc);
        let handler = self.core.os.take_delivery_target();
        if ecx_spilled && (handler.is_some() || evicted.is_some()) {
            // Control will not resume inside the mangled region, so roll
            // back the mangling side effect: between the spill and its
            // restore, the application's %ecx lives in the thread-local
            // slot. (On a plain unhandled fault the session may be resumed
            // at the faulting cache address, which still needs the scratch
            // %ecx — leave it alone there.)
            let saved = self.core.machine.mem.read_u32(layout::ECX_SLOT);
            self.core.machine.cpu.set_reg(Reg::Ecx, saved);
        }
        match handler {
            Some(handler) => {
                // A delivery detours control through the handler, so any
                // in-progress trace recording no longer describes a real
                // crossing sequence; abandon it rather than stitch a trace
                // whose connectors assume the uninterrupted path.
                self.core.threads[self.core.cur].recording = None;
                let target = app_pc.unwrap_or(pc);
                let resume = resume_pc_after(&self.core.machine, target);
                deliver_fault(&mut self.core.machine, handler, kind, target, resume);
                self.core.stats.faults_delivered += 1;
                // The handler is application code: enter it through
                // dispatch, exactly like any other control transfer out of
                // the cache.
                let cs = self.core.costs.context_switch;
                self.core.machine.charge(cs);
                self.core.stats.context_switches += 1;
                session.pending = Some(Resume::Dispatch(handler));
                None
            }
            None => {
                if let Some(tag) = evicted {
                    // The faulting cache copy is gone; a resumed session
                    // re-enters through dispatch at the faulting app pc
                    // (quarantine emulation when that is the block's tag)
                    // instead of the dead cache address.
                    session.pending = Some(Resume::Dispatch(app_pc.unwrap_or(tag)));
                }
                Some(StepOutcome::Faulted(Fault::guest(kind, pc, app_pc, addr)))
            }
        }
    }

    /// A guest store landed in the monitored application code region while
    /// executing under the engine (paper §6: cache consistency). The store
    /// has *committed* and `eip` is already past the writing instruction,
    /// so resuming makes forward progress even when an instruction
    /// overwrites itself (no livelock). Body instructions are copied into
    /// the cache verbatim, so the application resume point is the writer's
    /// translated pc plus the same advance `eip` made in the cache.
    /// Invalidates exactly the fragments whose source ranges the write
    /// overlapped, then re-enters through dispatch — rebuilding from the
    /// freshly written bytes.
    fn handle_code_write(&mut self, session: &mut CacheSession, pc: u32, addr: u32, len: u32) {
        self.core.stats.code_writes += 1;
        let eip = self.core.machine.cpu.eip;
        let resume = if pc < Image::CACHE_BASE {
            // Quarantined emulation runs application code directly; the
            // committed `eip` already is the application resume point.
            eip
        } else {
            let translation = self.core.threads[self.core.cur]
                .cache
                .frag_by_addr(pc)
                .and_then(|id| {
                    self.core.threads[self.core.cur]
                        .cache
                        .frag(id)
                        .translate(pc)
                });
            match translation {
                Some(t) => {
                    if t.ecx_spilled {
                        // Control will not resume inside the mangled
                        // region, so roll back the spill (the app's %ecx
                        // lives in the thread-local slot there).
                        let saved = self.core.machine.mem.read_u32(layout::ECX_SLOT);
                        self.core.machine.cpu.set_reg(Reg::Ecx, saved);
                    }
                    t.app_pc.wrapping_add(eip.wrapping_sub(pc))
                }
                // Untranslatable store site (a store synthesized by
                // mangling — not application code): re-enter at the last
                // dispatched tag rather than running a stale fragment.
                None => self.core.last_dispatched.unwrap_or(self.core.app_entry),
            }
        };
        // A recording in progress may include a block the write just
        // invalidated; abandon it rather than stitch stale code.
        self.core.threads[self.core.cur].recording = None;
        for tag in self.core.invalidate_code_write(addr, len) {
            self.client.fragment_deleted(&mut self.core, tag);
        }
        let cs = self.core.costs.context_switch;
        self.core.machine.charge(cs);
        self.core.stats.context_switches += 1;
        session.pending = Some(Resume::Dispatch(resume));
    }

    /// Dispatch to `t` failed. Undecodable application code is a guest
    /// invalid-opcode fault at the target pc and takes the normal delivery
    /// path; engine-level emit failures are terminal. Either way the
    /// dispatch is left pending so a resumed session retries (and
    /// re-reports) cleanly instead of running stale cache code.
    fn failed_dispatch(
        &mut self,
        session: &mut CacheSession,
        t: u32,
        fault: Fault,
    ) -> Option<StepOutcome> {
        match fault.kind {
            Some(kind) => {
                let pc = fault.app_pc.unwrap_or(t);
                let outcome = self.handle_guest_fault(session, kind, pc, pc);
                if outcome.is_some() {
                    session.pending = Some(Resume::Dispatch(t));
                }
                outcome
            }
            None => {
                session.pending = Some(Resume::Dispatch(t));
                Some(StepOutcome::Faulted(fault))
            }
        }
    }

    /// Execute the quarantined block at `tag` by emulation: its cache copy
    /// repeatedly faulted and was evicted, so the application's own code
    /// runs instead, restricted to the block's extent. Control leaving the
    /// block surfaces as `OutOfRegion`, which `handle_leave` converts back
    /// into an ordinary dispatch (rebuilding a fresh cache copy).
    fn emulate_quarantined(&mut self, tag: u32) {
        let (end, instrs) = match decode_bb(
            &self.core.machine.mem,
            tag,
            false,
            self.core.options.max_bb_instrs,
        ) {
            Ok(bb) => (bb.end_pc, bb.num_instrs as u64),
            // Undecodable app code: a one-byte region makes the machine
            // raise the invalid-opcode fault at `tag` itself.
            Err(_) => (tag.wrapping_add(1), 1),
        };
        let per_instr = self.core.costs.emulate_per_instr;
        self.core.machine.charge(per_instr * instrs);
        self.core.stats.emulated_instrs += instrs;
        self.core.threads[self.core.cur].quarantine_exec = true;
        self.core.machine.cpu.eip = tag;
        self.core
            .machine
            .set_exec_regions(vec![ExecRegion::new(tag, end)]);
    }

    /// The tid a spawn would get (0 = limit reached, spawn fails).
    fn spawnable_tid(&self) -> u32 {
        let next = self.core.threads.len() as u32;
        let cap = crate::cache::MAX_THREADS.min(rio_sim::os::MAX_THREADS);
        if next < cap {
            next
        } else {
            0
        }
    }

    /// Create a new thread: thread-private cache, fresh CPU with its own
    /// stack, parked until its first turn. Fires `thread_init`.
    fn spawn_thread(&mut self, parked: &mut VecDeque<Parked>, entry: u32) {
        let tid = self.core.threads.len();
        self.core
            .threads
            .push(crate::core::ThreadCore::new(tid as u32));
        let prev = self.core.cur;
        self.core.cur = tid;
        self.client.thread_init(&mut self.core);
        self.core.cur = prev;
        let mut cpu = CpuState::new();
        cpu.set_reg(
            Reg::Esp,
            Image::STACK_TOP - tid as u32 * THREAD_STACK_SIZE - 16,
        );
        parked.push_back(Parked {
            tid,
            cpu,
            resume: Resume::Dispatch(entry),
        });
        self.core.stats.threads_spawned += 1;
    }

    /// The current thread is done: fire `thread_exit` (for spawned threads;
    /// the main thread's hook fires in `run`) and switch to the next
    /// runnable thread if any.
    fn retire_thread(&mut self, parked: &mut VecDeque<Parked>) -> Option<Resume> {
        if self.core.cur != 0 {
            self.client.thread_exit(&mut self.core);
        }
        let next = parked.pop_front()?;
        Some(self.switch_to(next))
    }

    /// Install a parked thread on the CPU.
    fn switch_to(&mut self, next: Parked) -> Resume {
        self.core.machine.charge(THREAD_SWITCH_COST);
        self.core.cur = next.tid;
        self.core.machine.cpu = next.cpu;
        next.resume
    }

    /// Point the machine at a fragment and set the execution region: the
    /// whole cache normally, or just this fragment while recording a trace
    /// (so every crossing is observed).
    fn enter(&mut self, frag: FragmentId) {
        self.core.threads[self.core.cur].quarantine_exec = false;
        let f = self.core.threads[self.core.cur].cache.frag(frag);
        let region = if self.core.threads[self.core.cur].recording.is_some() {
            let (s, e) = f.range();
            ExecRegion::new(s, e)
        } else {
            let (s, e) = self.core.threads[self.core.cur].cache.region();
            ExecRegion::new(s, e)
        };
        self.core.machine.cpu.eip = f.start;
        self.core.machine.set_exec_regions(vec![region]);
    }

    /// Find or build the fragment to execute for `tag`; handles trace-head
    /// counting and trace-recording kickoff.
    fn dispatch(&mut self, tag: u32) -> Result<FragmentId, Fault> {
        let dispatch_cost = self.core.costs.dispatch;
        self.core.machine.charge(dispatch_cost);
        self.core.stats.dispatches += 1;
        self.core.last_dispatched = Some(tag);
        for deleted_tag in self.core.take_safe_deletions() {
            self.client.fragment_deleted(&mut self.core, deleted_tag);
        }
        for flushed_tag in self.core.process_cache_pressure() {
            self.client.fragment_deleted(&mut self.core, flushed_tag);
        }
        for flushed_tag in self.core.take_requested_flush() {
            self.client.fragment_deleted(&mut self.core, flushed_tag);
        }
        for (s_tag, arg) in self.core.take_sideline_requests() {
            self.client.sideline_optimize(&mut self.core, s_tag, arg);
        }
        // Dispatch is a safe point: re-verify every fragment touched by an
        // emit, link, unlink, invalidation, or eviction since the last one
        // (no-op unless `Options::verify` is set; never charged).
        self.core.drain_verify_queue();

        // Traces shadow blocks — but not while recording (recording steps
        // through basic blocks).
        if self.core.threads[self.core.cur].recording.is_none() {
            if let Some(tr) = self.core.threads[self.core.cur].cache.lookup_trace(tag) {
                return Ok(tr);
            }
        }

        if let Some(bb) = self.core.threads[self.core.cur].cache.lookup_bb(tag) {
            self.count_trace_head(bb, tag);
            return Ok(bb);
        }

        let bb = self.build_bb(tag)?;
        self.count_trace_head(bb, tag);
        Ok(bb)
    }

    fn count_trace_head(&mut self, bb: FragmentId, tag: u32) {
        if self.core.threads[self.core.cur].recording.is_some() || !self.core.options.enable_traces
        {
            return;
        }
        if !self.core.threads[self.core.cur]
            .cache
            .frag(bb)
            .is_trace_head
        {
            return;
        }
        let increment_cost = self.core.costs.counter_increment;
        self.core.machine.charge(increment_cost);
        let counter = {
            let f = self.core.threads[self.core.cur].cache.frag_mut(bb);
            f.counter += 1;
            f.counter
        };
        if counter >= self.core.options.trace_threshold
            && self.core.threads[self.core.cur]
                .cache
                .lookup_trace(tag)
                .is_none()
        {
            self.core.threads[self.core.cur].recording = Some(Recording {
                trace_tag: tag,
                tags: vec![tag],
            });
        }
    }

    /// Build, mangle, and emit the basic block at `tag`. Undecodable
    /// application code is reported as a guest invalid-opcode fault at
    /// `tag` — exactly what native execution of those bytes would raise.
    fn build_bb(&mut self, tag: u32) -> Result<FragmentId, Fault> {
        let full = self.client.wants_full_decode();
        let bb = match decode_bb(
            &self.core.machine.mem,
            tag,
            full,
            self.core.options.max_bb_instrs,
        ) {
            Ok(bb) => bb,
            Err(e) => {
                return Err(Fault {
                    cache_eip: self.core.machine.cpu.eip,
                    app_pc: Some(tag),
                    kind: Some(FaultKind::InvalidOpcode),
                    message: format!("invalid application code at {tag:#x}: {e}"),
                })
            }
        };
        let build_cost = self.core.costs.bb_build_base
            + self.core.costs.bb_build_per_instr * bb.num_instrs as u64;
        self.core.machine.charge(build_cost);
        self.core.stats.bbs_built += 1;
        self.core.stats.bb_instrs += bb.num_instrs as u64;

        let mut il = bb.il;
        // Instrumentation-safety lint: whatever the client adds to the
        // block must not clobber live application registers or flags.
        let snapshot = LintSnapshot::capture(&il);
        self.client.basic_block(&mut self.core, tag, &mut il);
        self.core.lint_client_edit(&snapshot, &il, tag);
        mangle_bb(&mut il, bb.end_pc);
        let custom = std::mem::take(&mut self.core.pending_custom_stubs);
        let id = emit_fragment(
            &mut self.core.machine,
            &mut self.core.threads[self.core.cur].cache,
            FragmentKind::BasicBlock,
            tag,
            il,
            custom,
            vec![(tag, bb.end_pc)],
        )
        .map_err(|e| {
            Fault::engine(
                self.core.machine.cpu.eip,
                format!("failed to emit block {tag:#x}: {e}"),
            )
        })?;
        if self.core.marked_heads.contains(&tag) {
            self.core.threads[self.core.cur]
                .cache
                .frag_mut(id)
                .is_trace_head = true;
        }
        self.core.note_verify(self.core.cur, id);
        Ok(id)
    }

    /// Classify and handle control leaving the permitted execution region.
    fn handle_leave(&mut self, addr: u32) -> Result<Leave, Fault> {
        // Clean call into client code.
        if let Some(token) = layout::clean_call_index(addr) {
            return Ok(self.handle_clean_call(token));
        }
        // Exit stub sentinel.
        if let Some(stub) = layout::stub_index(addr) {
            return Ok(self.handle_stub(stub));
        }
        // A quarantined block ran by emulation; control leaving it to any
        // application address is an ordinary dispatch (which rebuilds a
        // fresh cache copy — the self-healing step).
        if self.core.threads[self.core.cur].quarantine_exec && addr < Image::CACHE_BASE {
            self.core.threads[self.core.cur].quarantine_exec = false;
            let cs = self.core.costs.context_switch;
            self.core.machine.charge(cs);
            self.core.stats.context_switches += 1;
            return Ok(Leave::Dispatch(addr));
        }
        // During recording, a linked exit jumps straight to another
        // fragment's entry, which lies outside the restricted region.
        if self.core.threads[self.core.cur].recording.is_some() {
            if let Some(frag) = self.core.threads[self.core.cur].cache.by_entry(addr) {
                let (tag, kind) = {
                    let f = self.core.threads[self.core.cur].cache.frag(frag);
                    (f.tag, f.kind)
                };
                // A linked crossing is always a direct transfer.
                self.core.threads[self.core.cur].last_exit_was_return = false;
                if kind == FragmentKind::Trace {
                    // Recording must step through basic blocks: entering a
                    // trace would execute many blocks with no observable
                    // crossings. Re-dispatch so the block copy runs instead.
                    return Ok(self.record_crossing_dispatch(tag));
                }
                return Ok(self.record_crossing(tag, addr));
            }
        }
        let last = match self.core.last_dispatched {
            Some(t) => format!(", last dispatched fragment tag {t:#x}"),
            None => String::new(),
        };
        Err(Fault::engine(
            self.core.machine.cpu.eip,
            format!(
                "control reached unclassifiable address {addr:#x} (eip {:#x}{last})",
                self.core.machine.cpu.eip
            ),
        ))
    }

    fn handle_clean_call(&mut self, token: u32) -> Leave {
        let arg = self
            .core
            .clean_call_arg(token)
            .unwrap_or_else(|| panic!("unknown clean-call token {token}"));
        // The call pushed the cache resume address; pop it to restore the
        // application stack (transparency) and remember where to resume.
        let esp = self.core.machine.cpu.reg(Reg::Esp);
        let resume = self.core.machine.mem.read_u32(esp);
        self.core.machine.cpu.set_reg(Reg::Esp, esp.wrapping_add(4));
        let cost = self.core.costs.clean_call;
        self.core.machine.charge(cost);
        self.core.stats.clean_calls += 1;
        self.client.clean_call(&mut self.core, arg);
        self.core.machine.cpu.eip = resume;
        Leave::Resume
    }

    fn handle_stub(&mut self, stub: u32) -> Leave {
        let rec = self.core.threads[self.core.cur]
            .cache
            .stub(stub)
            .unwrap_or_else(|| panic!("unknown stub {stub}"));
        let exit_kind =
            self.core.threads[self.core.cur].cache.frag(rec.frag).exits[rec.exit_idx].kind;
        match exit_kind {
            ExitKind::Direct { target } => {
                self.core.threads[self.core.cur].last_exit_was_return = false;
                let cs = self.core.costs.context_switch;
                self.core.machine.charge(cs);
                self.core.stats.context_switches += 1;
                // Backward direct branches identify loop heads (Dynamo's
                // trace-head heuristic).
                let src_tag = self.core.threads[self.core.cur].cache.frag(rec.frag).tag;
                if self.core.options.enable_traces && target <= src_tag {
                    self.core.mark_trace_head(target);
                }
                if self.core.threads[self.core.cur].recording.is_some() {
                    return self.record_crossing_dispatch(target);
                }
                self.maybe_link(rec.frag, rec.exit_idx, target);
                Leave::Dispatch(target)
            }
            ExitKind::Indirect { kind } => self.handle_indirect(kind),
        }
    }

    /// Link a direct exit lazily, on first traversal.
    fn maybe_link(&mut self, src: FragmentId, exit_idx: usize, target: u32) {
        if !self.core.options.link_direct {
            return;
        }
        if self.core.threads[self.core.cur].cache.frag(src).deleted
            || self.core.threads[self.core.cur].cache.frag(src).exits[exit_idx]
                .linked_to
                .is_some()
        {
            return;
        }
        let Some(dst) = self.core.threads[self.core.cur].cache.lookup(target) else {
            return;
        };
        let dstf = self.core.threads[self.core.cur].cache.frag(dst);
        // Trace heads must be reached through dispatch so their counters
        // tick (blocks only; traces are freely linkable).
        if dstf.kind == FragmentKind::BasicBlock && dstf.is_trace_head {
            return;
        }
        if dstf.deleted {
            return;
        }
        link_exit(
            &mut self.core.machine,
            &mut self.core.threads[self.core.cur].cache,
            src,
            exit_idx,
            dst,
        );
        let patch = self.core.costs.link_patch;
        self.core.machine.charge(patch);
        self.core.stats.links += 1;
        self.core.note_verify(self.core.cur, src);
        self.core.note_verify(self.core.cur, dst);
    }

    /// A translated indirect branch arrived at the lookup with its target in
    /// `%ecx`.
    fn handle_indirect(&mut self, kind: IndKind) -> Leave {
        let target = self.core.machine.cpu.reg(Reg::Ecx);
        let saved = self.core.machine.mem.read_u32(layout::ECX_SLOT);
        self.core.machine.cpu.set_reg(Reg::Ecx, saved);
        self.core.threads[self.core.cur].last_exit_was_return = kind == IndKind::Ret;
        self.core.stats.ib_lookups += 1;

        // The shared lookup routine ends in one indirect jump: a single BTB
        // slot shared by every translated indirect branch — the source of
        // the overhead discussed in §5.
        let m = &mut self.core.machine;
        let penalty = m
            .cost
            .indirect_branch(layout::IB_LOOKUP, target, false, &mut m.counters);
        m.counters.cycles += penalty;

        if self.core.threads[self.core.cur].recording.is_some() {
            let hash = self.core.costs.hash_lookup;
            self.core.machine.charge(hash);
            return self.record_crossing_dispatch(target);
        }

        if self.core.options.link_indirect {
            let hash = self.core.costs.hash_lookup;
            self.core.machine.charge(hash);
            // In-cache lookup: traces, then non-trace-head blocks.
            if let Some(id) = self.core.threads[self.core.cur].cache.lookup(target) {
                let f = self.core.threads[self.core.cur].cache.frag(id);
                let countable_head = f.kind == FragmentKind::BasicBlock && f.is_trace_head;
                if !countable_head && !f.deleted {
                    self.core.stats.ib_lookup_hits += 1;
                    self.core.machine.cpu.eip = f.start;
                    return Leave::Resume;
                }
            }
        }
        let cs = self.core.costs.context_switch;
        self.core.machine.charge(cs);
        self.core.stats.context_switches += 1;
        Leave::Dispatch(target)
    }

    /// While recording: control is about to move to `tag`; consult the
    /// client and default rules, then either finish the trace or extend it.
    fn record_crossing_dispatch(&mut self, tag: u32) -> Leave {
        self.record_step(tag);
        Leave::Dispatch(tag)
    }

    /// While recording: a linked jump crossed into the fragment whose entry
    /// is `addr` (tag `tag`). Continue in the cache either way.
    fn record_crossing(&mut self, tag: u32, addr: u32) -> Leave {
        self.record_step(tag);
        self.core.machine.cpu.eip = addr;
        // Region: restricted to the entered fragment if still recording,
        // else the whole cache.
        if self.core.threads[self.core.cur].recording.is_some() {
            if let Some(f) = self.core.threads[self.core.cur].cache.by_entry(addr) {
                let (s, e) = self.core.threads[self.core.cur].cache.frag(f).range();
                self.core
                    .machine
                    .set_exec_regions(vec![ExecRegion::new(s, e)]);
            }
        } else {
            let (s, e) = self.core.threads[self.core.cur].cache.region();
            self.core
                .machine
                .set_exec_regions(vec![ExecRegion::new(s, e)]);
        }
        Leave::Resume
    }

    /// Record one crossing; returns `true` if recording continues.
    fn record_step(&mut self, next_tag: u32) -> bool {
        let trace_tag = match &self.core.threads[self.core.cur].recording {
            Some(r) => r.trace_tag,
            None => return false,
        };
        let decision = self.client.end_trace(&mut self.core, trace_tag, next_tag);
        let end = match decision {
            EndTraceDecision::End => true,
            EndTraceDecision::Continue => false,
            EndTraceDecision::Default => self.default_end_trace(next_tag),
        };
        if end {
            self.finish_recording();
            false
        } else {
            self.core.threads[self.core.cur]
                .recording
                .as_mut()
                .expect("recording active")
                .tags
                .push(next_tag);
            true
        }
    }

    /// Dynamo's default trace termination test: stop at a backward branch or
    /// upon reaching an existing trace or trace head, or at the size cap.
    fn default_end_trace(&self, next_tag: u32) -> bool {
        let rec = self.core.threads[self.core.cur]
            .recording
            .as_ref()
            .expect("recording active");
        rec.tags.len() >= self.core.options.max_trace_bbs
            || self.core.threads[self.core.cur]
                .cache
                .lookup_trace(next_tag)
                .is_some()
            || self.core.is_trace_head(next_tag)
            || next_tag <= *rec.tags.last().expect("nonempty recording")
    }

    /// Stitch the recorded blocks into a trace, run the client trace hook,
    /// and emit it into the trace cache.
    fn finish_recording(&mut self) {
        let rec = self.core.threads[self.core.cur]
            .recording
            .take()
            .expect("recording active");
        let mut trace_il = InstrList::new();
        let mut total_instrs = 0usize;
        let mut src_ranges: Vec<(u32, u32)> = Vec::new();
        let n = rec.tags.len();
        for (i, tag) in rec.tags.iter().enumerate() {
            // The application code may have been modified (or corrupted)
            // since the crossing was recorded; abandon the trace rather
            // than panic — its blocks still execute individually.
            let Ok(bb) = decode_bb(
                &self.core.machine.mem,
                *tag,
                true,
                self.core.options.max_bb_instrs,
            ) else {
                return;
            };
            total_instrs += bb.num_instrs;
            src_ranges.push((*tag, bb.end_pc));
            let mut il = bb.il;
            if i + 1 < n {
                mangle_trace_connector(
                    &mut il,
                    rec.tags[i + 1],
                    bb.end_pc,
                    self.core.options.inline_ib_target,
                );
                trace_il.append(il);
                // Without inlining, an indirect terminator exits the trace
                // unconditionally; the remaining blocks are unreachable.
                if !self.core.options.inline_ib_target
                    && matches!(
                        bb.terminator,
                        Terminator::Ret { .. } | Terminator::JmpInd | Terminator::CallInd
                    )
                {
                    break;
                }
            } else {
                mangle_bb(&mut il, bb.end_pc);
                trace_il.append(il);
            }
        }
        let build = self.core.costs.trace_build_base
            + self.core.costs.trace_build_per_instr * total_instrs as u64;
        self.core.machine.charge(build);
        self.core.stats.traces_built += 1;
        self.core.stats.trace_instrs += total_instrs as u64;

        // Instrumentation-safety lint over the trace hook's edits.
        let snapshot = LintSnapshot::capture(&trace_il);
        self.client
            .trace(&mut self.core, rec.trace_tag, &mut trace_il);
        self.core
            .lint_client_edit(&snapshot, &trace_il, rec.trace_tag);

        let custom = std::mem::take(&mut self.core.pending_custom_stubs);
        // An emit failure abandons the trace (blocks keep executing); it is
        // not worth killing the session over an optimization.
        let Ok(id) = emit_fragment(
            &mut self.core.machine,
            &mut self.core.threads[self.core.cur].cache,
            FragmentKind::Trace,
            rec.trace_tag,
            trace_il,
            custom,
            src_ranges,
        ) else {
            return;
        };

        self.core.note_verify(self.core.cur, id);

        // Exits of traces are trace heads (Dynamo's rule).
        let exit_targets: Vec<u32> = self.core.threads[self.core.cur]
            .cache
            .frag(id)
            .exits
            .iter()
            .filter_map(|e| match e.kind {
                ExitKind::Direct { target } => Some(target),
                ExitKind::Indirect { .. } => None,
            })
            .collect();
        for t in exit_targets {
            self.core.mark_trace_head(t);
        }
    }
}
