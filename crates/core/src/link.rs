//! Linking and unlinking fragments.
//!
//! "If a target basic block is already present in the code cache, and is
//! targeted via a direct branch, DynamoRIO links the two blocks together
//! with a direct jump. This avoids the cost of a subsequent context switch"
//! (paper §2). Linking patches the rel32 displacement of the exit branch in
//! cache memory; unlinking patches it back to the exit's stub.

use rio_sim::Machine;

use crate::cache::{CodeCache, ExitKind, FragmentId};

/// Patch the rel32 displacement word at `disp_addr` so the branch lands on
/// `target`.
fn patch_disp(machine: &mut Machine, disp_addr: u32, target: u32) {
    let disp = target.wrapping_sub(disp_addr.wrapping_add(4));
    machine.mem.write_u32(disp_addr, disp);
    // Only the decode holding this displacement word can be stale; the
    // hot link/unlink path must not wipe unrelated decodes.
    machine.invalidate_code_range(disp_addr, 4);
}

/// Link `src`'s exit `exit_idx` to fragment `dst`.
///
/// Respects the exit's `force_stub` flag: a forced exit keeps routing
/// through its stub (whose final jump is patched instead), so client stub
/// code still runs (paper §3.2).
///
/// # Panics
///
/// Panics if the exit is indirect or already linked.
pub fn link_exit(
    machine: &mut Machine,
    cache: &mut CodeCache,
    src: FragmentId,
    exit_idx: usize,
    dst: FragmentId,
) {
    let (disp_addr, target_start) = {
        let dst_frag = cache.frag(dst);
        let target_start = dst_frag.start;
        let exit = &cache.frag(src).exits[exit_idx];
        assert!(
            matches!(exit.kind, ExitKind::Direct { .. }),
            "cannot link an indirect exit"
        );
        assert!(exit.linked_to.is_none(), "exit already linked");
        let disp_addr = if exit.force_stub {
            exit.stub_jmp_disp_addr
        } else {
            exit.branch_disp_addr
        };
        (disp_addr, target_start)
    };
    patch_disp(machine, disp_addr, target_start);
    cache.frag_mut(src).exits[exit_idx].linked_to = Some(dst);
    cache.frag_mut(dst).incoming.push((src, exit_idx));
}

/// Unlink `src`'s exit `exit_idx`, restoring its branch to the stub.
pub fn unlink_exit(machine: &mut Machine, cache: &mut CodeCache, src: FragmentId, exit_idx: usize) {
    let (disp_addr, unlinked_target, dst) = {
        let exit = &cache.frag(src).exits[exit_idx];
        let Some(dst) = exit.linked_to else { return };
        // For a forced exit the patched word is the *stub's* final jump,
        // and its unlinked resting state is the stub sentinel — not
        // `unlinked_target`, which is the stub entry itself (restoring
        // that would make the stub jump back into its own entry).
        let (disp_addr, unlinked_target) = if exit.force_stub {
            (
                exit.stub_jmp_disp_addr,
                crate::config::layout::stub_sentinel(exit.stub),
            )
        } else {
            (exit.branch_disp_addr, exit.unlinked_target)
        };
        (disp_addr, unlinked_target, dst)
    };
    patch_disp(machine, disp_addr, unlinked_target);
    cache.frag_mut(src).exits[exit_idx].linked_to = None;
    cache
        .frag_mut(dst)
        .incoming
        .retain(|(f, e)| !(*f == src && *e == exit_idx));
}

/// Unlink every exit that currently targets `dst` (e.g. when `dst` becomes a
/// trace head and must henceforth be reached through dispatch).
pub fn unlink_incoming(machine: &mut Machine, cache: &mut CodeCache, dst: FragmentId) {
    let incoming: Vec<(FragmentId, usize)> = cache.frag(dst).incoming.clone();
    for (src, exit_idx) in incoming {
        unlink_exit(machine, cache, src, exit_idx);
    }
}

/// Redirect every exit linked to `old` so it links to `new` instead — the
/// heart of safe fragment replacement: "all links targeting and originating
/// from the old fragment are immediately modified to use the new fragment"
/// (paper §3.4).
pub fn redirect_incoming(
    machine: &mut Machine,
    cache: &mut CodeCache,
    old: FragmentId,
    new: FragmentId,
) {
    let incoming: Vec<(FragmentId, usize)> = cache.frag(old).incoming.clone();
    for (src, exit_idx) in incoming {
        unlink_exit(machine, cache, src, exit_idx);
        link_exit(machine, cache, src, exit_idx, new);
    }
}

/// Unlink all of `frag`'s own outgoing links (used when deleting it).
pub fn unlink_outgoing(machine: &mut Machine, cache: &mut CodeCache, frag: FragmentId) {
    let n = cache.frag(frag).exits.len();
    for i in 0..n {
        unlink_exit(machine, cache, frag, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FragmentKind;
    use crate::config::layout;
    use crate::emit::emit_fragment;
    use crate::mangle::mangle_bb;
    use rio_ia32::{InstrList, Level};
    use rio_sim::{CpuExit, CpuKind, ExecRegion, Image, Machine};

    /// Build two blocks: A `jmp B_tag`, B `mov eax, 9; ret`-ish halt.
    fn two_blocks() -> (Machine, CodeCache, FragmentId, FragmentId) {
        let mut m = Machine::new(CpuKind::Pentium4);
        let mut cache = CodeCache::new();
        // A at 0x1000: jmp 0x2000
        let mut a =
            InstrList::decode_block(&[0xE9, 0xFB, 0x0F, 0x00, 0x00], 0x1000, Level::L3).unwrap();
        mangle_bb(&mut a, 0x1005);
        let fa = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x1000,
            a,
            vec![],
            vec![(0x1000, 0x1005)],
        )
        .unwrap();
        // B at 0x2000: mov eax, 9; hlt
        let mut b = InstrList::decode_block(&[0xB8, 9, 0, 0, 0, 0xF4], 0x2000, Level::L3).unwrap();
        mangle_bb(&mut b, 0x2006);
        let fb = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x2000,
            b,
            vec![],
            vec![(0x2000, 0x2006)],
        )
        .unwrap();
        m.set_exec_regions(vec![ExecRegion::new(Image::CACHE_BASE, Image::CACHE_END)]);
        (m, cache, fa, fb)
    }

    #[test]
    fn linked_exit_jumps_directly_into_target() {
        let (mut m, mut cache, fa, fb) = two_blocks();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        m.cpu.eip = cache.frag(fa).start;
        let exit = m.run();
        // Control flows A -> B without leaving the cache, B halts.
        assert_eq!(exit, CpuExit::Halt);
        assert_eq!(m.cpu.reg(rio_ia32::Reg::Eax), 9);
        assert_eq!(cache.frag(fb).incoming, vec![(fa, 0)]);
    }

    #[test]
    fn unlinked_exit_returns_to_stub() {
        let (mut m, mut cache, fa, fb) = two_blocks();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        unlink_exit(&mut m, &mut cache, fa, 0);
        m.cpu.eip = cache.frag(fa).start;
        let exit = m.run();
        let stub = cache.frag(fa).exits[0].stub;
        assert_eq!(exit, CpuExit::OutOfRegion(layout::stub_sentinel(stub)));
        assert!(cache.frag(fb).incoming.is_empty());
    }

    #[test]
    fn unlink_incoming_detaches_all_sources() {
        let (mut m, mut cache, fa, fb) = two_blocks();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        unlink_incoming(&mut m, &mut cache, fb);
        assert!(cache.frag(fa).exits[0].linked_to.is_none());
        assert!(cache.frag(fb).incoming.is_empty());
    }

    #[test]
    fn redirect_incoming_moves_links() {
        let (mut m, mut cache, fa, fb) = two_blocks();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        // Emit a replacement copy of B.
        let mut b2 =
            InstrList::decode_block(&[0xB8, 11, 0, 0, 0, 0xF4], 0x2000, Level::L3).unwrap();
        mangle_bb(&mut b2, 0x2006);
        let fb2 = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x2000,
            b2,
            vec![],
            vec![(0x2000, 0x2006)],
        )
        .unwrap();
        redirect_incoming(&mut m, &mut cache, fb, fb2);
        m.cpu.eip = cache.frag(fa).start;
        assert_eq!(m.run(), CpuExit::Halt);
        assert_eq!(m.cpu.reg(rio_ia32::Reg::Eax), 11); // new fragment ran
        assert_eq!(cache.frag(fb2).incoming, vec![(fa, 0)]);
        assert!(cache.frag(fb).incoming.is_empty());
    }

    #[test]
    fn unlinking_forced_exit_restores_the_stub_sentinel() {
        use crate::emit::CustomStub;
        use rio_ia32::{create, MemRef, OpSize, Opnd};
        let mut m = Machine::new(CpuKind::Pentium4);
        let mut cache = CodeCache::new();
        // A at 0x1000: jmp 0x2000, with a custom stub that bumps a counter
        // and keeps routing through the stub even when linked.
        let mut a =
            InstrList::decode_block(&[0xE9, 0xFB, 0x0F, 0x00, 0x00], 0x1000, Level::L3).unwrap();
        mangle_bb(&mut a, 0x1005);
        let exit_id = a.last_id().unwrap();
        let mut stub_il = InstrList::new();
        stub_il.push_back(create::inc(Opnd::Mem(MemRef::absolute(
            layout::SCRATCH_SLOT,
            OpSize::S32,
        ))));
        let fa = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x1000,
            a,
            vec![CustomStub {
                exit_instr: exit_id,
                instrs: stub_il,
                force_stub: true,
            }],
            vec![(0x1000, 0x1005)],
        )
        .unwrap();
        let mut b = InstrList::decode_block(&[0xB8, 9, 0, 0, 0, 0xF4], 0x2000, Level::L3).unwrap();
        mangle_bb(&mut b, 0x2006);
        let fb = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x2000,
            b,
            vec![],
            vec![(0x2000, 0x2006)],
        )
        .unwrap();
        m.set_exec_regions(vec![ExecRegion::new(Image::CACHE_BASE, Image::CACHE_END)]);
        link_exit(&mut m, &mut cache, fa, 0, fb);
        unlink_exit(&mut m, &mut cache, fa, 0);
        // After the unlink, running A must execute the custom stub code and
        // come to rest on the stub *sentinel* — not loop back into the stub
        // entry.
        m.cpu.eip = cache.frag(fa).start;
        let exit = m.run();
        let stub = cache.frag(fa).exits[0].stub;
        assert_eq!(exit, CpuExit::OutOfRegion(layout::stub_sentinel(stub)));
        assert_eq!(m.mem.read_u32(layout::SCRATCH_SLOT), 1); // stub code ran
    }

    #[test]
    #[should_panic(expected = "exit already linked")]
    fn double_link_is_rejected() {
        let (mut m, mut cache, fa, fb) = two_blocks();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        link_exit(&mut m, &mut cache, fa, 0, fb);
    }
}
