//! The `Core` context: the engine state handed to client hooks.
//!
//! `Core` plays the role of the paper's opaque `context` parameter plus the
//! exported API (§3.2): transparent output, register spill slots, a generic
//! thread-local field, processor identification, custom exit stubs, clean
//! calls, custom trace heads (§3.5), and the adaptive-optimization interface
//! `dr_decode_fragment` / `dr_replace_fragment` (§3.4).

use std::collections::HashSet;

use rio_ia32::{create, decode_instr, Instr, InstrId, InstrList, MemRef, OpSize, Reg, Target};
use rio_sim::{CpuKind, Image, Machine, Os};

use crate::cache::{CodeCache, ExitKind, FragmentId, FragmentKind};
use crate::config::{layout, Options, RioCosts};
use crate::emit::{emit_fragment, CustomStub};
use crate::link::{redirect_incoming, unlink_incoming, unlink_outgoing};
use crate::mangle::Note;
use crate::stats::Stats;
use crate::verify::{verify_fragment, LintSnapshot, Violation};

/// State of an in-progress trace recording (§3.5's trace generation mode).
#[derive(Clone, Debug)]
pub(crate) struct Recording {
    /// The trace head tag.
    pub trace_tag: u32,
    /// Tags of the blocks recorded so far, in execution order.
    pub tags: Vec<u32>,
}

/// Per-thread engine state: the thread-private cache plus trace-recording
/// state (paper §2: thread-private caches "enable thread-specific
/// optimizations" and avoid all cross-thread synchronization).
pub(crate) struct ThreadCore {
    pub cache: CodeCache,
    pub recording: Option<Recording>,
    pub last_exit_was_return: bool,
    /// Tags whose fragments were evicted for repeated faulting; the next
    /// dispatch of such a tag runs the application code by emulation
    /// instead of rebuilding a (possibly still-faulting) cache copy.
    pub fault_quarantine: HashSet<u32>,
    /// Whether the thread is currently executing a quarantined block
    /// outside the cache (so `handle_leave` treats application addresses
    /// as ordinary dispatch targets).
    pub quarantine_exec: bool,
}

impl ThreadCore {
    pub(crate) fn new(tid: u32) -> ThreadCore {
        ThreadCore {
            cache: CodeCache::for_thread(tid),
            recording: None,
            last_exit_was_return: false,
            fault_quarantine: HashSet::new(),
            quarantine_exec: false,
        }
    }
}

/// The engine context passed to every client hook.
pub struct Core {
    /// The simulated machine executing the code cache.
    pub machine: Machine,
    /// Engine configuration.
    pub options: Options,
    /// Runtime overhead cost parameters.
    pub costs: RioCosts,
    /// Engine statistics.
    pub stats: Stats,
    pub(crate) threads: Vec<ThreadCore>,
    pub(crate) cur: usize,
    pub(crate) os: Os,
    pub(crate) pending_deletions: Vec<FragmentId>,
    pub(crate) pending_custom_stubs: Vec<CustomStub>,
    pub(crate) marked_heads: HashSet<u32>,
    pub(crate) app_entry: u32,
    pub(crate) app_code_range: (u32, u32),
    pub(crate) last_dispatched: Option<u32>,
    clean_call_args: Vec<u64>,
    client_output: String,
    sideline_queue: Vec<(u32, u64)>,
    sideline_cycles: u64,
    pending_flush: bool,
    /// Fragments touched by an emit/link/unlink/invalidate/evict since the
    /// last safe point, awaiting re-verification under [`Options::verify`].
    verify_queue: Vec<(usize, FragmentId)>,
    /// Violations recorded by incremental verification and the lints.
    verify_findings: Vec<Violation>,
}

impl Core {
    /// Create a core over a fresh machine with `image` loaded.
    pub fn new(image: &Image, options: Options, kind: CpuKind) -> Core {
        let mut machine = Machine::new(kind);
        machine.load_image(image);
        Core {
            machine,
            options,
            costs: RioCosts::default(),
            stats: Stats::default(),
            threads: vec![ThreadCore::new(0)],
            cur: 0,
            os: Os::new(),
            pending_deletions: Vec::new(),
            pending_custom_stubs: Vec::new(),
            marked_heads: HashSet::new(),
            app_entry: image.entry,
            app_code_range: image.code_range(),
            last_dispatched: None,
            clean_call_args: Vec::new(),
            client_output: String::new(),
            sideline_queue: Vec::new(),
            sideline_cycles: 0,
            pending_flush: false,
            verify_queue: Vec::new(),
            verify_findings: Vec::new(),
        }
    }

    // ----- transparency (§3.2) -------------------------------------------

    /// Transparent client output (paper: `dr_printf`) — buffered separately
    /// from the application's output so client I/O can never interleave
    /// with or corrupt it.
    pub fn printf(&mut self, s: impl AsRef<str>) {
        self.client_output.push_str(s.as_ref());
    }

    /// Everything the client printed so far.
    pub fn client_output(&self) -> &str {
        &self.client_output
    }

    /// The application's buffered output so far.
    pub fn app_output(&self) -> &str {
        &self.os.output
    }

    // ----- processor identification (§3.2) -------------------------------

    /// The processor family the code cache runs on (paper:
    /// `proc_get_family`), for architecture-specific optimizations.
    pub fn proc_kind(&self) -> CpuKind {
        self.machine.cost.kind()
    }

    // ----- overhead accounting -------------------------------------------

    /// Charge cycles of client work (optimization time) to the run. The
    /// paper's evaluation includes optimization time in the measured runs;
    /// clients call this to model theirs.
    pub fn charge(&mut self, cycles: u64) {
        self.machine.charge(cycles);
    }

    // ----- spill slots and client TLS (§3.2) ------------------------------

    /// The thread-local spill slot for a register (paper: "special
    /// thread-local slots to spill registers"). Only `%ecx`, `%eax`, and
    /// `%edx` have dedicated slots.
    ///
    /// # Panics
    ///
    /// Panics for registers without a slot.
    pub fn spill_slot(reg: Reg) -> MemRef {
        let addr = match reg.parent32() {
            Reg::Ecx => layout::ECX_SLOT,
            Reg::Eax => layout::EAX_SLOT,
            Reg::Edx => layout::EDX_SLOT,
            other => panic!("no spill slot for {other}"),
        };
        MemRef::absolute(addr, OpSize::S32)
    }

    /// Read the generic client thread-local field (paper §3.2). The field is
    /// also addressable from generated code via
    /// [`layout::CLIENT_TLS_SLOT`](crate::config::layout::CLIENT_TLS_SLOT).
    ///
    /// Note: with cooperative multithreading the slot is shared across
    /// threads (as are the register spill slots). This is safe for the
    /// engine's own spills — threads only switch at system calls, never
    /// inside a mangled spill/restore sequence — but clients storing
    /// longer-lived per-thread state should key it by
    /// [`Core::current_thread`].
    pub fn client_tls(&self) -> u32 {
        self.machine.mem.read_u32(layout::CLIENT_TLS_SLOT)
    }

    /// Write the generic client thread-local field.
    pub fn set_client_tls(&mut self, v: u32) {
        self.machine.mem.write_u32(layout::CLIENT_TLS_SLOT, v);
    }

    // ----- custom exit stubs (§3.2) ---------------------------------------

    /// Request that `instrs` be prepended to the exit stub of the exit CTI
    /// `exit`, optionally forcing the exit to route through the stub even
    /// when linked. Applies to the fragment currently being built (call from
    /// within a `basic_block` or `trace` hook).
    pub fn append_exit_stub(&mut self, exit: InstrId, instrs: InstrList, force_stub: bool) {
        self.pending_custom_stubs.push(CustomStub {
            exit_instr: exit,
            instrs,
            force_stub,
        });
    }

    // ----- clean calls ----------------------------------------------------

    /// Create a call instruction that, when executed in the code cache,
    /// transfers to the client's [`Client::clean_call`] hook with `arg`
    /// (the mechanism behind Figure 4's `call prof_routine`). Insert the
    /// returned instruction anywhere in a block or trace.
    ///
    /// [`Client::clean_call`]: crate::Client::clean_call
    pub fn clean_call_instr(&mut self, arg: u64) -> Instr {
        let token = self.clean_call_args.len() as u32;
        self.clean_call_args.push(arg);
        create::call(Target::Pc(layout::clean_call_sentinel(token)))
    }

    /// The argument registered for clean-call token `token`.
    pub(crate) fn clean_call_arg(&self, token: u32) -> Option<u64> {
        self.clean_call_args.get(token as usize).copied()
    }

    /// Number of clean-call tokens registered so far (sentinels below this
    /// bound are valid transfer targets for the verifier).
    pub(crate) fn clean_call_count(&self) -> u32 {
        self.clean_call_args.len() as u32
    }

    // ----- custom traces (§3.5) -------------------------------------------

    /// Mark `tag` as a trace head (paper: `dr_mark_trace_head`). Future and
    /// existing blocks for `tag` will be counted in dispatch and eventually
    /// grown into traces; any links into an existing block are severed so
    /// dispatch sees every execution.
    pub fn mark_trace_head(&mut self, tag: u32) {
        if !self.marked_heads.insert(tag) {
            return;
        }
        self.stats.trace_heads += 1;
        if let Some(id) = self.threads[self.cur].cache.lookup_bb(tag) {
            if !self.threads[self.cur].cache.frag(id).is_trace_head {
                self.threads[self.cur].cache.frag_mut(id).is_trace_head = true;
                let n_unlinked = self.threads[self.cur].cache.frag(id).incoming.len() as u64;
                self.note_verify_neighbors(self.cur, id);
                unlink_incoming(&mut self.machine, &mut self.threads[self.cur].cache, id);
                self.stats.unlinks += n_unlinked;
            }
        }
    }

    /// Whether `tag` has been marked as a trace head.
    pub fn is_trace_head(&self, tag: u32) -> bool {
        self.marked_heads.contains(&tag)
    }

    /// Whether a trace is currently being recorded.
    pub fn in_trace_recording(&self) -> bool {
        self.threads[self.cur].recording.is_some()
    }

    /// Number of blocks recorded so far in the current trace.
    pub fn recording_block_count(&self) -> usize {
        self.threads[self.cur]
            .recording
            .as_ref()
            .map_or(0, |r| r.tags.len())
    }

    /// Whether the most recent fragment exit was a translated return —
    /// exposed for custom-trace clients implementing §4.4's "once a return
    /// is reached, the trace is ended after the next basic block".
    pub fn last_exit_was_return(&self) -> bool {
        self.threads[self.cur].last_exit_was_return
    }

    // ----- fragment queries -----------------------------------------------

    /// Whether a fragment (block or trace) exists for `tag`.
    pub fn fragment_exists(&self, tag: u32) -> bool {
        self.threads[self.cur].cache.lookup(tag).is_some()
    }

    /// The kind of fragment that will execute for `tag`.
    pub fn fragment_kind(&self, tag: u32) -> Option<FragmentKind> {
        self.threads[self.cur]
            .cache
            .lookup(tag)
            .map(|id| self.threads[self.cur].cache.frag(id).kind)
    }

    // ----- adaptive optimization (§3.4) ------------------------------------

    /// Re-create the `InstrList` for the fragment executing for `tag` from
    /// the code cache (paper: `dr_decode_fragment`).
    ///
    /// The list reflects exactly the code in the cache body (stubs
    /// excluded). Exit branches are re-targeted to their application
    /// addresses (direct) or the lookup sentinel (indirect, with their
    /// [`Note::IbExit`] marker restored); intra-fragment branches become
    /// label targets. Application pcs and `%ecx` spill/restore markers are
    /// restored from the translation table, so a re-emitted copy keeps
    /// working fault translation. Inline-check *metadata* (the expected
    /// target of a [`Note::IbCheckBegin`]) is not reconstructable from
    /// machine code, so re-decoded fragments conservatively lose check
    /// elision.
    pub fn decode_fragment(&self, tag: u32) -> Option<InstrList> {
        let id = self.threads[self.cur].cache.lookup(tag)?;
        let frag = self.threads[self.cur].cache.frag(id);
        let start = frag.start;
        let body_end = start + frag.body_len;

        // Pass 1: linear decode of the body, restoring each instruction's
        // application pc from the translation table.
        let mut decoded: Vec<(u32, Instr)> = Vec::new();
        let mut spill_state: Vec<bool> = Vec::new();
        let mut pc = start;
        let mut buf = [0u8; 16];
        while pc < body_end {
            self.machine.mem.read_bytes(pc, &mut buf);
            let (mut instr, len) = decode_instr(&buf, pc).ok()?;
            let row = frag.translate(pc);
            instr.set_app_pc(row.map_or(0, |t| t.app_pc));
            spill_state.push(row.is_some_and(|t| t.ecx_spilled));
            decoded.push((pc - start, instr));
            pc += len;
        }
        // Restore the %ecx spill markers: `ecx_spilled` flips true on the
        // row *after* a spill and false on the row after the restoring
        // load, so each transition identifies the instruction carrying the
        // marker. (A spill that opened an inline check is re-marked as a
        // plain spill — same region semantics, no elidable metadata.)
        for i in 0..decoded.len().saturating_sub(1) {
            if decoded[i].1.note != 0 {
                continue;
            }
            match (spill_state[i], spill_state[i + 1]) {
                (false, true) => decoded[i].1.note = Note::Spill.pack(),
                (true, false) => decoded[i].1.note = Note::IbCheckEnd.pack(),
                _ => {}
            }
        }

        // Exit branch offsets -> exit metadata.
        let exit_at = |off: u32| frag.exits.iter().find(|e| e.branch_instr_off == off);

        // Intra-fragment branch targets that need labels.
        let mut label_offsets: Vec<u32> = Vec::new();
        for (off, instr) in &decoded {
            if exit_at(*off).is_some() {
                continue;
            }
            if let Some(Target::Pc(t)) = instr.target() {
                if t >= start && t < body_end {
                    label_offsets.push(t - start);
                }
            }
        }

        // Pass 2: build the list, inserting labels and fixing targets.
        let mut il = InstrList::new();
        let mut label_ids: Vec<(u32, InstrId)> = Vec::new();
        for (off, instr) in decoded {
            if label_offsets.contains(&off) {
                let lid = il.push_back(Instr::label());
                label_ids.push((off, lid));
            }
            let mut instr = instr;
            if let Some(exit) = exit_at(off) {
                match exit.kind {
                    ExitKind::Direct { target } => instr.set_target(Target::Pc(target)),
                    ExitKind::Indirect { kind } => {
                        instr.set_target(Target::Pc(layout::IB_LOOKUP));
                        instr.note = Note::IbExit(kind).pack();
                    }
                }
            }
            il.push_back(instr);
        }
        // Fix intra-fragment targets to labels.
        let ids: Vec<InstrId> = il.ids().collect();
        for id in ids {
            let instr = il.get(id);
            if Note::parse(instr.note).is_some() {
                continue;
            }
            if let Some(Target::Pc(t)) = instr.target() {
                if t >= start && t < body_end {
                    let off = t - start;
                    if let Some((_, lid)) = label_ids.iter().find(|(o, _)| *o == off) {
                        il.get_mut(id).set_target(Target::Instr(*lid));
                    }
                }
            }
        }
        Some(il)
    }

    /// Replace the fragment for `tag` with a new version built from `il`
    /// (paper: `dr_replace_fragment`).
    ///
    /// The replacement is safe even while execution is logically inside the
    /// old fragment (e.g. from a clean call out of it): all links targeting
    /// and originating from the old fragment are immediately redirected, the
    /// old fragment's bytes stay resident, and it is deleted at the next
    /// safe point — so "the current thread will continue to execute in the
    /// old fragment only until the next branch" (§3.4).
    ///
    /// Returns `false` if no fragment exists for `tag` or the new list fails
    /// to encode.
    pub fn replace_fragment(&mut self, tag: u32, il: InstrList) -> bool {
        let Some(old) = self.threads[self.cur].cache.lookup(tag) else {
            return false;
        };
        let (kind, src_ranges) = {
            let f = self.threads[self.cur].cache.frag(old);
            (f.kind, f.src_ranges.clone())
        };
        // Transformation-safety lint: diff the replacement list against the
        // cache copy it replaces — client edits may only add writes to
        // registers and flags the liveness analysis proves dead.
        if let Some(pre) = self.decode_fragment(tag) {
            let snapshot = LintSnapshot::capture(&pre);
            self.lint_client_edit(&snapshot, &il, tag);
        }
        self.charge(self.costs.replace_fragment);
        let custom = std::mem::take(&mut self.pending_custom_stubs);
        let Ok(new) = emit_fragment(
            &mut self.machine,
            &mut self.threads[self.cur].cache,
            kind,
            tag,
            il,
            custom,
            src_ranges,
        ) else {
            return false;
        };
        // Preserve trace-head status and counter.
        let (head, counter) = {
            let f = self.threads[self.cur].cache.frag(old);
            (f.is_trace_head, f.counter)
        };
        {
            let f = self.threads[self.cur].cache.frag_mut(new);
            f.is_trace_head = head;
            f.counter = counter;
        }
        self.note_verify(self.cur, new);
        self.note_verify_neighbors(self.cur, old);
        let moved = self.threads[self.cur].cache.frag(old).incoming.len() as u64;
        redirect_incoming(
            &mut self.machine,
            &mut self.threads[self.cur].cache,
            old,
            new,
        );
        self.stats.links += moved;
        self.stats.unlinks += moved;
        unlink_outgoing(&mut self.machine, &mut self.threads[self.cur].cache, old);
        self.threads[self.cur].cache.remove_from_maps(old);
        self.pending_deletions.push(old);
        self.stats.replacements += 1;
        true
    }

    /// Drain fragments awaiting deletion (engine-internal; called at safe
    /// points). Returns their tags for the `fragment_deleted` client hook.
    pub(crate) fn take_safe_deletions(&mut self) -> Vec<u32> {
        let mut tags = Vec::new();
        let eip = self.machine.cpu.eip;
        let mut still_pending = Vec::new();
        for id in std::mem::take(&mut self.pending_deletions) {
            if self.threads[self.cur].cache.frag(id).deleted {
                // Already tombstoned by eviction or invalidation; the hook
                // fired there, so just drop the pending entry.
                continue;
            }
            let inside = self.threads[self.cur].cache.frag(id).contains(eip);
            if inside {
                still_pending.push(id);
            } else {
                // The fragment may have re-acquired links after replacement
                // stripped them: it keeps executing until control leaves it,
                // and traversing an exit re-links lazily. Strip them again
                // so the tombstone leaves no dangling link records.
                self.note_verify_neighbors(self.cur, id);
                unlink_incoming(&mut self.machine, &mut self.threads[self.cur].cache, id);
                unlink_outgoing(&mut self.machine, &mut self.threads[self.cur].cache, id);
                self.threads[self.cur].cache.mark_deleted(id);
                self.stats.deletions += 1;
                tags.push(self.threads[self.cur].cache.frag(id).tag);
            }
        }
        self.pending_deletions = still_pending;
        tags
    }

    // ----- sideline optimization (§3.4's future-work extension) ------------

    /// Queue work for the sideline optimizer: the engine will call
    /// [`Client::sideline_optimize`] with `tag` and `arg` at the next
    /// dispatch, *off the application's critical path* — the "sideline
    /// optimization using this low-overhead trace replacement" the paper
    /// plans in §3.4. Use [`Core::charge_sideline`] inside the handler so
    /// the optimization time lands on the sideline budget rather than the
    /// application's cycles.
    ///
    /// [`Client::sideline_optimize`]: crate::Client::sideline_optimize
    pub fn request_sideline(&mut self, tag: u32, arg: u64) {
        self.sideline_queue.push((tag, arg));
    }

    /// Charge cycles to the sideline optimizer (a concurrent thread in the
    /// paper's plan), not to the application run.
    pub fn charge_sideline(&mut self, cycles: u64) {
        self.sideline_cycles += cycles;
    }

    /// Total cycles spent in sideline optimization.
    pub fn sideline_cycles(&self) -> u64 {
        self.sideline_cycles
    }

    /// Drain pending sideline requests (engine-internal).
    pub(crate) fn take_sideline_requests(&mut self) -> Vec<(u32, u64)> {
        std::mem::take(&mut self.sideline_queue)
    }

    // ----- cache capacity management ----------------------------------------

    /// If a sub-cache's live bytes exceed [`Options::cache_limit`], evict
    /// fragments one at a time in FIFO order (oldest `FragmentId` first —
    /// insertion order) until back under the limit (paper §6: per-fragment
    /// deletion "from the head of the FIFO" beats flushing the whole
    /// cache). Called at dispatch (a safe point — control is out of the
    /// cache), but a fragment that `eip` is suspended inside (a session
    /// stopped mid-[`Rio::step`](crate::Rio::step)) is skipped and becomes
    /// the first candidate at a later dispatch. Returns the tags of evicted
    /// fragments for `fragment_deleted` hooks.
    pub(crate) fn process_cache_pressure(&mut self) -> Vec<u32> {
        let Some(limit) = self.options.cache_limit else {
            return Vec::new();
        };
        let mut tags = Vec::new();
        let eip = self.machine.cpu.eip;
        for kind in [FragmentKind::BasicBlock, FragmentKind::Trace] {
            let mut cursor = FragmentId(0);
            while self.threads[self.cur].cache.live_bytes(kind) > limit {
                let Some(id) = self.threads[self.cur].cache.oldest_live(kind, cursor) else {
                    break;
                };
                cursor = FragmentId(id.0 + 1);
                if self.threads[self.cur].cache.frag(id).contains(eip) {
                    continue;
                }
                self.note_verify_neighbors(self.cur, id);
                unlink_incoming(&mut self.machine, &mut self.threads[self.cur].cache, id);
                unlink_outgoing(&mut self.machine, &mut self.threads[self.cur].cache, id);
                self.threads[self.cur].cache.remove_from_maps(id);
                self.threads[self.cur].cache.mark_deleted(id);
                tags.push(self.threads[self.cur].cache.frag(id).tag);
                self.stats.evictions += 1;
                self.stats.deletions += 1;
            }
        }
        tags
    }

    /// Request that the current thread's entire code cache be flushed at
    /// the next safe point (the next dispatch). Each flushed fragment's tag
    /// is reported through the `fragment_deleted` client hook, exactly as
    /// for capacity-triggered flushes. Safe to call while a session is
    /// suspended by [`Rio::step`](crate::Rio::step) — the flush happens
    /// before any further cache execution.
    pub fn request_cache_flush(&mut self) {
        self.pending_flush = true;
    }

    /// Perform a requested whole-cache flush (engine-internal; called at
    /// dispatch, a safe point). Returns the tags of flushed fragments for
    /// the `fragment_deleted` client hook.
    pub(crate) fn take_requested_flush(&mut self) -> Vec<u32> {
        if !std::mem::take(&mut self.pending_flush) {
            return Vec::new();
        }
        let mut tags = Vec::new();
        for kind in [FragmentKind::BasicBlock, FragmentKind::Trace] {
            let flushed = self.threads[self.cur].cache.flush(kind);
            if flushed.is_empty() {
                continue;
            }
            self.stats.cache_flushes += 1;
            for id in &flushed {
                unlink_incoming(&mut self.machine, &mut self.threads[self.cur].cache, *id);
                crate::link::unlink_outgoing(
                    &mut self.machine,
                    &mut self.threads[self.cur].cache,
                    *id,
                );
            }
            for id in flushed {
                self.threads[self.cur].cache.mark_deleted(id);
                tags.push(self.threads[self.cur].cache.frag(id).tag);
                self.stats.deletions += 1;
            }
        }
        tags
    }

    // ----- cache consistency (paper §6) -------------------------------------

    /// Precisely invalidate every fragment whose source ranges overlap the
    /// written span `[addr, addr + len)` — the response to a
    /// `CpuExit::CodeWrite`. Overlapping fragments in *every* thread's
    /// cache (the writer may invalidate another thread's copy) are unlinked
    /// in both directions, dropped from the lookup tables, and tombstoned;
    /// their bytes stay resident, so this is safe even while `eip` is
    /// still inside the writing fragment. The next dispatch of an
    /// invalidated tag rebuilds from the freshly written application bytes.
    /// Returns the invalidated tags for `fragment_deleted` hooks.
    pub(crate) fn invalidate_code_write(&mut self, addr: u32, len: u32) -> Vec<u32> {
        let lo = addr;
        let hi = addr.saturating_add(len);
        let mut tags = Vec::new();
        for t in 0..self.threads.len() {
            let ids: Vec<FragmentId> = self.threads[t]
                .cache
                .iter()
                .filter(|f| !f.deleted && f.overlaps_src(lo, hi))
                .map(|f| f.id)
                .collect();
            for id in ids {
                self.note_verify_neighbors(t, id);
                unlink_incoming(&mut self.machine, &mut self.threads[t].cache, id);
                unlink_outgoing(&mut self.machine, &mut self.threads[t].cache, id);
                self.threads[t].cache.remove_from_maps(id);
                self.threads[t].cache.mark_deleted(id);
                tags.push(self.threads[t].cache.frag(id).tag);
                self.stats.invalidations += 1;
                self.stats.deletions += 1;
            }
        }
        tags
    }

    // ----- fault recovery ---------------------------------------------------

    /// Evict a repeatedly-faulting fragment through the flush machinery
    /// (unlink both directions, drop from the lookup tables, tombstone) and
    /// quarantine its tag so the next dispatch re-executes the application
    /// code by emulation instead of rebuilding a corrupt copy. Returns the
    /// fragment's tag for the `fragment_deleted` client hook.
    ///
    /// Safe while `eip` is still inside the fragment: the bytes stay
    /// resident (tombstoned, not reused), and delivery redirects control
    /// out of the fragment before it could re-enter.
    pub(crate) fn fault_evict(&mut self, id: FragmentId) -> u32 {
        let tag = self.threads[self.cur].cache.frag(id).tag;
        self.note_verify_neighbors(self.cur, id);
        unlink_incoming(&mut self.machine, &mut self.threads[self.cur].cache, id);
        unlink_outgoing(&mut self.machine, &mut self.threads[self.cur].cache, id);
        self.threads[self.cur].cache.remove_from_maps(id);
        self.threads[self.cur].cache.mark_deleted(id);
        self.threads[self.cur].fault_quarantine.insert(tag);
        self.stats.deletions += 1;
        self.stats.fault_evictions += 1;
        tag
    }

    /// Consume the quarantine marker for `tag`, if present. The dispatch
    /// that consumes it runs the block by emulation; subsequent dispatches
    /// rebuild a fresh cache copy (self-healing).
    pub(crate) fn take_fault_quarantine(&mut self, tag: u32) -> bool {
        self.threads[self.cur].fault_quarantine.remove(&tag)
    }

    // ----- static verification ----------------------------------------------

    /// Run the cache verifier over every live fragment in every thread's
    /// cache, decoding the actual cache bytes and checking the structural
    /// invariants (clean decode, closed-world control flow, link-map
    /// agreement, translation-table monotonicity and coverage, `%ecx`
    /// spill balance, source-range sanity). One check is counted per
    /// fragment in [`Stats::checks_run`]; violations are returned in
    /// deterministic (thread, fragment) order and counted in
    /// [`Stats::violations`].
    pub fn verify_cache(&mut self) -> Vec<Violation> {
        let clean_calls = self.clean_call_count();
        let mut all = Vec::new();
        for t in 0..self.threads.len() {
            let ids: Vec<FragmentId> = self.threads[t]
                .cache
                .iter()
                .filter(|f| !f.deleted)
                .map(|f| f.id)
                .collect();
            for id in ids {
                self.stats.checks_run += 1;
                let v = verify_fragment(
                    &self.machine,
                    &self.threads[t].cache,
                    t,
                    id,
                    self.app_code_range,
                    clean_calls,
                );
                self.stats.violations += v.len() as u64;
                all.extend(v);
            }
        }
        all
    }

    /// Violations recorded so far by incremental (`RIO_VERIFY`)
    /// verification and the client-safety lints, in detection order.
    pub fn verify_findings(&self) -> &[Violation] {
        &self.verify_findings
    }

    /// Queue a fragment for re-verification at the next safe point (no-op
    /// unless [`Options::verify`] is set). Called wherever the cache is
    /// mutated: emission, linking, unlinking, invalidation, eviction.
    pub(crate) fn note_verify(&mut self, thread: usize, id: FragmentId) {
        if self.options.verify {
            self.verify_queue.push((thread, id));
        }
    }

    /// Queue the link neighbors of `id` — incoming sources (their exits
    /// will be re-patched) and outgoing targets (their incoming lists will
    /// shrink) — ahead of an unlink or deletion of `id`.
    pub(crate) fn note_verify_neighbors(&mut self, thread: usize, id: FragmentId) {
        if !self.options.verify {
            return;
        }
        let f = self.threads[thread].cache.frag(id);
        let mut neighbors: Vec<FragmentId> = f.incoming.iter().map(|(src, _)| *src).collect();
        neighbors.extend(f.exits.iter().filter_map(|e| e.linked_to));
        for n in neighbors {
            if n != id {
                self.verify_queue.push((thread, n));
            }
        }
    }

    /// Re-verify every fragment queued since the last safe point
    /// (deduplicated; tombstoned fragments are skipped). Verification work
    /// is not charged to the run. Returns the number of new violations.
    pub(crate) fn drain_verify_queue(&mut self) -> usize {
        if self.verify_queue.is_empty() {
            return 0;
        }
        let mut queue = std::mem::take(&mut self.verify_queue);
        queue.sort_unstable_by_key(|(t, id)| (*t, id.0));
        queue.dedup();
        let clean_calls = self.clean_call_count();
        let mut found = 0;
        for (t, id) in queue {
            if self.threads[t].cache.frag(id).deleted {
                continue;
            }
            self.stats.checks_run += 1;
            let v = verify_fragment(
                &self.machine,
                &self.threads[t].cache,
                t,
                id,
                self.app_code_range,
                clean_calls,
            );
            found += v.len();
            self.stats.violations += v.len() as u64;
            self.verify_findings.extend(v);
        }
        found
    }

    /// Run the client-safety lints over an instruction list a client hook
    /// just returned, diffing it against the pre-hook `snapshot` under a
    /// fresh liveness analysis. Always on (uncharged); violations land in
    /// [`Stats::violations`] and [`Core::verify_findings`].
    pub(crate) fn lint_client_edit(&mut self, snapshot: &LintSnapshot, il: &InstrList, tag: u32) {
        self.stats.checks_run += 1;
        let v = snapshot.check(il, self.cur, tag);
        self.stats.violations += v.len() as u64;
        self.verify_findings.extend(v);
    }

    // ----- introspection for reports ---------------------------------------

    /// The current thread's code cache (read-only), for tests and reports.
    pub fn cache(&self) -> &CodeCache {
        &self.threads[self.cur].cache
    }

    /// Number of threads created so far (including the initial thread).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The currently executing thread's id.
    pub fn current_thread(&self) -> usize {
        self.cur
    }

    /// A specific thread's private cache, for cross-thread inspection in
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread_cache(&self, tid: usize) -> &CodeCache {
        &self.threads[tid].cache
    }

    /// A human-readable listing of the current thread's live fragments:
    /// tag, kind, cache placement, and per-exit link state. A debugging aid
    /// in the spirit of DynamoRIO's `-loglevel` fragment dumps.
    pub fn fragment_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let cache = self.cache();
        for f in cache.iter().filter(|f| !f.deleted) {
            let kind = match f.kind {
                FragmentKind::BasicBlock => "bb   ",
                FragmentKind::Trace => "trace",
            };
            let _ = writeln!(
                out,
                "{kind} tag={:#010x} cache={:#010x}+{:<4} exits={}{}",
                f.tag,
                f.start,
                f.total_len,
                f.exits.len(),
                if f.is_trace_head {
                    format!("  [trace head, count {}]", f.counter)
                } else {
                    String::new()
                }
            );
            for (i, e) in f.exits.iter().enumerate() {
                let desc = match e.kind {
                    ExitKind::Direct { target } => format!("direct -> {target:#010x}"),
                    ExitKind::Indirect { kind } => format!("indirect ({kind:?})"),
                };
                let link = match e.linked_to {
                    Some(id) => format!("linked to {:#010x}", cache.frag(id).start),
                    None => "unlinked".to_string(),
                };
                let _ = writeln!(out, "      exit {i}: {desc}, {link}");
            }
        }
        out
    }

    /// Disassemble the cache body of the fragment executing for `tag`
    /// (current thread), for debugging and the CLI `fragments` command.
    pub fn disassemble_fragment(&self, tag: u32) -> Option<String> {
        use std::fmt::Write;
        let id = self.cache().lookup(tag)?;
        let frag = self.cache().frag(id);
        let mut bytes = vec![0u8; frag.body_len as usize];
        self.machine.mem.read_bytes(frag.start, &mut bytes);
        let lines = rio_ia32::disasm::disassemble(&bytes, frag.start).ok()?;
        let mut out = String::new();
        for l in lines {
            let _ = writeln!(out, "{:08x}  {:<24} {}", l.pc, l.raw, l.text);
        }
        Some(out)
    }
}
