//! Mangling: translating application control flow into code-cache form.
//!
//! * Direct branches stay direct exits (linkable).
//! * Direct calls become `push $return_address` + a direct exit to the
//!   callee — the pushed value is the **original application address**, the
//!   transparency rule of §2 ("original program addresses must be used
//!   wherever the application stores indirect branch targets").
//! * Indirect branches (`ret`, `jmp *`, `call *`) spill `%ecx` to a
//!   thread-local slot, load the target into `%ecx`, and exit to the
//!   indirect-branch lookup.
//! * Inside traces, an inlined **flag-free target check** is emitted instead
//!   of exiting: `lea -expected(%ecx)` + `jecxz` — the same trick real
//!   DynamoRIO uses, avoiding any eflags save/restore around the comparison.
//!
//! Mangled sequences carry markers in [`Instr::note`] (see [`Note`]) so
//! clients can recognize them — the custom-trace client uses this to elide
//! return checks entirely (§4.4).

use rio_ia32::{create, Instr, InstrId, InstrList, MemRef, OpSize, Opcode, Opnd, Reg, Target};

use crate::cache::IndKind;
use crate::config::layout;

/// Parsed form of a core-assigned [`Instr::note`] marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Note {
    /// The exit jump of an indirect-branch translation.
    IbExit(IndKind),
    /// First instruction (the `%ecx` spill) of an inlined indirect-branch
    /// target check in a trace. `extra` holds the `ret imm16` byte count
    /// (0 for plain `ret`); `expected` is the inlined target tag.
    IbCheckBegin {
        /// Kind of the original indirect branch.
        kind: IndKind,
        /// `ret n` immediate (0 if none).
        extra: u16,
        /// The target the check tests for.
        expected: u32,
    },
    /// Final instruction (the `%ecx` restore) of an inlined check.
    IbCheckEnd,
    /// The `%ecx` spill that begins an indirect-branch translation in a
    /// basic block: from here to the fragment exit the application's
    /// `%ecx` lives in the spill slot (fault translation must restore it).
    Spill,
}

const MARK_IB_EXIT: u64 = 1;
const MARK_CHECK_BEGIN: u64 = 2;
const MARK_CHECK_END: u64 = 3;
const MARK_SPILL: u64 = 4;

fn kind_code(kind: IndKind) -> u64 {
    match kind {
        IndKind::Ret => 0,
        IndKind::Jmp => 1,
        IndKind::Call => 2,
    }
}

fn kind_from(code: u64) -> IndKind {
    match code {
        0 => IndKind::Ret,
        1 => IndKind::Jmp,
        _ => IndKind::Call,
    }
}

impl Note {
    /// Pack into the `Instr::note` field.
    pub fn pack(self) -> u64 {
        match self {
            Note::IbExit(kind) => (MARK_IB_EXIT << 56) | (kind_code(kind) << 48),
            Note::IbCheckBegin {
                kind,
                extra,
                expected,
            } => {
                (MARK_CHECK_BEGIN << 56)
                    | (kind_code(kind) << 48)
                    | ((extra as u64) << 32)
                    | expected as u64
            }
            Note::IbCheckEnd => MARK_CHECK_END << 56,
            Note::Spill => MARK_SPILL << 56,
        }
    }

    /// Parse from an `Instr::note` field. Returns `None` for client-owned or
    /// zero notes.
    pub fn parse(note: u64) -> Option<Note> {
        match note >> 56 {
            MARK_IB_EXIT => Some(Note::IbExit(kind_from((note >> 48) & 0xFF))),
            MARK_CHECK_BEGIN => Some(Note::IbCheckBegin {
                kind: kind_from((note >> 48) & 0xFF),
                extra: ((note >> 32) & 0xFFFF) as u16,
                expected: note as u32,
            }),
            MARK_CHECK_END => Some(Note::IbCheckEnd),
            MARK_SPILL => Some(Note::Spill),
            _ => None,
        }
    }
}

fn ecx_slot() -> Opnd {
    Opnd::Mem(MemRef::absolute(layout::ECX_SLOT, OpSize::S32))
}

fn spill_ecx() -> Instr {
    create::mov(ecx_slot(), Opnd::reg(Reg::Ecx))
}

fn restore_ecx() -> Instr {
    create::mov(Opnd::reg(Reg::Ecx), ecx_slot())
}

fn ib_exit_jmp(kind: IndKind) -> Instr {
    let mut j = create::jmp(Target::Pc(layout::IB_LOOKUP));
    j.note = Note::IbExit(kind).pack();
    j
}

/// Summary of a decoded block terminator, captured before mangling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Fell off the end (max-length split); continues at the fall-through.
    FallThrough,
    /// `hlt` — program end, no exit.
    Halt,
    /// Direct unconditional jump.
    Jmp {
        /// Target tag.
        target: u32,
    },
    /// Conditional branch (`jcc` or `jecxz`).
    CondBranch {
        /// Taken-path tag.
        taken: u32,
    },
    /// Direct call.
    Call {
        /// Callee tag.
        target: u32,
    },
    /// Near return (`extra` = `ret n` immediate).
    Ret {
        /// Extra bytes popped.
        extra: u16,
    },
    /// Indirect jump.
    JmpInd,
    /// Indirect call.
    CallInd,
}

/// Extract the value operand of an indirect CTI (`srcs[0]`).
fn ind_target_opnd(instr: &Instr) -> Opnd {
    *instr.src(0)
}

/// Classify the final instruction of a decoded block.
pub fn classify_terminator(il: &InstrList) -> Terminator {
    let Some(last_id) = il.last_id() else {
        return Terminator::FallThrough;
    };
    let last = il.get(last_id);
    match last.opcode() {
        Some(Opcode::Hlt) => Terminator::Halt,
        Some(Opcode::Jmp) => match last.target() {
            Some(Target::Pc(t)) => Terminator::Jmp { target: t },
            _ => Terminator::FallThrough,
        },
        Some(op) if op.is_conditional_cti() => match last.target() {
            Some(Target::Pc(t)) => Terminator::CondBranch { taken: t },
            _ => Terminator::FallThrough,
        },
        Some(Opcode::Call) => match last.target() {
            Some(Target::Pc(t)) => Terminator::Call { target: t },
            _ => Terminator::FallThrough,
        },
        Some(Opcode::Ret) => {
            let extra = match last.srcs().first() {
                Some(Opnd::Imm(v, _)) => *v as u16,
                _ => 0,
            };
            Terminator::Ret { extra }
        }
        Some(Opcode::JmpInd) => Terminator::JmpInd,
        Some(Opcode::CallInd) => Terminator::CallInd,
        _ => Terminator::FallThrough,
    }
}

/// Mangle a decoded basic block in place: translate its terminator into
/// exit form. `fall_through` is the application address immediately after
/// the block (used for conditional fall-through exits and call return
/// addresses).
pub fn mangle_bb(il: &mut InstrList, fall_through: u32) {
    let term = classify_terminator(il);
    let last_id = il.last_id();
    match term {
        Terminator::Halt | Terminator::Jmp { .. } => {
            // hlt stops the program; a direct jmp is already a valid exit.
        }
        Terminator::FallThrough => {
            il.push_back(create::jmp(Target::Pc(fall_through)));
        }
        Terminator::CondBranch { .. } => {
            // Taken path is the jcc itself; add the fall-through exit.
            il.push_back(create::jmp(Target::Pc(fall_through)));
        }
        Terminator::Call { target } => {
            let id = last_id.expect("call block has instrs");
            let pc = il.get(id).app_pc();
            let mut push = create::push(Opnd::Pc(fall_through));
            push.set_app_pc(pc);
            il.replace(id, push);
            il.push_back(create::jmp(Target::Pc(target)));
        }
        Terminator::Ret { extra } => {
            let id = last_id.expect("ret block has instrs");
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::Spill.pack();
            il.replace(id, spill);
            il.push_back(create::pop(Opnd::reg(Reg::Ecx)));
            if extra != 0 {
                il.push_back(create::lea(
                    Reg::Esp,
                    MemRef::base_disp(Reg::Esp, extra as i32, OpSize::S32),
                ));
            }
            il.push_back(ib_exit_jmp(IndKind::Ret));
        }
        Terminator::JmpInd => {
            let id = last_id.expect("jmp* block has instrs");
            let rm = ind_target_opnd(il.get(id));
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::Spill.pack();
            il.replace(id, spill);
            il.push_back(create::mov(Opnd::reg(Reg::Ecx), rm));
            il.push_back(ib_exit_jmp(IndKind::Jmp));
        }
        Terminator::CallInd => {
            let id = last_id.expect("call* block has instrs");
            let rm = ind_target_opnd(il.get(id));
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::Spill.pack();
            il.replace(id, spill);
            il.push_back(create::mov(Opnd::reg(Reg::Ecx), rm));
            il.push_back(create::push(Opnd::Pc(fall_through)));
            il.push_back(ib_exit_jmp(IndKind::Call));
        }
    }
}

/// Mangle a block that continues into the next block of a trace: the
/// terminator is rewritten so the on-trace path **falls through** and the
/// off-trace path exits.
///
/// `next_tag` is the tag of the following block on the trace; `fall_through`
/// the application address after this block. For indirect terminators an
/// inlined flag-free target check against `next_tag` is emitted (when
/// `inline_check` is set) — the adaptive-optimization surface of §4.3.
pub fn mangle_trace_connector(
    il: &mut InstrList,
    next_tag: u32,
    fall_through: u32,
    inline_check: bool,
) {
    let term = classify_terminator(il);
    let last_id = il.last_id();
    match term {
        Terminator::Halt => {}
        Terminator::FallThrough => {
            debug_assert_eq!(next_tag, fall_through);
        }
        Terminator::Jmp { target } => {
            debug_assert_eq!(target, next_tag);
            // Eliminated entirely: the next block follows directly (the
            // "superior code layout" of traces).
            let id = last_id.expect("jmp block has instrs");
            il.remove(id);
        }
        Terminator::CondBranch { taken } => {
            let id = last_id.expect("jcc block has instrs");
            if taken == next_tag {
                // Flip the condition so the hot path falls through.
                let instr = il.get(id);
                let pc = instr.app_pc();
                let flipped = match instr.opcode() {
                    Some(Opcode::Jcc(cc)) => {
                        let mut j = create::jcc(cc.negate(), Target::Pc(fall_through));
                        j.set_app_pc(pc);
                        j
                    }
                    // jecxz has no inverse; branch around an exit jmp:
                    // jecxz L; jmp fall_through; L: (trace continues)
                    _ => {
                        let lbl = il.push_back(Instr::label());
                        let mut jz = create::jecxz(Target::Pc(0));
                        jz.set_target(Target::Instr(lbl));
                        il.replace(id, jz);
                        il.insert_after(id, create::jmp(Target::Pc(fall_through)));
                        return;
                    }
                };
                il.replace(id, flipped);
            } else {
                // Fall-through is the hot path already; the jcc exits.
                debug_assert_eq!(fall_through, next_tag);
            }
        }
        Terminator::Call { target } => {
            debug_assert_eq!(target, next_tag);
            let id = last_id.expect("call block has instrs");
            let pc = il.get(id).app_pc();
            let mut push = create::push(Opnd::Pc(fall_through));
            push.set_app_pc(pc);
            il.replace(id, push);
        }
        Terminator::Ret { extra } => {
            let id = last_id.expect("ret block has instrs");
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::IbCheckBegin {
                kind: IndKind::Ret,
                extra,
                expected: next_tag,
            }
            .pack();
            il.replace(id, spill);
            il.push_back(create::pop(Opnd::reg(Reg::Ecx)));
            if extra != 0 {
                il.push_back(create::lea(
                    Reg::Esp,
                    MemRef::base_disp(Reg::Esp, extra as i32, OpSize::S32),
                ));
            }
            emit_check_tail(il, IndKind::Ret, next_tag, inline_check);
        }
        Terminator::JmpInd => {
            let id = last_id.expect("jmp* block has instrs");
            let rm = ind_target_opnd(il.get(id));
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::IbCheckBegin {
                kind: IndKind::Jmp,
                extra: 0,
                expected: next_tag,
            }
            .pack();
            il.replace(id, spill);
            il.push_back(create::mov(Opnd::reg(Reg::Ecx), rm));
            emit_check_tail(il, IndKind::Jmp, next_tag, inline_check);
        }
        Terminator::CallInd => {
            let id = last_id.expect("call* block has instrs");
            let rm = ind_target_opnd(il.get(id));
            let pc = il.get(id).app_pc();
            let mut spill = spill_ecx();
            spill.set_app_pc(pc);
            spill.note = Note::IbCheckBegin {
                kind: IndKind::Call,
                extra: 0,
                expected: next_tag,
            }
            .pack();
            il.replace(id, spill);
            il.push_back(create::mov(Opnd::reg(Reg::Ecx), rm));
            il.push_back(create::push(Opnd::Pc(fall_through)));
            emit_check_tail(il, IndKind::Call, next_tag, inline_check);
        }
    }
}

/// Emit the flag-free inlined target check. On entry `%ecx` holds the
/// runtime target and the app's `%ecx` is in the spill slot.
///
/// ```text
///   lea  -expected(%ecx) -> %ecx   ; ecx == 0 iff target matches
///   jecxz match                    ; reads no eflags
///   lea  expected(%ecx) -> %ecx    ; restore target value
///   jmp  IB_LOOKUP                 ; miss: full hashtable lookup
/// match:
///   mov  ECX_SLOT -> %ecx          ; restore application %ecx
/// ```
fn emit_check_tail(il: &mut InstrList, kind: IndKind, expected: u32, inline_check: bool) {
    if !inline_check {
        // No inlining: always exit to the lookup.
        il.push_back(ib_exit_jmp(kind));
        return;
    }
    il.push_back(create::lea(
        Reg::Ecx,
        MemRef::base_disp(Reg::Ecx, -(expected as i32), OpSize::S32),
    ));
    let jz = il.push_back(create::jecxz(Target::Pc(0)));
    il.push_back(create::lea(
        Reg::Ecx,
        MemRef::base_disp(Reg::Ecx, expected as i32, OpSize::S32),
    ));
    il.push_back(ib_exit_jmp(kind));
    let match_lbl = il.push_back(Instr::label());
    il.get_mut(jz).set_target(Target::Instr(match_lbl));
    let mut restore = restore_ecx();
    restore.note = Note::IbCheckEnd.pack();
    il.push_back(restore);
}

/// A recognized inlined indirect-branch check region within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IbCheck {
    /// First instruction of the region (the `%ecx` spill).
    pub begin: InstrId,
    /// Last instruction of the region (the `%ecx` restore).
    pub end: InstrId,
    /// Kind of indirect branch.
    pub kind: IndKind,
    /// `ret n` immediate (0 if none).
    pub extra: u16,
    /// The inlined target the check tests for.
    pub expected: u32,
}

/// Find all inlined indirect-branch check regions in a mangled trace.
pub fn find_ib_checks(il: &InstrList) -> Vec<IbCheck> {
    let mut out = Vec::new();
    let mut open: Option<(InstrId, IndKind, u16, u32)> = None;
    for id in il.ids() {
        match Note::parse(il.get(id).note) {
            Some(Note::IbCheckBegin {
                kind,
                extra,
                expected,
            }) => open = Some((id, kind, extra, expected)),
            Some(Note::IbCheckEnd) => {
                if let Some((begin, kind, extra, expected)) = open.take() {
                    out.push(IbCheck {
                        begin,
                        end: id,
                        kind,
                        extra,
                        expected,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Remove an inlined **return** check entirely, assuming the calling
/// convention holds (§4.4: "Our implementation goes ahead and assumes that
/// the calling convention holds, in which case the return can be removed
/// entirely"). The region collapses to a single `lea` that pops the return
/// address (and any `ret n` bytes) without using it.
///
/// # Panics
///
/// Panics if the region is not a `Ret` check.
pub fn elide_ret_check(il: &mut InstrList, check: &IbCheck) {
    assert_eq!(check.kind, IndKind::Ret, "only return checks can be elided");
    // Collect the region ids.
    let mut ids = Vec::new();
    let mut cur = Some(check.begin);
    while let Some(id) = cur {
        ids.push(id);
        if id == check.end {
            break;
        }
        cur = il.next_id(id);
    }
    assert_eq!(*ids.last().unwrap(), check.end, "malformed check region");
    // Replace the first instruction with the esp adjustment; drop the rest.
    il.replace(
        check.begin,
        create::lea(
            Reg::Esp,
            MemRef::base_disp(Reg::Esp, 4 + check.extra as i32, OpSize::S32),
        ),
    );
    for id in ids.into_iter().skip(1) {
        il.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_ia32::Cc;

    fn decoded_block(bytes: &[u8], pc: u32) -> InstrList {
        InstrList::decode_block(bytes, pc, rio_ia32::Level::L3).unwrap()
    }

    #[test]
    fn note_pack_parse_round_trip() {
        for n in [
            Note::IbExit(IndKind::Ret),
            Note::IbExit(IndKind::Call),
            Note::IbCheckBegin {
                kind: IndKind::Jmp,
                extra: 0,
                expected: 0x401234,
            },
            Note::IbCheckBegin {
                kind: IndKind::Ret,
                extra: 8,
                expected: 0xFFFF_0000,
            },
            Note::IbCheckEnd,
            Note::Spill,
        ] {
            assert_eq!(Note::parse(n.pack()), Some(n));
        }
        assert_eq!(Note::parse(0), None);
        assert_eq!(Note::parse(12345), None); // client-owned note
    }

    #[test]
    fn mangle_direct_jmp_is_untouched() {
        let mut il = decoded_block(&[0xE9, 0x10, 0x00, 0x00, 0x00], 0x1000); // jmp +0x10
        mangle_bb(&mut il, 0x1005);
        assert_eq!(il.len(), 1);
        assert!(il.get(il.last_id().unwrap()).is_exit_cti());
    }

    #[test]
    fn mangle_jcc_adds_fall_through_exit() {
        let mut il = decoded_block(&[0x74, 0x05], 0x1000); // jz +5
        mangle_bb(&mut il, 0x1002);
        assert_eq!(il.len(), 2);
        let last = il.get(il.last_id().unwrap());
        assert_eq!(last.opcode(), Some(Opcode::Jmp));
        assert_eq!(last.target(), Some(Target::Pc(0x1002)));
    }

    #[test]
    fn mangle_call_pushes_app_return_address() {
        let mut il = decoded_block(&[0xE8, 0x00, 0x01, 0x00, 0x00], 0x1000); // call +0x100
        mangle_bb(&mut il, 0x1005);
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(ops, vec![Opcode::Push, Opcode::Jmp]);
        let push = il.get(il.first_id().unwrap());
        assert_eq!(push.src(0), &Opnd::Pc(0x1005)); // original app address
        let jmp = il.get(il.last_id().unwrap());
        assert_eq!(jmp.target(), Some(Target::Pc(0x1105)));
    }

    #[test]
    fn mangle_ret_spills_and_exits_to_lookup() {
        let mut il = decoded_block(&[0xC3], 0x1000);
        mangle_bb(&mut il, 0x1001);
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(ops, vec![Opcode::Mov, Opcode::Pop, Opcode::Jmp]);
        let last = il.get(il.last_id().unwrap());
        assert_eq!(last.target(), Some(Target::Pc(layout::IB_LOOKUP)));
        assert_eq!(Note::parse(last.note), Some(Note::IbExit(IndKind::Ret)));
    }

    #[test]
    fn mangle_ret_n_adjusts_esp() {
        let mut il = decoded_block(&[0xC2, 0x08, 0x00], 0x1000);
        mangle_bb(&mut il, 0x1003);
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(
            ops,
            vec![Opcode::Mov, Opcode::Pop, Opcode::Lea, Opcode::Jmp]
        );
    }

    #[test]
    fn mangle_indirect_call_reads_target_before_push() {
        // call *4(%esp): the memory operand must be read into %ecx before
        // the return address is pushed (esp changes).
        let mut il = decoded_block(&[0xFF, 0x54, 0x24, 0x04], 0x1000);
        mangle_bb(&mut il, 0x1004);
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(
            ops,
            vec![Opcode::Mov, Opcode::Mov, Opcode::Push, Opcode::Jmp]
        );
    }

    #[test]
    fn connector_removes_direct_jmp() {
        let mut il = decoded_block(&[0xE9, 0x10, 0x00, 0x00, 0x00], 0x1000);
        mangle_trace_connector(&mut il, 0x1015, 0x1005, true);
        assert_eq!(il.len(), 0);
    }

    #[test]
    fn connector_flips_taken_jcc() {
        // jz +5 taken to 0x1007 which is the next trace block.
        let mut il = decoded_block(&[0x74, 0x05], 0x1000);
        mangle_trace_connector(&mut il, 0x1007, 0x1002, true);
        assert_eq!(il.len(), 1);
        let i = il.get(il.first_id().unwrap());
        assert_eq!(i.opcode(), Some(Opcode::Jcc(Cc::Nz))); // flipped
        assert_eq!(i.target(), Some(Target::Pc(0x1002))); // exits to fall-through
    }

    #[test]
    fn connector_keeps_untaken_jcc() {
        // Fall-through 0x1002 is the next block; jcc exits on taken path.
        let mut il = decoded_block(&[0x74, 0x05], 0x1000);
        mangle_trace_connector(&mut il, 0x1002, 0x1002, true);
        let i = il.get(il.first_id().unwrap());
        assert_eq!(i.opcode(), Some(Opcode::Jcc(Cc::Z)));
        assert_eq!(i.target(), Some(Target::Pc(0x1007)));
    }

    #[test]
    fn connector_inlines_ret_check_with_markers() {
        let mut il = decoded_block(&[0xC3], 0x1000);
        mangle_trace_connector(&mut il, 0x2000, 0x1001, true);
        let checks = find_ib_checks(&il);
        assert_eq!(checks.len(), 1);
        let c = checks[0];
        assert_eq!(c.kind, IndKind::Ret);
        assert_eq!(c.expected, 0x2000);
        // Region contains the flag-free comparison: two leas and a jecxz,
        // and no eflags-writing instruction.
        let mut cur = Some(c.begin);
        while let Some(id) = cur {
            let eff = il.get(id).eflags();
            assert!(eff.written.is_empty(), "check must not clobber eflags");
            if id == c.end {
                break;
            }
            cur = il.next_id(id);
        }
    }

    #[test]
    fn connector_without_inlining_always_exits() {
        let mut il = decoded_block(&[0xC3], 0x1000);
        mangle_trace_connector(&mut il, 0x2000, 0x1001, false);
        let last = il.get(il.last_id().unwrap());
        assert_eq!(Note::parse(last.note), Some(Note::IbExit(IndKind::Ret)));
        assert!(find_ib_checks(&il).is_empty());
    }

    #[test]
    fn elide_ret_check_collapses_to_lea() {
        let mut il = decoded_block(&[0xC3], 0x1000);
        mangle_trace_connector(&mut il, 0x2000, 0x1001, true);
        let checks = find_ib_checks(&il);
        elide_ret_check(&mut il, &checks[0]);
        let ops: Vec<_> = il.iter().map(|i| i.opcode().unwrap()).collect();
        assert_eq!(ops, vec![Opcode::Lea]);
        let lea = il.get(il.first_id().unwrap());
        let m = lea.src(0).as_mem().unwrap();
        assert_eq!(m.base, Some(Reg::Esp));
        assert_eq!(m.disp, 4);
    }

    #[test]
    fn classify_covers_all_terminators() {
        assert_eq!(
            classify_terminator(&decoded_block(&[0xF4], 0)),
            Terminator::Halt
        );
        assert_eq!(
            classify_terminator(&decoded_block(&[0xFF, 0xE0], 0)),
            Terminator::JmpInd
        );
        assert_eq!(
            classify_terminator(&decoded_block(&[0xFF, 0xD0], 0)),
            Terminator::CallInd
        );
        assert_eq!(
            classify_terminator(&decoded_block(&[0xC2, 0x04, 0x00], 0)),
            Terminator::Ret { extra: 4 }
        );
        assert_eq!(
            classify_terminator(&decoded_block(&[0x90], 0)),
            Terminator::FallThrough
        );
    }
}
