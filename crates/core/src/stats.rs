//! Engine statistics.

use std::fmt;

/// Counts of engine events over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Basic blocks built.
    pub bbs_built: u64,
    /// Application instructions decoded while building basic blocks.
    pub bb_instrs: u64,
    /// Traces built.
    pub traces_built: u64,
    /// Application instructions stitched into traces.
    pub trace_instrs: u64,
    /// Dispatcher invocations.
    pub dispatches: u64,
    /// Context switches from the code cache back to the engine.
    pub context_switches: u64,
    /// Indirect-branch lookups performed (in-cache or in dispatch).
    pub ib_lookups: u64,
    /// Indirect-branch lookups that hit and stayed in the cache.
    pub ib_lookup_hits: u64,
    /// Exits linked.
    pub links: u64,
    /// Exits unlinked.
    pub unlinks: u64,
    /// Fragments replaced via the adaptive interface.
    pub replacements: u64,
    /// Fragments deleted.
    pub deletions: u64,
    /// Clean calls into client code.
    pub clean_calls: u64,
    /// Instructions executed under pure emulation.
    pub emulated_instrs: u64,
    /// Trace heads marked.
    pub trace_heads: u64,
    /// Sub-cache flushes triggered by the capacity limit.
    pub cache_flushes: u64,
    /// Application threads spawned (beyond the initial thread).
    pub threads_spawned: u64,
    /// Guest faults raised (handled or not).
    pub faults_raised: u64,
    /// Guest faults delivered to a registered handler.
    pub faults_delivered: u64,
    /// Fragments evicted for repeated faulting.
    pub fault_evictions: u64,
    /// Guest stores that landed in monitored code regions (self-modifying
    /// code events).
    pub code_writes: u64,
    /// Fragments precisely invalidated because a code write overlapped
    /// their source ranges.
    pub invalidations: u64,
    /// Fragments evicted FIFO by capacity pressure (distinct from
    /// `cache_flushes`, which counts whole-sub-cache flushes).
    pub evictions: u64,
    /// Static-verification passes run over individual fragments (the cache
    /// verifier plus the client-safety lints).
    pub checks_run: u64,
    /// Verifier and lint violations detected.
    pub violations: u64,
}

impl Stats {
    /// Accumulate another run's statistics into this one, field-wise — the
    /// aggregation primitive behind suite-level reporting (sum the stats of
    /// every benchmark run, however the runs were distributed over worker
    /// threads).
    pub fn merge(&mut self, other: &Stats) {
        self.bbs_built += other.bbs_built;
        self.bb_instrs += other.bb_instrs;
        self.traces_built += other.traces_built;
        self.trace_instrs += other.trace_instrs;
        self.dispatches += other.dispatches;
        self.context_switches += other.context_switches;
        self.ib_lookups += other.ib_lookups;
        self.ib_lookup_hits += other.ib_lookup_hits;
        self.links += other.links;
        self.unlinks += other.unlinks;
        self.replacements += other.replacements;
        self.deletions += other.deletions;
        self.clean_calls += other.clean_calls;
        self.emulated_instrs += other.emulated_instrs;
        self.trace_heads += other.trace_heads;
        self.cache_flushes += other.cache_flushes;
        self.threads_spawned += other.threads_spawned;
        self.faults_raised += other.faults_raised;
        self.faults_delivered += other.faults_delivered;
        self.fault_evictions += other.fault_evictions;
        self.code_writes += other.code_writes;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
        self.checks_run += other.checks_run;
        self.violations += other.violations;
    }

    /// Sum a collection of per-run statistics into one aggregate.
    pub fn aggregate<'a>(runs: impl IntoIterator<Item = &'a Stats>) -> Stats {
        let mut total = Stats::default();
        for s in runs {
            total.merge(s);
        }
        total
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "blocks: {} ({} instrs)  traces: {} ({} instrs)  trace heads: {}",
            self.bbs_built, self.bb_instrs, self.traces_built, self.trace_instrs, self.trace_heads
        )?;
        writeln!(
            f,
            "dispatches: {}  context switches: {}  links: {} (+{} unlinks)",
            self.dispatches, self.context_switches, self.links, self.unlinks
        )?;
        writeln!(
            f,
            "ib lookups: {} ({} in-cache hits)  clean calls: {}  replacements: {}  deletions: {}  flushes: {}  evictions: {}",
            self.ib_lookups, self.ib_lookup_hits, self.clean_calls, self.replacements,
            self.deletions, self.cache_flushes, self.evictions
        )?;
        writeln!(
            f,
            "emulated instrs: {}  threads spawned: {}",
            self.emulated_instrs, self.threads_spawned
        )?;
        writeln!(
            f,
            "faults: {} raised, {} delivered, {} fragment evictions",
            self.faults_raised, self.faults_delivered, self.fault_evictions
        )?;
        write!(
            f,
            "code writes: {}  precise invalidations: {}  checks: {} ({} violations)",
            self.code_writes, self.invalidations, self.checks_run, self.violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = Stats::default();
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn merge_sums_every_field() {
        let a = Stats {
            bbs_built: 1,
            bb_instrs: 2,
            traces_built: 3,
            trace_instrs: 4,
            dispatches: 5,
            context_switches: 6,
            ib_lookups: 7,
            ib_lookup_hits: 8,
            links: 9,
            unlinks: 10,
            replacements: 11,
            deletions: 12,
            clean_calls: 13,
            emulated_instrs: 14,
            trace_heads: 15,
            cache_flushes: 16,
            threads_spawned: 17,
            faults_raised: 18,
            faults_delivered: 19,
            fault_evictions: 20,
            code_writes: 21,
            invalidations: 22,
            evictions: 23,
            checks_run: 24,
            violations: 25,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.bbs_built, 2);
        assert_eq!(b.threads_spawned, 34);
        assert_eq!(b.fault_evictions, 40);
        assert_eq!(b.code_writes, 42);
        assert_eq!(b.invalidations, 44);
        assert_eq!(b.evictions, 46);
        assert_eq!(b.checks_run, 48);
        assert_eq!(b.violations, 50);
        assert_eq!(Stats::aggregate([&a, &a, &a]).dispatches, 15);
        assert_eq!(Stats::aggregate([]), Stats::default());
    }

    /// A `Stats` whose every field is a distinct value derived from `k`.
    fn varied(k: u64) -> Stats {
        Stats {
            bbs_built: k,
            bb_instrs: 2 * k + 1,
            traces_built: 3 * k + 2,
            trace_instrs: 5 * k + 3,
            dispatches: 7 * k + 4,
            context_switches: 11 * k + 5,
            ib_lookups: 13 * k + 6,
            ib_lookup_hits: 17 * k + 7,
            links: 19 * k + 8,
            unlinks: 23 * k + 9,
            replacements: 29 * k + 10,
            deletions: 31 * k + 11,
            clean_calls: 37 * k + 12,
            emulated_instrs: 41 * k + 13,
            trace_heads: 43 * k + 14,
            cache_flushes: 47 * k + 15,
            threads_spawned: 53 * k + 16,
            faults_raised: 59 * k + 17,
            faults_delivered: 61 * k + 18,
            fault_evictions: 67 * k + 19,
            code_writes: 71 * k + 20,
            invalidations: 73 * k + 21,
            evictions: 79 * k + 22,
            checks_run: 83 * k + 23,
            violations: 89 * k + 24,
        }
    }

    #[test]
    fn merge_of_n_equals_aggregate() {
        let runs: Vec<Stats> = (0..7).map(varied).collect();
        let mut merged = Stats::default();
        for r in &runs {
            merged.merge(r);
        }
        assert_eq!(merged, Stats::aggregate(runs.iter()));
        // Aggregation is order-independent (field-wise sums).
        assert_eq!(merged, Stats::aggregate(runs.iter().rev()));
    }

    #[test]
    fn display_round_trips_every_nonzero_field() {
        // Distinct 4-digit values, so a substring match identifies exactly
        // one field.
        let mut s = Stats::default();
        let fields: [(&str, &mut u64); 25] = [
            ("bbs_built", &mut s.bbs_built),
            ("bb_instrs", &mut s.bb_instrs),
            ("traces_built", &mut s.traces_built),
            ("trace_instrs", &mut s.trace_instrs),
            ("dispatches", &mut s.dispatches),
            ("context_switches", &mut s.context_switches),
            ("ib_lookups", &mut s.ib_lookups),
            ("ib_lookup_hits", &mut s.ib_lookup_hits),
            ("links", &mut s.links),
            ("unlinks", &mut s.unlinks),
            ("replacements", &mut s.replacements),
            ("deletions", &mut s.deletions),
            ("clean_calls", &mut s.clean_calls),
            ("emulated_instrs", &mut s.emulated_instrs),
            ("trace_heads", &mut s.trace_heads),
            ("cache_flushes", &mut s.cache_flushes),
            ("threads_spawned", &mut s.threads_spawned),
            ("faults_raised", &mut s.faults_raised),
            ("faults_delivered", &mut s.faults_delivered),
            ("fault_evictions", &mut s.fault_evictions),
            ("code_writes", &mut s.code_writes),
            ("invalidations", &mut s.invalidations),
            ("evictions", &mut s.evictions),
            ("checks_run", &mut s.checks_run),
            ("violations", &mut s.violations),
        ];
        let mut names = Vec::new();
        for (i, (name, field)) in fields.into_iter().enumerate() {
            *field = 1001 + i as u64;
            names.push(name);
        }
        let shown = s.to_string();
        for (i, name) in names.iter().enumerate() {
            let value = (1001 + i as u64).to_string();
            assert!(
                shown.contains(&value),
                "Display drops `{name}` (value {value}):\n{shown}"
            );
        }
    }
}
