//! Engine statistics.

use std::fmt;

/// Counts of engine events over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Basic blocks built.
    pub bbs_built: u64,
    /// Application instructions decoded while building basic blocks.
    pub bb_instrs: u64,
    /// Traces built.
    pub traces_built: u64,
    /// Application instructions stitched into traces.
    pub trace_instrs: u64,
    /// Dispatcher invocations.
    pub dispatches: u64,
    /// Context switches from the code cache back to the engine.
    pub context_switches: u64,
    /// Indirect-branch lookups performed (in-cache or in dispatch).
    pub ib_lookups: u64,
    /// Indirect-branch lookups that hit and stayed in the cache.
    pub ib_lookup_hits: u64,
    /// Exits linked.
    pub links: u64,
    /// Exits unlinked.
    pub unlinks: u64,
    /// Fragments replaced via the adaptive interface.
    pub replacements: u64,
    /// Fragments deleted.
    pub deletions: u64,
    /// Clean calls into client code.
    pub clean_calls: u64,
    /// Instructions executed under pure emulation.
    pub emulated_instrs: u64,
    /// Trace heads marked.
    pub trace_heads: u64,
    /// Sub-cache flushes triggered by the capacity limit.
    pub cache_flushes: u64,
    /// Application threads spawned (beyond the initial thread).
    pub threads_spawned: u64,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "blocks: {} ({} instrs)  traces: {} ({} instrs)  trace heads: {}",
            self.bbs_built, self.bb_instrs, self.traces_built, self.trace_instrs, self.trace_heads
        )?;
        writeln!(
            f,
            "dispatches: {}  context switches: {}  links: {} (+{} unlinks)",
            self.dispatches, self.context_switches, self.links, self.unlinks
        )?;
        write!(
            f,
            "ib lookups: {} ({} in-cache hits)  clean calls: {}  replacements: {}  deletions: {}  flushes: {}",
            self.ib_lookups, self.ib_lookup_hits, self.clean_calls, self.replacements,
            self.deletions, self.cache_flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = Stats::default();
        assert!(!s.to_string().is_empty());
    }
}
