//! Fragment emission: placing a mangled `InstrList` into the code cache.
//!
//! Emission scans the list for exit CTIs (direct branches targeting
//! application addresses, and indirect-branch exit jumps targeting the
//! lookup sentinel), materializes one exit stub per exit — including any
//! client-supplied custom stub instructions (§3.2) — encodes the whole list
//! into cache memory, and records the displacement words that linking will
//! patch.

use std::error::Error;
use std::fmt;

use rio_ia32::encode::encode_list;
use rio_ia32::{create, EncodeError, Instr, InstrId, InstrList, Level, Opcode, Target};
use rio_sim::{Image, Machine};

use crate::cache::{
    CodeCache, Exit, ExitKind, Fragment, FragmentId, FragmentKind, IndKind, Translation,
};
use crate::config::layout;
use crate::mangle::Note;

/// Errors from fragment emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitError {
    /// The list failed to encode.
    Encode(EncodeError),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Encode(e) => write!(f, "fragment encoding failed: {e}"),
        }
    }
}

impl Error for EmitError {}

impl From<EncodeError> for EmitError {
    fn from(e: EncodeError) -> EmitError {
        EmitError::Encode(e)
    }
}

/// A client-supplied custom exit stub: instructions prepended to the stub
/// for `exit_instr`, and whether the exit must route through the stub even
/// when linked.
#[derive(Debug)]
pub struct CustomStub {
    /// The exit CTI this stub belongs to.
    pub exit_instr: InstrId,
    /// Instructions to prepend to the stub.
    pub instrs: InstrList,
    /// Keep routing through the stub after linking.
    pub force_stub: bool,
}

/// Classify an instruction as an exit CTI of a cache-ready list.
fn exit_kind_of(instr: &Instr) -> Option<ExitKind> {
    if !instr.is_cti() {
        return None;
    }
    let op = instr.opcode()?;
    if op.is_indirect_cti() {
        // Mangling removes all indirect CTIs; none should remain.
        debug_assert!(false, "unmangled indirect CTI reached emit");
        return None;
    }
    match instr.target() {
        Some(Target::Pc(p)) if p == layout::IB_LOOKUP => {
            let kind = match Note::parse(instr.note) {
                Some(Note::IbExit(k)) => k,
                _ => IndKind::Jmp,
            };
            Some(ExitKind::Indirect { kind })
        }
        Some(Target::Pc(p)) if p < Image::CACHE_BASE => Some(ExitKind::Direct { target: p }),
        _ => None,
    }
}

/// Emit `il` as a fragment of the given kind for `tag`. Consumes the list.
///
/// `custom_stubs` carries any client-requested exit-stub additions (matched
/// by exit instruction id). `src_ranges` lists the application `[start,
/// end)` span of every constituent block (one for a basic block, one per
/// stitched block for a trace) — the index precise invalidation consults
/// when a guest write lands in application code.
///
/// # Errors
///
/// Returns [`EmitError`] if the list cannot be encoded.
pub fn emit_fragment(
    machine: &mut Machine,
    cache: &mut CodeCache,
    kind: FragmentKind,
    tag: u32,
    mut il: InstrList,
    mut custom_stubs: Vec<CustomStub>,
    src_ranges: Vec<(u32, u32)>,
) -> Result<FragmentId, EmitError> {
    // Pre-pass: a jecxz exit cannot encode a rel32 target; reroute it
    // through a nearby trampoline jmp placed in the stub area.
    let jecxz_exits: Vec<InstrId> = il
        .ids()
        .filter(|id| {
            let i = il.get(*id);
            i.opcode() == Some(Opcode::Jecxz) && exit_kind_of(i).is_some()
        })
        .collect();
    let mut trampolines: Vec<(InstrId, u32)> = Vec::new();
    for id in jecxz_exits {
        if let Some(Target::Pc(t)) = il.get(id).target() {
            trampolines.push((id, t));
        }
    }

    // Identify exits in list order.
    let exits_scan: Vec<(InstrId, ExitKind)> = il
        .ids()
        .filter_map(|id| exit_kind_of(il.get(id)).map(|k| (id, k)))
        .collect();

    // Reserve stub indices.
    let frag_id = cache.next_id();
    let stub_base = cache.reserve_stubs(frag_id, exits_scan.len());

    // Stub area boundary marker.
    let boundary = il.push_back(Instr::label());

    // jecxz trampolines live at the start of the stub area, close enough
    // for rel8.
    for (jecxz_id, target) in trampolines {
        let lbl = il.push_back(Instr::label());
        il.push_back(create::jmp(Target::Pc(target)));
        il.get_mut(jecxz_id).set_target(Target::Instr(lbl));
    }

    // Re-scan: the trampoline jmps are themselves direct exits, and the
    // original jecxz instructions no longer are. (Stub indices were reserved
    // before the rewrite, so reserve extras if the count grew.)
    let exits_scan: Vec<(InstrId, ExitKind)> = il
        .ids()
        .filter_map(|id| exit_kind_of(il.get(id)).map(|k| (id, k)))
        .collect();
    if exits_scan.len() > (cache_stub_count(cache, stub_base)) {
        let extra = exits_scan.len() - cache_stub_count(cache, stub_base);
        cache.reserve_stubs(frag_id, extra);
    }

    // Materialize stubs and retarget exit branches.
    struct ExitBuild {
        instr: InstrId,
        kind: ExitKind,
        stub: u32,
        stub_jmp: InstrId,
        unlinked_label: Option<InstrId>, // stub entry label if stub code exists
        force_stub: bool,
    }
    let mut builds: Vec<ExitBuild> = Vec::new();
    for (k, (exit_id, kind)) in exits_scan.iter().enumerate() {
        let stub_index = stub_base + k as u32;
        let sentinel = layout::stub_sentinel(stub_index);
        let custom_pos = custom_stubs.iter().position(|c| c.exit_instr == *exit_id);
        if let Some(pos) = custom_pos {
            let custom = custom_stubs.swap_remove(pos);
            let entry = il.push_back(Instr::label());
            il.append(custom.instrs);
            let stub_jmp = il.push_back(create::jmp(Target::Pc(sentinel)));
            il.get_mut(*exit_id).set_target(Target::Instr(entry));
            builds.push(ExitBuild {
                instr: *exit_id,
                kind: *kind,
                stub: stub_index,
                stub_jmp,
                unlinked_label: Some(entry),
                force_stub: custom.force_stub,
            });
        } else {
            il.get_mut(*exit_id).set_target(Target::Pc(sentinel));
            builds.push(ExitBuild {
                instr: *exit_id,
                kind: *kind,
                stub: stub_index,
                stub_jmp: *exit_id,
                unlinked_label: None,
                force_stub: false,
            });
        }
    }

    // Size, allocate, encode at the final address.
    let sized = encode_list(&il, 0)?;
    let total_len = sized.bytes.len() as u32;
    let start = cache.alloc(kind, total_len);
    let encoded = encode_list(&il, start)?;
    debug_assert_eq!(encoded.bytes.len() as u32, total_len);
    machine.mem.write_bytes(start, &encoded.bytes);
    // Only the decodes overlapping the freshly written bytes can be stale;
    // emitting a fragment no longer wipes unrelated decodes.
    machine.invalidate_code_range(start, total_len);

    // Instruction lengths from consecutive offsets.
    let offset_of = |id: InstrId| encoded.offset_of(id).expect("instr was encoded");
    let len_of = |id: InstrId| -> u32 {
        let off = offset_of(id);
        let mut next_best = total_len;
        for (oid, o) in &encoded.offsets {
            if *o > off && *o < next_best {
                next_best = *o;
            }
            let _ = oid;
        }
        next_best - off
    };

    let body_len = offset_of(boundary);

    // Build the fault-translation table: one row per encoded body
    // instruction, recording the application pc it translates and whether
    // the application's %ecx lives in the spill slot at its start.
    // Mangling-inserted instructions (zero `app_pc`) inherit the pc of the
    // application instruction they expand; anything before the first
    // app-tagged instruction belongs to the block entry (`tag`).
    let mut translations: Vec<Translation> = Vec::new();
    let mut spilled = false;
    let mut cur_pc = tag;
    for iid in il.ids() {
        if iid == boundary {
            break;
        }
        let instr = il.get(iid);
        // Skip zero-width labels — but not Level 0 bundles, which also have
        // no single opcode yet occupy bytes and need a translation row.
        if instr.is_label() {
            continue;
        }
        let Some(off) = encoded.offset_of(iid) else {
            continue;
        };
        if instr.app_pc() != 0 {
            cur_pc = instr.app_pc();
        }
        translations.push(Translation {
            cache_off: off,
            app_pc: cur_pc,
            ecx_spilled: spilled,
            // Level 0 bundles are copied into the cache verbatim, so one
            // row translates the whole bundle by linear offset.
            linear: instr.level() == Level::L0,
        });
        // The spill itself executes with %ecx intact (faults are precise),
        // so the state flips *after* the marked instruction; likewise the
        // restore ends the spilled region only once it has executed.
        match Note::parse(instr.note) {
            Some(Note::Spill) | Some(Note::IbCheckBegin { .. }) => spilled = true,
            Some(Note::IbCheckEnd) => spilled = false,
            _ => {}
        }
    }

    let exits: Vec<Exit> = builds
        .iter()
        .map(|b| {
            let branch_off = offset_of(b.instr);
            let branch_len = len_of(b.instr);
            let branch_disp_addr = start + branch_off + branch_len - 4;
            let (stub_jmp_disp_addr, unlinked_target) = if let Some(lbl) = b.unlinked_label {
                let jmp_off = offset_of(b.stub_jmp);
                let jmp_len = len_of(b.stub_jmp);
                (start + jmp_off + jmp_len - 4, start + offset_of(lbl))
            } else {
                (branch_disp_addr, layout::stub_sentinel(b.stub))
            };
            Exit {
                kind: b.kind,
                stub: b.stub,
                branch_disp_addr,
                unlinked_target,
                stub_jmp_disp_addr,
                force_stub: b.force_stub,
                linked_to: None,
                branch_instr_off: branch_off,
            }
        })
        .collect();

    let id = cache.insert(Fragment {
        id: frag_id,
        tag,
        kind,
        start,
        body_len,
        total_len,
        exits,
        incoming: Vec::new(),
        is_trace_head: false,
        counter: 0,
        deleted: false,
        translations,
        faults: 0,
        src_ranges,
    });
    debug_assert_eq!(id, frag_id);
    Ok(id)
}

/// How many stubs have been reserved at or after `base` (helper for the
/// jecxz re-scan).
fn cache_stub_count(cache: &CodeCache, base: u32) -> usize {
    let mut n = 0usize;
    while cache.stub(base + n as u32).is_some() {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mangle::mangle_bb;
    use rio_ia32::{Opnd, Reg};
    use rio_sim::CpuKind;

    fn machine() -> Machine {
        Machine::new(CpuKind::Pentium4)
    }

    fn emit_block(bytes: &[u8], tag: u32) -> (Machine, CodeCache, FragmentId) {
        let mut m = machine();
        let mut cache = CodeCache::new();
        let mut il = InstrList::decode_block(bytes, tag, Level::L3).unwrap();
        let end = tag + bytes.len() as u32;
        mangle_bb(&mut il, end);
        let id = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            tag,
            il,
            Vec::new(),
            vec![(tag, end)],
        )
        .unwrap();
        (m, cache, id)
    }

    #[test]
    fn direct_jmp_block_has_one_exit() {
        // mov eax,1 ; jmp +0x10
        let (m, cache, id) = emit_block(&[0xB8, 1, 0, 0, 0, 0xE9, 0x10, 0, 0, 0], 0x1000);
        let f = cache.frag(id);
        assert_eq!(f.exits.len(), 1);
        assert!(matches!(
            f.exits[0].kind,
            ExitKind::Direct { target: 0x101a }
        ));
        // The branch targets the stub sentinel when unlinked: decode the
        // emitted jmp and check.
        let disp = m.mem.read_u32(f.exits[0].branch_disp_addr) as i32;
        let resolved = f.exits[0]
            .branch_disp_addr
            .wrapping_add(4)
            .wrapping_add(disp as u32);
        assert_eq!(resolved, layout::stub_sentinel(f.exits[0].stub));
    }

    #[test]
    fn jcc_block_has_two_exits() {
        // jz +5 at 0x1000
        let (_, cache, id) = emit_block(&[0x74, 0x05], 0x1000);
        let f = cache.frag(id);
        assert_eq!(f.exits.len(), 2);
        assert!(matches!(
            f.exits[0].kind,
            ExitKind::Direct { target: 0x1007 }
        ));
        assert!(matches!(
            f.exits[1].kind,
            ExitKind::Direct { target: 0x1002 }
        ));
    }

    #[test]
    fn ret_block_has_indirect_exit() {
        let (_, cache, id) = emit_block(&[0xC3], 0x1000);
        let f = cache.frag(id);
        assert_eq!(f.exits.len(), 1);
        assert!(matches!(
            f.exits[0].kind,
            ExitKind::Indirect { kind: IndKind::Ret }
        ));
    }

    #[test]
    fn body_len_excludes_stub_area() {
        let (_, cache, id) = emit_block(&[0xB8, 1, 0, 0, 0, 0xC3], 0x1000);
        let f = cache.frag(id);
        assert!(f.body_len > 0);
        assert!(f.body_len <= f.total_len);
    }

    #[test]
    fn translation_table_maps_cache_offsets_and_tracks_the_spill() {
        // mov eax,1 (app 0x1000) ; ret (app 0x1005, mangled to
        // spill/pop/exit-jmp which all inherit the ret's pc).
        let (_, cache, id) = emit_block(&[0xB8, 1, 0, 0, 0, 0xC3], 0x1000);
        let f = cache.frag(id);
        assert_eq!(f.translations.len(), 4);
        assert_eq!(
            f.translations[0],
            Translation {
                cache_off: 0,
                app_pc: 0x1000,
                ecx_spilled: false,
                linear: false
            }
        );
        // The spill itself still sees the app's %ecx; everything after it
        // until the exit is in the spilled region.
        assert_eq!(f.translations[1].app_pc, 0x1005);
        assert!(!f.translations[1].ecx_spilled);
        assert!(f.translations[2].ecx_spilled);
        assert!(f.translations[3].ecx_spilled);
        // A fault mid-body (at the pop) translates to the ret's app pc.
        let t = f.translate(f.start + f.translations[2].cache_off).unwrap();
        assert_eq!(t.app_pc, 0x1005);
        assert!(t.ecx_spilled);
    }

    #[test]
    fn custom_stub_instructions_are_emitted() {
        let mut m = machine();
        let mut cache = CodeCache::new();
        let mut il = InstrList::decode_block(&[0xE9, 0x10, 0, 0, 0], 0x1000, Level::L3).unwrap();
        mangle_bb(&mut il, 0x1005);
        let exit_id = il.last_id().unwrap();
        let mut stub_il = InstrList::new();
        // Custom stub: inc a counter in RIO data space.
        stub_il.push_back(create::inc(Opnd::Mem(rio_ia32::MemRef::absolute(
            layout::SCRATCH_SLOT,
            rio_ia32::OpSize::S32,
        ))));
        let id = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x1000,
            il,
            vec![CustomStub {
                exit_instr: exit_id,
                instrs: stub_il,
                force_stub: true,
            }],
            vec![(0x1000, 0x1005)],
        )
        .unwrap();
        let f = cache.frag(id);
        assert!(f.exits[0].force_stub);
        // The stub area contains the inc: find the 0xFF opcode of inc m32.
        let mut bytes = vec![0u8; f.total_len as usize];
        m.mem.read_bytes(f.start, &mut bytes);
        assert!(bytes[f.body_len as usize..].contains(&0xFF));
        // Unlinked target is the stub entry, not the sentinel.
        assert!(f.exits[0].unlinked_target >= f.start);
        assert!(f.exits[0].unlinked_target < f.start + f.total_len);
        assert_ne!(f.exits[0].stub_jmp_disp_addr, f.exits[0].branch_disp_addr);
    }

    #[test]
    fn emitted_block_executes_to_stub_sentinel() {
        let (mut m, cache, id) = emit_block(&[0xB8, 7, 0, 0, 0, 0xE9, 0x10, 0, 0, 0], 0x1000);
        let f = cache.frag(id);
        m.set_exec_regions(vec![rio_sim::ExecRegion::new(
            Image::CACHE_BASE,
            Image::CACHE_END,
        )]);
        m.cpu.eip = f.start;
        let exit = m.run();
        assert_eq!(
            exit,
            rio_sim::CpuExit::OutOfRegion(layout::stub_sentinel(f.exits[0].stub))
        );
        assert_eq!(m.cpu.reg(Reg::Eax), 7);
    }
}
