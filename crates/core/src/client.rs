//! The client interface (paper §3.3, Table 3).
//!
//! A RIO *client* is "coupled with [the engine] in order to jointly operate
//! on an input program". The [`Client`] trait mirrors Table 3's hook
//! functions; each method documents the C hook it reproduces. Hooks receive
//! `&mut Core` in place of the paper's opaque `context` pointer — unlike the
//! C interface, the type system enforces that clients cannot touch engine
//! internals beyond the exported API.

use rio_ia32::InstrList;
use rio_sim::FaultKind;

use crate::core::Core;

/// Client answer to [`Client::end_trace`] (paper §3.5: "the client can
/// direct DynamoRIO to either end the trace, not end the trace, or use its
/// default test").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EndTraceDecision {
    /// Use the engine's default termination test (stop at a backward branch
    /// or upon reaching an existing trace or trace head).
    #[default]
    Default,
    /// End the trace before adding the next block.
    End,
    /// Keep extending the trace regardless of the default test.
    Continue,
}

/// Hook functions called by the engine at the moments listed in Table 3 of
/// the paper.
///
/// All methods have empty defaults, so a client implements only what it
/// needs. See `rio-clients` for the paper's four sample optimizations.
pub trait Client {
    /// Short name for reports.
    fn name(&self) -> &'static str {
        "client"
    }

    /// `dynamorio_init` — client initialization.
    fn init(&mut self, core: &mut Core) {
        let _ = core;
    }

    /// `dynamorio_exit` — client finalization.
    fn on_exit(&mut self, core: &mut Core) {
        let _ = core;
    }

    /// `dynamorio_thread_init` — per-thread initialization.
    fn thread_init(&mut self, core: &mut Core) {
        let _ = core;
    }

    /// `dynamorio_thread_exit` — per-thread finalization.
    fn thread_exit(&mut self, core: &mut Core) {
        let _ = core;
    }

    /// Whether the engine should fully decode basic blocks before calling
    /// [`Client::basic_block`]. Returning `false` keeps the Level 0 bundle
    /// fast path (the hook then sees bundles rather than instructions).
    fn wants_full_decode(&self) -> bool {
        true
    }

    /// `dynamorio_basic_block` — called each time a block is created, before
    /// mangling: the hook sees pure application code.
    fn basic_block(&mut self, core: &mut Core, tag: u32, bb: &mut InstrList) {
        let _ = (core, tag, bb);
    }

    /// `dynamorio_trace` — called each time a trace is created, just before
    /// it is placed in the trace cache. The list has already been completely
    /// processed by the engine: "the client sees exactly the code that will
    /// execute in the code cache (with the exception of the exit stubs)".
    fn trace(&mut self, core: &mut Core, tag: u32, trace: &mut InstrList) {
        let _ = (core, tag, trace);
    }

    /// `dynamorio_fragment_deleted` — called when a fragment is deleted from
    /// the block or trace cache.
    fn fragment_deleted(&mut self, core: &mut Core, tag: u32) {
        let _ = (core, tag);
    }

    /// Called when the application raises a fault, before delivery to the
    /// guest handler (or before the session surfaces a terminal
    /// [`Faulted`](crate::StepOutcome::Faulted) outcome if no handler is
    /// registered). `cache_eip` is where the machine actually faulted — a
    /// code-cache address in cache mode — and `app_pc` is the translated
    /// application pc when the engine could reconstruct it.
    fn fault_event(
        &mut self,
        core: &mut Core,
        kind: FaultKind,
        cache_eip: u32,
        app_pc: Option<u32>,
    ) {
        let _ = (core, kind, cache_eip, app_pc);
    }

    /// `dynamorio_end_trace` — asks the client whether to end the trace
    /// currently being built before appending the block at `next_tag`.
    fn end_trace(&mut self, core: &mut Core, trace_tag: u32, next_tag: u32) -> EndTraceDecision {
        let _ = (core, trace_tag, next_tag);
        EndTraceDecision::Default
    }

    /// Called when generated code executes a clean call the client inserted
    /// with [`Core::clean_call_instr`]. `arg` is the value registered at
    /// insertion time.
    fn clean_call(&mut self, core: &mut Core, arg: u64) {
        let _ = (core, arg);
    }

    /// Called at the next dispatch for each request the client queued with
    /// [`Core::request_sideline`] — re-optimization work performed off the
    /// application's critical path (the paper's planned "sideline
    /// optimization", §3.4). Charge analysis time with
    /// [`Core::charge_sideline`].
    fn sideline_optimize(&mut self, core: &mut Core, tag: u32, arg: u64) {
        let _ = (core, tag, arg);
    }
}

/// The no-op client: plain RIO with no custom transformation (the "base
/// DynamoRIO" bar of Figure 5).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClient;

impl Client for NullClient {
    fn name(&self) -> &'static str {
        "null"
    }

    fn wants_full_decode(&self) -> bool {
        false
    }
}
