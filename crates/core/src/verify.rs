//! Static verification: the cache verifier and the client-safety lints.
//!
//! After emission, linking, invalidation, and eviction have all mutated the
//! code cache, nothing in the running engine re-checks that the *bytes* in
//! the cache still agree with the engine's metadata. This module closes
//! that gap in the spirit of DynamoRIO's `-checklevel` consistency asserts
//! and the closed-cache property program shepherding depends on: it decodes
//! the actual encoded bytes of every live fragment and checks the
//! structural invariants the rest of the engine merely assumes.
//!
//! Two halves:
//!
//! * **Cache verifier** ([`verify_fragment`], surfaced as
//!   `Core::verify_cache`): every byte decodes cleanly; every control-flow
//!   target is within-fragment, a registered exit stub, a linked fragment
//!   entry recorded in the link maps, or an engine entry point; the
//!   forward/backward link maps agree with the patched displacement words;
//!   translation-table rows are strictly increasing, land on instruction
//!   boundaries, and cover the whole body; `%ecx` spill regions derived
//!   from the bytes agree with the rows and are balanced at every exit; and
//!   `src_ranges` lie inside the watched application code.
//!
//! * **Client-safety lints** ([`LintSnapshot`]): around every client hook
//!   that may edit an [`InstrList`], a snapshot of per-instruction write
//!   effects is diffed against the post-hook list under a backward liveness
//!   analysis. Client-*inserted* code must not clobber live application
//!   registers or flag bits (instrumentation safety, validating `shepherd`'s
//!   clean calls), and client *edits* may only add writes to registers and
//!   flags proven dead (transformation safety, validating `inc2add` and
//!   `rlr`).

use std::collections::HashMap;
use std::fmt;

use rio_ia32::liveness::{effects, Liveness, RegSet};
use rio_ia32::{decode_instr, Eflags, Instr, InstrList, MemRef, OpSize, Opcode, Opnd, Reg, Target};
use rio_sim::{Image, Machine};

use crate::cache::{CodeCache, ExitKind, FragmentId};
use crate::config::layout;

/// Which invariant a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Check {
    /// A cache byte range failed to decode as instructions.
    Decode,
    /// A control-flow target escapes the closed world (not within-fragment,
    /// not a registered stub, not a live fragment entry, not an engine
    /// entry point).
    Cfg,
    /// A patched displacement word disagrees with the exit's recorded link
    /// state.
    LinkForward,
    /// A linked target's `incoming` list does not record the link (or
    /// records one that does not exist).
    LinkBackward,
    /// Translation rows are not strictly increasing, point off instruction
    /// boundaries, or fail to cover the body.
    Translation,
    /// The `%ecx` spill state derived from the bytes disagrees with the
    /// translation rows, or is unbalanced at a fragment exit.
    EcxBalance,
    /// A recorded source range lies outside the watched application code.
    SrcRanges,
    /// Client-inserted code clobbers a live application register or flag.
    InstrumentationLint,
    /// A client edit writes a register or flag not proven dead.
    TransformationLint,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::Decode => "decode",
            Check::Cfg => "cfg",
            Check::LinkForward => "link-forward",
            Check::LinkBackward => "link-backward",
            Check::Translation => "translation",
            Check::EcxBalance => "ecx-balance",
            Check::SrcRanges => "src-ranges",
            Check::InstrumentationLint => "lint-instrumentation",
            Check::TransformationLint => "lint-transformation",
        };
        write!(f, "{s}")
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Thread whose cache (or hook) the violation was found in.
    pub thread: usize,
    /// Tag of the offending fragment (or the block/trace being built).
    pub tag: u32,
    /// The invariant broken.
    pub check: Check,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] t{} tag={:#010x}: {}",
            self.check, self.thread, self.tag, self.detail
        )
    }
}

// ---------------------------------------------------------------------------
// Cache verifier
// ---------------------------------------------------------------------------

/// Verify every structural invariant of one live fragment against the
/// actual bytes in cache memory. `clean_call_count` bounds the valid
/// clean-call sentinel tokens; `app_code_range` is the watched application
/// code span.
pub(crate) fn verify_fragment(
    machine: &Machine,
    cache: &CodeCache,
    thread: usize,
    id: FragmentId,
    app_code_range: (u32, u32),
    clean_call_count: u32,
) -> Vec<Violation> {
    let frag = cache.frag(id);
    let mut v = Vec::new();
    let mut report = |check: Check, detail: String| {
        v.push(Violation {
            thread,
            tag: frag.tag,
            check,
            detail,
        });
    };

    // (1) Every byte in [start, start + total_len) decodes cleanly.
    let mut decoded: Vec<(u32, Instr)> = Vec::new();
    let mut pc = frag.start;
    let end = frag.start + frag.total_len;
    let mut buf = [0u8; 16];
    while pc < end {
        machine.mem.read_bytes(pc, &mut buf);
        match decode_instr(&buf, pc) {
            Ok((instr, len)) => {
                decoded.push((pc - frag.start, instr));
                pc += len;
            }
            Err(e) => {
                report(
                    Check::Decode,
                    format!(
                        "undecodable byte at cache offset {:#x}: {e}",
                        pc - frag.start
                    ),
                );
                // The rest of the walk would be misaligned; stop here.
                return v;
            }
        }
    }
    if pc != end {
        report(
            Check::Decode,
            format!(
                "instruction lengths overshoot the fragment: decode ends at {:#x}, \
                 fragment at {:#x}",
                pc, end
            ),
        );
        return v;
    }

    let boundaries: Vec<u32> = decoded.iter().map(|(off, _)| *off).collect();
    let on_boundary = |off: u32| boundaries.binary_search(&off).is_ok();

    // (2) Closed-world control flow: classify every decoded CTI target.
    for (off, instr) in &decoded {
        let Some(Target::Pc(t)) = instr.target() else {
            continue;
        };
        let within = t >= frag.start && t < end;
        let ok = if within {
            on_boundary(t - frag.start)
        } else if t == layout::IB_LOOKUP {
            true
        } else if let Some(k) = layout::clean_call_index(t) {
            k < clean_call_count
        } else if let Some(k) = layout::stub_index(t) {
            // An exit to a stub sentinel must be this fragment's own stub.
            cache.stub(k).is_some_and(|rec| rec.frag == id)
        } else if (Image::CACHE_BASE..Image::CACHE_END).contains(&t) {
            // A branch into the cache must land exactly on a live
            // fragment's entry — anything else is an escape into the
            // middle of foreign code.
            cache
                .by_entry(t)
                .is_some_and(|dst| !cache.frag(dst).deleted)
        } else {
            false
        };
        if !ok {
            report(
                Check::Cfg,
                format!(
                    "branch at cache offset {off:#x} targets {t:#010x}, which is not \
                     within-fragment, a registered stub, a live fragment entry, or an \
                     engine entry point"
                ),
            );
        }
    }

    // (3)+(4) Link agreement: patched displacement words vs the link maps.
    let resolve = |disp_addr: u32| {
        disp_addr
            .wrapping_add(4)
            .wrapping_add(machine.mem.read_u32(disp_addr))
    };
    for (i, exit) in frag.exits.iter().enumerate() {
        match exit.kind {
            ExitKind::Indirect { .. } => {
                if exit.linked_to.is_some() {
                    report(
                        Check::LinkForward,
                        format!("indirect exit {i} claims a direct link"),
                    );
                }
                // Indirect exits are never link-patched: the branch rests
                // permanently on its unlinked target (the stub sentinel, or
                // the stub entry when client stub code was prepended), and
                // the lookup is reached through the stub.
                let got = resolve(exit.branch_disp_addr);
                if got != exit.unlinked_target {
                    report(
                        Check::LinkForward,
                        format!(
                            "indirect exit {i} branch resolves to {got:#010x}, expected \
                             its unlinked target {:#010x}",
                            exit.unlinked_target
                        ),
                    );
                }
                if exit.stub_jmp_disp_addr != exit.branch_disp_addr {
                    let got = resolve(exit.stub_jmp_disp_addr);
                    if got != layout::stub_sentinel(exit.stub) {
                        report(
                            Check::LinkForward,
                            format!(
                                "indirect exit {i} stub jmp resolves to {got:#010x}, \
                                 expected the stub sentinel {:#010x}",
                                layout::stub_sentinel(exit.stub)
                            ),
                        );
                    }
                }
            }
            ExitKind::Direct { .. } => {
                let patched = if exit.force_stub {
                    exit.stub_jmp_disp_addr
                } else {
                    exit.branch_disp_addr
                };
                let got = resolve(patched);
                match exit.linked_to {
                    Some(dst) => {
                        let dst_frag = cache.frag(dst);
                        if dst_frag.deleted {
                            report(
                                Check::LinkForward,
                                format!("exit {i} is linked to deleted fragment {}", dst.0),
                            );
                        }
                        if got != dst_frag.start {
                            report(
                                Check::LinkForward,
                                format!(
                                    "exit {i} displacement resolves to {got:#010x} but the \
                                     link map says fragment {} at {:#010x}",
                                    dst.0, dst_frag.start
                                ),
                            );
                        }
                        if !dst_frag.incoming.contains(&(id, i)) {
                            report(
                                Check::LinkBackward,
                                format!(
                                    "exit {i} is linked to fragment {} but its incoming \
                                     list does not record the link",
                                    dst.0
                                ),
                            );
                        }
                    }
                    None => {
                        // Unlinked: a forced exit's stub jmp must rest on
                        // the stub sentinel; a plain exit's branch on its
                        // recorded unlinked target.
                        let expected = if exit.force_stub {
                            layout::stub_sentinel(exit.stub)
                        } else {
                            exit.unlinked_target
                        };
                        if got != expected {
                            report(
                                Check::LinkForward,
                                format!(
                                    "unlinked exit {i} displacement resolves to {got:#010x}, \
                                     expected {expected:#010x}"
                                ),
                            );
                        }
                    }
                }
                // A forced exit's own branch always routes through the stub
                // entry, linked or not.
                if exit.force_stub {
                    let got = resolve(exit.branch_disp_addr);
                    if got != exit.unlinked_target {
                        report(
                            Check::LinkForward,
                            format!(
                                "forced exit {i} branch resolves to {got:#010x}, expected \
                                 its stub entry {:#010x}",
                                exit.unlinked_target
                            ),
                        );
                    }
                }
            }
        }
    }
    // (4) Backward agreement: every incoming record must name a live source
    // whose exit is actually linked here.
    for (src, exit_idx) in &frag.incoming {
        let src_frag = cache.frag(*src);
        let ok = !src_frag.deleted
            && src_frag
                .exits
                .get(*exit_idx)
                .is_some_and(|e| e.linked_to == Some(id));
        if !ok {
            report(
                Check::LinkBackward,
                format!(
                    "incoming record ({}, {exit_idx}) does not correspond to a live \
                     linked exit",
                    src.0
                ),
            );
        }
    }

    // (5) Translation rows: strictly increasing, on instruction boundaries,
    // first row at offset zero, all within the body, covering every body
    // instruction (directly or through a linear Level-0 bundle row).
    let rows = &frag.translations;
    let body_instrs = boundaries
        .iter()
        .filter(|off| **off < frag.body_len)
        .count();
    if rows.is_empty() && body_instrs > 0 {
        report(
            Check::Translation,
            "no translation rows for a non-empty body".into(),
        );
    }
    if let Some(first) = rows.first() {
        if first.cache_off != 0 {
            report(
                Check::Translation,
                format!(
                    "first translation row starts at {:#x}, not 0",
                    first.cache_off
                ),
            );
        }
    }
    for w in rows.windows(2) {
        if w[1].cache_off <= w[0].cache_off {
            report(
                Check::Translation,
                format!(
                    "translation rows not strictly increasing: {:#x} then {:#x}",
                    w[0].cache_off, w[1].cache_off
                ),
            );
        }
    }
    for row in rows {
        if row.cache_off >= frag.body_len {
            report(
                Check::Translation,
                format!(
                    "translation row at {:#x} lies outside the body (len {:#x})",
                    row.cache_off, frag.body_len
                ),
            );
        } else if !on_boundary(row.cache_off) {
            report(
                Check::Translation,
                format!(
                    "translation row at {:#x} is not on an instruction boundary",
                    row.cache_off
                ),
            );
        }
        let (app_lo, app_hi) = app_code_range;
        if !(app_lo..app_hi).contains(&row.app_pc) {
            report(
                Check::Translation,
                format!(
                    "translation row at {:#x} names app pc {:#010x}, outside the \
                     application code range {app_lo:#010x}..{app_hi:#010x}",
                    row.cache_off, row.app_pc
                ),
            );
        }
    }
    // Coverage: every decoded body instruction must translate.
    for off in boundaries.iter().filter(|off| **off < frag.body_len) {
        let covered = frag
            .translate(frag.start + off)
            .is_some_and(|t| t.linear || rows.iter().any(|r| r.cache_off == *off));
        if !covered {
            report(
                Check::Translation,
                format!("body instruction at offset {off:#x} has no translation row"),
            );
        }
    }

    // (6) %ecx spill balance: derive the spill state from the bytes (a
    // store of %ecx to its slot opens a region, a load back closes it) and
    // require the translation rows and every exit to agree.
    let ecx_slot = MemRef::absolute(layout::ECX_SLOT, OpSize::S32);
    let mut spilled = false;
    for (off, instr) in decoded.iter().filter(|(off, _)| *off < frag.body_len) {
        if let Some(row) = frag.translate(frag.start + off) {
            if row.ecx_spilled != spilled {
                report(
                    Check::EcxBalance,
                    format!(
                        "at cache offset {off:#x} the bytes imply %ecx spilled={spilled} \
                         but the translation row says {}",
                        row.ecx_spilled
                    ),
                );
                // Trust the bytes for the remainder of the walk.
            }
        }
        if let Some(exit) = frag.exits.iter().find(|e| e.branch_instr_off == *off) {
            match exit.kind {
                ExitKind::Indirect { .. } if !spilled => report(
                    Check::EcxBalance,
                    format!("indirect exit at offset {off:#x} reached without %ecx spilled"),
                ),
                ExitKind::Direct { .. } if spilled => report(
                    Check::EcxBalance,
                    format!("direct exit at offset {off:#x} leaves %ecx spilled"),
                ),
                _ => {}
            }
        }
        if instr.opcode() == Some(Opcode::Mov) {
            let store = instr.dsts().first().and_then(Opnd::as_mem) == Some(&ecx_slot)
                && instr.srcs().first().and_then(Opnd::as_reg) == Some(Reg::Ecx);
            let load = instr.dsts().first().and_then(Opnd::as_reg) == Some(Reg::Ecx)
                && instr.srcs().first().and_then(Opnd::as_mem) == Some(&ecx_slot);
            if store {
                spilled = true;
            } else if load {
                spilled = false;
            }
        }
    }

    // (7) Source ranges lie inside the watched application code.
    let (app_lo, app_hi) = app_code_range;
    for (lo, hi) in &frag.src_ranges {
        if lo >= hi || *lo < app_lo || *hi > app_hi {
            report(
                Check::SrcRanges,
                format!(
                    "source range {lo:#010x}..{hi:#010x} is empty or outside the watched \
                     application code {app_lo:#010x}..{app_hi:#010x}"
                ),
            );
        }
    }

    v
}

// ---------------------------------------------------------------------------
// Client-safety lints
// ---------------------------------------------------------------------------

/// Pre-hook snapshot of an [`InstrList`]'s write effects, diffed after the
/// hook by [`LintSnapshot::check`].
pub(crate) struct LintSnapshot {
    /// Per-instruction written registers and flags, keyed by id — survives
    /// in-place edits ([`InstrList::replace`] keeps the id).
    by_id: HashMap<u32, (RegSet, Eflags)>,
    /// Write aggregate per application pc, for edits that re-create
    /// instructions (fragment replacement re-decodes, so ids never match).
    by_pc: HashMap<u32, (RegSet, Eflags)>,
}

impl LintSnapshot {
    /// Record the write effects of every instruction in `il`.
    pub(crate) fn capture(il: &InstrList) -> LintSnapshot {
        let mut by_id = HashMap::new();
        let mut by_pc: HashMap<u32, (RegSet, Eflags)> = HashMap::new();
        for id in il.ids() {
            let instr = il.get(id);
            if instr.is_label() {
                continue;
            }
            let e = effects(instr);
            by_id.insert(id.raw(), (e.writes, e.flags.written));
            if instr.app_pc() != 0 {
                let agg = by_pc
                    .entry(instr.app_pc())
                    .or_insert((RegSet::NONE, Eflags::NONE));
                agg.0 = agg.0.union(e.writes);
                agg.1 = agg.1 | e.flags.written;
            }
        }
        LintSnapshot { by_id, by_pc }
    }

    /// Diff `il` (after a client hook) against the snapshot under a fresh
    /// liveness analysis. `tag` and `thread` label any violations.
    pub(crate) fn check(&self, il: &InstrList, thread: usize, tag: u32) -> Vec<Violation> {
        let live = Liveness::analyze(il);
        let ecx_slot = MemRef::absolute(layout::ECX_SLOT, OpSize::S32);
        let mut v = Vec::new();
        let mut spilled = false;
        let mut pushfd_depth = 0u32;
        for id in il.ids() {
            let instr = il.get(id);
            let Some(op) = instr.opcode() else { continue };
            if instr.is_label() {
                continue;
            }

            // Track the structural %ecx spill region (store to / load from
            // the slot) and the client's own flag save/restore pairing.
            let is_store = op == Opcode::Mov
                && instr.dsts().first().and_then(Opnd::as_mem) == Some(&ecx_slot)
                && instr.srcs().first().and_then(Opnd::as_reg) == Some(Reg::Ecx);
            let is_restore_load = op == Opcode::Mov
                && matches!(instr.dsts().first(), Some(Opnd::Reg(_)))
                && instr
                    .srcs()
                    .first()
                    .and_then(Opnd::as_mem)
                    .is_some_and(|m| {
                        m.base.is_none()
                            && m.index.is_none()
                            && (m.disp as u32) >= Image::RIO_DATA_BASE
                            && (m.disp as u32) < Image::RIO_DATA_BASE + 0x1000
                    });

            let e = effects(instr);
            let out = live.live_after(id);

            // What this instruction is allowed to write without question.
            let mut exempt = RegSet::of(Reg::Esp);
            if spilled {
                // While the application's %ecx lives in its slot, the
                // register itself is engine scratch.
                exempt.insert(Reg::Ecx);
            }
            let flags_exempt = if op == Opcode::Popfd && pushfd_depth > 0 {
                // A popfd paired with an earlier pushfd restores the
                // application's flags; it is a save/restore, not a clobber.
                Eflags::ALL6
            } else {
                Eflags::NONE
            };

            let (pre_regs, pre_flags, check) = if let Some(pre) = self.by_id.get(&id.raw()) {
                (pre.0, pre.1, Check::TransformationLint)
            } else if instr.app_pc() != 0 {
                let pre = self
                    .by_pc
                    .get(&instr.app_pc())
                    .copied()
                    .unwrap_or((RegSet::NONE, Eflags::NONE));
                (pre.0, pre.1, Check::TransformationLint)
            } else {
                (RegSet::NONE, Eflags::NONE, Check::InstrumentationLint)
            };

            if !is_restore_load && !is_store {
                let extra_regs = e.writes.minus(pre_regs).minus(exempt);
                let bad_regs = extra_regs.intersect(out.regs);
                let extra_flags = e.flags.written & !pre_flags & !flags_exempt;
                let bad_flags = extra_flags & out.flags;
                if !bad_regs.is_empty() || !bad_flags.is_empty() {
                    let what = if check == Check::TransformationLint {
                        "edit adds a write to live"
                    } else {
                        "inserted code clobbers live"
                    };
                    v.push(Violation {
                        thread,
                        tag,
                        check,
                        detail: format!(
                            "{what} {bad_regs} |{bad_flags} ({op} at app pc {:#010x})",
                            instr.app_pc()
                        ),
                    });
                }
            }

            if is_store {
                spilled = true;
            } else if is_restore_load
                && instr.dsts().first().and_then(Opnd::as_reg) == Some(Reg::Ecx)
                && instr.srcs().first().and_then(Opnd::as_mem) == Some(&ecx_slot)
            {
                spilled = false;
            }
            match op {
                Opcode::Pushfd => pushfd_depth += 1,
                Opcode::Popfd => pushfd_depth = pushfd_depth.saturating_sub(1),
                _ => {}
            }
        }
        v
    }
}

#[cfg(test)]
mod verifier_tests {
    use super::*;
    use crate::cache::FragmentKind;
    use crate::emit::emit_fragment;
    use crate::link::link_exit;
    use crate::mangle::mangle_bb;
    use rio_ia32::{InstrList, Level};
    use rio_sim::CpuKind;

    const APP: (u32, u32) = (0x1000, 0x3000);

    /// Two linked blocks: A at tag 0x1000 (`jmp 0x2000`), B at tag 0x2000.
    fn linked_pair() -> (Machine, CodeCache, FragmentId, FragmentId) {
        let mut m = Machine::new(CpuKind::Pentium4);
        let mut cache = CodeCache::new();
        let mut a =
            InstrList::decode_block(&[0xE9, 0xFB, 0x0F, 0x00, 0x00], 0x1000, Level::L3).unwrap();
        mangle_bb(&mut a, 0x1005);
        let fa = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x1000,
            a,
            vec![],
            vec![(0x1000, 0x1005)],
        )
        .unwrap();
        let mut b = InstrList::decode_block(&[0xB8, 9, 0, 0, 0, 0xF4], 0x2000, Level::L3).unwrap();
        mangle_bb(&mut b, 0x2006);
        let fb = emit_fragment(
            &mut m,
            &mut cache,
            FragmentKind::BasicBlock,
            0x2000,
            b,
            vec![],
            vec![(0x2000, 0x2006)],
        )
        .unwrap();
        link_exit(&mut m, &mut cache, fa, 0, fb);
        (m, cache, fa, fb)
    }

    fn checks_of(v: &[Violation]) -> Vec<Check> {
        v.iter().map(|x| x.check).collect()
    }

    #[test]
    fn clean_fragments_verify_clean() {
        let (m, cache, fa, fb) = linked_pair();
        assert!(verify_fragment(&m, &cache, 0, fa, APP, 0).is_empty());
        assert!(verify_fragment(&m, &cache, 0, fb, APP, 0).is_empty());
    }

    #[test]
    fn corrupted_bytes_fire_decode() {
        let (mut m, cache, fa, _) = linked_pair();
        let start = cache.frag(fa).start;
        m.mem.write_bytes(start, &[0x0F, 0xFF]); // undecodable pair
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::Decode), "{v:?}");
    }

    #[test]
    fn tampered_link_patch_fires_link_forward() {
        let (mut m, cache, fa, fb) = linked_pair();
        // Re-aim the patched displacement word four bytes past B's entry:
        // the link map still says "linked to B at its start".
        let exit = &cache.frag(fa).exits[0];
        let disp_addr = exit.branch_disp_addr;
        let bogus = cache.frag(fb).start + 4;
        m.mem
            .write_u32(disp_addr, bogus.wrapping_sub(disp_addr + 4));
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::LinkForward), "{v:?}");
    }

    #[test]
    fn branch_into_foreign_code_fires_cfg() {
        let (mut m, cache, fa, fb) = linked_pair();
        // Mid-fragment of B is a live cache address but not a fragment
        // entry: an escape into the middle of foreign code.
        let exit = &cache.frag(fa).exits[0];
        let disp_addr = exit.branch_disp_addr;
        let bogus = cache.frag(fb).start + 1;
        m.mem
            .write_u32(disp_addr, bogus.wrapping_sub(disp_addr + 4));
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::Cfg), "{v:?}");
    }

    #[test]
    fn dropped_incoming_record_fires_link_backward() {
        let (m, mut cache, fa, fb) = linked_pair();
        cache.frag_mut(fb).incoming.clear();
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::LinkBackward), "{v:?}");
    }

    #[test]
    fn stale_incoming_record_fires_link_backward() {
        let (m, mut cache, fa, fb) = linked_pair();
        // A second incoming entry naming an exit that is not linked here.
        cache.frag_mut(fb).incoming.push((fa, 7));
        let v = verify_fragment(&m, &cache, 0, fb, APP, 0);
        assert!(checks_of(&v).contains(&Check::LinkBackward), "{v:?}");
    }

    #[test]
    fn off_boundary_translation_row_fires_translation() {
        let (m, mut cache, fa, _) = linked_pair();
        cache.frag_mut(fa).translations[0].cache_off = 1;
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::Translation), "{v:?}");
    }

    #[test]
    fn out_of_range_app_pc_fires_translation() {
        let (m, mut cache, fa, _) = linked_pair();
        cache.frag_mut(fa).translations[0].app_pc = 0x9999_9999;
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::Translation), "{v:?}");
    }

    #[test]
    fn tampered_spill_row_fires_ecx_balance() {
        let (m, mut cache, fa, _) = linked_pair();
        // The bytes never store %ecx, so a row claiming it is spilled lies.
        cache.frag_mut(fa).translations[0].ecx_spilled = true;
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::EcxBalance), "{v:?}");
    }

    #[test]
    fn bogus_src_range_fires_src_ranges() {
        let (m, mut cache, fa, _) = linked_pair();
        cache.frag_mut(fa).src_ranges.push((0x5000, 0x4000));
        let v = verify_fragment(&m, &cache, 0, fa, APP, 0);
        assert!(checks_of(&v).contains(&Check::SrcRanges), "{v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_ia32::create;

    #[test]
    fn untouched_list_has_no_violations() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::add(Opnd::Reg(Reg::Ebx), Opnd::Reg(Reg::Eax)));
        il.push_back(create::ret());
        let snap = LintSnapshot::capture(&il);
        assert!(snap.check(&il, 0, 0x1000).is_empty());
    }

    #[test]
    fn inserted_clobber_of_live_register_fires_instrumentation_lint() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::jmp(Target::Pc(0x1234)));
        let snap = LintSnapshot::capture(&il);
        // A broken client inserts `mov ebx, 7` (no app pc): %ebx is live at
        // the fragment exit.
        let first = il.first_id().unwrap();
        il.insert_after(first, create::mov(Opnd::Reg(Reg::Ebx), Opnd::imm32(7)));
        let v = snap.check(&il, 0, 0x1000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, Check::InstrumentationLint);
    }

    #[test]
    fn inserted_flag_clobber_fires_unless_saved() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::jmp(Target::Pc(0x1234)));
        let snap = LintSnapshot::capture(&il);
        let first = il.first_id().unwrap();
        // Broken: bare `add` clobbers flags that are live at the exit.
        let bad = il.insert_after(
            first,
            create::add(
                Opnd::Mem(MemRef::absolute(Image::RIO_DATA_BASE + 0x100, OpSize::S32)),
                Opnd::imm32(1),
            ),
        );
        let v = snap.check(&il, 0, 0x1000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, Check::InstrumentationLint);
        // Fixed: wrap it in pushfd/popfd, the inscount client's pattern.
        il.insert_before(bad, create::pushfd());
        il.insert_after(bad, create::popfd());
        assert!(snap.check(&il, 0, 0x1000).is_empty());
    }

    #[test]
    fn edit_adding_dead_flag_write_is_allowed() {
        // inc -> add is legal exactly when CF is dead afterwards.
        let mut il = InstrList::new();
        let i = il.push_back(create::inc(Opnd::Reg(Reg::Eax)));
        il.push_back(create::add(Opnd::Reg(Reg::Ebx), Opnd::imm32(1))); // kills all flags
        il.push_back(create::jmp(Target::Pc(0x1234)));
        let snap = LintSnapshot::capture(&il);
        let mut add = create::add(Opnd::Reg(Reg::Eax), Opnd::imm32(1));
        add.set_app_pc(0x1000);
        il.replace(i, add);
        assert!(snap.check(&il, 0, 0x1000).is_empty());
    }

    #[test]
    fn edit_adding_live_flag_write_fires_transformation_lint() {
        // inc -> add where CF is live (an adc reads it next): illegal.
        let mut il = InstrList::new();
        let i = il.push_back(create::inc(Opnd::Reg(Reg::Eax)));
        il.push_back(create::adc(Opnd::Reg(Reg::Ebx), Opnd::imm32(0)));
        il.push_back(create::jmp(Target::Pc(0x1234)));
        let snap = LintSnapshot::capture(&il);
        il.replace(i, create::add(Opnd::Reg(Reg::Eax), Opnd::imm32(1)));
        let v = snap.check(&il, 0, 0x1000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, Check::TransformationLint);
    }

    #[test]
    fn replacement_preserving_writes_is_allowed() {
        // rlr's copy propagation: mov r, [mem] -> mov r, src writes the
        // same register.
        let mut il = InstrList::new();
        let load = il.push_back(create::mov(
            Opnd::Reg(Reg::Edx),
            Opnd::Mem(MemRef::base_disp(Reg::Ebp, -4, OpSize::S32)),
        ));
        il.push_back(create::jmp(Target::Pc(0x1234)));
        let snap = LintSnapshot::capture(&il);
        il.replace(load, create::mov(Opnd::Reg(Reg::Edx), Opnd::Reg(Reg::Eax)));
        assert!(snap.check(&il, 0, 0x1000).is_empty());
    }

    #[test]
    fn ecx_writes_are_exempt_only_while_spilled() {
        let slot = Opnd::Mem(MemRef::absolute(layout::ECX_SLOT, OpSize::S32));
        let mut il = InstrList::new();
        il.push_back(create::mov(slot, Opnd::Reg(Reg::Ecx))); // spill
        il.push_back(create::jmp(Target::Pc(layout::IB_LOOKUP)));
        let snap = LintSnapshot::capture(&il);
        // The ibdispatch pattern: scramble %ecx while it is spilled.
        let first = il.first_id().unwrap();
        il.insert_after(
            first,
            create::lea(Reg::Ecx, MemRef::base_disp(Reg::Ecx, -0x1000, OpSize::S32)),
        );
        assert!(snap.check(&il, 0, 0x1000).is_empty());
        // The same write before the spill clobbers the application's %ecx.
        il.push_front(create::lea(
            Reg::Ecx,
            MemRef::base_disp(Reg::Ecx, -0x1000, OpSize::S32),
        ));
        let v = snap.check(&il, 0, 0x1000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, Check::InstrumentationLint);
    }
}
