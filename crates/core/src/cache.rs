//! Fragments, exit stubs, and the code cache.
//!
//! A *fragment* is "either a basic block or a trace in the code cache"
//! (paper §2). The cache is split into a basic-block cache and a trace cache
//! (thread-private in the original; one simulated thread here), each a bump
//! allocator over its region of the simulated address space. The paper's
//! evaluation runs with unlimited cache space, and so does this
//! implementation — deleted fragments are unlinked and dropped from the
//! lookup tables but their bytes are not reused.

use std::collections::HashMap;

use rio_sim::Image;

/// Identifies a fragment for the lifetime of the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId(pub u32);

/// Basic block or trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FragmentKind {
    /// A single-entry single-CTI-terminated block.
    BasicBlock,
    /// A stitched sequence of hot blocks.
    Trace,
}

/// Which kind of indirect branch an exit translates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndKind {
    /// A near return.
    Ret,
    /// An indirect jump.
    Jmp,
    /// An indirect call.
    Call,
}

/// Where an exit goes when control leaves the fragment through it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitKind {
    /// Direct transfer to a known application address.
    Direct {
        /// Target application tag.
        target: u32,
    },
    /// Indirect transfer; the target is computed at runtime into `%ecx`.
    Indirect {
        /// The kind of original indirect branch.
        kind: IndKind,
    },
}

/// One exit from a fragment.
#[derive(Clone, Debug)]
pub struct Exit {
    /// Classification and (for direct exits) the target tag.
    pub kind: ExitKind,
    /// Global stub index (sentinel = `layout::stub_sentinel(stub)`).
    pub stub: u32,
    /// Cache address of the exit branch's rel32 displacement field — the
    /// word patched when this exit is linked.
    pub branch_disp_addr: u32,
    /// Cache address this exit branches to when unlinked (the stub body, or
    /// the stub sentinel directly when the stub is empty).
    pub unlinked_target: u32,
    /// Cache address of the stub's final `jmp` displacement — the word
    /// patched instead of `branch_disp_addr` when `force_stub` is set.
    pub stub_jmp_disp_addr: u32,
    /// Always route through the stub, even when linked (paper §3.2: custom
    /// exit stubs).
    pub force_stub: bool,
    /// Fragment this exit is currently linked to.
    pub linked_to: Option<FragmentId>,
    /// Byte offset of the exit branch instruction within the fragment.
    pub branch_instr_off: u32,
}

/// One row of a fragment's fault-translation table: from this byte offset
/// (until the next row) the fragment executes the translation of the
/// application instruction at `app_pc`, and `ecx_spilled` records whether
/// the application's `%ecx` currently lives in the spill slot (a mangling
/// side effect that must be rolled back to present original register
/// state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Byte offset within the fragment body.
    pub cache_off: u32,
    /// Application pc of the instruction translated here.
    pub app_pc: u32,
    /// Whether the application's `%ecx` is in the spill slot here.
    pub ecx_spilled: bool,
    /// The row covers a Level 0 bundle whose bytes were copied into the
    /// cache verbatim: cache offsets past `cache_off` map 1:1 onto
    /// application pcs past `app_pc`, so one row translates every
    /// instruction in the bundle precisely.
    pub linear: bool,
}

/// A fragment resident in the code cache.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Identity.
    pub id: FragmentId,
    /// Application address this fragment translates (paper: "the tag
    /// parameters serve to uniquely identify fragments by their original
    /// application origin").
    pub tag: u32,
    /// Basic block or trace.
    pub kind: FragmentKind,
    /// Cache address of the fragment entry.
    pub start: u32,
    /// Length of the body in bytes (exit stubs follow the body).
    pub body_len: u32,
    /// Total length including stubs.
    pub total_len: u32,
    /// The fragment's exits in emission order.
    pub exits: Vec<Exit>,
    /// Incoming links as `(source fragment, exit index)`.
    pub incoming: Vec<(FragmentId, usize)>,
    /// Whether this basic block is a trace head (counter maintained by
    /// dispatch; trace heads are never link targets).
    pub is_trace_head: bool,
    /// Trace-head execution counter.
    pub counter: u32,
    /// Whether the fragment has been deleted (awaiting or past the safe
    /// deletion point).
    pub deleted: bool,
    /// Fault-translation table, sorted by `cache_off` (built at emit time
    /// from the `app_pc` values threaded through mangling).
    pub translations: Vec<Translation>,
    /// Guest faults raised while executing this fragment (drives the
    /// self-healing eviction of repeatedly-faulting fragments).
    pub faults: u32,
    /// Application `[start, end)` spans of every constituent block — one
    /// for a basic block, one per stitched block for a trace. A guest
    /// write overlapping any span makes this fragment stale (its cache
    /// copy was translated from bytes that no longer exist).
    pub src_ranges: Vec<(u32, u32)>,
}

impl Fragment {
    /// The `[start, end)` cache range of body + stubs.
    pub fn range(&self) -> (u32, u32) {
        (self.start, self.start + self.total_len)
    }

    /// Whether a cache address falls within this fragment.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.start + self.total_len
    }

    /// Whether any of this fragment's source-code spans overlaps the
    /// application range `[lo, hi)`.
    pub fn overlaps_src(&self, lo: u32, hi: u32) -> bool {
        self.src_ranges.iter().any(|&(s, e)| s < hi && e > lo)
    }

    /// Translate a cache address inside this fragment back to application
    /// state: the row with the largest `cache_off` not beyond the address.
    /// For a `linear` (verbatim bundle) row the returned `app_pc` is
    /// adjusted by the byte offset into the bundle, so it names the exact
    /// application instruction. `None` when the address precedes the first
    /// translated instruction (e.g. a trampoline) or the table is empty.
    pub fn translate(&self, cache_addr: u32) -> Option<Translation> {
        let off = cache_addr.checked_sub(self.start)?;
        let mut t = *self
            .translations
            .iter()
            .take_while(|t| t.cache_off <= off)
            .last()?;
        if t.linear {
            t.app_pc += off - t.cache_off;
        }
        Some(t)
    }
}

/// Maps a global stub index back to its fragment and exit.
#[derive(Clone, Copy, Debug)]
pub struct StubRecord {
    /// Owning fragment.
    pub frag: FragmentId,
    /// Index into [`Fragment::exits`].
    pub exit_idx: usize,
}

/// The code cache: fragment storage, tag lookup tables, stub records, and
/// the two bump allocators.
///
/// Caches are **thread-private** (paper §2: "DynamoRIO maintains
/// thread-private code caches"): each simulated thread owns one, carved out
/// of a disjoint slice of the cache region, so no synchronization between
/// threads is ever needed and a thread can only ever execute its own
/// fragments.
#[derive(Debug, Default)]
pub struct CodeCache {
    frags: Vec<Fragment>,
    stubs: Vec<StubRecord>,
    bb_by_tag: HashMap<u32, FragmentId>,
    trace_by_tag: HashMap<u32, FragmentId>,
    entry_by_addr: HashMap<u32, FragmentId>,
    bb_base: u32,
    bb_limit: u32,
    trace_base: u32,
    trace_limit: u32,
    bb_next: u32,
    trace_next: u32,
    stub_offset: u32,
    /// Bytes occupied by *live* fragments per sub-cache — unlike the bump
    /// allocator's high-water mark, this shrinks when fragments are
    /// deleted, so capacity policies can count what is actually resident.
    bb_live: u32,
    trace_live: u32,
}

/// Address-space slice per thread-private cache (16 MiB bb + 16 MiB trace).
const THREAD_SLICE: u32 = 0x0200_0000;
/// Maximum simulated threads (bounded by the cache region).
pub const MAX_THREADS: u32 = (Image::CACHE_END - Image::CACHE_BASE) / THREAD_SLICE;
/// Stub-index space per thread (8 threads x 512Ki indices fit exactly in
/// the 16 MiB stub sentinel range).
const STUBS_PER_THREAD: u32 = 1 << 19;

impl CodeCache {
    /// Create the cache for thread 0.
    pub fn new() -> CodeCache {
        CodeCache::for_thread(0)
    }

    /// Create the thread-private cache for thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= MAX_THREADS`.
    pub fn for_thread(t: u32) -> CodeCache {
        assert!(t < MAX_THREADS, "too many threads (max {MAX_THREADS})");
        let base = Image::CACHE_BASE + t * THREAD_SLICE;
        CodeCache {
            bb_base: base,
            bb_limit: base + THREAD_SLICE / 2,
            trace_base: base + THREAD_SLICE / 2,
            trace_limit: base + THREAD_SLICE,
            bb_next: base,
            trace_next: base + THREAD_SLICE / 2,
            stub_offset: t * STUBS_PER_THREAD,
            ..CodeCache::default()
        }
    }

    /// This cache's `[start, end)` region (both sub-caches) — the only
    /// addresses its thread may execute.
    pub fn region(&self) -> (u32, u32) {
        (self.bb_base, self.trace_limit)
    }

    /// Reserve `len` bytes in the basic-block or trace cache.
    ///
    /// # Panics
    ///
    /// Panics if a sub-cache region is exhausted (128 MiB of fragments —
    /// far beyond any workload here; the paper's runs also used unlimited
    /// cache space).
    pub fn alloc(&mut self, kind: FragmentKind, len: u32) -> u32 {
        let (next, limit) = match kind {
            FragmentKind::BasicBlock => (&mut self.bb_next, self.bb_limit),
            FragmentKind::Trace => (&mut self.trace_next, self.trace_limit),
        };
        let start = *next;
        assert!(start + len < limit, "code cache exhausted");
        // Align fragments to 16 bytes like the original (cache-line
        // friendliness of fragment entries).
        *next = (start + len + 15) & !15;
        start
    }

    /// Bytes currently allocated in a sub-cache.
    pub fn used(&self, kind: FragmentKind) -> u32 {
        match kind {
            FragmentKind::BasicBlock => self.bb_next - self.bb_base,
            FragmentKind::Trace => self.trace_next - self.trace_base,
        }
    }

    /// Bytes occupied by live (non-deleted) fragments of `kind` — the
    /// quantity capacity policies bound. Maintained by
    /// [`CodeCache::insert`] and [`CodeCache::mark_deleted`].
    pub fn live_bytes(&self, kind: FragmentKind) -> u32 {
        match kind {
            FragmentKind::BasicBlock => self.bb_live,
            FragmentKind::Trace => self.trace_live,
        }
    }

    /// Tombstone a fragment, updating the live-byte accounting exactly
    /// once however many times it is called. All deletion paths (safe
    /// deletions, capacity eviction, flushes, fault eviction, precise
    /// invalidation) must go through here rather than setting
    /// [`Fragment::deleted`] directly.
    pub fn mark_deleted(&mut self, id: FragmentId) {
        let f = &mut self.frags[id.0 as usize];
        if f.deleted {
            return;
        }
        f.deleted = true;
        match f.kind {
            FragmentKind::BasicBlock => self.bb_live -= f.total_len,
            FragmentKind::Trace => self.trace_live -= f.total_len,
        }
    }

    /// The oldest (lowest-id, i.e. first-emitted) live fragment of `kind`
    /// whose id is at least `from` — the FIFO eviction candidate.
    pub fn oldest_live(&self, kind: FragmentKind, from: FragmentId) -> Option<FragmentId> {
        self.frags[from.0 as usize..]
            .iter()
            .find(|f| f.kind == kind && !f.deleted)
            .map(|f| f.id)
    }

    /// Flush a sub-cache: remove every live fragment of `kind` from the
    /// lookup tables and reset its allocator. Returns the flushed fragment
    /// ids (callers must unlink them and fire `fragment_deleted` hooks).
    ///
    /// Fragment *bytes* stay valid until new fragments overwrite them, so a
    /// flush is safe to perform at any engine safe point (control out of
    /// the cache).
    pub fn flush(&mut self, kind: FragmentKind) -> Vec<FragmentId> {
        let ids: Vec<FragmentId> = self
            .frags
            .iter()
            .filter(|f| f.kind == kind && !f.deleted)
            .map(|f| f.id)
            .collect();
        for id in &ids {
            self.remove_from_maps(*id);
        }
        match kind {
            FragmentKind::BasicBlock => self.bb_next = self.bb_base,
            FragmentKind::Trace => self.trace_next = self.trace_base,
        }
        ids
    }

    /// Register a fragment built by the emitter. Returns its id.
    pub fn insert(&mut self, mut frag: Fragment) -> FragmentId {
        let id = FragmentId(self.frags.len() as u32);
        frag.id = id;
        match frag.kind {
            FragmentKind::BasicBlock => {
                self.bb_by_tag.insert(frag.tag, id);
                self.bb_live += frag.total_len;
            }
            FragmentKind::Trace => {
                self.trace_by_tag.insert(frag.tag, id);
                self.trace_live += frag.total_len;
            }
        };
        self.entry_by_addr.insert(frag.start, id);
        self.frags.push(frag);
        id
    }

    /// Reserve the next `n` stub indices for a fragment being built. Indices
    /// are globally unique across thread-private caches (each cache owns a
    /// disjoint index range).
    pub fn reserve_stubs(&mut self, frag: FragmentId, exits: usize) -> u32 {
        let base = self.stubs.len() as u32;
        for exit_idx in 0..exits {
            self.stubs.push(StubRecord { frag, exit_idx });
        }
        self.stub_offset + base
    }

    /// Pre-assign the fragment id the next [`CodeCache::insert`] will use.
    pub fn next_id(&self) -> FragmentId {
        FragmentId(self.frags.len() as u32)
    }

    /// Resolve a stub index (accepts this cache's global indices).
    pub fn stub(&self, index: u32) -> Option<StubRecord> {
        let local = index.checked_sub(self.stub_offset)?;
        self.stubs.get(local as usize).copied()
    }

    /// Borrow a fragment.
    pub fn frag(&self, id: FragmentId) -> &Fragment {
        &self.frags[id.0 as usize]
    }

    /// Mutably borrow a fragment.
    pub fn frag_mut(&mut self, id: FragmentId) -> &mut Fragment {
        &mut self.frags[id.0 as usize]
    }

    /// The fragment to execute for `tag`: the trace if one exists, else the
    /// basic block (paper: traces shadow their head blocks).
    pub fn lookup(&self, tag: u32) -> Option<FragmentId> {
        self.trace_by_tag
            .get(&tag)
            .or_else(|| self.bb_by_tag.get(&tag))
            .copied()
    }

    /// The basic block for `tag`, ignoring traces.
    pub fn lookup_bb(&self, tag: u32) -> Option<FragmentId> {
        self.bb_by_tag.get(&tag).copied()
    }

    /// The trace for `tag`, if any.
    pub fn lookup_trace(&self, tag: u32) -> Option<FragmentId> {
        self.trace_by_tag.get(&tag).copied()
    }

    /// The fragment whose entry is exactly the cache address `addr`.
    pub fn by_entry(&self, addr: u32) -> Option<FragmentId> {
        self.entry_by_addr.get(&addr).copied()
    }

    /// The fragment whose cache range contains `addr` — the lookup a fault
    /// needs, since a fault lands mid-body rather than at an entry point.
    /// Prefers a live fragment when ranges overlap with a deleted one whose
    /// bytes are still resident.
    pub fn frag_by_addr(&self, addr: u32) -> Option<FragmentId> {
        let mut found = None;
        for f in &self.frags {
            if f.contains(addr) {
                if !f.deleted {
                    return Some(f.id);
                }
                found.get_or_insert(f.id);
            }
        }
        found
    }

    /// Remove a fragment from the lookup tables (it can no longer be entered
    /// or linked; its bytes stay resident until control has left them).
    pub fn remove_from_maps(&mut self, id: FragmentId) {
        let (tag, kind, start) = {
            let f = self.frag(id);
            (f.tag, f.kind, f.start)
        };
        match kind {
            FragmentKind::BasicBlock => {
                if self.bb_by_tag.get(&tag) == Some(&id) {
                    self.bb_by_tag.remove(&tag);
                }
            }
            FragmentKind::Trace => {
                if self.trace_by_tag.get(&tag) == Some(&id) {
                    self.trace_by_tag.remove(&tag);
                }
            }
        }
        if self.entry_by_addr.get(&start) == Some(&id) {
            self.entry_by_addr.remove(&start);
        }
    }

    /// Iterate over all fragments ever created (including deleted ones).
    pub fn iter(&self) -> impl Iterator<Item = &Fragment> {
        self.frags.iter()
    }

    /// Number of fragments ever created.
    pub fn len(&self) -> usize {
        self.frags.len()
    }

    /// Whether no fragments exist.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_frag(tag: u32, kind: FragmentKind, start: u32) -> Fragment {
        Fragment {
            id: FragmentId(0),
            tag,
            kind,
            start,
            body_len: 10,
            total_len: 20,
            exits: Vec::new(),
            incoming: Vec::new(),
            is_trace_head: false,
            counter: 0,
            deleted: false,
            translations: Vec::new(),
            faults: 0,
            src_ranges: Vec::new(),
        }
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut c = CodeCache::new();
        let a = c.alloc(FragmentKind::BasicBlock, 33);
        let b = c.alloc(FragmentKind::BasicBlock, 7);
        assert_eq!(a % 16, 0);
        assert_eq!(b % 16, 0);
        assert!(b >= a + 33);
        let t = c.alloc(FragmentKind::Trace, 100);
        assert!(t >= Image::CACHE_BASE + THREAD_SLICE / 2);
    }

    #[test]
    fn thread_caches_occupy_disjoint_regions_and_stub_spaces() {
        let mut c0 = CodeCache::for_thread(0);
        let mut c1 = CodeCache::for_thread(1);
        let (s0, e0) = c0.region();
        let (s1, e1) = c1.region();
        assert!(e0 <= s1 || e1 <= s0, "regions overlap");
        let a0 = c0.alloc(FragmentKind::BasicBlock, 64);
        let a1 = c1.alloc(FragmentKind::BasicBlock, 64);
        assert!(a0 < e0 && a0 >= s0);
        assert!(a1 < e1 && a1 >= s1);
        // Stub index spaces are disjoint and self-resolving.
        let id0 = c0.next_id();
        let id1 = c1.next_id();
        let b0 = c0.reserve_stubs(id0, 2);
        let b1 = c1.reserve_stubs(id1, 2);
        assert_ne!(b0, b1);
        assert!(c0.stub(b0).is_some());
        assert!(c0.stub(b1).is_none(), "foreign stub must not resolve");
        assert!(c1.stub(b1).is_some());
    }

    #[test]
    #[should_panic(expected = "too many threads")]
    fn thread_count_is_bounded() {
        let _ = CodeCache::for_thread(MAX_THREADS);
    }

    #[test]
    fn trace_shadows_basic_block() {
        let mut c = CodeCache::new();
        let bb_start = c.alloc(FragmentKind::BasicBlock, 16);
        let bb = c.insert(dummy_frag(0x1000, FragmentKind::BasicBlock, bb_start));
        assert_eq!(c.lookup(0x1000), Some(bb));
        let tr_start = c.alloc(FragmentKind::Trace, 16);
        let tr = c.insert(dummy_frag(0x1000, FragmentKind::Trace, tr_start));
        assert_eq!(c.lookup(0x1000), Some(tr));
        assert_eq!(c.lookup_bb(0x1000), Some(bb));
        assert_eq!(c.by_entry(bb_start), Some(bb));
        assert_eq!(c.by_entry(tr_start), Some(tr));
    }

    #[test]
    fn stub_records_round_trip() {
        let mut c = CodeCache::new();
        let id = c.next_id();
        let base = c.reserve_stubs(id, 3);
        assert_eq!(base, 0);
        let rec = c.stub(base + 2).unwrap();
        assert_eq!(rec.frag, id);
        assert_eq!(rec.exit_idx, 2);
        assert!(c.stub(99).is_none());
    }

    #[test]
    fn remove_from_maps_hides_fragment() {
        let mut c = CodeCache::new();
        let start = c.alloc(FragmentKind::BasicBlock, 16);
        let id = c.insert(dummy_frag(0x2000, FragmentKind::BasicBlock, start));
        c.remove_from_maps(id);
        assert_eq!(c.lookup(0x2000), None);
        assert_eq!(c.by_entry(start), None);
        // Fragment data still accessible by id (bytes stay resident).
        assert_eq!(c.frag(id).tag, 0x2000);
    }

    #[test]
    fn remove_does_not_clobber_replacement() {
        // After a replacement installs a new fragment for the same tag,
        // removing the old one must not hide the new one.
        let mut c = CodeCache::new();
        let s1 = c.alloc(FragmentKind::Trace, 16);
        let old = c.insert(dummy_frag(0x3000, FragmentKind::Trace, s1));
        let s2 = c.alloc(FragmentKind::Trace, 16);
        let new = c.insert(dummy_frag(0x3000, FragmentKind::Trace, s2));
        assert_eq!(c.lookup(0x3000), Some(new));
        c.remove_from_maps(old);
        assert_eq!(c.lookup(0x3000), Some(new));
    }

    #[test]
    fn frag_by_addr_finds_mid_body_addresses_and_prefers_live() {
        let mut c = CodeCache::new();
        let s1 = c.alloc(FragmentKind::BasicBlock, 32);
        let a = c.insert(dummy_frag(0x4000, FragmentKind::BasicBlock, s1));
        assert_eq!(c.frag_by_addr(s1 + 5), Some(a));
        assert_eq!(c.frag_by_addr(s1 + 19), Some(a));
        assert_eq!(c.frag_by_addr(s1 + 20), None); // total_len is 20
        c.frag_mut(a).deleted = true;
        // Deleted fragments still resolve (bytes resident) unless a live
        // fragment covers the same address.
        assert_eq!(c.frag_by_addr(s1 + 5), Some(a));
    }

    #[test]
    fn live_bytes_shrink_on_deletion_exactly_once() {
        let mut c = CodeCache::new();
        let s1 = c.alloc(FragmentKind::BasicBlock, 20);
        let a = c.insert(dummy_frag(0x1000, FragmentKind::BasicBlock, s1));
        let s2 = c.alloc(FragmentKind::BasicBlock, 20);
        let b = c.insert(dummy_frag(0x2000, FragmentKind::BasicBlock, s2));
        assert_eq!(c.live_bytes(FragmentKind::BasicBlock), 40);
        // The bump allocator's high-water mark never shrinks...
        assert!(c.used(FragmentKind::BasicBlock) >= 40);
        c.mark_deleted(a);
        assert_eq!(c.live_bytes(FragmentKind::BasicBlock), 20);
        // ...and double-deletion must not double-count.
        c.mark_deleted(a);
        assert_eq!(c.live_bytes(FragmentKind::BasicBlock), 20);
        assert!(c.used(FragmentKind::BasicBlock) >= 40);
        c.mark_deleted(b);
        assert_eq!(c.live_bytes(FragmentKind::BasicBlock), 0);
    }

    #[test]
    fn oldest_live_walks_in_fifo_order() {
        let mut c = CodeCache::new();
        let mut ids = Vec::new();
        for i in 0..3 {
            let s = c.alloc(FragmentKind::BasicBlock, 16);
            ids.push(c.insert(dummy_frag(0x1000 + i * 0x100, FragmentKind::BasicBlock, s)));
        }
        assert_eq!(
            c.oldest_live(FragmentKind::BasicBlock, FragmentId(0)),
            Some(ids[0])
        );
        c.mark_deleted(ids[0]);
        assert_eq!(
            c.oldest_live(FragmentKind::BasicBlock, FragmentId(0)),
            Some(ids[1])
        );
        // Resuming from a cursor skips earlier ids without rescanning.
        assert_eq!(
            c.oldest_live(FragmentKind::BasicBlock, ids[2]),
            Some(ids[2])
        );
        c.mark_deleted(ids[1]);
        c.mark_deleted(ids[2]);
        assert_eq!(c.oldest_live(FragmentKind::BasicBlock, FragmentId(0)), None);
    }

    #[test]
    fn src_range_overlap_detects_any_constituent_block() {
        let mut f = dummy_frag(0x5000, FragmentKind::Trace, 0x100);
        f.src_ranges = vec![(0x5000, 0x5010), (0x7000, 0x7008)];
        assert!(f.overlaps_src(0x5008, 0x500C));
        assert!(!f.overlaps_src(0x700F, 0x7010));
        assert!(f.overlaps_src(0x7004, 0x7005));
        assert!(!f.overlaps_src(0x5010, 0x7000)); // gap between blocks
        assert!(!f.overlaps_src(0x4FFF, 0x5000)); // half-open boundaries
    }

    #[test]
    fn translate_picks_last_row_at_or_before_the_address() {
        let mut f = dummy_frag(0x5000, FragmentKind::BasicBlock, 0x100);
        f.translations = vec![
            Translation {
                cache_off: 0,
                app_pc: 0x5000,
                ecx_spilled: false,
                linear: false,
            },
            Translation {
                cache_off: 4,
                app_pc: 0x5002,
                ecx_spilled: true,
                linear: false,
            },
        ];
        assert_eq!(f.translate(0x100).unwrap().app_pc, 0x5000);
        assert_eq!(f.translate(0x103).unwrap().app_pc, 0x5000);
        let t = f.translate(0x109).unwrap();
        assert_eq!(t.app_pc, 0x5002);
        assert!(t.ecx_spilled);
        assert_eq!(f.translate(0xFF), None); // before the fragment
    }

    #[test]
    fn linear_rows_translate_bundle_interiors_precisely() {
        let mut f = dummy_frag(0x5000, FragmentKind::BasicBlock, 0x100);
        f.translations = vec![
            // A verbatim 9-byte bundle of app instructions at 0x5000.
            Translation {
                cache_off: 0,
                app_pc: 0x5000,
                ecx_spilled: false,
                linear: true,
            },
            // The mangled block terminator.
            Translation {
                cache_off: 9,
                app_pc: 0x5009,
                ecx_spilled: false,
                linear: false,
            },
        ];
        assert_eq!(f.translate(0x100).unwrap().app_pc, 0x5000);
        // Interior of the bundle: byte offsets map 1:1 onto app pcs.
        assert_eq!(f.translate(0x103).unwrap().app_pc, 0x5003);
        assert_eq!(f.translate(0x108).unwrap().app_pc, 0x5008);
        // Past the bundle the non-linear terminator row wins.
        assert_eq!(f.translate(0x10C).unwrap().app_pc, 0x5009);
    }
}
