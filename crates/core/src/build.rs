//! Basic-block construction: decoding application code into an `InstrList`.
//!
//! Two strategies, as in the paper (§3.1's example): when no client needs to
//! inspect the block, the non-CTI prefix is kept as a single **Level 0
//! bundle** and only the block-ending CTI is fully decoded (Level 3); when a
//! client hook will run, every instruction is decoded to Level 3.

use rio_ia32::decode::{decode_instr, decode_opcode};
use rio_ia32::{DecodeError, Instr, InstrList};
use rio_sim::Memory;

use crate::mangle::Terminator;

/// A decoded (not yet mangled) basic block.
#[derive(Debug)]
pub struct BuiltBlock {
    /// The instructions, at Level 0+3 or full Level 3 detail.
    pub il: InstrList,
    /// Application address of the block entry.
    pub tag: u32,
    /// Application address immediately after the block (fall-through /
    /// return address).
    pub end_pc: u32,
    /// Number of application instructions in the block.
    pub num_instrs: usize,
    /// The block terminator classification.
    pub terminator: Terminator,
}

/// Maximum bytes fetched per instruction decode.
const FETCH: usize = 16;

/// Decode the basic block starting at `tag` from application memory.
///
/// The block extends to (and includes) the first control-transfer
/// instruction or `hlt`, or is split after `max_instrs` instructions.
///
/// With `full_decode` every instruction is decoded to Level 3 (a client will
/// inspect the block); otherwise the non-CTI prefix is kept as a Level 0
/// bundle.
///
/// # Errors
///
/// Returns [`DecodeError`] if invalid code is reached — the application
/// jumped somewhere bogus.
pub fn decode_bb(
    mem: &Memory,
    tag: u32,
    full_decode: bool,
    max_instrs: usize,
) -> Result<BuiltBlock, DecodeError> {
    let mut il = InstrList::new();
    let mut pc = tag;
    let mut count = 0usize;
    let mut bundle: Vec<u8> = Vec::new();
    let mut bundle_start = tag;
    let mut bundle_last_off = 0u32;
    let mut bundle_count = 0u32;
    let mut buf = [0u8; FETCH];

    let flush_bundle =
        |il: &mut InstrList, bundle: &mut Vec<u8>, start: u32, last_off: u32, n: u32| {
            if !bundle.is_empty() {
                il.push_back(Instr::bundle(std::mem::take(bundle), start, last_off, n));
            }
        };

    loop {
        mem.read_bytes(pc, &mut buf);
        let (opcode, len) = decode_opcode(&buf)?;
        // System calls end blocks (as in real DynamoRIO): the program may
        // exit mid-syscall, so nothing after one is guaranteed to execute.
        let is_terminator = opcode.is_cti()
            || opcode.is_halt()
            || matches!(opcode, rio_ia32::Opcode::Int | rio_ia32::Opcode::Int3);
        count += 1;

        if is_terminator {
            // Fully decode the block-ending instruction (Level 3).
            flush_bundle(
                &mut il,
                &mut bundle,
                bundle_start,
                bundle_last_off,
                bundle_count,
            );
            let (instr, ilen) = decode_instr(&buf, pc)?;
            debug_assert_eq!(ilen, len);
            il.push_back(instr);
            pc = pc.wrapping_add(len);
            break;
        }

        if full_decode {
            let (instr, _) = decode_instr(&buf, pc)?;
            il.push_back(instr);
        } else {
            if bundle.is_empty() {
                bundle_start = pc;
            }
            bundle_last_off = bundle.len() as u32;
            bundle.extend_from_slice(&buf[..len as usize]);
            bundle_count += 1;
        }
        pc = pc.wrapping_add(len);
        if count >= max_instrs {
            flush_bundle(
                &mut il,
                &mut bundle,
                bundle_start,
                bundle_last_off,
                bundle_count,
            );
            break;
        }
    }

    let terminator = crate::mangle::classify_terminator(&il);
    Ok(BuiltBlock {
        il,
        tag,
        end_pc: pc,
        num_instrs: count,
        terminator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_ia32::encode::encode_list;
    use rio_ia32::{create, Level, Opnd, Reg, Target};
    use rio_sim::Image;

    fn memory_with(ilist: &InstrList) -> Memory {
        let bytes = encode_list(ilist, Image::CODE_BASE).unwrap().bytes;
        let mut mem = Memory::new();
        mem.write_bytes(Image::CODE_BASE, &bytes);
        mem
    }

    #[test]
    fn block_ends_at_cti() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(2)));
        il.push_back(create::jmp(Target::Pc(0x5000)));
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(9))); // next block
        let mem = memory_with(&il);
        let bb = decode_bb(&mem, Image::CODE_BASE, true, 64).unwrap();
        assert_eq!(bb.num_instrs, 3);
        assert_eq!(bb.terminator, Terminator::Jmp { target: 0x5000 });
        assert_eq!(bb.il.len(), 3);
    }

    #[test]
    fn fast_path_bundles_prefix() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::add(Opnd::reg(Reg::Eax), Opnd::imm32(2)));
        il.push_back(create::inc(Opnd::reg(Reg::Ecx)));
        il.push_back(create::ret());
        let mem = memory_with(&il);
        let bb = decode_bb(&mem, Image::CODE_BASE, false, 64).unwrap();
        // One Level 0 bundle + the Level 3 ret.
        assert_eq!(bb.il.len(), 2);
        let first = bb.il.get(bb.il.first_id().unwrap());
        assert_eq!(first.level(), Level::L0);
        assert_eq!(first.bundle_count(), 3);
        let last = bb.il.get(bb.il.last_id().unwrap());
        assert_eq!(last.level(), Level::L3);
        assert_eq!(bb.num_instrs, 4);
        assert_eq!(bb.terminator, Terminator::Ret { extra: 0 });
    }

    #[test]
    fn hlt_terminates_block() {
        let mut il = InstrList::new();
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::hlt());
        let mem = memory_with(&il);
        let bb = decode_bb(&mem, Image::CODE_BASE, true, 64).unwrap();
        assert_eq!(bb.terminator, Terminator::Halt);
        assert_eq!(bb.il.len(), 2);
    }

    #[test]
    fn max_instrs_splits_block() {
        let mut il = InstrList::new();
        for _ in 0..10 {
            il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        }
        il.push_back(create::ret());
        let mem = memory_with(&il);
        let bb = decode_bb(&mem, Image::CODE_BASE, true, 4).unwrap();
        assert_eq!(bb.num_instrs, 4);
        assert_eq!(bb.terminator, Terminator::FallThrough);
        assert_eq!(bb.end_pc, Image::CODE_BASE + 4); // four 1-byte incs
    }

    #[test]
    fn syscall_ends_block() {
        // The program may exit inside a system call, so (as in real
        // DynamoRIO) nothing after one belongs to the same block.
        let mut il = InstrList::new();
        il.push_back(create::int(0x80));
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
        il.push_back(create::ret());
        let mem = memory_with(&il);
        let bb = decode_bb(&mem, Image::CODE_BASE, true, 64).unwrap();
        assert_eq!(bb.num_instrs, 1);
        assert_eq!(bb.terminator, Terminator::FallThrough);
        assert_eq!(bb.end_pc, Image::CODE_BASE + 2);
    }

    #[test]
    fn invalid_code_reports_decode_error() {
        let mut mem = Memory::new();
        mem.write_bytes(Image::CODE_BASE, &[0xD7]); // unsupported xlat
        assert!(decode_bb(&mem, Image::CODE_BASE, true, 64).is_err());
    }
}
