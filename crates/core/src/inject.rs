//! Deterministic fault injection for robustness harnesses.
//!
//! An [`InjectionPlan`] describes a single fault to provoke — either an
//! architectural fault raised at a precise instruction count, or a
//! corruption of an already-emitted fragment's cache copy (exercising the
//! translation, eviction, and self-healing paths). A [`FaultInjector`]
//! applies the plan to a stepped [`Rio`] session; because both triggers
//! key off deterministic state (the machine's instruction counter, the
//! emission order of fragments), a given plan produces the identical fault
//! at the identical point on every run, regardless of how the session is
//! sliced into steps or which worker thread drives it.

use rio_sim::FaultKind;

use crate::client::Client;
use crate::engine::Rio;

/// What to inject, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionPlan {
    /// Raise `kind` once, precisely when the machine's cumulative
    /// instruction count reaches `at`.
    AtInstruction { at: u64, kind: FaultKind },
    /// Overwrite the start of the `nth` emitted fragment's body with
    /// undecodable bytes, so its next execution raises an invalid-opcode
    /// fault inside the cache (and its second raises eviction).
    CorruptFragment { nth: usize },
    /// Once at least `min_frags` fragments exist, overwrite the start of
    /// every live fragment with undecodable bytes — a mass corruption that
    /// guarantees whichever fragments re-execute hit the fault-recovery
    /// machinery, without the harness needing to know the cache layout.
    CorruptAll { min_frags: usize },
}

/// Drives an [`InjectionPlan`] over a stepped session. Call
/// [`FaultInjector::poll`] before each [`Rio::step`]; the plan is applied
/// exactly once, as soon as its precondition holds (immediately for
/// instruction-count triggers, once the target fragment exists for
/// corruption).
pub struct FaultInjector {
    plan: InjectionPlan,
    applied: bool,
}

impl FaultInjector {
    /// An injector that will apply `plan` once.
    pub fn new(plan: InjectionPlan) -> FaultInjector {
        FaultInjector {
            plan,
            applied: false,
        }
    }

    /// Apply the plan if its precondition holds and it has not been applied
    /// yet. Safe to call at any engine safe point.
    pub fn poll<C: Client>(&mut self, rio: &mut Rio<C>) {
        if self.applied {
            return;
        }
        match self.plan {
            InjectionPlan::AtInstruction { at, kind } => {
                rio.core.machine.inject_fault_at(at, kind);
                self.applied = true;
            }
            InjectionPlan::CorruptFragment { nth } => {
                let Some(start) = rio.core.cache().iter().nth(nth).map(|f| f.start) else {
                    return; // not emitted yet; try again next poll
                };
                // 0x0f 0xff is not a valid instruction encoding.
                rio.core.machine.mem.write_bytes(start, &[0x0f, 0xff]);
                rio.core.machine.invalidate_code();
                self.applied = true;
            }
            InjectionPlan::CorruptAll { min_frags } => {
                let starts: Vec<u32> = rio
                    .core
                    .cache()
                    .iter()
                    .filter(|f| !f.deleted)
                    .map(|f| f.start)
                    .collect();
                if starts.len() < min_frags {
                    return; // cache not warm enough yet; try again next poll
                }
                for start in starts {
                    rio.core.machine.mem.write_bytes(start, &[0x0f, 0xff]);
                }
                rio.core.machine.invalidate_code();
                self.applied = true;
            }
        }
    }

    /// Whether the plan has been applied.
    pub fn applied(&self) -> bool {
        self.applied
    }
}
