//! # rio-core — the RIO dynamic code modification engine
//!
//! A Rust reproduction of the DynamoRIO infrastructure described in *An
//! Infrastructure for Adaptive Dynamic Optimization* (CGO 2003): a dynamic
//! translator that copies application basic blocks into a code cache, links
//! them, resolves indirect branches through a fast lookup, stitches hot
//! sequences into traces — and exports a **client interface** for building
//! custom dynamic analyses and optimizations on top.
//!
//! The public surface mirrors the paper:
//!
//! * [`Client`] — the hook functions of Table 3 (`dynamorio_basic_block`,
//!   `dynamorio_trace`, `dynamorio_fragment_deleted`,
//!   `dynamorio_end_trace`, ...).
//! * [`Core`] — the exported API of §3.2: transparent I/O, register spill
//!   slots, client thread-local storage, custom exit stubs, clean calls,
//!   processor identification, plus the **adaptive-optimization interface**
//!   of §3.4 ([`Core::decode_fragment`] / [`Core::replace_fragment`]) and
//!   the **custom-trace interface** of §3.5 ([`Core::mark_trace_head`] +
//!   [`Client::end_trace`]).
//! * [`Options`] — the feature axes of Table 1 (emulation, block cache,
//!   direct links, indirect links, traces) for ablation experiments.
//! * [`Rio`] — the engine itself.
//!
//! ## Quick start
//!
//! ```no_run
//! use rio_core::{Rio, NullClient, Options};
//! use rio_sim::{Image, CpuKind};
//!
//! let image = Image::from_code(vec![0xf4]); // hlt: trivial program
//! let mut rio = Rio::new(&image, Options::default(), CpuKind::Pentium4, NullClient);
//! let result = rio.run();
//! println!("normalized stats: {}", result.stats);
//! ```

#![forbid(unsafe_code)]

pub mod build;
pub mod cache;
pub mod client;
pub mod config;
#[allow(clippy::module_inception)]
mod core;
pub mod emit;
pub mod engine;
pub mod inject;
pub mod link;
pub mod mangle;
pub mod stats;
pub mod verify;

pub use crate::core::Core;
pub use cache::{ExitKind, Fragment, FragmentId, FragmentKind, IndKind, Translation};
pub use client::{Client, EndTraceDecision, NullClient};
pub use config::{layout, ExecMode, Options, RioCosts};
pub use engine::{Fault, Rio, RioRunResult, StepBudget, StepOutcome, StopReason};
pub use inject::{FaultInjector, InjectionPlan};
pub use mangle::{elide_ret_check, find_ib_checks, IbCheck, Note};
pub use rio_sim::FaultKind;
pub use stats::Stats;
pub use verify::{Check, Violation};
