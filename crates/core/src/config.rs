//! Runtime options, overhead cost parameters, and the RIO address-space
//! layout (spill slots and runtime sentinels).

use rio_sim::Image;

/// How the engine executes the application (the Table 1 ablation axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Pure emulation: every instruction is dispatched individually with no
    /// caching (Table 1, row 1).
    Emulate,
    /// Basic-block code cache (all remaining Table 1 rows; which linking and
    /// trace features are active is controlled by the other options).
    Cache,
}

/// Engine configuration. Each field maps to one of the design points the
/// paper evaluates; [`Options::default`] is the full system (Table 1's last
/// row: cache + direct links + indirect links + traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Options {
    /// Execution mode (emulation vs code cache).
    pub mode: ExecMode,
    /// Link fragments connected by direct branches (Table 1 row 3).
    pub link_direct: bool,
    /// Resolve indirect branches with the in-cache hashtable lookup rather
    /// than a full context switch (Table 1 row 4).
    pub link_indirect: bool,
    /// Build traces from hot basic-block sequences (Table 1 row 5).
    pub enable_traces: bool,
    /// Executions of a trace head before trace generation begins (Dynamo
    /// default: 50).
    pub trace_threshold: u32,
    /// Maximum number of basic blocks stitched into one trace.
    pub max_trace_bbs: usize,
    /// Inline a check for the recorded target at indirect branches inside
    /// traces (§3's "check ... much faster than the hashtable lookup").
    pub inline_ib_target: bool,
    /// Maximum instructions per basic block before an artificial split.
    pub max_bb_instrs: usize,
    /// Capacity of each sub-cache in bytes; `None` = unlimited (the paper's
    /// evaluation configuration). When exceeded, the sub-cache is flushed at
    /// the next safe point.
    pub cache_limit: Option<u32>,
    /// Re-verify affected fragments' structural invariants after every
    /// emit, link, unlink, invalidation, and eviction (set by `RIO_VERIFY=1`;
    /// the self-checking mode behind `Core::verify_cache`). Verification
    /// work is not charged to the run, so enabling it never perturbs the
    /// application's cycle counts.
    pub verify: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            mode: ExecMode::Cache,
            link_direct: true,
            link_indirect: true,
            enable_traces: true,
            trace_threshold: 50,
            max_trace_bbs: 16,
            inline_ib_target: true,
            max_bb_instrs: 12,
            cache_limit: None,
            verify: false,
        }
    }
}

impl Options {
    /// Table 1 row 1: pure emulation.
    pub fn emulation() -> Options {
        Options {
            mode: ExecMode::Emulate,
            ..Options::default()
        }
    }

    /// Table 1 row 2: basic-block cache only, no linking, no traces.
    pub fn cache_only() -> Options {
        Options {
            link_direct: false,
            link_indirect: false,
            enable_traces: false,
            ..Options::default()
        }
    }

    /// Table 1 row 3: + direct-branch linking.
    pub fn with_direct_links() -> Options {
        Options {
            link_indirect: false,
            enable_traces: false,
            ..Options::default()
        }
    }

    /// Table 1 row 4: + indirect-branch in-cache lookup.
    pub fn with_indirect_links() -> Options {
        Options {
            enable_traces: false,
            ..Options::default()
        }
    }

    /// Table 1 row 5 / the full system: + traces.
    pub fn full() -> Options {
        Options::default()
    }
}

/// Cycle costs of RIO runtime operations, charged on top of executed
/// instructions. Calibrated so the Table 1 bands land in the paper's ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RioCosts {
    /// Per-application-instruction cost of pure emulation (fetch + decode +
    /// dispatch in the emulator loop).
    pub emulate_per_instr: u64,
    /// A context switch between the code cache and RIO (save/restore
    /// machine state).
    pub context_switch: u64,
    /// Dispatch work per fragment lookup (hashtable probe + bookkeeping).
    pub dispatch: u64,
    /// The in-cache indirect-branch hashtable lookup.
    pub hash_lookup: u64,
    /// Building one basic block, per decoded instruction (decode + copy +
    /// emit + bookkeeping).
    pub bb_build_per_instr: u64,
    /// Fixed per-basic-block build cost.
    pub bb_build_base: u64,
    /// Building one trace, per instruction (re-decode + stitch + emit).
    pub trace_build_per_instr: u64,
    /// Fixed per-trace build cost.
    pub trace_build_base: u64,
    /// Patching one link (encode displacement + bookkeeping).
    pub link_patch: u64,
    /// Trace-head counter increment in dispatch.
    pub counter_increment: u64,
    /// A clean call from the code cache into a client routine (state save,
    /// call, restore).
    pub clean_call: u64,
    /// Replacing a fragment (unlink/relink + bookkeeping), excluding the
    /// client's own rewriting work.
    pub replace_fragment: u64,
}

impl Default for RioCosts {
    fn default() -> RioCosts {
        RioCosts {
            emulate_per_instr: 1250,
            context_switch: 850,
            dispatch: 120,
            hash_lookup: 70,
            bb_build_per_instr: 100,
            bb_build_base: 500,
            trace_build_per_instr: 250,
            trace_build_base: 2000,
            link_patch: 100,
            counter_increment: 10,
            clean_call: 60,
            replace_fragment: 3000,
        }
    }
}

/// RIO-owned address-space layout: thread-local spill slots and runtime
/// sentinel addresses.
///
/// Sentinels are addresses at or above [`Image::RIO_RUNTIME_BASE`]; control
/// arriving at one is a transfer into the RIO runtime, intercepted by the
/// engine (they are never backed by real code).
pub mod layout {
    use super::Image;

    /// Thread-local slot where mangled code spills `%ecx`
    /// (paper §3.2: "special thread-local slots to spill registers").
    pub const ECX_SLOT: u32 = Image::RIO_DATA_BASE;
    /// Spill slot for `%eax`.
    pub const EAX_SLOT: u32 = Image::RIO_DATA_BASE + 4;
    /// Spill slot for `%edx`.
    pub const EDX_SLOT: u32 = Image::RIO_DATA_BASE + 8;
    /// Generic thread-local storage field for clients (paper §3.2).
    pub const CLIENT_TLS_SLOT: u32 = Image::RIO_DATA_BASE + 12;
    /// Scratch slot used by inline sequences.
    pub const SCRATCH_SLOT: u32 = Image::RIO_DATA_BASE + 16;

    /// Indirect-branch lookup entry: mangled indirect branches jump here
    /// with the target application address in `%ecx`.
    pub const IB_LOOKUP: u32 = Image::RIO_RUNTIME_BASE + 0x10;
    /// Base of exit-stub sentinel addresses; stub `k` exits to
    /// `STUB_BASE + 4k`.
    pub const STUB_BASE: u32 = 0xF100_0000;
    /// Exclusive end of the stub sentinel range.
    pub const STUB_END: u32 = 0xF200_0000;
    /// Base of clean-call sentinel addresses; token `k` calls
    /// `CLEAN_CALL_BASE + 4k`.
    pub const CLEAN_CALL_BASE: u32 = 0xF200_0000;
    /// Exclusive end of the clean-call sentinel range.
    pub const CLEAN_CALL_END: u32 = 0xF300_0000;

    /// Sentinel address of stub `k`.
    pub fn stub_sentinel(k: u32) -> u32 {
        STUB_BASE + k * 4
    }

    /// Stub index for a sentinel address in the stub range.
    pub fn stub_index(addr: u32) -> Option<u32> {
        (STUB_BASE..STUB_END)
            .contains(&addr)
            .then(|| (addr - STUB_BASE) / 4)
    }

    /// Sentinel address of clean-call token `k`.
    pub fn clean_call_sentinel(k: u32) -> u32 {
        CLEAN_CALL_BASE + k * 4
    }

    /// Clean-call token for a sentinel address in the clean-call range.
    pub fn clean_call_index(addr: u32) -> Option<u32> {
        (CLEAN_CALL_BASE..CLEAN_CALL_END)
            .contains(&addr)
            .then(|| (addr - CLEAN_CALL_BASE) / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_the_full_system() {
        let o = Options::default();
        assert_eq!(o.mode, ExecMode::Cache);
        assert!(o.link_direct && o.link_indirect && o.enable_traces);
        assert_eq!(o.trace_threshold, 50);
    }

    #[test]
    fn table1_rows_strictly_add_features() {
        let rows = [
            Options::emulation(),
            Options::cache_only(),
            Options::with_direct_links(),
            Options::with_indirect_links(),
            Options::full(),
        ];
        assert_eq!(rows[0].mode, ExecMode::Emulate);
        assert!(!rows[1].link_direct && !rows[1].link_indirect && !rows[1].enable_traces);
        assert!(rows[2].link_direct && !rows[2].link_indirect);
        assert!(rows[3].link_direct && rows[3].link_indirect && !rows[3].enable_traces);
        assert!(rows[4].enable_traces);
    }

    #[test]
    fn sentinel_round_trips() {
        for k in [0u32, 1, 77, 1_000_000] {
            assert_eq!(layout::stub_index(layout::stub_sentinel(k)), Some(k));
            assert_eq!(
                layout::clean_call_index(layout::clean_call_sentinel(k)),
                Some(k)
            );
        }
        assert_eq!(layout::stub_index(0x1000), None);
        assert_eq!(layout::stub_index(layout::CLEAN_CALL_BASE), None);
        assert_eq!(layout::clean_call_index(layout::STUB_BASE), None);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn slots_live_in_rio_data_region() {
        assert!(layout::ECX_SLOT >= Image::RIO_DATA_BASE);
        assert!(layout::CLIENT_TLS_SLOT < Image::RIO_RUNTIME_BASE);
    }
}
