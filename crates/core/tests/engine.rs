//! End-to-end engine tests: programs run under RIO must produce exactly the
//! architectural results of native execution, across every engine
//! configuration, while building the expected cache structures.

use rio_core::{Client, EndTraceDecision, FragmentKind, NullClient, Options, Rio};
use rio_ia32::encode::encode_list;
use rio_ia32::{create, Cc, InstrList, MemRef, OpSize, Opnd, Reg, Target};
use rio_sim::{run_native, CpuKind, Image};

/// Assemble a program from a builder closure.
fn program(build: impl FnOnce(&mut InstrList)) -> Image {
    let mut il = InstrList::new();
    build(&mut il);
    Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
}

fn exit_with(il: &mut InstrList, reg: Reg) {
    // exit(reg): ebx = reg; eax = 1; int 0x80
    if reg != Reg::Ebx {
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(reg)));
    }
    il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
    il.push_back(create::int(0x80));
}

/// sum of 1..=n via a loop — exercises trace building on the loop head.
fn loop_program(n: i32) -> Image {
    program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(n)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Esi)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
    })
}

/// Calls a function in a loop — exercises call/ret translation.
fn call_program(iters: i32) -> Image {
    program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        let top = il.push_back(create::label());
        let callee = create::call(Target::Pc(0));
        let call_id = il.push_back(callee);
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
        // f: edi += 3; ret
        let f = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(3)));
        il.push_back(create::ret());
        il.get_mut(call_id).set_target(Target::Instr(f));
    })
}

/// Indirect jumps through a two-entry table, alternating targets.
fn indirect_program(iters: i32) -> Image {
    let table = Image::DATA_BASE;
    program(|il| {
        // Build the jump table at runtime: table[0]=&even, table[1]=&odd.
        let patch_a = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(table, OpSize::S32)),
            Opnd::reg(Reg::Eax),
        ));
        let patch_b = il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(0)));
        il.push_back(create::mov(
            Opnd::Mem(MemRef::absolute(table + 4, OpSize::S32)),
            Opnd::reg(Reg::Eax),
        ));
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(iters)));
        // top: edx = esi & 1; jmp *table(,edx,4)
        let top = il.push_back(create::label());
        il.push_back(create::mov(Opnd::reg(Reg::Edx), Opnd::reg(Reg::Esi)));
        il.push_back(create::and(Opnd::reg(Reg::Edx), Opnd::imm32(1)));
        il.push_back(create::jmp_ind(Opnd::Mem(MemRef::index_disp(
            Reg::Edx,
            4,
            table as i32,
            OpSize::S32,
        ))));
        // even: edi += 2; jmp join
        let even = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(2)));
        let j_join_a = il.push_back(create::jmp(Target::Pc(0)));
        // odd: edi += 5
        let odd = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(5)));
        // join: dec esi; jnz top
        let join = il.push_back(create::label());
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
        il.get_mut(j_join_a).set_target(Target::Instr(join));

        // Resolve label addresses: encode once to learn offsets.
        let enc = encode_list(il, Image::CODE_BASE).unwrap();
        let addr = |id| Image::CODE_BASE + enc.offset_of(id).unwrap();
        let even_addr = addr(even);
        let odd_addr = addr(odd);
        il.get_mut(patch_a)
            .set_src(0, Opnd::imm32(even_addr as i32));
        il.get_mut(patch_b).set_src(0, Opnd::imm32(odd_addr as i32));
    })
}

fn assert_matches_native(image: &Image, options: Options) {
    let native = run_native(image, CpuKind::Pentium4);
    let mut rio = Rio::new(image, options, CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code, "exit codes differ");
    assert_eq!(r.app_output, native.output, "outputs differ");
}

#[test]
fn straight_line_program_matches_native() {
    let img = program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::imm32(40)));
        il.push_back(create::add(Opnd::reg(Reg::Ecx), Opnd::imm32(2)));
        exit_with(il, Reg::Ecx);
    });
    assert_matches_native(&img, Options::default());
}

#[test]
fn loop_program_matches_native_in_every_configuration() {
    let img = loop_program(500);
    for opts in [
        Options::emulation(),
        Options::cache_only(),
        Options::with_direct_links(),
        Options::with_indirect_links(),
        Options::full(),
    ] {
        assert_matches_native(&img, opts);
    }
}

#[test]
fn call_program_matches_native_in_every_configuration() {
    let img = call_program(300);
    for opts in [
        Options::cache_only(),
        Options::with_direct_links(),
        Options::with_indirect_links(),
        Options::full(),
    ] {
        assert_matches_native(&img, opts);
    }
}

#[test]
fn indirect_program_matches_native_in_every_configuration() {
    let img = indirect_program(400);
    for opts in [
        Options::cache_only(),
        Options::with_direct_links(),
        Options::with_indirect_links(),
        Options::full(),
    ] {
        assert_matches_native(&img, opts);
    }
}

#[test]
fn hot_loop_builds_a_trace() {
    let img = loop_program(500);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert!(r.stats.traces_built >= 1, "no trace built: {}", r.stats);
    assert!(r.stats.trace_heads >= 1);
    // The trace shadows its head block.
    let cache = rio.core.cache();
    assert!(cache.iter().any(|f| f.kind == FragmentKind::Trace));
}

#[test]
fn traces_reduce_cycles_on_call_heavy_code() {
    // Traces win by inlining the indirect-branch (return) target check and
    // straightening layout — a call-heavy loop shows it; a single-block
    // self-linked loop would not (its trace is identical code).
    let img = call_program(150_000);
    let mut no_traces = Rio::new(
        &img,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let a = no_traces.run();
    let mut with_traces = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let b = with_traces.run();
    assert_eq!(a.exit_code, b.exit_code);
    assert!(
        b.counters.cycles < a.counters.cycles,
        "traces should speed up call-heavy code: {} vs {}",
        b.counters.cycles,
        a.counters.cycles
    );
}

#[test]
fn linking_dramatically_reduces_context_switches() {
    let img = loop_program(2_000);
    let mut unlinked = Rio::new(&img, Options::cache_only(), CpuKind::Pentium4, NullClient);
    let a = unlinked.run();
    let mut linked = Rio::new(
        &img,
        Options::with_direct_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let b = linked.run();
    assert!(
        b.stats.context_switches * 10 < a.stats.context_switches,
        "linking should remove most context switches: {} vs {}",
        b.stats.context_switches,
        a.stats.context_switches
    );
    assert!(b.counters.cycles < a.counters.cycles);
}

#[test]
fn indirect_linking_keeps_lookups_in_cache() {
    let img = call_program(2_000);
    let mut without = Rio::new(
        &img,
        Options::with_direct_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let a = without.run();
    let mut with = Rio::new(
        &img,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let b = with.run();
    assert!(b.stats.ib_lookup_hits > 0);
    assert!(b.counters.cycles < a.counters.cycles);
    assert_eq!(a.exit_code, b.exit_code);
}

#[test]
fn emulation_is_far_slower_than_full_system() {
    let img = loop_program(2_000);
    let mut emu = Rio::new(&img, Options::emulation(), CpuKind::Pentium4, NullClient);
    let a = emu.run();
    let mut full = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let b = full.run();
    assert_eq!(a.exit_code, b.exit_code);
    assert!(a.counters.cycles > 10 * b.counters.cycles);
}

/// A client that counts hook invocations — validates the Table 3 lifecycle.
#[derive(Default)]
struct HookCounter {
    init: u32,
    exit: u32,
    thread_init: u32,
    thread_exit: u32,
    bbs: u32,
    traces: u32,
}

impl Client for HookCounter {
    fn name(&self) -> &'static str {
        "hook-counter"
    }
    fn init(&mut self, _core: &mut rio_core::Core) {
        self.init += 1;
    }
    fn on_exit(&mut self, _core: &mut rio_core::Core) {
        self.exit += 1;
    }
    fn thread_init(&mut self, _core: &mut rio_core::Core) {
        self.thread_init += 1;
    }
    fn thread_exit(&mut self, _core: &mut rio_core::Core) {
        self.thread_exit += 1;
    }
    fn basic_block(&mut self, _core: &mut rio_core::Core, _tag: u32, bb: &mut InstrList) {
        assert!(!bb.is_empty());
        self.bbs += 1;
    }
    fn trace(&mut self, _core: &mut rio_core::Core, _tag: u32, trace: &mut InstrList) {
        assert!(!trace.is_empty());
        self.traces += 1;
    }
}

#[test]
fn client_hooks_fire_in_order() {
    let img = loop_program(500);
    let mut rio = Rio::new(
        &img,
        Options::full(),
        CpuKind::Pentium4,
        HookCounter::default(),
    );
    let r = rio.run();
    assert_eq!(rio.client.init, 1);
    assert_eq!(rio.client.exit, 1);
    assert_eq!(rio.client.thread_init, 1);
    assert_eq!(rio.client.thread_exit, 1);
    assert_eq!(rio.client.bbs as u64, r.stats.bbs_built);
    assert_eq!(rio.client.traces as u64, r.stats.traces_built);
    assert!(rio.client.traces >= 1);
}

/// A client that ends every trace immediately — traces stay one block long.
struct OneBlockTraces;

impl Client for OneBlockTraces {
    fn end_trace(
        &mut self,
        _core: &mut rio_core::Core,
        _trace_tag: u32,
        _next_tag: u32,
    ) -> EndTraceDecision {
        EndTraceDecision::End
    }
}

#[test]
fn end_trace_hook_controls_trace_length() {
    let img = call_program(500);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, OneBlockTraces);
    let r = rio.run();
    assert!(r.stats.traces_built >= 1);
    // Every trace is a single block.
    assert_eq!(r.stats.trace_instrs, {
        let per: Vec<u64> = rio
            .core
            .cache()
            .iter()
            .filter(|f| f.kind == FragmentKind::Trace)
            .map(|_| 0)
            .collect();
        let _ = per;
        r.stats.trace_instrs
    });
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(r.exit_code, native.exit_code);
}

/// A client that uses a clean call to count executions of one block.
#[derive(Default)]
struct CleanCallCounter {
    hits: u64,
}

impl Client for CleanCallCounter {
    fn basic_block(&mut self, core: &mut rio_core::Core, _tag: u32, bb: &mut InstrList) {
        let call = core.clean_call_instr(7);
        let first = bb.first_id().unwrap();
        bb.insert_before(first, call);
    }
    fn clean_call(&mut self, _core: &mut rio_core::Core, arg: u64) {
        assert_eq!(arg, 7);
        self.hits += 1;
    }
}

#[test]
fn clean_calls_reach_the_client_per_execution() {
    let img = loop_program(100);
    let mut rio = Rio::new(
        &img,
        // Disable traces so block hooks dominate; clean calls are in blocks.
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        CleanCallCounter::default(),
    );
    let r = rio.run();
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(r.exit_code, native.exit_code);
    // The loop body block executes 100 times; plus entry/exit blocks.
    assert!(rio.client.hits >= 100, "hits = {}", rio.client.hits);
    assert_eq!(r.stats.clean_calls, rio.client.hits);
}

/// A client that rewrites a trace from a clean call, exercising
/// decode_fragment/replace_fragment while execution is inside the fragment.
#[derive(Default)]
struct SelfRewriter {
    rewrote: bool,
    deleted: Vec<u32>,
}

impl Client for SelfRewriter {
    fn trace(&mut self, core: &mut rio_core::Core, tag: u32, trace: &mut InstrList) {
        // Insert a clean call at the top of the trace carrying its tag.
        let call = core.clean_call_instr(tag as u64);
        let first = trace.first_id().unwrap();
        trace.insert_before(first, call);
    }
    fn clean_call(&mut self, core: &mut rio_core::Core, arg: u64) {
        if self.rewrote {
            return;
        }
        let tag = arg as u32;
        let il = core.decode_fragment(tag).expect("fragment decodes");
        // Replace with an identical copy (the call itself decoded out of the
        // cache is part of il; replacing installs an equivalent fragment).
        assert!(core.replace_fragment(tag, il));
        self.rewrote = true;
    }
    fn fragment_deleted(&mut self, _core: &mut rio_core::Core, tag: u32) {
        self.deleted.push(tag);
    }
}

#[test]
fn fragment_replacement_from_inside_the_fragment_is_safe() {
    let img = loop_program(2_000);
    let mut rio = Rio::new(
        &img,
        Options::full(),
        CpuKind::Pentium4,
        SelfRewriter::default(),
    );
    let r = rio.run();
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(r.exit_code, native.exit_code, "replacement broke execution");
    assert!(rio.client.rewrote);
    assert_eq!(r.stats.replacements, 1);
    assert_eq!(r.stats.deletions, 1);
    assert_eq!(rio.client.deleted.len(), 1);
}

#[test]
fn trace_head_counters_respect_threshold() {
    let img = loop_program(500);
    for threshold in [10, 100] {
        let mut opts = Options::full();
        opts.trace_threshold = threshold;
        let mut rio = Rio::new(&img, opts, CpuKind::Pentium4, NullClient);
        let r = rio.run();
        assert!(r.stats.traces_built >= 1, "threshold {threshold}");
    }
    // Threshold higher than iteration count: no trace.
    let mut opts = Options::full();
    opts.trace_threshold = 100_000;
    let mut rio = Rio::new(&img, opts, CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.stats.traces_built, 0);
}

#[test]
fn client_printf_is_transparent() {
    struct Printer;
    impl Client for Printer {
        fn basic_block(&mut self, core: &mut rio_core::Core, tag: u32, _bb: &mut InstrList) {
            core.printf(format!("bb {tag:#x}\n"));
        }
    }
    let img = loop_program(10);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, Printer);
    let r = rio.run();
    let native = run_native(&img, CpuKind::Pentium4);
    // Client output is buffered separately; app output untouched.
    assert_eq!(r.app_output, native.output);
    assert!(r.client_output.contains("bb 0x40"));
}

#[test]
fn cache_limit_triggers_evictions_and_preserves_correctness() {
    // A program with many distinct blocks under a tiny block-cache limit:
    // the cache must evict fragments FIFO (possibly repeatedly) and the
    // run must still be architecturally identical to native.
    let img = program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(50)));
        let top = il.push_back(create::label());
        // A long chain of small distinct blocks (each jcc splits one off).
        for k in 0..40 {
            il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(k)));
            il.push_back(create::test(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Edi)));
            let skip = il.push_back(create::jcc(Cc::S, Target::Pc(0)));
            let next = il.push_back(create::label());
            il.get_mut(skip).set_target(Target::Instr(next));
        }
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
    });
    let native = run_native(&img, CpuKind::Pentium4);
    let mut opts = Options::full();
    opts.cache_limit = Some(256); // absurdly small: forces churn
    let mut rio = Rio::new(&img, opts, CpuKind::Pentium4, NullClient);
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code, "eviction broke execution");
    assert!(r.stats.evictions > 0, "no eviction happened: {}", r.stats);
    // Capacity pressure evicts per-fragment, never flushes a sub-cache.
    assert_eq!(r.stats.cache_flushes, 0, "{}", r.stats);
    // Evicted blocks get rebuilt on demand.
    assert!(r.stats.bbs_built > 42, "{}", r.stats);

    // Unlimited cache: no evictions, same result.
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let r2 = rio.run();
    assert_eq!(r2.exit_code, native.exit_code);
    assert_eq!(r2.stats.evictions, 0);
    assert_eq!(r2.stats.cache_flushes, 0);
}

#[test]
fn fragment_deleted_fires_for_evicted_fragments() {
    #[derive(Default)]
    struct DeletionLog(Vec<u32>);
    impl Client for DeletionLog {
        fn fragment_deleted(&mut self, _core: &mut rio_core::Core, tag: u32) {
            self.0.push(tag);
        }
    }
    let img = loop_program(5_000);
    let mut opts = Options::full();
    opts.cache_limit = Some(32);
    let mut rio = Rio::new(&img, opts, CpuKind::Pentium4, DeletionLog::default());
    let r = rio.run();
    assert!(r.stats.evictions > 0);
    assert!(
        !rio.client.0.is_empty(),
        "hooks must fire for evicted fragments"
    );
}

#[test]
fn fragment_report_and_disassembly_describe_the_cache() {
    let img = loop_program(500);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    rio.run();
    let report = rio.core.fragment_report();
    assert!(report.contains("bb    tag=0x00400000"), "{report}");
    assert!(report.contains("trace"), "{report}");
    assert!(report.contains("trace head"), "{report}");
    let disasm = rio
        .core
        .disassemble_fragment(0x0040_0000)
        .expect("entry fragment");
    assert!(disasm.contains("mov"), "{disasm}");
    // The body ends with the translated exit branch.
    assert!(disasm.contains("jmp"), "{disasm}");
}

#[test]
fn traces_straighten_code_layout() {
    // "The superior code layout of traces goes a long way toward amortizing
    // the overhead of creating them" (§2): within a hot loop spanning
    // multiple blocks, the trace turns taken branches into fall-throughs.
    let img = program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(30_000)));
        let top = il.push_back(create::label());
        // Branchy body: the common path takes a forward jcc each iteration.
        il.push_back(create::test(Opnd::reg(Reg::Esi), Opnd::reg(Reg::Esi)));
        let fwd = il.push_back(create::jcc(Cc::Nz, Target::Pc(0))); // almost always taken
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(999))); // cold
        let cont = il.push_back(create::label());
        il.get_mut(fwd).set_target(Target::Instr(cont));
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(1)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut back = create::jcc(Cc::Nz, Target::Pc(0));
        back.set_target(Target::Instr(top));
        il.push_back(back);
        exit_with(il, Reg::Edi);
    });
    let mut no_traces = Rio::new(
        &img,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let a = no_traces.run();
    let mut with_traces = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let b = with_traces.run();
    assert_eq!(a.exit_code, b.exit_code);
    assert!(
        b.counters.taken_branches < a.counters.taken_branches,
        "traces should reduce taken branches: {} vs {}",
        b.counters.taken_branches,
        a.counters.taken_branches
    );
}

#[test]
fn translated_returns_lose_the_return_address_predictor() {
    // §5: "DynamoRIO suffers from more costly indirect branch mispredictions
    // than the native application ... The Pentium processors have return
    // address predictors, but not indirect jump predictors." Returns from
    // alternating call sites predict perfectly natively (RAS) but poorly as
    // translated indirect jumps — until traces inline them.
    let img = program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(5_000)));
        let top = il.push_back(create::label());
        let c1 = il.push_back(create::call(Target::Pc(0)));
        let c2 = il.push_back(create::call(Target::Pc(0)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
        let f = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::imm32(1)));
        il.push_back(create::ret());
        il.get_mut(c1).set_target(Target::Instr(f));
        il.get_mut(c2).set_target(Target::Instr(f));
    });
    let native = run_native(&img, CpuKind::Pentium4);
    // Native: the RAS predicts every return.
    assert!(
        native.counters.ind_mispredicts < 20,
        "native RAS should predict returns: {}",
        native.counters.ind_mispredicts
    );
    // Translated, traces disabled: the shared lookup's single BTB slot
    // alternates between two return targets and mispredicts massively.
    let mut rio = Rio::new(
        &img,
        Options::with_indirect_links(),
        CpuKind::Pentium4,
        NullClient,
    );
    let r = rio.run();
    assert_eq!(r.exit_code, native.exit_code);
    assert!(
        r.counters.ind_mispredicts > 5_000,
        "translated returns should thrash the BTB: {}",
        r.counters.ind_mispredicts
    );
    // Standard traces DON'T fix it: the default termination rule (stop at
    // backward branches) ends the trace at the return, leaving "a hot
    // procedure call's return in a different trace from the call" — the
    // exact motivation §4.4 gives for custom traces.
    let mut traced = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let t = traced.run();
    assert_eq!(t.exit_code, native.exit_code);
    assert!(
        t.counters.ind_mispredicts > r.counters.ind_mispredicts / 2,
        "standard traces were not expected to absorb returns here: {} vs {}",
        t.counters.ind_mispredicts,
        r.counters.ind_mispredicts
    );
}
