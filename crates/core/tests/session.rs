//! Resumable-session tests: the stepper API must suspend and resume with
//! no observable effect on execution, budgets must be honored at safe
//! points, the engine must be `Send`, and safe-point cache flushes must
//! fire the `fragment_deleted` hooks and leave execution correct.

use std::time::Duration;

use rio_core::{
    Client, Core, NullClient, Options, Rio, RioRunResult, StepBudget, StepOutcome, StopReason,
};
use rio_ia32::encode::encode_list;
use rio_ia32::{create, Cc, InstrList, Opnd, Reg, Target};
use rio_sim::{CpuKind, Image, Machine};

/// Assemble a program from a builder closure.
fn program(build: impl FnOnce(&mut InstrList)) -> Image {
    let mut il = InstrList::new();
    build(&mut il);
    Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
}

fn exit_with(il: &mut InstrList, reg: Reg) {
    if reg != Reg::Ebx {
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(reg)));
    }
    il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
    il.push_back(create::int(0x80));
}

/// sum of 1..=n via a loop — hot enough to build traces.
fn loop_program(n: i32) -> Image {
    program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(n)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Esi)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
    })
}

/// An image that never terminates: `jmp self`.
fn infinite_program() -> Image {
    program(|il| {
        let top = il.push_back(create::label());
        let mut j = create::jmp(Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
    })
}

/// Drive a session to completion in budget-sized steps; count suspensions.
fn run_in_steps<C: Client>(rio: &mut Rio<C>, budget: StepBudget) -> (RioRunResult, u64) {
    let mut suspensions = 0;
    loop {
        match rio.step(budget) {
            StepOutcome::Running(_) => suspensions += 1,
            StepOutcome::Exited(code) => return (rio.result_snapshot(code), suspensions),
            StepOutcome::Faulted(f) => panic!("unexpected fault: {}", f.message),
        }
    }
}

// ----- Send audit ---------------------------------------------------------

#[test]
fn engine_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Core>();
    assert_send::<Machine>();
    assert_send::<Rio<NullClient>>();
    assert_send::<StepBudget>();
    assert_send::<StepOutcome>();
    assert_send::<RioRunResult>();
}

#[test]
fn session_can_move_between_threads() {
    let image = loop_program(500);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    // Suspend mid-run on this thread...
    let outcome = rio.step(StepBudget::instructions(100));
    assert!(matches!(outcome, StepOutcome::Running(_)));
    // ...finish on another.
    let result = std::thread::spawn(move || rio.run()).join().unwrap();
    let mut reference = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let expected = reference.run();
    assert_eq!(result.exit_code, expected.exit_code);
    assert_eq!(result.counters, expected.counters);
    assert_eq!(result.stats, expected.stats);
}

// ----- suspend/resume transparency ----------------------------------------

#[test]
fn stepping_is_invisible_to_execution() {
    let image = loop_program(400);
    for opts in [
        Options::emulation(),
        Options::cache_only(),
        Options::with_direct_links(),
        Options::full(),
    ] {
        let mut reference = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        let uninterrupted = reference.run();

        for budget in [
            StepBudget::instructions(1),
            StepBudget::instructions(97),
            StepBudget::cycles(333),
        ] {
            let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
            let (stepped, suspensions) = run_in_steps(&mut rio, budget);
            assert!(suspensions > 0, "budget {budget:?} never suspended");
            assert_eq!(stepped.exit_code, uninterrupted.exit_code, "{budget:?}");
            assert_eq!(stepped.counters, uninterrupted.counters, "{budget:?}");
            assert_eq!(stepped.stats, uninterrupted.stats, "{budget:?}");
            assert_eq!(stepped.app_output, uninterrupted.app_output, "{budget:?}");
        }
    }
}

#[test]
fn run_after_steps_completes_the_session() {
    let image = loop_program(300);
    let mut reference = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let expected = reference.run();

    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    assert!(matches!(
        rio.step(StepBudget::instructions(50)),
        StepOutcome::Running(StopReason::InstructionBudget)
    ));
    assert_eq!(rio.exit_status(), None);
    let result = rio.run();
    assert_eq!(result.exit_code, expected.exit_code);
    assert_eq!(result.counters, expected.counters);
    assert_eq!(result.stats, expected.stats);
    assert_eq!(rio.exit_status(), Some(expected.exit_code));
}

#[test]
fn stepping_a_finished_session_is_idempotent() {
    let image = loop_program(50);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let result = rio.run();
    let counters = rio.core.machine.counters;
    for _ in 0..3 {
        match rio.step(StepBudget::unlimited()) {
            StepOutcome::Exited(code) => assert_eq!(code, result.exit_code),
            other => panic!("expected Exited, got {other:?}"),
        }
    }
    assert_eq!(rio.core.machine.counters, counters, "no work after exit");
}

// ----- budget enforcement -------------------------------------------------

#[test]
fn instruction_budget_is_precise() {
    let image = loop_program(10_000);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let outcome = rio.step(StepBudget::instructions(1_000));
    assert!(matches!(
        outcome,
        StepOutcome::Running(StopReason::InstructionBudget)
    ));
    assert_eq!(rio.core.machine.counters.instructions, 1_000);
}

#[test]
fn cycle_budget_suspends() {
    let image = loop_program(100_000);
    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let outcome = rio.step(StepBudget::cycles(10_000));
    assert!(matches!(
        outcome,
        StepOutcome::Running(StopReason::CycleBudget)
    ));
    assert!(rio.core.machine.counters.cycles >= 10_000);
}

#[test]
fn timeout_interrupts_a_nonterminating_image() {
    let image = infinite_program();
    for opts in [Options::emulation(), Options::full()] {
        let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
        let outcome = rio.step(StepBudget::unlimited().with_timeout(Duration::from_millis(50)));
        assert!(
            matches!(outcome, StepOutcome::Running(StopReason::Timeout)),
            "expected timeout under {opts:?}, got {outcome:?}"
        );
    }
}

#[test]
fn emulation_mode_honors_instruction_budgets() {
    let image = loop_program(5_000);
    let mut reference = Rio::new(&image, Options::emulation(), CpuKind::Pentium4, NullClient);
    let expected = reference.run();
    let mut rio = Rio::new(&image, Options::emulation(), CpuKind::Pentium4, NullClient);
    let (stepped, suspensions) = run_in_steps(&mut rio, StepBudget::instructions(512));
    assert!(suspensions > 0);
    assert_eq!(stepped.exit_code, expected.exit_code);
    assert_eq!(stepped.counters, expected.counters);
    assert_eq!(stepped.stats, expected.stats);
}

// ----- safe-point cache flush under the stepper ---------------------------

/// Counts `fragment_deleted` callbacks.
#[derive(Default)]
struct DeletionWatcher {
    deleted_tags: Vec<u32>,
}

impl Client for DeletionWatcher {
    fn name(&self) -> &'static str {
        "deletion-watcher"
    }

    fn fragment_deleted(&mut self, _core: &mut Core, tag: u32) {
        self.deleted_tags.push(tag);
    }
}

#[test]
fn flush_at_safe_point_mid_session() {
    let image = loop_program(2_000);
    let mut reference = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    let expected = reference.run();

    let mut rio = Rio::new(
        &image,
        Options::full(),
        CpuKind::Pentium4,
        DeletionWatcher::default(),
    );
    // Run far enough that fragments exist, but suspend while the loop head
    // is still dispatch-counted — so the post-flush iterations must rebuild
    // it (and eventually re-grow the trace).
    assert!(matches!(
        rio.step(StepBudget::instructions(100)),
        StepOutcome::Running(_)
    ));
    let live_before: Vec<u32> = rio
        .core
        .cache()
        .iter()
        .filter(|f| !f.deleted)
        .map(|f| f.tag)
        .collect();
    assert!(!live_before.is_empty(), "no fragments built before flush");

    // Flush the whole cache at the suspension safe point, then resume.
    rio.core.request_cache_flush();
    let code = loop {
        match rio.step(StepBudget::instructions(500)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => break code,
            StepOutcome::Faulted(f) => panic!("fault after flush: {}", f.message),
        }
    };

    // Correct result despite losing every fragment mid-run.
    assert_eq!(code, expected.exit_code);
    // Every pre-flush fragment was reported deleted.
    for tag in &live_before {
        assert!(
            rio.client.deleted_tags.contains(tag),
            "fragment {tag:#x} flushed without a fragment_deleted callback"
        );
    }
    assert!(rio.core.stats.cache_flushes >= 1);
    // Execution rebuilt the flushed loop block...
    assert!(rio.core.stats.bbs_built > expected.stats.bbs_built);
    assert!(rio.core.stats.dispatches > expected.stats.dispatches);
    // ...and the trace was grown entirely after the flush (the flush reset
    // the head counter before the threshold was ever reached).
    assert_eq!(rio.core.stats.traces_built, expected.stats.traces_built);
}

#[test]
fn eviction_under_capacity_pressure_while_stepping() {
    // Tiny cache limit: FIFO evictions happen during the run; stepping
    // must not change the outcome.
    let image = loop_program(1_000);
    let mut opts = Options::full();
    opts.cache_limit = Some(32);
    let mut reference = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
    let expected = reference.run();
    assert!(expected.stats.evictions > 0);
    assert_eq!(expected.stats.cache_flushes, 0);

    let mut rio = Rio::new(&image, opts, CpuKind::Pentium4, NullClient);
    let (stepped, _) = run_in_steps(&mut rio, StepBudget::instructions(64));
    assert_eq!(stepped.exit_code, expected.exit_code);
    assert_eq!(stepped.counters, expected.counters);
    assert_eq!(stepped.stats, expected.stats);
}

#[test]
fn pressure_fired_while_suspended_mid_step_evicts_safely() {
    // Suspend the session mid-cache-execution (eip inside a fragment), then
    // impose an impossible cache limit at the suspension point. The next
    // dispatch must evict every fragment *except* one execution might still
    // be inside — deferring it to a later dispatch — and the run must
    // finish with the same result as an unbounded one.
    let image = loop_program(2_000);
    let expected = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient).run();

    let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
    assert!(matches!(
        rio.step(StepBudget::instructions(150)),
        StepOutcome::Running(_)
    ));
    let live_before = rio.core.cache().iter().filter(|f| !f.deleted).count();
    assert!(live_before > 0, "no fragments built before the limit drop");
    rio.core.options.cache_limit = Some(0);
    let code = loop {
        match rio.step(StepBudget::instructions(500)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => break code,
            StepOutcome::Faulted(f) => panic!("fault under pressure: {}", f.message),
        }
    };
    assert_eq!(code, expected.exit_code);
    assert!(rio.core.stats.evictions as usize >= live_before);
    assert_eq!(rio.core.stats.cache_flushes, 0);
    // Every dispatch rebuilt its block after the limit dropped to zero.
    assert!(rio.core.stats.bbs_built > expected.stats.bbs_built);
}
