//! Engine-level verification tests: the always-on client-safety lints must
//! catch deliberately broken clients, the cache verifier must detect
//! injected corruption, and well-behaved configurations must verify clean —
//! including fragments rebuilt through `replace_fragment`, whose
//! re-decoded translation tables regressed before the verifier existed.

use rio_core::{
    Check, Client, FaultInjector, InjectionPlan, NullClient, Options, Rio, StepBudget, StepOutcome,
};
use rio_ia32::encode::encode_list;
use rio_ia32::{create, Cc, InstrList, Opcode, Opnd, Reg, Target};
use rio_sim::{run_native, CpuKind, Image};

fn program(build: impl FnOnce(&mut InstrList)) -> Image {
    let mut il = InstrList::new();
    build(&mut il);
    Image::from_code(encode_list(&il, Image::CODE_BASE).unwrap().bytes)
}

fn exit_with(il: &mut InstrList, reg: Reg) {
    if reg != Reg::Ebx {
        il.push_back(create::mov(Opnd::reg(Reg::Ebx), Opnd::reg(reg)));
    }
    il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(1)));
    il.push_back(create::int(0x80));
}

fn loop_program(n: i32) -> Image {
    program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Edi), Opnd::imm32(0)));
        il.push_back(create::mov(Opnd::reg(Reg::Esi), Opnd::imm32(n)));
        let top = il.push_back(create::label());
        il.push_back(create::add(Opnd::reg(Reg::Edi), Opnd::reg(Reg::Esi)));
        il.push_back(create::dec(Opnd::reg(Reg::Esi)));
        let mut j = create::jcc(Cc::Nz, Target::Pc(0));
        j.set_target(Target::Instr(top));
        il.push_back(j);
        exit_with(il, Reg::Edi);
    })
}

/// A broken client that inserts an unguarded clobber of `%ebx` (no spill,
/// no app pc) into every basic block.
struct ClobberingClient;
impl Client for ClobberingClient {
    fn name(&self) -> &'static str {
        "clobber"
    }
    fn basic_block(&mut self, _core: &mut rio_core::Core, _tag: u32, bb: &mut InstrList) {
        let first = bb.first_id().unwrap();
        bb.insert_before(first, create::mov(Opnd::reg(Reg::Ebx), Opnd::imm32(7)));
    }
}

#[test]
fn clobbering_client_fires_the_instrumentation_lint() {
    let img = loop_program(50);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, ClobberingClient);
    let r = rio.run();
    assert!(r.stats.violations > 0, "lint never fired");
    assert!(
        rio.core
            .verify_findings()
            .iter()
            .any(|v| v.check == Check::InstrumentationLint),
        "expected an instrumentation-lint finding, got {:?}",
        rio.core.verify_findings()
    );
}

/// A broken optimizer that converts every `inc` to `add` without proving
/// the carry flag dead — the unsound version of the `inc2add` client.
struct BlindIncToAdd;
impl Client for BlindIncToAdd {
    fn name(&self) -> &'static str {
        "blind-inc2add"
    }
    fn basic_block(&mut self, _core: &mut rio_core::Core, _tag: u32, bb: &mut InstrList) {
        let incs: Vec<_> = bb
            .ids()
            .filter(|id| bb.get(*id).opcode() == Some(Opcode::Inc))
            .collect();
        for id in incs {
            let instr = bb.get(id);
            let dst = instr.dsts().first().cloned().unwrap();
            let mut add = create::add(dst, Opnd::imm32(1));
            add.set_app_pc(instr.app_pc());
            bb.replace(id, add);
        }
    }
}

#[test]
fn unsound_edit_fires_the_transformation_lint() {
    // CF is set by the cmp, preserved by inc, and consumed by adc — so the
    // blind inc->add conversion both breaks the program and must be caught.
    let img = program(|il| {
        il.push_back(create::mov(Opnd::reg(Reg::Eax), Opnd::imm32(5)));
        il.push_back(create::mov(Opnd::reg(Reg::Ecx), Opnd::imm32(0)));
        il.push_back(create::cmp(Opnd::reg(Reg::Eax), Opnd::imm32(6)));
        il.push_back(create::inc(Opnd::reg(Reg::Eax)));
        il.push_back(create::adc(Opnd::reg(Reg::Ecx), Opnd::imm32(0)));
        exit_with(il, Reg::Ecx);
    });
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, BlindIncToAdd);
    let r = rio.run();
    assert!(r.stats.violations > 0, "lint never fired");
    assert!(
        rio.core
            .verify_findings()
            .iter()
            .any(|v| v.check == Check::TransformationLint),
        "expected a transformation-lint finding, got {:?}",
        rio.core.verify_findings()
    );
}

#[test]
fn verify_cache_detects_injected_corruption() {
    let img = loop_program(4_000);
    let mut rio = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let mut injector = FaultInjector::new(InjectionPlan::CorruptFragment { nth: 0 });
    // Step until the corruption lands, then verify before executing it.
    while !injector.applied() {
        injector.poll(&mut rio);
        if injector.applied() {
            break;
        }
        match rio.step(StepBudget::instructions(50)) {
            StepOutcome::Running(_) => {}
            other => panic!("program ended before corruption: {other:?}"),
        }
    }
    let v = rio.core.verify_cache();
    assert!(
        v.iter().any(|x| x.check == Check::Decode),
        "corruption not detected: {v:?}"
    );
}

/// Regression: a fragment rebuilt via `decode_fragment` + `replace_fragment`
/// must carry a faithful translation table (app pcs, not cache addresses) —
/// the verifier's translation check fails the whole cache otherwise.
struct RewriteOnce {
    rewrote: bool,
}
impl Client for RewriteOnce {
    fn name(&self) -> &'static str {
        "rewrite-once"
    }
    fn trace(&mut self, core: &mut rio_core::Core, tag: u32, trace: &mut InstrList) {
        let call = core.clean_call_instr(tag as u64);
        let first = trace.first_id().unwrap();
        trace.insert_before(first, call);
    }
    fn clean_call(&mut self, core: &mut rio_core::Core, arg: u64) {
        if self.rewrote {
            return;
        }
        let tag = arg as u32;
        let il = core.decode_fragment(tag).expect("fragment decodes");
        assert!(core.replace_fragment(tag, il));
        self.rewrote = true;
    }
}

#[test]
fn replaced_fragments_verify_clean() {
    let img = loop_program(2_000);
    let mut opts = Options::full();
    opts.verify = true;
    let mut rio = Rio::new(
        &img,
        opts,
        CpuKind::Pentium4,
        RewriteOnce { rewrote: false },
    );
    let r = rio.run();
    let native = run_native(&img, CpuKind::Pentium4);
    assert_eq!(r.exit_code, native.exit_code);
    assert!(rio.client.rewrote, "replacement never happened");
    assert_eq!(r.stats.replacements, 1);
    assert_eq!(r.stats.violations, 0, "{:?}", rio.core.verify_findings());
    let sweep = rio.core.verify_cache();
    assert!(sweep.is_empty(), "{sweep:?}");
}

#[test]
fn verified_runs_are_clean_and_uncharged() {
    let img = loop_program(500);
    let native = run_native(&img, CpuKind::Pentium4);
    let mut plain = Rio::new(&img, Options::full(), CpuKind::Pentium4, NullClient);
    let rp = plain.run();
    let mut opts = Options::full();
    opts.verify = true;
    let mut checked = Rio::new(&img, opts, CpuKind::Pentium4, NullClient);
    let rc = checked.run();
    assert_eq!(rc.exit_code, native.exit_code);
    assert!(rc.stats.checks_run > 0, "verification never ran");
    assert_eq!(rc.stats.violations, 0);
    // Verification is an offline observer: it must not perturb the
    // simulated cost model.
    assert_eq!(rc.counters.cycles, rp.counters.cycles);
    assert_eq!(rc.counters.instructions, rp.counters.instructions);
    assert!(checked.core.verify_cache().is_empty());
}
