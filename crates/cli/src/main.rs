//! `rio` — command-line front end for the RIO dynamic code modification
//! system.
//!
//! ```text
//! rio run <prog.dyna | bench:NAME> [options]   run a program under RIO
//! rio native <prog.dyna | bench:NAME>          run natively (baseline)
//! rio disasm <prog.dyna | bench:NAME>          disassemble the compiled image
//! rio fragments <prog.dyna | bench:NAME> [options]  run, then dump the code cache
//! rio suite [--client NAME] [--jobs N]         run the whole benchmark suite
//! rio faults [--cpu p3|p4] [--jobs N]          fault-injection robustness suite
//! rio smc [--cpu p3|p4] [--jobs N]             self-modifying-code consistency suite
//! rio verify [--cpu p3|p4] [--jobs N]          run everything under the cache verifier
//! rio fuzz [--seeds N] [--seed-base HEX] [--cpu p3|p4] [--jobs N]
//!          [--corpus DIR] [--replay]           differential conformance fuzzing
//! rio bench-list                               list the benchmark suite
//!
//! run options:
//!   --client NAME     null (default) | rlr | inc2add | ibdispatch |
//!                     ctrace | combined | shepherd | inscount | opstats
//!   --cpu p3|p4       processor model (default p4)
//!   --emulate         Table 1 row 1 configuration
//!   --no-links        disable direct-branch linking
//!   --no-ib-links     disable indirect-branch in-cache lookup
//!   --no-traces       disable trace building
//!   --threshold N     trace-head threshold (default 50)
//!   --cache-limit N   per-sub-cache capacity in bytes (FIFO eviction;
//!                     also honors the RIO_CACHE_LIMIT env var)
//!   --max-instructions N  stop after N application instructions (exit 124)
//!   --timeout-cycles N    stop after N simulated cycles (exit 124)
//!   --verify          re-verify affected fragments at every safe point
//!                     (also honors RIO_VERIFY=1; never charged to the run)
//!   --stats           print engine statistics
//!
//! suite options: --client as above (the six measured kinds), --cpu,
//! --jobs N (worker threads; also honors RIO_JOBS, defaults to the
//! host's available parallelism).
//!
//! fuzz options: --seeds N generated programs (default 64), starting at
//! --seed-base HEX (default 0x5eed0000); every program runs natively and
//! through the full engine-configuration matrix, any divergence is
//! minimized and saved into --corpus DIR (default tests/corpus).
//! --replay instead re-runs every saved corpus entry through the matrix.
//! Campaign output is byte-identical for any --jobs value.
//!
//! exit codes: the program's own status; 124 when a --max-instructions /
//! --timeout-cycles budget runs out; on an unhandled guest fault,
//! 128 + fault kind (129 divide error, 130 invalid opcode, 131 memory
//! fault, 128 engine-level failure) with a one-line report on stderr —
//! the same convention the simulated OS uses for native runs.
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use rio_bench::{
    native_cycles, parse_suite_args, parse_suite_args_with, print_suite_rows, run_config,
    run_parallel, ClientKind, SuiteArgs,
};
use rio_clients::{CTrace, Combined, IbDispatch, Inc2Add, InsCount, OpStats, Rlr, Shepherd};
use rio_core::{
    Client, Fault, FaultInjector, FaultKind, InjectionPlan, NullClient, Options, Rio, RioRunResult,
    Stats, StepBudget, StepOutcome,
};
use rio_sim::{run_native, run_native_guarded, CpuKind, Image};
use rio_workloads::{benchmark, compile, compiled_suite, faulting, smc, suite};

/// Exit code when a `--max-instructions` / `--timeout-cycles` budget runs
/// out before the program exits (matches the `timeout(1)` convention).
const EXIT_BUDGET_EXHAUSTED: u8 = 124;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rio <run|native|disasm|fragments|suite|faults|smc|verify|fuzz|bench-list> [args]  (see --help in source header)"
    );
    ExitCode::from(2)
}

fn load_image(spec: &str) -> Result<Image, String> {
    let source = if let Some(name) = spec.strip_prefix("bench:") {
        benchmark(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `rio bench-list`)"))?
            .source
    } else {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?
    };
    compile(&source).map_err(|e| format!("compile error: {e}"))
}

struct RunArgs {
    spec: String,
    client: String,
    cpu: CpuKind,
    options: Options,
    stats: bool,
    max_instructions: Option<u64>,
    timeout_cycles: Option<u64>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        spec: String::new(),
        client: "null".into(),
        cpu: CpuKind::Pentium4,
        options: Options::default(),
        stats: false,
        max_instructions: None,
        timeout_cycles: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--client" => {
                out.client = it.next().ok_or("--client needs a value")?.clone();
            }
            "--cpu" => {
                out.cpu = match it.next().ok_or("--cpu needs a value")?.as_str() {
                    "p3" => CpuKind::Pentium3,
                    "p4" => CpuKind::Pentium4,
                    other => return Err(format!("unknown cpu `{other}` (p3|p4)")),
                };
            }
            "--emulate" => out.options = Options::emulation(),
            "--no-links" => {
                out.options.link_direct = false;
                out.options.link_indirect = false;
                out.options.enable_traces = false;
            }
            "--no-ib-links" => {
                out.options.link_indirect = false;
                out.options.enable_traces = false;
            }
            "--no-traces" => out.options.enable_traces = false,
            "--threshold" => {
                out.options.trace_threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?;
            }
            "--cache-limit" => {
                out.options.cache_limit = Some(
                    it.next()
                        .ok_or("--cache-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("bad cache limit: {e}"))?,
                );
            }
            "--max-instructions" => {
                out.max_instructions = Some(
                    it.next()
                        .ok_or("--max-instructions needs a value")?
                        .parse()
                        .map_err(|e| format!("bad instruction budget: {e}"))?,
                );
            }
            "--timeout-cycles" => {
                out.timeout_cycles = Some(
                    it.next()
                        .ok_or("--timeout-cycles needs a value")?
                        .parse()
                        .map_err(|e| format!("bad cycle budget: {e}"))?,
                );
            }
            "--stats" => out.stats = true,
            "--verify" => out.options.verify = true,
            other if !other.starts_with('-') && out.spec.is_empty() => {
                out.spec = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if out.spec.is_empty() {
        return Err("missing program (a .dyna file or bench:NAME)".into());
    }
    // `--cache-limit` wins; otherwise honor the environment.
    apply_cache_limit_env(&mut out.options)?;
    apply_verify_env(&mut out.options);
    Ok(out)
}

/// Turn on incremental verification when `RIO_VERIFY=1` is set (unless the
/// explicit `--verify` flag already did).
fn apply_verify_env(options: &mut Options) {
    if !options.verify {
        options.verify = verify_env();
    }
}

/// Whether `RIO_VERIFY` asks for verification (any value except `0`/empty).
fn verify_env() -> bool {
    std::env::var("RIO_VERIFY").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Fill `Options::cache_limit` from `RIO_CACHE_LIMIT` when no explicit
/// `--cache-limit` was given.
fn apply_cache_limit_env(options: &mut Options) -> Result<(), String> {
    if options.cache_limit.is_none() {
        if let Ok(v) = std::env::var("RIO_CACHE_LIMIT") {
            options.cache_limit = Some(
                v.parse()
                    .map_err(|e| format!("bad RIO_CACHE_LIMIT `{v}`: {e}"))?,
            );
        }
    }
    Ok(())
}

/// Outcome of a budgeted CLI run.
struct DrivenRun {
    result: RioRunResult,
    /// Set when a `--max-instructions` / `--timeout-cycles` budget ran out
    /// before the program exited.
    exhausted: Option<&'static str>,
}

fn run_with_client(image: &Image, a: &RunArgs) -> Result<DrivenRun, String> {
    fn go<C: Client>(image: &Image, a: &RunArgs, client: C) -> Result<DrivenRun, String> {
        let mut rio = Rio::new(image, a.options, a.cpu, client);
        if a.max_instructions.is_none() && a.timeout_cycles.is_none() {
            return Ok(DrivenRun {
                result: rio.run(),
                exhausted: None,
            });
        }
        // A budgeted session: take a single step carrying the whole budget
        // and report exhaustion instead of running to completion.
        let budget = StepBudget {
            max_instructions: a.max_instructions,
            max_cycles: a.timeout_cycles,
            timeout: None,
        };
        match rio.step(budget) {
            StepOutcome::Exited(code) => Ok(DrivenRun {
                result: rio.result_snapshot(code),
                exhausted: None,
            }),
            StepOutcome::Running(reason) => Ok(DrivenRun {
                result: rio.result_snapshot(i32::from(EXIT_BUDGET_EXHAUSTED)),
                exhausted: Some(match reason {
                    rio_core::StopReason::InstructionBudget => "instruction budget",
                    rio_core::StopReason::CycleBudget => "cycle budget",
                    rio_core::StopReason::Timeout => "timeout",
                }),
            }),
            StepOutcome::Faulted(f) => {
                let mut result = rio.result_snapshot(f.exit_code());
                result.fault = Some(f);
                Ok(DrivenRun {
                    result,
                    exhausted: None,
                })
            }
        }
    }
    match a.client.as_str() {
        "null" => go(image, a, NullClient),
        "rlr" => go(image, a, Rlr::new()),
        "inc2add" => go(image, a, Inc2Add::new()),
        "ibdispatch" => go(image, a, IbDispatch::new()),
        "ctrace" => go(image, a, CTrace::new()),
        "combined" => go(image, a, Combined::new()),
        "shepherd" => go(image, a, Shepherd::new()),
        "inscount" => go(image, a, InsCount::new()),
        "opstats" => go(image, a, OpStats::new()),
        other => Err(format!("unknown client `{other}`")),
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_run_args(args)?;
    let image = load_image(&a.spec)?;
    let native = run_native(&image, a.cpu);
    let run = run_with_client(&image, &a)?;
    let r = &run.result;
    print!("{}", r.app_output);
    if let Some(f) = &r.fault {
        // One faithful line carrying both address spaces; the exit status
        // below follows the 128+kind convention documented in the header.
        eprintln!("rio: {}", f.message);
    }
    if run.exhausted.is_none() && (r.app_output != native.output || r.exit_code != native.exit_code)
    {
        eprintln!(
            "!! DIVERGENCE from native execution (native exit {})",
            native.exit_code
        );
    }
    if !r.client_output.is_empty() {
        eprintln!("--- client output ---");
        eprint!("{}", r.client_output);
    }
    eprintln!(
        "--- {} instrs, {} cycles, {:.3}x native, {} evictions, {} code writes, {} checks ({} violations) ---",
        r.counters.instructions,
        r.counters.cycles,
        r.counters.cycles as f64 / native.counters.cycles as f64,
        r.stats.evictions,
        r.stats.code_writes,
        r.stats.checks_run,
        r.stats.violations
    );
    if a.stats {
        eprintln!("{}", r.stats);
        if r.sideline_cycles > 0 {
            eprintln!("sideline cycles: {}", r.sideline_cycles);
        }
    }
    if let Some(what) = run.exhausted {
        eprintln!(
            "rio: {what} exhausted after {} instructions / {} cycles; program did not finish",
            r.counters.instructions, r.counters.cycles
        );
        return Ok(ExitCode::from(EXIT_BUDGET_EXHAUSTED));
    }
    Ok(ExitCode::from((r.exit_code & 0xFF) as u8))
}

fn cmd_fragments(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_run_args(args)?;
    let image = load_image(&a.spec)?;
    // Run with the null client (or the requested one) and dump the cache.
    fn go<C: rio_core::Client>(image: &Image, a: &RunArgs, client: C) -> Rio<C> {
        let mut rio = Rio::new(image, a.options, a.cpu, client);
        rio.run();
        rio
    }
    // Fragment dumps only need the engine state; use the null client to
    // keep the cache contents canonical unless another client was asked
    // for explicitly.
    if a.client != "null" {
        let r = run_with_client(&image, &a)?;
        let _ = r;
        eprintln!("note: per-client fragment dumps use the null client's run");
    }
    let rio = go(&image, &a, NullClient);
    print!("{}", rio.core.fragment_report());
    // Also disassemble the hottest-looking fragment (the entry).
    if let Some(disasm) = rio.core.disassemble_fragment(Image::CODE_BASE) {
        println!("--- entry fragment ---");
        print!("{disasm}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_native(args: &[String]) -> Result<ExitCode, String> {
    let spec = args.first().ok_or("missing program")?;
    let image = load_image(spec)?;
    let r = run_native(&image, CpuKind::Pentium4);
    print!("{}", r.output);
    eprintln!("--- {} ---", r.counters);
    Ok(ExitCode::from((r.exit_code & 0xFF) as u8))
}

fn cmd_disasm(args: &[String]) -> Result<ExitCode, String> {
    let spec = args.first().ok_or("missing program")?;
    let image = load_image(spec)?;
    let lines = rio_ia32::disasm::disassemble(&image.code, Image::CODE_BASE)
        .map_err(|e| format!("disassembly failed: {e}"))?;
    for l in lines {
        println!("{:08x}  {:24}  {:<40} {}", l.pc, l.raw, l.text, l.eflags);
    }
    Ok(ExitCode::SUCCESS)
}

/// `rio suite`: run every benchmark in the suite under the engine on the
/// worker pool, validate each against native execution, and print the
/// normalized-time table plus aggregate statistics.
fn cmd_suite(args: &[String]) -> Result<ExitCode, String> {
    let mut client = ClientKind::Null;
    let mut cpu = CpuKind::Pentium4;
    let mut njobs = rio_bench::jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--client" => {
                client = match it.next().ok_or("--client needs a value")?.as_str() {
                    "null" | "base" => ClientKind::Null,
                    "rlr" => ClientKind::Rlr,
                    "inc2add" => ClientKind::Inc2Add,
                    "ibdispatch" => ClientKind::IbDispatch,
                    "ctrace" | "ctraces" => ClientKind::CTrace,
                    "combined" => ClientKind::Combined,
                    other => {
                        return Err(format!(
                            "unknown suite client `{other}` (null|rlr|inc2add|ibdispatch|ctrace|combined)"
                        ))
                    }
                };
            }
            "--cpu" => {
                cpu = match it.next().ok_or("--cpu needs a value")?.as_str() {
                    "p3" => CpuKind::Pentium3,
                    "p4" => CpuKind::Pentium4,
                    other => return Err(format!("unknown cpu `{other}` (p3|p4)")),
                };
            }
            "--jobs" | "-j" => {
                njobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count: {e}"))?
                    .max(1);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let mut opts = Options::full();
    apply_cache_limit_env(&mut opts)?;
    apply_verify_env(&mut opts);
    let benches = compiled_suite();
    let rows = run_parallel(&benches, njobs, |_, (b, image)| {
        let (native, exit, out) = native_cycles(image, cpu);
        let r = run_config(image, opts, cpu, client);
        let diverged = (r.exit_code, r.output.as_str()) != (exit, out.as_str());
        (b.name, native, r, diverged)
    });

    println!(
        "suite under client `{}` ({njobs} worker{})",
        client.label(),
        if njobs == 1 { "" } else { "s" }
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "benchmark", "native cyc", "rio cyc", "norm"
    );
    let mut failed = 0usize;
    for (name, native, r, diverged) in &rows {
        // A benchmark that faulted is recorded as a failed row (with the
        // faithful fault report) rather than aborting the whole table.
        let marker = match (&r.fault, diverged) {
            (Some(msg), _) => format!("  !! FAULTED: {msg}"),
            (None, true) => "  !! DIVERGED".to_string(),
            (None, false) => String::new(),
        };
        println!(
            "{:<10} {:>12} {:>12} {:>8.3}{}",
            name,
            native,
            r.cycles,
            r.cycles as f64 / *native as f64,
            marker
        );
        failed += usize::from(*diverged || r.fault.is_some());
    }
    let total = Stats::aggregate(rows.iter().map(|(_, _, r, _)| &r.stats));
    println!();
    println!("aggregate: {total}");
    if failed > 0 {
        return Err(format!(
            "{failed} benchmark(s) faulted or diverged from native execution"
        ));
    }
    Ok(ExitCode::SUCCESS)
}

// ----- fault-injection robustness suite -----------------------------------

/// A fixed, fault-free workload the injection scenarios perturb.
const INJECT_SOURCE: &str = "fn main() {
    var i = 0;
    var s = 0;
    while (i < 4000) { s = s + i * 3 % 97; i++; }
    return s % 100;
}";

/// One scenario of the `rio faults` matrix.
#[derive(Clone, Copy, Debug)]
enum FaultScenario {
    /// Inject an architectural fault at a fixed instruction count into a
    /// fault-free workload; expect exactly one `Faulted` outcome of that
    /// kind, then a resumed run identical to native.
    Inject { kind: FaultKind, emulate: bool },
    /// Corrupt every warm fragment's cache copy; expect invalid-opcode
    /// faults, eviction, quarantine emulation, and a self-healed run
    /// identical to native.
    CorruptAll,
    /// Genuine divide-by-zero in a hot loop, recovered by a guest handler.
    DivRecover { emulate: bool },
    /// Genuine wild load into a guarded region, recovered by a handler.
    WildLoad { emulate: bool },
    /// Unhandled divide error: exit 129 in every mode.
    DivUnhandled { emulate: bool },
    /// Unhandled memory fault: exit 131 in every mode.
    WildUnhandled { emulate: bool },
}

impl FaultScenario {
    fn name(self) -> String {
        let mode = |e: bool| if e { "emulate" } else { "cache" };
        match self {
            FaultScenario::Inject { kind, emulate } => {
                format!("inject-{kind}-{}", mode(emulate)).replace(' ', "-")
            }
            FaultScenario::CorruptAll => "corrupt-cache-copies".into(),
            FaultScenario::DivRecover { emulate } => format!("div-recover-{}", mode(emulate)),
            FaultScenario::WildLoad { emulate } => format!("wild-load-{}", mode(emulate)),
            FaultScenario::DivUnhandled { emulate } => format!("div-unhandled-{}", mode(emulate)),
            FaultScenario::WildUnhandled { emulate } => {
                format!("wild-unhandled-{}", mode(emulate))
            }
        }
    }

    const ALL: [FaultScenario; 15] = [
        FaultScenario::Inject {
            kind: FaultKind::DivideError,
            emulate: false,
        },
        FaultScenario::Inject {
            kind: FaultKind::DivideError,
            emulate: true,
        },
        FaultScenario::Inject {
            kind: FaultKind::InvalidOpcode,
            emulate: false,
        },
        FaultScenario::Inject {
            kind: FaultKind::InvalidOpcode,
            emulate: true,
        },
        FaultScenario::Inject {
            kind: FaultKind::MemFault,
            emulate: false,
        },
        FaultScenario::Inject {
            kind: FaultKind::MemFault,
            emulate: true,
        },
        FaultScenario::CorruptAll,
        FaultScenario::DivRecover { emulate: false },
        FaultScenario::DivRecover { emulate: true },
        FaultScenario::WildLoad { emulate: false },
        FaultScenario::WildLoad { emulate: true },
        FaultScenario::DivUnhandled { emulate: false },
        FaultScenario::DivUnhandled { emulate: true },
        FaultScenario::WildUnhandled { emulate: false },
        FaultScenario::WildUnhandled { emulate: true },
    ];
}

/// Step a session in small budget slices (so injection plans get applied
/// mid-run and fault delivery interleaves with suspension), collecting
/// every `Faulted` outcome. Stops after `max_faults` terminal faults —
/// sessions stay resumable after a fault, so a genuinely faulting program
/// would otherwise re-report forever.
fn drive_faulty<C: Client>(
    mut rio: Rio<C>,
    mut injector: Option<FaultInjector>,
    max_faults: usize,
) -> (RioRunResult, Vec<Fault>) {
    let mut faults: Vec<Fault> = Vec::new();
    loop {
        if let Some(inj) = injector.as_mut() {
            inj.poll(&mut rio);
        }
        match rio.step(StepBudget::instructions(200)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => return (rio.result_snapshot(code), faults),
            StepOutcome::Faulted(f) => {
                let done = faults.len() + 1 >= max_faults;
                faults.push(f);
                if done {
                    let last = faults.last().expect("just pushed").clone();
                    let mut r = rio.result_snapshot(last.exit_code());
                    r.fault = Some(last);
                    return (r, faults);
                }
            }
        }
    }
}

fn scenario_options(emulate: bool, verify: bool) -> Options {
    let mut opts = if emulate {
        Options::emulation()
    } else {
        Options::full()
    };
    opts.verify = verify;
    opts
}

/// Suffix a scenario report line with the verification tally, and enforce
/// zero violations, when the matrix runs under `RIO_VERIFY`.
fn verify_suffix(verify: bool, stats: &Stats) -> Result<String, String> {
    if !verify {
        return Ok(String::new());
    }
    if stats.violations != 0 {
        return Err(format!(
            "{} verifier violation(s) across {} checks",
            stats.violations, stats.checks_run
        ));
    }
    Ok(format!(", {} checks verified", stats.checks_run))
}

/// Run one scenario; `Ok` is the deterministic report line.
fn run_fault_scenario(s: FaultScenario, cpu: CpuKind, verify: bool) -> Result<String, String> {
    let name = s.name();
    let fail = |why: String| Err(format!("{name}: {why}"));
    match s {
        FaultScenario::Inject { kind, emulate } => {
            let image = compile(INJECT_SOURCE).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native(&image, cpu);
            let rio = Rio::new(&image, scenario_options(emulate, verify), cpu, NullClient);
            let injector = FaultInjector::new(InjectionPlan::AtInstruction { at: 400, kind });
            let (r, faults) = drive_faulty(rio, Some(injector), 8);
            if faults.len() != 1 || faults[0].kind != Some(kind) {
                return fail(format!(
                    "expected exactly one injected {kind}, got {:?}",
                    faults.iter().map(|f| f.kind).collect::<Vec<_>>()
                ));
            }
            if r.exit_code != native.exit_code || r.app_output != native.output {
                return fail(format!(
                    "resumed run diverged from native (exit {} vs {})",
                    r.exit_code, native.exit_code
                ));
            }
            let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
            Ok(format!(
                "ok {name}: faulted at eip {:#x} (app pc {:?}), resumed to native-identical exit {}{suffix}",
                faults[0].cache_eip,
                faults[0].app_pc.map(|p| format!("{p:#x}")),
                r.exit_code
            ))
        }
        FaultScenario::CorruptAll => {
            let image = compile(INJECT_SOURCE).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native(&image, cpu);
            let rio = Rio::new(&image, scenario_options(false, verify), cpu, NullClient);
            let injector = FaultInjector::new(InjectionPlan::CorruptAll { min_frags: 4 });
            let (r, faults) = drive_faulty(rio, Some(injector), 64);
            if faults.is_empty() {
                return fail("corruption never raised a fault".into());
            }
            if let Some(bad) = faults
                .iter()
                .find(|f| f.kind != Some(FaultKind::InvalidOpcode))
            {
                return fail(format!("unexpected fault kind: {}", bad.message));
            }
            if r.exit_code != native.exit_code || r.app_output != native.output {
                return fail(format!(
                    "self-healed run diverged from native (exit {} vs {})",
                    r.exit_code, native.exit_code
                ));
            }
            if r.stats.fault_evictions == 0 {
                return fail("no fragment was evicted".into());
            }
            // This scenario deliberately corrupts cache bytes, so the
            // verifier reporting violations here is detection, not a bug —
            // the report carries the tally instead of enforcing zero.
            let suffix = if verify {
                format!(
                    ", verifier flagged {} violation(s) across {} checks",
                    r.stats.violations, r.stats.checks_run
                )
            } else {
                String::new()
            };
            Ok(format!(
                "ok {name}: {} faults, {} evictions, self-healed to native-identical exit {}{suffix}",
                faults.len(),
                r.stats.fault_evictions,
                r.exit_code
            ))
        }
        FaultScenario::DivRecover { emulate } => {
            let image = compile(&faulting::div_recover()).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native(&image, cpu);
            let rio = Rio::new(&image, scenario_options(emulate, verify), cpu, NullClient);
            let (r, faults) = drive_faulty(rio, None, 1);
            if !faults.is_empty() {
                return fail(format!("unexpected terminal fault: {}", faults[0].message));
            }
            if r.exit_code != 0 || native.exit_code != 0 || r.app_output != native.output {
                return fail(format!(
                    "diverged from native (exit {} vs {})",
                    r.exit_code, native.exit_code
                ));
            }
            if r.stats.faults_delivered != faulting::DIV_RECOVER_FAULTS as u64 {
                return fail(format!(
                    "expected {} deliveries, got {}",
                    faulting::DIV_RECOVER_FAULTS,
                    r.stats.faults_delivered
                ));
            }
            let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
            Ok(format!(
                "ok {name}: {} faults delivered in a hot loop, output native-identical{suffix}",
                r.stats.faults_delivered
            ))
        }
        FaultScenario::WildLoad { emulate } => {
            let image = compile(&faulting::wild_load()).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native_guarded(&image, cpu, faulting::guard_regions());
            let mut rio = Rio::new(&image, scenario_options(emulate, verify), cpu, NullClient);
            rio.core
                .machine
                .set_guard_regions(faulting::guard_regions());
            let (r, faults) = drive_faulty(rio, None, 1);
            if !faults.is_empty() {
                return fail(format!("unexpected terminal fault: {}", faults[0].message));
            }
            if r.exit_code != 0 || native.exit_code != 0 || r.app_output != native.output {
                return fail(format!(
                    "diverged from native (exit {} vs {})",
                    r.exit_code, native.exit_code
                ));
            }
            let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
            Ok(format!(
                "ok {name}: guarded load delivered and recovered, output native-identical{suffix}"
            ))
        }
        FaultScenario::DivUnhandled { emulate } => {
            let image = compile(&faulting::div_unhandled()).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native(&image, cpu);
            let rio = Rio::new(&image, scenario_options(emulate, verify), cpu, NullClient);
            let (r, faults) = drive_faulty(rio, None, 1);
            if faults.len() != 1 || faults[0].kind != Some(FaultKind::DivideError) {
                return fail("expected one unhandled divide error".into());
            }
            if r.exit_code != 129 || native.exit_code != 129 {
                return fail(format!(
                    "expected exit 129 everywhere, got rio {} native {}",
                    r.exit_code, native.exit_code
                ));
            }
            let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
            Ok(format!(
                "ok {name}: unhandled divide error, exit 129 in every mode{suffix}"
            ))
        }
        FaultScenario::WildUnhandled { emulate } => {
            let image = compile(&faulting::wild_unhandled()).map_err(|e| format!("{name}: {e}"))?;
            let native = run_native_guarded(&image, cpu, faulting::guard_regions());
            let mut rio = Rio::new(&image, scenario_options(emulate, verify), cpu, NullClient);
            rio.core
                .machine
                .set_guard_regions(faulting::guard_regions());
            let (r, faults) = drive_faulty(rio, None, 1);
            if faults.len() != 1 || faults[0].kind != Some(FaultKind::MemFault) {
                return fail("expected one unhandled memory fault".into());
            }
            if r.exit_code != 131 || native.exit_code != 131 {
                return fail(format!(
                    "expected exit 131 everywhere, got rio {} native {}",
                    r.exit_code, native.exit_code
                ));
            }
            let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
            Ok(format!(
                "ok {name}: unhandled memory fault, exit 131 in every mode{suffix}"
            ))
        }
    }
}

/// `rio faults`: the deterministic fault-injection robustness matrix —
/// three fault kinds across cache and emulation modes, cache-copy
/// corruption with self-healing, and the genuine faulting workloads, all
/// driven through budgeted (suspendable) sessions. Output is byte-identical
/// for any `--jobs` value.
fn cmd_faults(args: &[String]) -> Result<ExitCode, String> {
    let SuiteArgs { cpu, jobs: njobs } = parse_suite_args(args)?;
    let verify = verify_env();
    let rows = run_parallel(&FaultScenario::ALL, njobs, |_, &s| {
        run_fault_scenario(s, cpu, verify)
    });
    print_suite_rows(&rows, "fault")
}

// ----- self-modifying-code consistency suite ------------------------------

/// One scenario of the `rio smc` matrix: a self-modifying workload crossed
/// with an execution mode.
#[derive(Clone, Copy, Debug)]
struct SmcScenario {
    workload: SmcWorkload,
    mode: SmcMode,
}

#[derive(Clone, Copy, Debug)]
enum SmcWorkload {
    /// A fragment stores into its *own* source range (forward-progress probe).
    SelfWrite,
    /// Repeatedly re-patches a callee, invalidating it 16 times.
    PatchLoop,
    /// Writes fresh code, then jumps to it through an indirect call.
    WriteThenIcall,
}

#[derive(Clone, Copy, Debug)]
enum SmcMode {
    /// Pure emulation: consistency comes from the interpreter's own
    /// decode-cache invalidation; no engine watches are installed.
    Emulate,
    /// Code cache with write monitoring and precise invalidation.
    Cache,
    /// Code cache bounded to a tiny capacity, forcing FIFO eviction to
    /// interleave with invalidation on nearly every dispatch.
    Bounded,
}

impl SmcScenario {
    fn name(self) -> String {
        let w = match self.workload {
            SmcWorkload::SelfWrite => "self-write",
            SmcWorkload::PatchLoop => "patch-loop",
            SmcWorkload::WriteThenIcall => "write-then-icall",
        };
        let m = match self.mode {
            SmcMode::Emulate => "emulate",
            SmcMode::Cache => "cache",
            SmcMode::Bounded => "bounded",
        };
        format!("{w}-{m}")
    }

    const ALL: [SmcScenario; 9] = {
        const W: [SmcWorkload; 3] = [
            SmcWorkload::SelfWrite,
            SmcWorkload::PatchLoop,
            SmcWorkload::WriteThenIcall,
        ];
        [
            SmcScenario {
                workload: W[0],
                mode: SmcMode::Emulate,
            },
            SmcScenario {
                workload: W[0],
                mode: SmcMode::Cache,
            },
            SmcScenario {
                workload: W[0],
                mode: SmcMode::Bounded,
            },
            SmcScenario {
                workload: W[1],
                mode: SmcMode::Emulate,
            },
            SmcScenario {
                workload: W[1],
                mode: SmcMode::Cache,
            },
            SmcScenario {
                workload: W[1],
                mode: SmcMode::Bounded,
            },
            SmcScenario {
                workload: W[2],
                mode: SmcMode::Emulate,
            },
            SmcScenario {
                workload: W[2],
                mode: SmcMode::Cache,
            },
            SmcScenario {
                workload: W[2],
                mode: SmcMode::Bounded,
            },
        ]
    };
}

/// Run one SMC scenario; `Ok` is the deterministic report line. Every run
/// is differential against native execution, driven through budgeted
/// (suspendable) steps, with decode verification on so any stale copy that
/// executes is counted.
fn run_smc_scenario(s: SmcScenario, cpu: CpuKind, verify: bool) -> Result<String, String> {
    let name = s.name();
    let fail = |why: String| Err(format!("{name}: {why}"));
    let src = match s.workload {
        SmcWorkload::SelfWrite => smc::self_write(),
        SmcWorkload::PatchLoop => smc::patch_loop(),
        SmcWorkload::WriteThenIcall => smc::write_then_icall(),
    };
    let image = compile(&src).map_err(|e| format!("{name}: {e}"))?;
    let native = run_native(&image, cpu);
    let mut opts = match s.mode {
        SmcMode::Emulate => Options::emulation(),
        SmcMode::Cache | SmcMode::Bounded => Options::full(),
    };
    opts.verify = verify;
    if matches!(s.mode, SmcMode::Bounded) {
        opts.cache_limit = Some(64);
    }
    let mut rio = Rio::new(&image, opts, cpu, NullClient);
    rio.core.machine.set_verify_decodes(true);
    let r = loop {
        match rio.step(StepBudget::instructions(200)) {
            StepOutcome::Running(_) => {}
            StepOutcome::Exited(code) => break rio.result_snapshot(code),
            StepOutcome::Faulted(f) => return fail(format!("unexpected fault: {}", f.message)),
        }
    };
    if r.exit_code != native.exit_code || r.app_output != native.output {
        return fail(format!(
            "diverged from native (exit {} vs {})",
            r.exit_code, native.exit_code
        ));
    }
    let stale = rio.core.machine.stale_decode_hits();
    if stale != 0 {
        return fail(format!("{stale} stale decode(s) executed"));
    }
    match s.mode {
        SmcMode::Emulate => {
            if r.stats.code_writes != 0 {
                return fail("code-write watches active under emulation".into());
            }
        }
        SmcMode::Cache | SmcMode::Bounded => {
            if r.stats.code_writes == 0 {
                return fail("no code write observed".into());
            }
            // Under a tiny bound the written fragment may already be
            // FIFO-evicted when the store lands, so only the unbounded
            // cache is guaranteed a precise invalidation.
            if matches!(s.mode, SmcMode::Cache) && r.stats.invalidations == 0 {
                return fail("nothing invalidated".into());
            }
        }
    }
    if matches!(s.mode, SmcMode::Bounded) {
        if r.stats.evictions == 0 {
            return fail("tiny cache limit never forced an eviction".into());
        }
        if r.stats.cache_flushes != 0 {
            return fail(format!(
                "{} whole-sub-cache flushes under capacity pressure",
                r.stats.cache_flushes
            ));
        }
    }
    let suffix = verify_suffix(verify, &r.stats).map_err(|e| format!("{name}: {e}"))?;
    Ok(format!(
        "ok {name}: output native-identical, {} code writes, {} invalidations, {} evictions, 0 stale decodes{suffix}",
        r.stats.code_writes, r.stats.invalidations, r.stats.evictions
    ))
}

/// `rio smc`: the self-modifying-code consistency matrix — three SMC
/// workloads across emulation, unbounded cache, and a tiny bounded cache,
/// all differential against native and driven through budgeted sessions
/// with decode verification. Output is byte-identical for any `--jobs`
/// value.
fn cmd_smc(args: &[String]) -> Result<ExitCode, String> {
    let SuiteArgs { cpu, jobs: njobs } = parse_suite_args(args)?;
    let verify = verify_env();
    let rows = run_parallel(&SmcScenario::ALL, njobs, |_, &s| {
        run_smc_scenario(s, cpu, verify)
    });
    print_suite_rows(&rows, "smc")
}

// ----- whole-system verification ------------------------------------------

/// Run one suite benchmark under a given client with incremental
/// verification at every safe point, then a final whole-cache sweep.
/// `Ok` carries the report line plus the (checks, violations) tally.
fn run_verified_bench(
    image: &Image,
    cpu: CpuKind,
    bench: &str,
    client: &str,
) -> Result<(String, u64, u64), String> {
    fn go<C: Client>(image: &Image, cpu: CpuKind, client: C) -> (RioRunResult, Stats, Vec<String>) {
        let mut opts = Options::full();
        opts.verify = true;
        let mut rio = Rio::new(image, opts, cpu, client);
        let r = rio.run();
        let sweep = rio.core.verify_cache();
        let details: Vec<String> = rio
            .core
            .verify_findings()
            .iter()
            .map(|v| v.to_string())
            .chain(sweep.iter().map(|v| v.to_string()))
            .take(5)
            .collect();
        let stats = rio.core.stats;
        (r, stats, details)
    }
    let name = format!("{bench}/{client}");
    let (r, stats, details) = match client {
        "null" => go(image, cpu, NullClient),
        "combined" => go(image, cpu, Combined::new()),
        "shepherd" => go(image, cpu, Shepherd::new()),
        other => return Err(format!("{name}: unknown verify client `{other}`")),
    };
    if let Some(f) = &r.fault {
        return Err(format!("{name}: faulted: {}", f.message));
    }
    if stats.violations != 0 {
        return Err(format!(
            "{name}: {} violation(s) across {} checks: {}",
            stats.violations,
            stats.checks_run,
            details.join("; ")
        ));
    }
    Ok((
        format!("ok {name}: {} checks, 0 violations", stats.checks_run),
        stats.checks_run,
        stats.violations,
    ))
}

/// `rio verify`: the full verification gauntlet — every suite benchmark
/// under the null, combined, and shepherd clients with incremental
/// verification plus a final whole-cache sweep, then the fault and SMC
/// matrices re-run under verification. Fails (exit 1) on any violation
/// outside the deliberate cache-corruption scenario, where verifier
/// findings are detection rather than defects. Output is byte-identical
/// for any `--jobs` value.
fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let SuiteArgs { cpu, jobs: njobs } = parse_suite_args(args)?;
    let benches = compiled_suite();
    const CLIENTS: [&str; 3] = ["null", "combined", "shepherd"];
    let mut items = Vec::new();
    for (b, image) in &benches {
        for client in CLIENTS {
            items.push((b.name, image, client));
        }
    }
    let rows = run_parallel(&items, njobs, |_, &(bench, image, client)| {
        run_verified_bench(image, cpu, bench, client)
    });
    let mut failures = 0usize;
    let (mut checks, mut violations) = (0u64, 0u64);
    for row in &rows {
        match row {
            Ok((line, c, v)) => {
                println!("{line}");
                checks += c;
                violations += v;
            }
            Err(line) => {
                println!("FAIL {line}");
                failures += 1;
            }
        }
    }
    println!();
    let fault_rows = run_parallel(&FaultScenario::ALL, njobs, |_, &s| {
        run_fault_scenario(s, cpu, true)
    });
    let faults_ok = print_suite_rows(&fault_rows, "fault");
    println!();
    let smc_rows = run_parallel(&SmcScenario::ALL, njobs, |_, &s| {
        run_smc_scenario(s, cpu, true)
    });
    let smc_ok = print_suite_rows(&smc_rows, "smc");
    println!();
    println!(
        "verify: {checks} checks ({violations} violations) across {} suite runs, plus {} fault and {} smc scenarios under verification",
        rows.len(),
        fault_rows.len(),
        smc_rows.len()
    );
    let mut problems = Vec::new();
    if failures > 0 {
        problems.push(format!("{failures} verified suite run(s) failed"));
    }
    if let Err(e) = faults_ok {
        problems.push(e);
    }
    if let Err(e) = smc_ok {
        problems.push(e);
    }
    if !problems.is_empty() {
        return Err(problems.join("; "));
    }
    Ok(ExitCode::SUCCESS)
}

// ----- differential conformance fuzzing -----------------------------------

/// `rio fuzz`: differential conformance fuzzing. Generates deterministic
/// programs from sequential seeds and checks that every engine
/// configuration (emulation, cache, traces, bounded cache, stepping,
/// verifier; each × null/combined clients) agrees with native execution
/// on output, exit code, and final app-visible state. Divergences are
/// delta-debugged to a minimal program and the simplest failing
/// configuration, then persisted into the corpus as regression tests.
/// With `--replay`, re-runs every corpus entry through the whole matrix
/// instead. Output is byte-identical for any `--jobs` value.
fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut seeds: u64 = 64;
    let mut base_seed = rio_fuzz::DEFAULT_BASE_SEED;
    let mut corpus = std::path::PathBuf::from("tests/corpus");
    let mut replay = false;
    let suite = parse_suite_args_with(args, |flag, it| match flag {
        "--seeds" => {
            seeds = it
                .next()
                .ok_or("--seeds needs a value")?
                .parse()
                .map_err(|e| format!("bad seed count: {e}"))?;
            Ok(true)
        }
        "--seed-base" => {
            let v = it.next().ok_or("--seed-base needs a value")?;
            base_seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                .map_err(|e| format!("bad seed base `{v}`: {e}"))?;
            Ok(true)
        }
        "--corpus" => {
            corpus = it.next().ok_or("--corpus needs a value")?.into();
            Ok(true)
        }
        "--replay" => {
            replay = true;
            Ok(true)
        }
        _ => Ok(false),
    })?;
    if replay {
        let entries = rio_fuzz::load_dir(&corpus)?;
        if entries.is_empty() {
            println!("corpus {} is empty; nothing to replay", corpus.display());
            return Ok(ExitCode::SUCCESS);
        }
        let rows = run_parallel(&entries, suite.jobs, |_, (path, entry)| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            rio_fuzz::replay_entry(&name, entry, suite.cpu)
        });
        return print_suite_rows(&rows, "corpus");
    }
    let opts = rio_fuzz::CampaignOptions {
        seeds,
        base_seed,
        cpu: suite.cpu,
        jobs: suite.jobs,
        corpus_dir: Some(corpus),
    };
    let rows = rio_fuzz::run_campaign(&opts);
    print_suite_rows(&rows, "fuzz")
}

fn cmd_bench_list() -> ExitCode {
    println!("{:<10} {:<4} character", "name", "cat");
    for b in suite() {
        println!(
            "{:<10} {:<4} {}",
            b.name,
            match b.category {
                rio_workloads::Category::Int => "int",
                rio_workloads::Category::Fp => "fp",
            },
            b.character
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "native" => cmd_native(rest),
        "fragments" => cmd_fragments(rest),
        "disasm" => cmd_disasm(rest),
        "suite" => cmd_suite(rest),
        "faults" => cmd_faults(rest),
        "smc" => cmd_smc(rest),
        "verify" => cmd_verify(rest),
        "fuzz" => cmd_fuzz(rest),
        "bench-list" => Ok(cmd_bench_list()),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rio: {e}");
            ExitCode::from(2)
        }
    }
}
