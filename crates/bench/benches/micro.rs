//! Criterion micro-benchmarks for the performance-critical primitives the
//! paper's design revolves around: multi-strategy decoding (Table 2's time
//! column as statistically rigorous measurements), raw-bit vs template
//! encoding, basic-block construction, and whole-program engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rio_core::{NullClient, Options, Rio};
use rio_ia32::encode::encode_list;
use rio_ia32::{decode_instr, decode_opcode, decode_sizeof, InstrList, Level};
use rio_sim::CpuKind;
use rio_workloads::compile;

/// The Figure 2 block: seven instructions of mixed complexity.
const FIG2: &[u8] = &[
    0x8d, 0x34, 0x01, 0x8b, 0x46, 0x0c, 0x2b, 0x46, 0x1c, 0x0f, 0xb7, 0x4e, 0x08, 0xc1, 0xe1,
    0x07, 0x3b, 0xc1, 0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00,
];

fn bench_decode_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    g.bench_function("sizeof (L0/L1 boundary scan)", |b| {
        b.iter(|| {
            let mut off = 0usize;
            while off < FIG2.len() {
                off += decode_sizeof(std::hint::black_box(&FIG2[off..])).unwrap() as usize;
            }
            off
        })
    });
    g.bench_function("opcode (L2)", |b| {
        b.iter(|| {
            let mut off = 0usize;
            while off < FIG2.len() {
                let (op, len) = decode_opcode(std::hint::black_box(&FIG2[off..])).unwrap();
                std::hint::black_box(op);
                off += len as usize;
            }
            off
        })
    });
    g.bench_function("full (L3)", |b| {
        b.iter(|| {
            let mut off = 0usize;
            while off < FIG2.len() {
                let (i, len) = decode_instr(std::hint::black_box(&FIG2[off..]), 0x1000).unwrap();
                std::hint::black_box(i.srcs().len());
                off += len as usize;
            }
            off
        })
    });
    g.finish();
}

fn bench_decode_encode_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_encode_block");
    for level in [Level::L0, Level::L1, Level::L2, Level::L3] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{level:?}")),
            &level,
            |b, level| {
                b.iter(|| {
                    let il = InstrList::decode_block(FIG2, 0x1000, *level).unwrap();
                    encode_list(&il, 0x1000).unwrap().bytes.len()
                })
            },
        );
    }
    // Level 4: full decode + invalidation -> full re-encode.
    g.bench_function("L4", |b| {
        b.iter(|| {
            let mut il = InstrList::decode_block(FIG2, 0x1000, Level::L3).unwrap();
            let ids: Vec<_> = il.ids().collect();
            for id in ids {
                il.get_mut(id).invalidate_raw();
            }
            encode_list(&il, 0x1000).unwrap().bytes.len()
        })
    });
    g.finish();
}

fn bench_engine_end_to_end(c: &mut Criterion) {
    // A small hot program: host-side cost of the whole engine pipeline
    // (build, link, trace, execute).
    let image = compile(
        "fn main() {
             var s = 0; var i = 0;
             while (i < 3000) { s = s + i * 3 % 7; i++; }
             return s % 251;
         }",
    )
    .unwrap();
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("hot_loop_full_system", |b| {
        b.iter(|| {
            let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
            rio.run().exit_code
        })
    });
    g.bench_function("hot_loop_native_sim", |b| {
        b.iter(|| rio_sim::run_native(&image, CpuKind::Pentium4).exit_code)
    });
    g.finish();
}

fn bench_fragment_build(c: &mut Criterion) {
    // Cost of building one basic block end-to-end through the engine by
    // running a straight-line program (every block executes once).
    let mut src = String::from("fn main() { var a = 1;\n");
    for i in 0..200 {
        src.push_str(&format!("a = a * {} % 10007;\n", i % 13 + 2));
    }
    src.push_str("return a; }");
    let image = compile(&src).unwrap();
    let mut g = c.benchmark_group("build");
    g.sample_size(30);
    g.bench_function("cold_code_translation", |b| {
        b.iter(|| {
            let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
            rio.run().exit_code
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decode_strategies,
    bench_decode_encode_levels,
    bench_engine_end_to_end,
    bench_fragment_build
);
criterion_main!(benches);
