//! Micro-benchmarks for the performance-critical primitives the paper's
//! design revolves around: multi-strategy decoding (Table 2's time column),
//! raw-bit vs template encoding, basic-block construction, and whole-program
//! engine throughput.
//!
//! Self-contained timing harness (`harness = false`): each benchmark is
//! warmed up, then run for a fixed number of batches and reported as
//! median ns/iteration. Run with `cargo bench -p rio-bench`.

use std::time::Instant;

use rio_core::{NullClient, Options, Rio};
use rio_ia32::encode::encode_list;
use rio_ia32::{decode_instr, decode_opcode, decode_sizeof, InstrList, Level};
use rio_sim::CpuKind;
use rio_workloads::compile;

/// The Figure 2 block: seven instructions of mixed complexity.
const FIG2: &[u8] = &[
    0x8d, 0x34, 0x01, 0x8b, 0x46, 0x0c, 0x2b, 0x46, 0x1c, 0x0f, 0xb7, 0x4e, 0x08, 0xc1, 0xe1, 0x07,
    0x3b, 0xc1, 0x0f, 0x8d, 0xa2, 0x0a, 0x00, 0x00,
];

/// Time `f` over `batches` batches of `iters` calls each; print the median
/// per-iteration time.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // Warm-up.
    for _ in 0..iters.min(100) {
        std::hint::black_box(f());
    }
    let batches = 15;
    let mut per_iter = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[batches / 2];
    println!("{name:<44} {median:>12.1} ns/iter");
}

fn bench_decode_strategies() {
    println!("-- decode strategies (Figure 2 block) --");
    bench("decode/sizeof (L0/L1 boundary scan)", 10_000, || {
        let mut off = 0usize;
        while off < FIG2.len() {
            off += decode_sizeof(std::hint::black_box(&FIG2[off..])).unwrap() as usize;
        }
        off
    });
    bench("decode/opcode (L2)", 10_000, || {
        let mut off = 0usize;
        while off < FIG2.len() {
            let (op, len) = decode_opcode(std::hint::black_box(&FIG2[off..])).unwrap();
            std::hint::black_box(op);
            off += len as usize;
        }
        off
    });
    bench("decode/full (L3)", 10_000, || {
        let mut off = 0usize;
        while off < FIG2.len() {
            let (i, len) = decode_instr(std::hint::black_box(&FIG2[off..]), 0x1000).unwrap();
            std::hint::black_box(i.srcs().len());
            off += len as usize;
        }
        off
    });
}

fn bench_decode_encode_levels() {
    println!("-- decode+encode round trip by level --");
    for level in [Level::L0, Level::L1, Level::L2, Level::L3] {
        bench(
            &format!("decode_encode_block/{level:?}"),
            5_000,
            move || {
                let il = InstrList::decode_block(FIG2, 0x1000, level).unwrap();
                encode_list(&il, 0x1000).unwrap().bytes.len()
            },
        );
    }
    // Level 4: full decode + invalidation -> full re-encode.
    bench("decode_encode_block/L4", 5_000, || {
        let mut il = InstrList::decode_block(FIG2, 0x1000, Level::L3).unwrap();
        let ids: Vec<_> = il.ids().collect();
        for id in ids {
            il.get_mut(id).invalidate_raw();
        }
        encode_list(&il, 0x1000).unwrap().bytes.len()
    });
}

fn bench_engine_end_to_end() {
    println!("-- whole-engine throughput --");
    // A small hot program: host-side cost of the whole engine pipeline
    // (build, link, trace, execute).
    let image = compile(
        "fn main() {
             var s = 0; var i = 0;
             while (i < 3000) { s = s + i * 3 % 7; i++; }
             return s % 251;
         }",
    )
    .unwrap();
    bench("engine/hot_loop_full_system", 20, || {
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
        rio.run().exit_code
    });
    bench("engine/hot_loop_native_sim", 20, || {
        rio_sim::run_native(&image, CpuKind::Pentium4).exit_code
    });
}

fn bench_fragment_build() {
    println!("-- cold-code translation --");
    // Cost of building one basic block end-to-end through the engine by
    // running a straight-line program (every block executes once).
    let mut src = String::from("fn main() { var a = 1;\n");
    for i in 0..200 {
        src.push_str(&format!("a = a * {} % 10007;\n", i % 13 + 2));
    }
    src.push_str("return a; }");
    let image = compile(&src).unwrap();
    bench("build/cold_code_translation", 30, || {
        let mut rio = Rio::new(&image, Options::full(), CpuKind::Pentium4, NullClient);
        rio.run().exit_code
    });
}

fn main() {
    bench_decode_strategies();
    bench_decode_encode_levels();
    bench_engine_end_to_end();
    bench_fragment_build();
}
