//! Per-benchmark characteristics report: instruction counts, branch mix,
//! engine statistics under the full system. Useful for sanity-checking that
//! each benchmark has the character its SPEC analog calls for.

use rio_bench::{run_config, ClientKind};
use rio_core::Options;
use rio_sim::{run_native, CpuKind};
use rio_workloads::{compile, suite};

fn main() {
    println!(
        "{:<10} {:>10} {:>7} {:>8} {:>8} {:>7} {:>7} {:>8}",
        "benchmark", "instrs", "cpi", "blocks", "traces", "links", "iblkup", "norm"
    );
    for b in suite() {
        let image = compile(&b.source).expect("compiles");
        let native = run_native(&image, CpuKind::Pentium4);
        let r = run_config(&image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
        println!(
            "{:<10} {:>10} {:>7.2} {:>8} {:>8} {:>7} {:>7} {:>8.3}",
            b.name,
            native.counters.instructions,
            native.counters.cycles as f64 / native.counters.instructions as f64,
            r.stats.bbs_built,
            r.stats.traces_built,
            r.stats.links,
            r.stats.ib_lookups,
            r.cycles as f64 / native.counters.cycles as f64,
        );
    }
}
