//! Per-benchmark characteristics report: instruction counts, branch mix,
//! engine statistics under the full system. Useful for sanity-checking that
//! each benchmark has the character its SPEC analog calls for.
//!
//! Runs are distributed over the worker pool (`--jobs N` / `RIO_JOBS`);
//! the report is printed in suite order regardless of job count, and a
//! suite-wide aggregate row is derived with [`Stats::aggregate`].

use rio_bench::{jobs, run_config, run_parallel, ClientKind};
use rio_core::{Options, Stats};
use rio_sim::{run_native, CpuKind};
use rio_workloads::compiled_suite;

fn main() {
    let benches = compiled_suite();
    let rows = run_parallel(&benches, jobs(), |_, (_, image)| {
        let native = run_native(image, CpuKind::Pentium4);
        let r = run_config(image, Options::full(), CpuKind::Pentium4, ClientKind::Null);
        (native.counters, r)
    });

    println!(
        "{:<10} {:>10} {:>7} {:>8} {:>8} {:>7} {:>7} {:>8}",
        "benchmark", "instrs", "cpi", "blocks", "traces", "links", "iblkup", "norm"
    );
    for ((b, _), (native, r)) in benches.iter().zip(&rows) {
        println!(
            "{:<10} {:>10} {:>7.2} {:>8} {:>8} {:>7} {:>7} {:>8.3}",
            b.name,
            native.instructions,
            native.cycles as f64 / native.instructions as f64,
            r.stats.bbs_built,
            r.stats.traces_built,
            r.stats.links,
            r.stats.ib_lookups,
            r.cycles as f64 / native.cycles as f64,
        );
    }

    let total = Stats::aggregate(rows.iter().map(|(_, r)| &r.stats));
    println!();
    println!("suite aggregate: {total}");
}
