//! Ablation: custom-trace maximum size sweep (DESIGN.md design choice 5).
//!
//! §4.4: "A trace will be terminated if a maximum size is reached, to
//! prevent too much unrolling of loops inside calls."
//!
//! The size × benchmark sweep runs on the worker pool (`--jobs N` /
//! `RIO_JOBS`); output is identical for every job count.

use rio_bench::{jobs, native_cycles, run_parallel};
use rio_clients::CTrace;
use rio_core::{Options, Rio};
use rio_sim::CpuKind;
use rio_workloads::{compiled, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    let njobs = jobs();
    let sizes = [2usize, 4, 8, 12, 24, 48];

    let benches: Vec<_> = suite_scaled(3)
        .into_iter()
        .map(|b| {
            let image = compiled(&b);
            (b, image)
        })
        .collect();
    let natives = run_parallel(&benches, njobs, |_, (_, image)| {
        native_cycles(image, kind).0
    });

    let cells: Vec<(usize, usize)> = (0..sizes.len())
        .flat_map(|s| (0..benches.len()).map(move |b| (s, b)))
        .collect();
    let norms = run_parallel(&cells, njobs, |_, &(s, bi)| {
        let max_bbs = sizes[s];
        let mut opts = Options::full();
        opts.max_trace_bbs = max_bbs.max(2);
        let mut rio = Rio::new(&benches[bi].1, opts, kind, CTrace::with_max_bbs(max_bbs));
        let r = rio.run();
        r.counters.cycles as f64 / natives[bi] as f64
    });

    println!("Custom-trace max-size sweep: normalized execution time (geomean)");
    println!("{:<8} {:>8} {:>8}", "max_bbs", "int", "all");
    for (s, max_bbs) in sizes.iter().enumerate() {
        let mut int = Vec::new();
        let mut all = Vec::new();
        for (bi, (b, _)) in benches.iter().enumerate() {
            let norm = norms[s * benches.len() + bi];
            if b.category == Category::Int {
                int.push(norm);
            }
            all.push(norm);
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        println!("{:<8} {:>8.3} {:>8.3}", max_bbs, g(&int), g(&all));
    }
}
