//! Ablation: custom-trace maximum size sweep (DESIGN.md design choice 5).
//!
//! §4.4: "A trace will be terminated if a maximum size is reached, to
//! prevent too much unrolling of loops inside calls."

use rio_bench::native_cycles;
use rio_clients::CTrace;
use rio_core::{Options, Rio};
use rio_sim::CpuKind;
use rio_workloads::{compile, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    println!("Custom-trace max-size sweep: normalized execution time (geomean)");
    println!("{:<8} {:>8} {:>8}", "max_bbs", "int", "all");
    for max_bbs in [2usize, 4, 8, 12, 24, 48] {
        let mut int = Vec::new();
        let mut all = Vec::new();
        for b in suite_scaled(3) {
            let image = compile(&b.source).expect("compiles");
            let (native, _, _) = native_cycles(&image, kind);
            let mut opts = Options::full();
            opts.max_trace_bbs = max_bbs.max(2);
            let mut rio = Rio::new(&image, opts, kind, CTrace::with_max_bbs(max_bbs));
            let r = rio.run();
            let norm = r.counters.cycles as f64 / native as f64;
            if b.category == Category::Int {
                int.push(norm);
            }
            all.push(norm);
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        println!("{:<8} {:>8.3} {:>8.3}", max_bbs, g(&int), g(&all));
    }
}
