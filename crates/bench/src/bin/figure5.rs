//! Figure 5 reproduction: normalized program execution time (RIO time /
//! native time) across the SPEC2000-like suite, six bars per benchmark —
//! base RIO, each of the four sample optimizations independently, and all
//! in combination.
//!
//! Shape targets from the paper: RLR ≈ 40% win on mgrid-like FP kernels;
//! IB dispatch and custom traces win on indirect/call-heavy integer codes;
//! slowdowns on the low-reuse gcc/perlbmk-like runs; combined mean ≈
//! native (≈12% better than base RIO).
//!
//! The 19 × 6 = 114 engine runs are distributed over the worker pool
//! (`--jobs N` / `RIO_JOBS`); the table is byte-identical for any job
//! count because simulated cycles are host-independent and results are
//! collected in item order.

use rio_bench::{jobs, native_cycles, run_config, run_parallel, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{compiled_suite, Category};

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let kind = CpuKind::Pentium4;
    let njobs = jobs();
    let benches = compiled_suite();

    // Native baselines, one per benchmark.
    let natives = run_parallel(&benches, njobs, |_, (_, image)| native_cycles(image, kind));

    // One work item per (benchmark, client) bar.
    let bars: Vec<(usize, ClientKind)> = (0..benches.len())
        .flat_map(|b| ClientKind::FIGURE5.iter().map(move |&c| (b, c)))
        .collect();
    let norms = run_parallel(&bars, njobs, |_, &(bi, client)| {
        let (b, image) = &benches[bi];
        let (native, exit, out) = &natives[bi];
        let r = run_config(image, Options::full(), kind, client);
        assert_eq!(
            (r.exit_code, r.output.as_str()),
            (*exit, out.as_str()),
            "{} under {:?} diverged from native execution",
            b.name,
            client
        );
        r.cycles as f64 / *native as f64
    });

    println!("Figure 5: normalized execution time (RIO / native; smaller is better)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "benchmark", "base", "rlr", "inc2add", "ibdispatch", "ctraces", "combined"
    );

    let nclients = ClientKind::FIGURE5.len();
    let mut by_client: Vec<Vec<f64>> = vec![Vec::new(); nclients];
    let mut int_combined = Vec::new();
    let mut fp_combined = Vec::new();

    for (bi, (b, _)) in benches.iter().enumerate() {
        let mut row = format!("{:<10}", b.name);
        for (i, client) in ClientKind::FIGURE5.iter().enumerate() {
            let norm = norms[bi * nclients + i];
            by_client[i].push(norm);
            let width = [8, 8, 8, 10, 8, 9][i];
            row.push_str(&format!(" {:>width$.3}", norm, width = width));
            if *client == ClientKind::Combined {
                match b.category {
                    Category::Int => int_combined.push(norm),
                    Category::Fp => fp_combined.push(norm),
                }
            }
        }
        println!("{row}");
    }

    println!();
    let mut mean_row = format!("{:<10}", "geomean");
    for (i, xs) in by_client.iter().enumerate() {
        let width = [8, 8, 8, 10, 8, 9][i];
        mean_row.push_str(&format!(" {:>width$.3}", geomean(xs), width = width));
    }
    println!("{mean_row}");
    println!(
        "combined geomean: int {:.3}, fp {:.3}, overall {:.3} (base {:.3})",
        geomean(&int_combined),
        geomean(&fp_combined),
        geomean(&by_client[5]),
        geomean(&by_client[0]),
    );
}
