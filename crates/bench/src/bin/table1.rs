//! Table 1 reproduction: normalized execution time as interpreter features
//! are added — emulation, basic-block cache, direct-branch linking,
//! indirect-branch linking, traces — on the crafty-like and vpr-like
//! workloads.
//!
//! Paper bands: emulation ≈ 300×, + bb cache ≈ 26×, + direct links ≈
//! 5.1 / 3.0, + indirect links ≈ 2.0 / 1.2, + traces ≈ 1.7 / 1.1.

use rio_bench::{native_cycles, run_config, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{benchmark, compile};

fn main() {
    let kind = CpuKind::Pentium4;
    let rows: [(&str, Options); 5] = [
        ("Emulation", Options::emulation()),
        ("+ Basic block cache", Options::cache_only()),
        ("+ Link direct branches", Options::with_direct_links()),
        ("+ Link indirect branches", Options::with_indirect_links()),
        ("+ Traces", Options::full()),
    ];

    let mut cols = Vec::new();
    for name in ["crafty", "vpr"] {
        let b = benchmark(name).expect("benchmark exists");
        let image = compile(&b.source).expect("compiles");
        let (native, exit, out) = native_cycles(&image, kind);
        let mut col = Vec::new();
        for (_, opts) in &rows {
            let r = run_config(&image, *opts, kind, ClientKind::Null);
            assert_eq!(
                (r.exit_code, r.output.as_str()),
                (exit, out.as_str()),
                "{name} diverged under {opts:?}"
            );
            col.push(r.cycles as f64 / native as f64);
        }
        cols.push(col);
    }

    println!("Table 1: normalized execution time (vs native)");
    println!("{:<26} {:>8} {:>8}", "System Type", "crafty", "vpr");
    for (i, (name, _)) in rows.iter().enumerate() {
        println!("{:<26} {:>8.1} {:>8.1}", name, cols[0][i], cols[1][i]);
    }
}
