//! Table 1 reproduction: normalized execution time as interpreter features
//! are added — emulation, basic-block cache, direct-branch linking,
//! indirect-branch linking, traces — on the crafty-like and vpr-like
//! workloads.
//!
//! Paper bands: emulation ≈ 300×, + bb cache ≈ 26×, + direct links ≈
//! 5.1 / 3.0, + indirect links ≈ 2.0 / 1.2, + traces ≈ 1.7 / 1.1.
//!
//! All ten configuration runs are distributed over the worker pool
//! (`--jobs N` / `RIO_JOBS`); output is identical for every job count.

use rio_bench::{jobs, native_cycles, run_config, run_parallel, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{benchmark, compiled};

fn main() {
    let kind = CpuKind::Pentium4;
    let rows: [(&str, Options); 5] = [
        ("Emulation", Options::emulation()),
        ("+ Basic block cache", Options::cache_only()),
        ("+ Link direct branches", Options::with_direct_links()),
        ("+ Link indirect branches", Options::with_indirect_links()),
        ("+ Traces", Options::full()),
    ];

    let benches: Vec<_> = ["crafty", "vpr"]
        .iter()
        .map(|name| {
            let b = benchmark(name).expect("benchmark exists");
            let image = compiled(&b);
            let (native, exit, out) = native_cycles(&image, kind);
            (b, image, native, exit, out)
        })
        .collect();

    // One work item per (benchmark, configuration) cell.
    let cells: Vec<(usize, usize)> = (0..benches.len())
        .flat_map(|c| (0..rows.len()).map(move |r| (c, r)))
        .collect();
    let results = run_parallel(&cells, jobs(), |_, &(c, r)| {
        let (b, image, native, exit, out) = &benches[c];
        let res = run_config(image, rows[r].1, kind, ClientKind::Null);
        assert_eq!(
            (res.exit_code, res.output.as_str()),
            (*exit, out.as_str()),
            "{} diverged under {:?}",
            b.name,
            rows[r].1
        );
        res.cycles as f64 / *native as f64
    });

    println!("Table 1: normalized execution time (vs native)");
    println!("{:<26} {:>8} {:>8}", "System Type", "crafty", "vpr");
    for (i, (name, _)) in rows.iter().enumerate() {
        println!(
            "{:<26} {:>8.1} {:>8.1}",
            name,
            results[i],
            results[rows.len() + i]
        );
    }
}
