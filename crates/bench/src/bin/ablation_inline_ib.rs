//! Ablation: inlined indirect-branch target check on/off (DESIGN.md design
//! choice 4) — the §3 claim that "this check is much faster than the
//! hashtable lookup".
//!
//! Both sweeps run on the worker pool (`--jobs N` / `RIO_JOBS`); output is
//! identical for every job count.

use rio_bench::{jobs, native_cycles, run_config, run_parallel, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{compiled, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    let njobs = jobs();

    let benches: Vec<_> = suite_scaled(3)
        .into_iter()
        .map(|b| {
            let image = compiled(&b);
            (b, image)
        })
        .collect();
    let natives = run_parallel(&benches, njobs, |_, (_, image)| {
        native_cycles(image, kind).0
    });

    let cells: Vec<(bool, usize)> = [false, true]
        .iter()
        .flat_map(|&inline| (0..benches.len()).map(move |b| (inline, b)))
        .collect();
    let norms = run_parallel(&cells, njobs, |_, &(inline, bi)| {
        let mut opts = Options::full();
        opts.inline_ib_target = inline;
        let r = run_config(&benches[bi].1, opts, kind, ClientKind::Null);
        r.cycles as f64 / natives[bi] as f64
    });

    println!("Inline IB target check: normalized execution time (geomean, full system)");
    println!("{:<10} {:>8} {:>8}", "inline", "int", "all");
    for (row, inline) in [false, true].iter().enumerate() {
        let mut int = Vec::new();
        let mut all = Vec::new();
        for (bi, (b, _)) in benches.iter().enumerate() {
            let norm = norms[row * benches.len() + bi];
            if b.category == Category::Int {
                int.push(norm);
            }
            all.push(norm);
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        println!("{:<10} {:>8.3} {:>8.3}", inline, g(&int), g(&all));
    }
}
