//! Ablation: inlined indirect-branch target check on/off (DESIGN.md design
//! choice 4) — the §3 claim that "this check is much faster than the
//! hashtable lookup".

use rio_bench::{native_cycles, run_config, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{compile, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    println!("Inline IB target check: normalized execution time (geomean, full system)");
    println!("{:<10} {:>8} {:>8}", "inline", "int", "all");
    for inline in [false, true] {
        let mut int = Vec::new();
        let mut all = Vec::new();
        for b in suite_scaled(3) {
            let image = compile(&b.source).expect("compiles");
            let (native, _, _) = native_cycles(&image, kind);
            let mut opts = Options::full();
            opts.inline_ib_target = inline;
            let r = run_config(&image, opts, kind, ClientKind::Null);
            let norm = r.cycles as f64 / native as f64;
            if b.category == Category::Int {
                int.push(norm);
            }
            all.push(norm);
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        println!("{:<10} {:>8.3} {:>8.3}", inline, g(&int), g(&all));
    }
}
