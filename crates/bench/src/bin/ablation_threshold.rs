//! Ablation: trace-head threshold sweep (DESIGN.md design choice 2).
//!
//! Dynamo's default threshold is 50. Too low wastes build time on lukewarm
//! code; too high delays the benefit of traces.
//!
//! The threshold × benchmark sweep is distributed over the worker pool
//! (`--jobs N` / `RIO_JOBS`); output is identical for every job count.

use rio_bench::{jobs, native_cycles, run_config, run_parallel, ClientKind};
use rio_core::Options;
use rio_sim::CpuKind;
use rio_workloads::{compiled, suite_scaled, Category};

fn main() {
    let kind = CpuKind::Pentium4;
    let njobs = jobs();
    let thresholds = [5u32, 15, 50, 150, 500, 5000];

    let benches: Vec<_> = suite_scaled(3)
        .into_iter()
        .map(|b| {
            let image = compiled(&b);
            (b, image)
        })
        .collect();
    let natives = run_parallel(&benches, njobs, |_, (_, image)| {
        native_cycles(image, kind).0
    });

    let cells: Vec<(usize, usize)> = (0..thresholds.len())
        .flat_map(|t| (0..benches.len()).map(move |b| (t, b)))
        .collect();
    let norms = run_parallel(&cells, njobs, |_, &(t, bi)| {
        let mut opts = Options::full();
        opts.trace_threshold = thresholds[t];
        let r = run_config(&benches[bi].1, opts, kind, ClientKind::Null);
        r.cycles as f64 / natives[bi] as f64
    });

    println!("Trace-threshold sweep: normalized execution time (geomean, full system)");
    println!("{:<10} {:>8} {:>8} {:>8}", "threshold", "int", "fp", "all");
    for (t, threshold) in thresholds.iter().enumerate() {
        let mut int = Vec::new();
        let mut fp = Vec::new();
        for (bi, (b, _)) in benches.iter().enumerate() {
            let norm = norms[t * benches.len() + bi];
            match b.category {
                Category::Int => int.push(norm),
                Category::Fp => fp.push(norm),
            }
        }
        let g = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        let all: Vec<f64> = int.iter().chain(fp.iter()).copied().collect();
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3}",
            threshold,
            g(&int),
            g(&fp),
            g(&all)
        );
    }
}
